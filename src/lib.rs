//! # Sieve — actionable insights from monitored metrics in distributed systems
//!
//! A from-scratch Rust reproduction of *Sieve: Actionable Insights from
//! Monitored Metrics in Distributed Systems* (Thalheim et al.,
//! ACM/IFIP/USENIX Middleware 2017), including every substrate the paper's
//! evaluation depends on.
//!
//! Sieve turns the thousands of metrics a microservices-based application
//! exports into something an operator can act on, in three steps:
//!
//! 1. **Load the application** and record all metrics plus the component
//!    call graph ([`simulator`], [`apps`]);
//! 2. **Reduce the metric space** by filtering unvarying metrics and
//!    clustering the rest with k-Shape under the shape-based distance,
//!    keeping one representative metric per cluster ([`cluster`],
//!    [`core::reduce`]);
//! 3. **Identify dependencies** between the representative metrics of
//!    communicating components with Granger-causality tests
//!    ([`causality`], [`core::dependencies`]), yielding a metric dependency
//!    graph ([`graph`]).
//!
//! Two case-study engines consume the resulting model: orchestration of
//! autoscaling ([`autoscale`]) and root cause analysis ([`rca`]). At scale,
//! the multi-tenant serving layer ([`serve`]) multiplexes many isolated
//! applications' incremental analysis sessions behind a sharded registry,
//! refreshing only what each observation round actually changed —
//! optionally crash-safe through a per-shard write-ahead log with model
//! snapshots and replay-on-boot ([`wal`], [`serve::service::SieveService::recover`]).
//! The whole stack is graded against adversarial workloads with scripted
//! ground truth by the chaos-scenario engine ([`scenario`]): seeded
//! scenarios inject faults, bursts and dependency drift, and scoring
//! harnesses check that RCA ranks the injected root cause, the
//! incremental session tracks the drift, and autoscaling reacts in time.
//!
//! ## Quick start
//!
//! ```no_run
//! use sieve::apps::{sharelatex, MetricRichness};
//! use sieve::core::config::SieveConfig;
//! use sieve::core::pipeline::Sieve;
//! use sieve::simulator::workload::Workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Model the application (here: the ShareLatex-like deployment).
//! let app = sharelatex::app_spec(MetricRichness::Minimal);
//!
//! // 2.–3. Run the Sieve pipeline: load, reduce, identify dependencies.
//! let model = Sieve::new(SieveConfig::default())
//!     .analyze_application(&app, &Workload::randomized(60.0, 1), 42)?;
//!
//! println!(
//!     "{} metrics -> {} representatives ({}x reduction), {} dependency edges",
//!     model.total_metric_count(),
//!     model.total_representative_count(),
//!     model.overall_reduction_factor().round(),
//!     model.dependency_graph.edge_count()
//! );
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for the full autoscaling and RCA workflows
//! and the `sieve-bench` crate for the harness that regenerates every table
//! and figure of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use sieve_apps as apps;
pub use sieve_autoscale as autoscale;
pub use sieve_causality as causality;
pub use sieve_cluster as cluster;
pub use sieve_core as core;
pub use sieve_exec as exec;
pub use sieve_graph as graph;
pub use sieve_rca as rca;
pub use sieve_scenario as scenario;
pub use sieve_serve as serve;
pub use sieve_simulator as simulator;
pub use sieve_timeseries as timeseries;
pub use sieve_wal as wal;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use sieve_apps::MetricRichness;
    pub use sieve_autoscale::{AutoscaleEngine, AutoscalingReport, ScalingRule, SlaCondition};
    pub use sieve_causality::engine::{granger_causes_prepared, PreparedGrangerSeries};
    pub use sieve_causality::granger::{granger_causes, GrangerConfig, GrangerResult};
    pub use sieve_cluster::kshape::{KShape, KShapeConfig, KShapeResult};
    pub use sieve_core::config::{RetentionPolicy, SieveConfig};
    pub use sieve_core::model::{ComponentClustering, MetricCluster, SieveModel};
    pub use sieve_core::pipeline::{load_application, Sieve};
    pub use sieve_core::session::{AnalysisSession, SessionStats};
    pub use sieve_exec::{par_map_chunks, Name};
    pub use sieve_graph::{CallGraph, DependencyEdge, DependencyGraph};
    pub use sieve_rca::{RcaConfig, RcaEngine, RcaReport};
    pub use sieve_scenario::{
        generate, scenario_matrix, score_clusters, score_drift, score_rca, smoke_matrix,
        GroundTruth, ScenarioCase, ScenarioData, ScenarioSpec,
    };
    pub use sieve_serve::{
        DurabilityConfig, FsyncPolicy, MetricPoint, RecoveryReport, ServeConfig, ServiceStats,
        SieveService,
    };
    pub use sieve_simulator::app::{AppSpec, CallSpec, ComponentSpec};
    pub use sieve_simulator::engine::{SimConfig, Simulation};
    pub use sieve_simulator::metrics::{MetricBehavior, MetricSpec};
    pub use sieve_simulator::store::{MetricId, MetricStore, StoreDelta};
    pub use sieve_simulator::workload::Workload;
    pub use sieve_timeseries::TimeSeries;
}
