//! The logged event vocabulary: everything that mutates a tenant.
//!
//! A [`WalEvent`] is the unit the serving layer appends to a shard's log.
//! The set is deliberately exhaustive over tenant-mutating operations —
//! tenant creation, call-graph replacement, retention changes, ingest
//! batches — because the recovery guarantee ("replayed == live, bitwise")
//! only holds if *every* input to the pure store→model function is in the
//! stream.
//!
//! Ingest batches carry only the *accepted* sub-batch (the store's
//! detailed batch API reports rejections before logging) plus the
//! post-apply fingerprint watermark of each touched series. Replay
//! verifies the watermarks against a non-mutating preview *before*
//! applying, so a batch logged against a store state that no longer
//! matches degrades the tenant loudly instead of corrupting it silently.

use crate::codec::{
    put_call_graph, put_metric_id, put_retention, put_sieve_config, put_str, put_u64, put_u8,
    put_usize, take_call_graph, take_metric_id, take_retention, take_sieve_config, Cursor,
    DecodeResult,
};
use sieve_core::config::SieveConfig;
use sieve_exec::Name;
use sieve_graph::CallGraph;
use sieve_simulator::store::{MetricId, RetentionPolicy};

/// One durable, replayable mutation of one tenant.
#[derive(Debug, Clone, PartialEq)]
pub enum WalEvent {
    /// A tenant was created (or adopted) with this configuration and
    /// initial call graph. Replay recreates the tenant before any of its
    /// later events apply.
    TenantCreated {
        /// Tenant name (interned — staging an event never clones the
        /// string).
        tenant: Name,
        /// Analysis configuration of the tenant.
        config: Box<SieveConfig>,
        /// Call graph at creation time.
        call_graph: CallGraph,
    },
    /// The tenant's call graph was replaced.
    CallGraphReplaced {
        /// Tenant name (interned — staging an event never clones the
        /// string).
        tenant: Name,
        /// The new call graph.
        call_graph: CallGraph,
    },
    /// The tenant's retention policy changed (and the store trimmed
    /// accordingly — replay re-trims deterministically).
    RetentionChanged {
        /// Tenant name (interned — staging an event never clones the
        /// string).
        tenant: Name,
        /// The new policy.
        retention: RetentionPolicy,
    },
    /// An ingest batch whose points were all *accepted* live.
    IngestBatch {
        /// Tenant name (interned — staging an event never clones the
        /// string).
        tenant: Name,
        /// The accepted `(id, timestamp, value)` points, in apply order.
        points: Vec<(MetricId, u64, f64)>,
        /// Post-apply content fingerprint of every series the batch
        /// touched, sorted by [`MetricId`] — the replay verification
        /// anchor.
        watermarks: Vec<(MetricId, u64)>,
    },
}

const TAG_TENANT_CREATED: u8 = 1;
const TAG_CALL_GRAPH_REPLACED: u8 = 2;
const TAG_RETENTION_CHANGED: u8 = 3;
const TAG_INGEST_BATCH: u8 = 4;

impl WalEvent {
    /// The tenant this event mutates.
    pub fn tenant(&self) -> &str {
        match self {
            Self::TenantCreated { tenant, .. }
            | Self::CallGraphReplaced { tenant, .. }
            | Self::RetentionChanged { tenant, .. }
            | Self::IngestBatch { tenant, .. } => tenant,
        }
    }

    /// Number of ingest points the event carries (0 for admin events) —
    /// what recovery reports as "points lost" when an event cannot be
    /// applied.
    pub fn point_count(&self) -> usize {
        match self {
            Self::IngestBatch { points, .. } => points.len(),
            _ => 0,
        }
    }

    /// Appends the event's tagged byte encoding to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Self::TenantCreated {
                tenant,
                config,
                call_graph,
            } => {
                put_u8(buf, TAG_TENANT_CREATED);
                put_str(buf, tenant);
                put_sieve_config(buf, config);
                put_call_graph(buf, call_graph);
            }
            Self::CallGraphReplaced { tenant, call_graph } => {
                put_u8(buf, TAG_CALL_GRAPH_REPLACED);
                put_str(buf, tenant);
                put_call_graph(buf, call_graph);
            }
            Self::RetentionChanged { tenant, retention } => {
                put_u8(buf, TAG_RETENTION_CHANGED);
                put_str(buf, tenant);
                put_retention(buf, retention);
            }
            Self::IngestBatch {
                tenant,
                points,
                watermarks,
            } => {
                put_u8(buf, TAG_INGEST_BATCH);
                put_str(buf, tenant);
                put_usize(buf, points.len());
                for (id, timestamp_ms, value) in points {
                    put_metric_id(buf, id);
                    put_u64(buf, *timestamp_ms);
                    put_u64(buf, value.to_bits());
                }
                put_usize(buf, watermarks.len());
                for (id, fingerprint) in watermarks {
                    put_metric_id(buf, id);
                    put_u64(buf, *fingerprint);
                }
            }
        }
    }

    /// Appends the encoding of an [`WalEvent::IngestBatch`] to `buf`
    /// without materialising the event: the hot ingest path streams its
    /// accepted `(id, timestamp, value)` triples straight from the
    /// caller's point buffer (skipping rejected indices) instead of
    /// cloning them into a `Vec`.
    ///
    /// Byte-identical to [`WalEvent::encode`] of the equivalent
    /// `IngestBatch` — asserted by unit test — so replay cannot tell the
    /// two paths apart. `accepted` must equal the number of triples the
    /// iterator yields.
    pub fn encode_ingest_batch_into<'a, I>(
        buf: &mut Vec<u8>,
        tenant: &str,
        accepted: usize,
        points: I,
        watermarks: &[(MetricId, u64)],
    ) where
        I: IntoIterator<Item = (&'a MetricId, u64, f64)>,
    {
        put_u8(buf, TAG_INGEST_BATCH);
        put_str(buf, tenant);
        put_usize(buf, accepted);
        let mut written = 0usize;
        for (id, timestamp_ms, value) in points {
            put_metric_id(buf, id);
            put_u64(buf, timestamp_ms);
            put_u64(buf, value.to_bits());
            written += 1;
        }
        debug_assert_eq!(written, accepted, "accepted count must match the stream");
        put_usize(buf, watermarks.len());
        for (id, fingerprint) in watermarks {
            put_metric_id(buf, id);
            put_u64(buf, *fingerprint);
        }
    }

    /// Decodes one event from `bytes`; the whole slice must be consumed.
    ///
    /// # Errors
    ///
    /// Returns a descriptive reason for truncated, malformed, or
    /// trailing-garbage input (the frame layer attaches the file offset).
    pub fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let mut cur = Cursor::new(bytes);
        let event = match cur.take_u8("event tag")? {
            TAG_TENANT_CREATED => Self::TenantCreated {
                tenant: cur.take_str("tenant name")?.into(),
                config: Box::new(take_sieve_config(&mut cur)?),
                call_graph: take_call_graph(&mut cur)?,
            },
            TAG_CALL_GRAPH_REPLACED => Self::CallGraphReplaced {
                tenant: cur.take_str("tenant name")?.into(),
                call_graph: take_call_graph(&mut cur)?,
            },
            TAG_RETENTION_CHANGED => Self::RetentionChanged {
                tenant: cur.take_str("tenant name")?.into(),
                retention: take_retention(&mut cur)?,
            },
            TAG_INGEST_BATCH => {
                let tenant: Name = cur.take_str("tenant name")?.into();
                let point_count = cur.take_usize("point count")?;
                let mut points = Vec::with_capacity(point_count.min(65_536));
                for _ in 0..point_count {
                    let id = take_metric_id(&mut cur)?;
                    let timestamp_ms = cur.take_u64("point timestamp")?;
                    let value = f64::from_bits(cur.take_u64("point value")?);
                    points.push((id, timestamp_ms, value));
                }
                let watermark_count = cur.take_usize("watermark count")?;
                let mut watermarks = Vec::with_capacity(watermark_count.min(65_536));
                for _ in 0..watermark_count {
                    let id = take_metric_id(&mut cur)?;
                    let fingerprint = cur.take_u64("watermark fingerprint")?;
                    watermarks.push((id, fingerprint));
                }
                Self::IngestBatch {
                    tenant,
                    points,
                    watermarks,
                }
            }
            other => return Err(format!("unknown event tag {other}")),
        };
        if !cur.is_empty() {
            return Err(format!(
                "trailing garbage after event at {}",
                cur.position()
            ));
        }
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<WalEvent> {
        let mut graph = CallGraph::new();
        graph.record_calls("web", "db", 12);
        vec![
            WalEvent::TenantCreated {
                tenant: "acme".into(),
                config: Box::new(SieveConfig::default().with_cluster_range(2, 3)),
                call_graph: graph.clone(),
            },
            WalEvent::CallGraphReplaced {
                tenant: "acme".into(),
                call_graph: graph,
            },
            WalEvent::RetentionChanged {
                tenant: "acme".into(),
                retention: RetentionPolicy::windowed(64),
            },
            WalEvent::IngestBatch {
                tenant: "acme".into(),
                points: vec![
                    (MetricId::new("web", "cpu"), 500, 1.5),
                    (MetricId::new("db", "mem"), 500, -3.25),
                ],
                watermarks: vec![
                    (MetricId::new("db", "mem"), 0xABCD),
                    (MetricId::new("web", "cpu"), 0x1234),
                ],
            },
        ]
    }

    #[test]
    fn every_event_roundtrips() {
        for event in sample_events() {
            let mut buf = Vec::new();
            event.encode(&mut buf);
            assert_eq!(WalEvent::decode(&buf).unwrap(), event);
        }
    }

    #[test]
    fn accessors_report_tenant_and_points() {
        let events = sample_events();
        assert!(events.iter().all(|e| e.tenant() == "acme"));
        assert_eq!(events[0].point_count(), 0);
        assert_eq!(events[3].point_count(), 2);
    }

    #[test]
    fn streaming_ingest_encoder_matches_the_materialised_event() {
        let points = [
            (MetricId::new("web", "cpu"), 500, 1.5),
            (MetricId::new("web", "mem"), 500, f64::NAN), // rejected live
            (MetricId::new("db", "mem"), 1000, -3.25),
        ];
        let accepted: Vec<(MetricId, u64, f64)> = vec![points[0].clone(), points[2].clone()];
        let watermarks = vec![
            (MetricId::new("db", "mem"), 0xABCD),
            (MetricId::new("web", "cpu"), 0x1234),
        ];
        let event = WalEvent::IngestBatch {
            tenant: "acme".into(),
            points: accepted.clone(),
            watermarks: watermarks.clone(),
        };
        let mut materialised = Vec::new();
        event.encode(&mut materialised);

        // The streaming path walks the original buffer, skipping index 1.
        let mut streamed = Vec::new();
        WalEvent::encode_ingest_batch_into(
            &mut streamed,
            "acme",
            2,
            points
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != 1)
                .map(|(_, (id, ts, v))| (id, *ts, *v)),
            &watermarks,
        );
        assert_eq!(streamed, materialised);
        assert_eq!(WalEvent::decode(&streamed).unwrap(), event);
    }

    #[test]
    fn malformed_events_error_instead_of_panicking() {
        assert!(WalEvent::decode(&[]).is_err(), "empty input");
        assert!(WalEvent::decode(&[99]).is_err(), "unknown tag");

        let mut buf = Vec::new();
        sample_events()[2].encode(&mut buf);
        buf.push(0); // trailing garbage
        assert!(WalEvent::decode(&buf).unwrap_err().contains("trailing"));
        // Every truncation of a valid encoding is rejected cleanly.
        for len in 0..buf.len() - 1 {
            assert!(WalEvent::decode(&buf[..len]).is_err(), "truncated at {len}");
        }
    }
}
