//! Atomic per-shard snapshots: the log-truncation anchor.
//!
//! A [`ShardSnapshot`] captures every tenant of one shard — frozen store
//! image, analysis configuration, call graph — plus `last_seq`, the log
//! sequence number the snapshot covers. Recovery restores the snapshot
//! and replays only log frames with a *higher* sequence number, so the
//! log can be truncated whenever a snapshot lands and replay work stays
//! bounded no matter how long the service runs.
//!
//! Snapshots are written atomically: encode to `<path>.tmp`, `fsync`,
//! then `rename` over the final path. A crash mid-write leaves either the
//! old snapshot or none — never a half-written one — and the whole file
//! carries a trailing checksum so a bit-flipped snapshot is detected and
//! treated as absent (recovery then falls back to pure log replay).

use crate::codec::{
    put_call_graph, put_sieve_config, put_store_state, put_str, put_u32, put_u64, put_usize,
    take_call_graph, take_sieve_config, take_store_state, Cursor, DecodeResult,
};
use crate::frame::checksum;
use crate::{Result, WalError};
use sieve_core::config::SieveConfig;
use sieve_graph::CallGraph;
use sieve_simulator::store::StoreState;
use std::io::Write;
use std::path::Path;

/// Magic prefix of a snapshot file ("SIEVSNAP" in ASCII).
const MAGIC: u64 = 0x5349_4556_534E_4150;
/// Format version, bumped on incompatible layout changes.
const VERSION: u32 = 1;

/// One tenant's durable image inside a shard snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub tenant: String,
    /// The tenant's analysis configuration.
    pub config: Box<SieveConfig>,
    /// The call graph the tenant's session plans comparisons over.
    pub call_graph: CallGraph,
    /// The frozen metric store (retained windows, tiers, fingerprints,
    /// epoch watermark, accounting).
    pub store: StoreState,
}

/// Everything one shard needs to come back: its tenants plus the log
/// watermark the snapshot covers.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Index of the shard this snapshot belongs to.
    pub shard: usize,
    /// Highest log sequence number whose effects are inside the
    /// snapshot. Replay skips frames with `seq <= last_seq`.
    pub last_seq: u64,
    /// Every tenant of the shard, sorted by name.
    pub tenants: Vec<TenantSnapshot>,
}

impl ShardSnapshot {
    /// Encodes the snapshot: magic, version, body, trailing checksum over
    /// the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        put_usize(&mut body, self.shard);
        put_u64(&mut body, self.last_seq);
        put_usize(&mut body, self.tenants.len());
        for tenant in &self.tenants {
            put_str(&mut body, &tenant.tenant);
            put_sieve_config(&mut body, &tenant.config);
            put_call_graph(&mut body, &tenant.call_graph);
            put_store_state(&mut body, &tenant.store);
        }
        let mut bytes = Vec::with_capacity(body.len() + 28);
        put_u64(&mut bytes, MAGIC);
        put_u32(&mut bytes, VERSION);
        put_u64(&mut bytes, checksum(MAGIC ^ u64::from(VERSION), &body));
        bytes.extend_from_slice(&body);
        bytes
    }

    /// Decodes and verifies a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a descriptive reason if the magic, version, checksum or
    /// body is wrong — the caller treats any of these as "snapshot
    /// absent" and falls back to log replay.
    pub fn decode(bytes: &[u8]) -> DecodeResult<Self> {
        let mut cur = Cursor::new(bytes);
        let magic = cur.take_u64("snapshot magic")?;
        if magic != MAGIC {
            return Err(format!("bad snapshot magic {magic:#x}"));
        }
        let version = cur.take_u32("snapshot version")?;
        if version != VERSION {
            return Err(format!("unsupported snapshot version {version}"));
        }
        let stored = cur.take_u64("snapshot checksum")?;
        let body = &bytes[cur.position()..];
        if checksum(MAGIC ^ u64::from(version), body) != stored {
            return Err("snapshot checksum mismatch".to_string());
        }
        let shard = cur.take_usize("snapshot shard")?;
        let last_seq = cur.take_u64("snapshot last_seq")?;
        let tenant_count = cur.take_usize("snapshot tenant count")?;
        let mut tenants = Vec::with_capacity(tenant_count.min(4096));
        for _ in 0..tenant_count {
            tenants.push(TenantSnapshot {
                tenant: cur.take_str("tenant name")?,
                config: Box::new(take_sieve_config(&mut cur)?),
                call_graph: take_call_graph(&mut cur)?,
                store: take_store_state(&mut cur)?,
            });
        }
        if !cur.is_empty() {
            return Err("trailing garbage after snapshot".to_string());
        }
        Ok(Self {
            shard,
            last_seq,
            tenants,
        })
    }

    /// Writes the snapshot atomically: `<path>.tmp` + `fsync` + `rename`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; on error the previous snapshot (if
    /// any) is still in place.
    pub fn write_atomic(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("snap.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(&self.encode())?;
            file.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads a snapshot from `path`: `Ok(None)` if the file does not
    /// exist, [`WalError::Corrupt`] if it exists but fails verification.
    ///
    /// # Errors
    ///
    /// I/O failures other than not-found, and corruption.
    pub fn read(path: &Path) -> Result<Option<Self>> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Self::decode(&bytes)
            .map(Some)
            .map_err(|reason| WalError::Corrupt { offset: 0, reason })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_simulator::store::{MetricId, MetricStore, RetentionPolicy};

    fn sample() -> ShardSnapshot {
        let store = MetricStore::with_retention(RetentionPolicy::windowed(4));
        for t in 0..17u64 {
            store.record(&MetricId::new("web", "cpu"), t * 500, t as f64);
        }
        let mut graph = CallGraph::new();
        graph.record_calls("web", "db", 3);
        ShardSnapshot {
            shard: 2,
            last_seq: 19,
            tenants: vec![TenantSnapshot {
                tenant: "acme".into(),
                config: Box::new(SieveConfig::default().with_cluster_range(2, 2)),
                call_graph: graph,
                store: store.freeze(),
            }],
        }
    }

    #[test]
    fn snapshots_roundtrip_bit_identically() {
        let snapshot = sample();
        let decoded = ShardSnapshot::decode(&snapshot.encode()).unwrap();
        assert_eq!(decoded, snapshot);
        // The store image inside survives restore exactly.
        let restored = MetricStore::restore(decoded.tenants[0].store.clone());
        assert_eq!(restored.freeze(), snapshot.tenants[0].store);
    }

    #[test]
    fn corrupt_snapshots_are_rejected_not_misread() {
        let bytes = sample().encode();
        assert!(ShardSnapshot::decode(&[]).is_err(), "empty file");
        assert!(
            ShardSnapshot::decode(&bytes[..bytes.len() - 1]).is_err(),
            "truncation"
        );
        for position in [0, 9, 15, 40, bytes.len() - 1] {
            let mut flipped = bytes.clone();
            flipped[position] ^= 0x01;
            assert!(
                ShardSnapshot::decode(&flipped).is_err(),
                "bit flip at byte {position} must not verify"
            );
        }
    }

    #[test]
    fn write_atomic_and_read_roundtrip_via_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("sieve-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-shard-2.snap");
        let _ = std::fs::remove_file(&path);

        assert!(ShardSnapshot::read(&path).unwrap().is_none(), "absent file");
        let snapshot = sample();
        snapshot.write_atomic(&path).unwrap();
        assert_eq!(ShardSnapshot::read(&path).unwrap().unwrap(), snapshot);

        // A corrupted file on disk surfaces as Corrupt, not a misread.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[20] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            ShardSnapshot::read(&path),
            Err(WalError::Corrupt { .. })
        ));

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
