//! Per-shard write-ahead log and atomic snapshots for crash-safe serving.
//!
//! The serving layer keeps every tenant in memory; this crate is what
//! makes a restart survivable. The design leans entirely on the
//! determinism the rest of the workspace already proves: a [`SieveModel`]
//! is a pure function of store content, and store content is a pure
//! function of the accepted event stream — so durability reduces to
//! *persisting the event stream* and replaying it on boot. No model bytes
//! are ever written; recovery re-derives them bit-identically.
//!
//! [`SieveModel`]: sieve_core::model::SieveModel
//!
//! # Layout on disk
//!
//! One directory holds the whole service: per shard, an append-only log
//! (`wal-shard-<i>.log`) of [`event::WalEvent`]s in length-prefixed,
//! checksummed [`frame`]s, and at most one snapshot
//! (`wal-shard-<i>.snap`) capturing every tenant of the shard (frozen
//! store image, configuration, call graph) plus the log sequence number
//! it covers. Snapshots are written atomically (temp file + fsync +
//! rename) and let the log be truncated, bounding replay work.
//!
//! # Torn writes and corruption
//!
//! A crash can tear the last frame, and disks can flip bits. Every frame
//! carries a [`hash::splitmix64`]-mixed checksum over its sequence number
//! and payload; [`reader::scan_log`] stops at the first frame that fails
//! verification and then *resynchronizes* — scanning forward for valid
//! frame headers — so the events lost to a mid-file corruption are
//! counted per tenant instead of silently discarded. Recovery applies
//! only the intact prefix and reports the exact lost suffix.
//!
//! The [`failpoint::FailpointFs`] media wrapper makes all of this
//! testable deterministically: it kills the writer at a chosen byte
//! offset and flips chosen bits in flight, so the crash/torn-write
//! property suite can replay thousands of failure scenarios without a
//! real power cut.
//!
//! [`hash::splitmix64`]: sieve_exec::hash::splitmix64

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod error;
pub mod event;
pub mod failpoint;
pub mod frame;
pub mod group;
pub mod reader;
pub mod snapshot;
pub mod writer;

pub use error::WalError;
pub use event::WalEvent;
pub use failpoint::FailpointFs;
pub use group::{GroupCommitLog, GroupCommitStats};
pub use reader::{scan_log, LogCorruption, ScannedLog};
pub use snapshot::{ShardSnapshot, TenantSnapshot};
pub use writer::{FsyncPolicy, ShardWal, WalMedia};

/// Convenience alias for fallible WAL operations.
pub type Result<T> = std::result::Result<T, WalError>;

/// File name of shard `i`'s append-only log inside a durability
/// directory.
pub fn log_file_name(shard: usize) -> String {
    format!("wal-shard-{shard}.log")
}

/// File name of shard `i`'s snapshot inside a durability directory.
pub fn snapshot_file_name(shard: usize) -> String {
    format!("wal-shard-{shard}.snap")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_are_stable() {
        assert_eq!(log_file_name(3), "wal-shard-3.log");
        assert_eq!(snapshot_file_name(0), "wal-shard-0.snap");
    }
}
