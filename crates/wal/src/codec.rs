//! Little-endian byte codecs for everything the durability layer
//! persists.
//!
//! The workspace bakes in zero external dependencies, so serialization is
//! hand-rolled: fixed-width little-endian scalars, `u32`-length-prefixed
//! strings, and explicit field order. The encoding is *exact* — `f64`s
//! round-trip through [`f64::to_bits`], so a decoded store image is
//! bit-identical to the frozen one, which is what makes "replayed == live,
//! bitwise" provable rather than approximate.
//!
//! Decoding never panics on malformed input: every `take_*` returns a
//! descriptive `Err(String)` that the frame/snapshot layers convert into
//! checksummed-corruption accounting.

use sieve_core::config::SieveConfig;
use sieve_graph::CallGraph;
use sieve_simulator::store::{
    AggregateBucket, CostModel, MetricId, RetentionPolicy, SeriesState, StoreState, TierState,
};

/// Decode-side cursor over an immutable byte slice.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Shorthand for decode results: the error is a human-readable reason.
pub type DecodeResult<T> = std::result::Result<T, String>;

impl<'a> Cursor<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current byte position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize, what: &str) -> DecodeResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let slice = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(format!(
                "truncated {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.bytes.len() - self.pos
            )),
        }
    }

    /// Reads one byte.
    pub fn take_u8(&mut self, what: &str) -> DecodeResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self, what: &str) -> DecodeResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self, what: &str) -> DecodeResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` persisted as a little-endian `u64`.
    pub fn take_usize(&mut self, what: &str) -> DecodeResult<usize> {
        let v = self.take_u64(what)?;
        usize::try_from(v).map_err(|_| format!("{what}: {v} overflows usize"))
    }

    /// Reads an `f64` persisted via [`f64::to_bits`].
    pub fn take_f64(&mut self, what: &str) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    /// Reads a `bool` persisted as one byte (0 or 1).
    pub fn take_bool(&mut self, what: &str) -> DecodeResult<bool> {
        match self.take_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("{what}: invalid bool byte {other}")),
        }
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn take_str(&mut self, what: &str) -> DecodeResult<String> {
        let len = self.take_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("{what}: invalid utf-8"))
    }
}

/// Appends one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as a little-endian `u64`.
pub fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Appends an `f64` via [`f64::to_bits`] (bit-exact, NaN-safe).
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// Appends a `bool` as one byte.
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    put_u8(buf, u8::from(v));
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends a [`MetricId`] (component, metric).
pub fn put_metric_id(buf: &mut Vec<u8>, id: &MetricId) {
    put_str(buf, id.component.as_str());
    put_str(buf, id.metric.as_str());
}

/// Reads a [`MetricId`].
pub fn take_metric_id(cur: &mut Cursor<'_>) -> DecodeResult<MetricId> {
    let component = cur.take_str("metric id component")?;
    let metric = cur.take_str("metric id metric")?;
    Ok(MetricId::new(component, metric))
}

/// Appends a [`RetentionPolicy`].
pub fn put_retention(buf: &mut Vec<u8>, policy: &RetentionPolicy) {
    match policy.raw_capacity {
        None => put_u8(buf, 0),
        Some(cap) => {
            put_u8(buf, 1);
            put_usize(buf, cap);
        }
    }
    put_usize(buf, policy.tier_capacity);
}

/// Reads a [`RetentionPolicy`].
pub fn take_retention(cur: &mut Cursor<'_>) -> DecodeResult<RetentionPolicy> {
    let raw_capacity = match cur.take_u8("retention tag")? {
        0 => None,
        1 => Some(cur.take_usize("retention raw capacity")?),
        other => return Err(format!("retention tag: invalid byte {other}")),
    };
    let tier_capacity = cur.take_usize("retention tier capacity")?;
    Ok(RetentionPolicy {
        raw_capacity,
        tier_capacity,
    })
}

/// Appends an optional [`CostModel`].
pub fn put_cost_model(buf: &mut Vec<u8>, cost: &Option<CostModel>) {
    match cost {
        None => put_u8(buf, 0),
        Some(c) => {
            put_u8(buf, 1);
            put_f64(buf, c.cpu_s_per_point);
            put_f64(buf, c.bytes_per_point);
            put_f64(buf, c.network_in_bytes_per_point);
            put_f64(buf, c.network_out_bytes_per_point);
            put_f64(buf, c.bytes_per_series);
        }
    }
}

/// Reads an optional [`CostModel`].
pub fn take_cost_model(cur: &mut Cursor<'_>) -> DecodeResult<Option<CostModel>> {
    match cur.take_u8("cost model tag")? {
        0 => Ok(None),
        1 => Ok(Some(CostModel {
            cpu_s_per_point: cur.take_f64("cpu_s_per_point")?,
            bytes_per_point: cur.take_f64("bytes_per_point")?,
            network_in_bytes_per_point: cur.take_f64("network_in_bytes_per_point")?,
            network_out_bytes_per_point: cur.take_f64("network_out_bytes_per_point")?,
            bytes_per_series: cur.take_f64("bytes_per_series")?,
        })),
        other => Err(format!("cost model tag: invalid byte {other}")),
    }
}

/// Appends a full [`SieveConfig`], every result-affecting and
/// result-invariant field alike, so a recovered tenant analyses exactly
/// as configured.
pub fn put_sieve_config(buf: &mut Vec<u8>, config: &SieveConfig) {
    put_u64(buf, config.interval_ms);
    put_f64(buf, config.variance_threshold);
    put_usize(buf, config.min_clusters);
    put_usize(buf, config.max_clusters);
    put_usize(buf, config.kshape_max_iterations);
    put_usize(buf, config.granger.max_lag);
    put_f64(buf, config.granger.significance);
    put_bool(buf, config.granger.difference_non_stationary);
    put_usize(buf, config.granger.min_observations);
    put_usize(buf, config.parallelism);
    put_bool(buf, config.use_sbd_cache);
    put_bool(buf, config.use_granger_cache);
    put_retention(buf, &config.retention);
}

/// Reads a full [`SieveConfig`].
pub fn take_sieve_config(cur: &mut Cursor<'_>) -> DecodeResult<SieveConfig> {
    // Field order matches `put_sieve_config` exactly.
    let interval_ms = cur.take_u64("interval_ms")?;
    let variance_threshold = cur.take_f64("variance_threshold")?;
    let min_clusters = cur.take_usize("min_clusters")?;
    let max_clusters = cur.take_usize("max_clusters")?;
    let kshape_max_iterations = cur.take_usize("kshape_max_iterations")?;
    let granger_max_lag = cur.take_usize("granger max_lag")?;
    let granger_significance = cur.take_f64("granger significance")?;
    let granger_differencing = cur.take_bool("granger differencing")?;
    let granger_min_observations = cur.take_usize("granger min_observations")?;
    let parallelism = cur.take_usize("parallelism")?;
    let use_sbd_cache = cur.take_bool("use_sbd_cache")?;
    let use_granger_cache = cur.take_bool("use_granger_cache")?;
    let retention = take_retention(cur)?;

    let mut config = SieveConfig::default()
        .with_interval_ms(interval_ms)
        .with_parallelism(parallelism)
        .with_sbd_cache(use_sbd_cache)
        .with_granger_cache(use_granger_cache)
        .with_retention(retention);
    config.variance_threshold = variance_threshold;
    config.min_clusters = min_clusters;
    config.max_clusters = max_clusters;
    config.kshape_max_iterations = kshape_max_iterations;
    config.granger.max_lag = granger_max_lag;
    config.granger.significance = granger_significance;
    config.granger.difference_non_stationary = granger_differencing;
    config.granger.min_observations = granger_min_observations;
    Ok(config)
}

/// Appends a [`CallGraph`] as its component list plus per-caller edge
/// lists with call counts.
pub fn put_call_graph(buf: &mut Vec<u8>, graph: &CallGraph) {
    let components = graph.components();
    put_usize(buf, components.len());
    for component in &components {
        put_str(buf, component.as_str());
    }
    let edges: Vec<_> = graph.edges().collect();
    put_usize(buf, edges.len());
    for (caller, callee, count) in edges {
        put_str(buf, caller.as_str());
        put_str(buf, callee.as_str());
        put_u64(buf, count);
    }
}

/// Reads a [`CallGraph`].
pub fn take_call_graph(cur: &mut Cursor<'_>) -> DecodeResult<CallGraph> {
    let mut graph = CallGraph::new();
    let components = cur.take_usize("call graph component count")?;
    for _ in 0..components {
        graph.add_component(cur.take_str("call graph component")?);
    }
    let edges = cur.take_usize("call graph edge count")?;
    for _ in 0..edges {
        let caller = cur.take_str("call graph caller")?;
        let callee = cur.take_str("call graph callee")?;
        let count = cur.take_u64("call graph call count")?;
        graph.record_calls(caller, callee, count);
    }
    Ok(graph)
}

fn put_bucket(buf: &mut Vec<u8>, bucket: &AggregateBucket) {
    put_u64(buf, bucket.start_ms);
    put_u64(buf, bucket.end_ms);
    put_u32(buf, bucket.count);
    put_f64(buf, bucket.mean);
    put_f64(buf, bucket.min);
    put_f64(buf, bucket.max);
}

fn take_bucket(cur: &mut Cursor<'_>) -> DecodeResult<AggregateBucket> {
    Ok(AggregateBucket {
        start_ms: cur.take_u64("bucket start_ms")?,
        end_ms: cur.take_u64("bucket end_ms")?,
        count: cur.take_u32("bucket count")?,
        mean: cur.take_f64("bucket mean")?,
        min: cur.take_f64("bucket min")?,
        max: cur.take_f64("bucket max")?,
    })
}

fn put_tier(buf: &mut Vec<u8>, tier: &TierState) {
    put_usize(buf, tier.closed.len());
    for bucket in &tier.closed {
        put_bucket(buf, bucket);
    }
    put_u32(buf, tier.open_sources);
    put_u32(buf, tier.open_count);
    put_f64(buf, tier.open_sum);
    put_f64(buf, tier.open_min);
    put_f64(buf, tier.open_max);
    put_u64(buf, tier.open_start_ms);
    put_u64(buf, tier.open_end_ms);
}

fn take_tier(cur: &mut Cursor<'_>) -> DecodeResult<TierState> {
    let closed_len = cur.take_usize("tier bucket count")?;
    let mut closed = Vec::with_capacity(closed_len.min(1024));
    for _ in 0..closed_len {
        closed.push(take_bucket(cur)?);
    }
    Ok(TierState {
        closed,
        open_sources: cur.take_u32("tier open_sources")?,
        open_count: cur.take_u32("tier open_count")?,
        open_sum: cur.take_f64("tier open_sum")?,
        open_min: cur.take_f64("tier open_min")?,
        open_max: cur.take_f64("tier open_max")?,
        open_start_ms: cur.take_u64("tier open_start_ms")?,
        open_end_ms: cur.take_u64("tier open_end_ms")?,
    })
}

fn put_series(buf: &mut Vec<u8>, series: &SeriesState) {
    put_metric_id(buf, &series.id);
    put_usize(buf, series.timestamps_ms.len());
    for &t in &series.timestamps_ms {
        put_u64(buf, t);
    }
    for &v in &series.values {
        put_f64(buf, v);
    }
    put_u64(buf, series.fingerprint);
    put_bool(buf, series.touched);
    put_tier(buf, &series.tier1);
    put_tier(buf, &series.tier2);
}

fn take_series(cur: &mut Cursor<'_>) -> DecodeResult<SeriesState> {
    let id = take_metric_id(cur)?;
    let len = cur.take_usize("series point count")?;
    let mut timestamps_ms = Vec::with_capacity(len.min(65_536));
    for _ in 0..len {
        timestamps_ms.push(cur.take_u64("series timestamp")?);
    }
    let mut values = Vec::with_capacity(len.min(65_536));
    for _ in 0..len {
        values.push(cur.take_f64("series value")?);
    }
    Ok(SeriesState {
        id,
        timestamps_ms,
        values,
        fingerprint: cur.take_u64("series fingerprint")?,
        touched: cur.take_bool("series touched")?,
        tier1: take_tier(cur)?,
        tier2: take_tier(cur)?,
    })
}

/// Appends a complete frozen store image.
pub fn put_store_state(buf: &mut Vec<u8>, state: &StoreState) {
    put_retention(buf, &state.retention);
    put_cost_model(buf, &state.cost_model);
    put_u64(buf, state.epoch);
    put_u64(buf, state.points_written);
    put_u64(buf, state.points_evicted);
    put_u64(buf, state.points_read);
    put_usize(buf, state.series.len());
    for series in &state.series {
        put_series(buf, series);
    }
}

/// Reads a complete frozen store image.
pub fn take_store_state(cur: &mut Cursor<'_>) -> DecodeResult<StoreState> {
    let retention = take_retention(cur)?;
    let cost_model = take_cost_model(cur)?;
    let epoch = cur.take_u64("store epoch")?;
    let points_written = cur.take_u64("store points_written")?;
    let points_evicted = cur.take_u64("store points_evicted")?;
    let points_read = cur.take_u64("store points_read")?;
    let series_len = cur.take_usize("store series count")?;
    let mut series = Vec::with_capacity(series_len.min(4096));
    for _ in 0..series_len {
        series.push(take_series(cur)?);
    }
    Ok(StoreState {
        retention,
        cost_model,
        epoch,
        points_written,
        points_evicted,
        points_read,
        series,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_simulator::store::MetricStore;

    #[test]
    fn scalar_roundtrips_are_exact() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX);
        put_f64(&mut buf, f64::NAN);
        put_f64(&mut buf, -0.0);
        put_bool(&mut buf, true);
        put_str(&mut buf, "wal ♥");

        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.take_u8("a").unwrap(), 7);
        assert_eq!(cur.take_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(cur.take_u64("c").unwrap(), u64::MAX);
        assert!(cur.take_f64("d").unwrap().is_nan());
        assert_eq!(cur.take_f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(cur.take_bool("f").unwrap());
        assert_eq!(cur.take_str("g").unwrap(), "wal ♥");
        assert!(cur.is_empty());
    }

    #[test]
    fn truncated_and_malformed_input_errors_instead_of_panicking() {
        let mut cur = Cursor::new(&[1, 2]);
        let err = cur.take_u64("watermark").unwrap_err();
        assert!(err.contains("truncated watermark"), "{err}");

        let mut cur = Cursor::new(&[9]);
        assert!(cur.take_bool("flag").unwrap_err().contains("invalid bool"));

        // A length prefix pointing past the end must not wrap around.
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        let mut cur = Cursor::new(&huge);
        assert!(cur.take_str("name").is_err());
    }

    #[test]
    fn config_and_graph_roundtrip() {
        let config = SieveConfig::default()
            .with_interval_ms(250)
            .with_cluster_range(2, 4)
            .with_parallelism(3)
            .with_retention(RetentionPolicy::windowed(128).with_tier_capacity(32));
        let mut buf = Vec::new();
        put_sieve_config(&mut buf, &config);
        let decoded = take_sieve_config(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(decoded, config);

        let mut graph = CallGraph::new();
        graph.add_component("lonely");
        graph.record_calls("web", "db", 41);
        graph.record_calls("web", "cache", 7);
        let mut buf = Vec::new();
        put_call_graph(&mut buf, &graph);
        let decoded = take_call_graph(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(decoded, graph);
    }

    #[test]
    fn frozen_store_roundtrips_bit_identically() {
        let store = MetricStore::with_retention(RetentionPolicy::windowed(5).with_tier_capacity(3));
        let id = MetricId::new("web", "cpu");
        for t in 0..37u64 {
            store.record(&id, t * 500, (t as f64 * 0.37).sin());
        }
        store.drain_delta();
        store.record(&MetricId::new("db", "mem"), 0, 1.25);

        let state = store.freeze();
        let mut buf = Vec::new();
        put_store_state(&mut buf, &state);
        let decoded = take_store_state(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(decoded, state);
        assert_eq!(
            MetricStore::restore(decoded).freeze(),
            state,
            "decode → restore → freeze is the identity"
        );
    }
}
