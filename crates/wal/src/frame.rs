//! Length-prefixed, checksummed log frames.
//!
//! Every event appended to a shard log is wrapped in one frame:
//!
//! ```text
//! [payload length: u32 LE][sequence: u64 LE][checksum: u64 LE][payload]
//! ```
//!
//! The checksum is a [`sieve_exec::hash::splitmix64`]-based mix chain
//! seeded with the sequence number and payload length and folded over the
//! payload in 8-byte little-endian chunks — the same mixing primitive the
//! rest of the workspace uses for content fingerprints, so the WAL adds
//! no second hashing scheme. A frame is accepted only if it is fully
//! present, its length is plausible, its checksum verifies, *and* its
//! payload decodes as a [`WalEvent`] with no trailing bytes.

use crate::codec::{put_u32, put_u64};
use crate::event::WalEvent;
use sieve_exec::hash::mix;

/// Fixed byte length of a frame header (length + sequence + checksum).
pub const HEADER_LEN: usize = 4 + 8 + 8;

/// Upper bound on a plausible payload length. Real frames are kilobytes;
/// the cap exists so a corrupted length prefix cannot make the resync
/// scanner treat half the file as one giant torn frame.
pub const MAX_PAYLOAD: usize = 1 << 28;

/// Seed of the frame checksum chain ("SIEVWALF" in ASCII).
const CHECKSUM_SEED: u64 = 0x5349_4556_5741_4C46;

/// Checksum of one frame: seeded with the sequence number and payload
/// length, folded over the payload in 8-byte LE chunks (the final partial
/// chunk zero-padded).
pub fn checksum(seq: u64, payload: &[u8]) -> u64 {
    let mut fp = mix(mix(CHECKSUM_SEED, seq), payload.len() as u64);
    for chunk in payload.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        fp = mix(fp, u64::from_le_bytes(word));
    }
    fp
}

/// Encodes one event as a complete frame with sequence number `seq`.
pub fn encode(seq: u64, event: &WalEvent) -> Vec<u8> {
    let mut payload = Vec::new();
    event.encode(&mut payload);
    assert!(
        payload.len() <= MAX_PAYLOAD,
        "event payload of {} bytes exceeds the frame cap",
        payload.len()
    );
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u64(&mut frame, seq);
    put_u64(&mut frame, checksum(seq, &payload));
    frame.extend_from_slice(&payload);
    frame
}

/// What [`parse_at`] found at a given byte offset.
#[derive(Debug)]
pub enum Parsed {
    /// A complete, checksum-verified, fully-decoded frame ending at `end`.
    Frame {
        /// The frame's sequence number.
        seq: u64,
        /// The decoded event.
        event: WalEvent,
        /// Byte offset one past the frame's last byte.
        end: usize,
    },
    /// The offset is exactly the end of the log: a clean EOF.
    Eof,
    /// The bytes at the offset do not form a valid frame (torn tail, bit
    /// flip, or garbage).
    Bad {
        /// What failed first.
        reason: String,
    },
}

/// Attempts to parse one frame starting at `offset`.
///
/// Never panics on any input; every malformation — torn header, torn
/// payload, implausible length, checksum mismatch, undecodable payload —
/// comes back as [`Parsed::Bad`].
pub fn parse_at(bytes: &[u8], offset: usize) -> Parsed {
    if offset == bytes.len() {
        return Parsed::Eof;
    }
    if offset + HEADER_LEN > bytes.len() {
        return Parsed::Bad {
            reason: format!(
                "torn frame header: {} bytes present, {HEADER_LEN} needed",
                bytes.len() - offset
            ),
        };
    }
    let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD {
        return Parsed::Bad {
            reason: format!("implausible payload length {len}"),
        };
    }
    let seq = u64::from_le_bytes(bytes[offset + 4..offset + 12].try_into().expect("8 bytes"));
    let stored = u64::from_le_bytes(bytes[offset + 12..offset + 20].try_into().expect("8 bytes"));
    let payload_start = offset + HEADER_LEN;
    let Some(end) = payload_start.checked_add(len).filter(|&e| e <= bytes.len()) else {
        return Parsed::Bad {
            reason: format!(
                "torn frame payload: {} of {len} bytes present",
                bytes.len() - payload_start
            ),
        };
    };
    let payload = &bytes[payload_start..end];
    if checksum(seq, payload) != stored {
        return Parsed::Bad {
            reason: format!("checksum mismatch in frame seq {seq}"),
        };
    }
    match WalEvent::decode(payload) {
        Ok(event) => Parsed::Frame { seq, event, end },
        Err(reason) => Parsed::Bad {
            reason: format!("checksummed payload failed to decode: {reason}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_simulator::store::{MetricId, RetentionPolicy};

    fn event() -> WalEvent {
        WalEvent::IngestBatch {
            tenant: "acme".into(),
            points: vec![(MetricId::new("web", "cpu"), 500, 1.5)],
            watermarks: vec![(MetricId::new("web", "cpu"), 0x1234)],
        }
    }

    #[test]
    fn frames_roundtrip_and_checksums_are_order_sensitive() {
        let frame = encode(7, &event());
        match parse_at(&frame, 0) {
            Parsed::Frame {
                seq,
                event: decoded,
                end,
            } => {
                assert_eq!(seq, 7);
                assert_eq!(decoded, event());
                assert_eq!(end, frame.len());
            }
            other => panic!("expected a frame, got {other:?}"),
        }
        // The same payload under a different sequence number has a
        // different checksum — a frame cannot be replayed out of place.
        let other = encode(8, &event());
        assert_ne!(frame[12..20], other[12..20]);
        assert!(matches!(parse_at(&frame, frame.len()), Parsed::Eof));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = encode(3, &event());
        for byte in 0..frame.len() {
            for bit in 0..8 {
                let mut torn = frame.clone();
                torn[byte] ^= 1 << bit;
                assert!(
                    matches!(parse_at(&torn, 0), Parsed::Bad { .. }),
                    "flip of byte {byte} bit {bit} must not verify"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let frame = encode(3, &event());
        // Truncation to zero bytes is a clean EOF (an empty log is valid);
        // every other prefix is a torn frame.
        assert!(matches!(parse_at(&frame[..0], 0), Parsed::Eof));
        for len in 1..frame.len() {
            assert!(
                matches!(parse_at(&frame[..len], 0), Parsed::Bad { .. }),
                "truncation to {len} bytes must not verify"
            );
        }
    }

    #[test]
    fn implausible_length_prefix_is_rejected() {
        let mut frame = encode(1, &event());
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        match parse_at(&frame, 0) {
            Parsed::Bad { reason } => assert!(reason.contains("implausible"), "{reason}"),
            other => panic!("expected Bad, got {other:?}"),
        }
    }

    #[test]
    fn admin_frames_roundtrip_too() {
        let admin = WalEvent::RetentionChanged {
            tenant: "acme".into(),
            retention: RetentionPolicy::windowed(32),
        };
        let frame = encode(1, &admin);
        assert!(matches!(parse_at(&frame, 0), Parsed::Frame { seq: 1, .. }));
    }
}
