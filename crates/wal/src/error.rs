//! Error type of the durability layer.

/// Everything that can go wrong appending to, snapshotting, or replaying
/// a write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A frame or snapshot failed structural or checksum verification.
    ///
    /// During log replay this is *not* fatal — [`crate::reader::scan_log`]
    /// degrades to the intact prefix and accounts the loss. It surfaces as
    /// an error only where corruption cannot be tolerated, e.g. a
    /// hand-decoded single frame.
    Corrupt {
        /// Byte offset of the corrupt structure inside its file.
        offset: u64,
        /// Human-readable description of the verification failure.
        reason: String,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal i/o error: {e}"),
            Self::Corrupt { offset, reason } => {
                write!(f, "wal corruption at byte {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Corrupt { .. } => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source_are_informative() {
        let io = WalError::from(std::io::Error::other("disk on fire"));
        assert!(io.to_string().contains("disk on fire"));
        assert!(io.source().is_some());

        let corrupt = WalError::Corrupt {
            offset: 42,
            reason: "bad checksum".to_string(),
        };
        assert!(corrupt.to_string().contains("byte 42"));
        assert!(corrupt.source().is_none());
    }
}
