//! The append side: group-committed, fsync-policied shard logs.
//!
//! A [`ShardWal`] frames events, buffers them in memory, and flushes the
//! whole batch with one media write on [`ShardWal::commit`] — classic
//! group commit, so a burst of per-tenant appends inside one serving
//! operation costs one syscall, not one per event. The durability/latency
//! trade-off is the [`FsyncPolicy`]: sync every commit, every N frames,
//! or never (leaving flushing to the OS — crash-unsafe but fast, fine
//! for tests and benchmarks).
//!
//! All byte traffic goes through the [`WalMedia`] trait so the
//! fault-injection harness ([`crate::failpoint::FailpointFs`]) can sit
//! between the writer and the file and kill or corrupt the stream at a
//! deterministic byte offset.

use crate::event::WalEvent;
use crate::frame;
use crate::Result;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// When a shard log issues `fsync` after flushing buffered frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync on every commit: no acknowledged event is ever lost to a
    /// crash (torn *unacknowledged* tails remain possible, and recovery
    /// handles them).
    Always,
    /// Sync once at least this many frames have been flushed since the
    /// last sync: bounded loss, amortized cost.
    EveryN(u64),
    /// Never sync; the OS flushes when it pleases. Crash-unsafe, but the
    /// log still protects against clean-process-kill and is the right
    /// mode for benchmarks.
    Never,
}

/// Destination of a shard log's bytes. `File` is the real thing; the
/// fault-injection wrapper and in-memory test media implement it too.
pub trait WalMedia: Send + std::fmt::Debug {
    /// Appends bytes at the end of the media.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Forces everything appended so far to stable storage.
    fn sync(&mut self) -> std::io::Result<()>;
}

/// File-backed media: appends via `write_all`, syncs via `sync_data`.
#[derive(Debug)]
pub struct FileMedia {
    file: File,
}

impl FileMedia {
    /// Opens (creating if absent) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open failure.
    pub fn open_append(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { file })
    }
}

impl WalMedia for FileMedia {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

/// The append handle of one shard's log: frames events, assigns strictly
/// increasing sequence numbers, group-commits buffered frames.
#[derive(Debug)]
pub struct ShardWal {
    media: Box<dyn WalMedia>,
    /// Sequence number the next appended event receives (starts at 1).
    next_seq: u64,
    /// Framed-but-not-yet-flushed bytes.
    pending: Vec<u8>,
    /// Frames flushed since the last sync, for [`FsyncPolicy::EveryN`].
    frames_since_sync: u64,
    fsync: FsyncPolicy,
}

impl ShardWal {
    /// Wraps `media`, continuing the sequence at `next_seq` (1 for a
    /// fresh log; recovery passes one past the last replayed frame).
    pub fn new(media: Box<dyn WalMedia>, next_seq: u64, fsync: FsyncPolicy) -> Self {
        Self {
            media,
            next_seq: next_seq.max(1),
            pending: Vec::new(),
            frames_since_sync: 0,
            fsync,
        }
    }

    /// Opens a file-backed shard log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open failure.
    pub fn open(path: &Path, next_seq: u64, fsync: FsyncPolicy) -> Result<Self> {
        Ok(Self::new(
            Box::new(FileMedia::open_append(path)?),
            next_seq,
            fsync,
        ))
    }

    /// Frames `event`, assigns it the next sequence number, and buffers
    /// it for the next [`ShardWal::commit`]. Returns the assigned
    /// sequence number. Nothing touches the media yet.
    pub fn append(&mut self, event: &WalEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.extend_from_slice(&frame::encode(seq, event));
        seq
    }

    /// Flushes every buffered frame with one media write, then syncs
    /// according to the [`FsyncPolicy`]. A commit with nothing pending is
    /// free.
    ///
    /// # Errors
    ///
    /// Propagates media failures. The buffer is drained before the write
    /// is attempted, so a failed commit does not double-write on retry —
    /// recovery's checksum scan handles whatever fraction reached disk.
    pub fn commit(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let frames = self.pending_frames();
        let bytes = std::mem::take(&mut self.pending);
        self.media.append(&bytes)?;
        self.frames_since_sync += frames;
        let should_sync = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.frames_since_sync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if should_sync {
            self.media.sync()?;
            self.frames_since_sync = 0;
        }
        Ok(())
    }

    /// Sequence number of the last appended event (0 if none yet).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Sequence number the next appended event will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of buffered-but-uncommitted frames (for tests and stats).
    fn pending_frames(&self) -> u64 {
        // Frames are variable-length; count by walking the buffer. The
        // buffer only ever holds frames this writer encoded, so header
        // arithmetic is safe.
        let mut count = 0u64;
        let mut pos = 0usize;
        while pos < self.pending.len() {
            let len = u32::from_le_bytes(self.pending[pos..pos + 4].try_into().expect("4 bytes"))
                as usize;
            pos += frame::HEADER_LEN + len;
            count += 1;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::scan_log;
    use sieve_simulator::store::MetricId;
    use std::sync::{Arc, Mutex};

    /// Shared in-memory media for unit tests: the "disk" is a Vec the
    /// test can inspect, and syncs are counted.
    #[derive(Debug, Clone, Default)]
    pub(crate) struct MemMedia {
        pub bytes: Arc<Mutex<Vec<u8>>>,
        pub syncs: Arc<Mutex<u64>>,
    }

    impl WalMedia for MemMedia {
        fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            self.bytes.lock().unwrap().extend_from_slice(bytes);
            Ok(())
        }

        fn sync(&mut self) -> std::io::Result<()> {
            *self.syncs.lock().unwrap() += 1;
            Ok(())
        }
    }

    fn ingest(t: u64) -> WalEvent {
        WalEvent::IngestBatch {
            tenant: "acme".into(),
            points: vec![(MetricId::new("web", "cpu"), t, t as f64)],
            watermarks: vec![(MetricId::new("web", "cpu"), t)],
        }
    }

    #[test]
    fn group_commit_writes_all_buffered_frames_at_once() {
        let media = MemMedia::default();
        let mut wal = ShardWal::new(Box::new(media.clone()), 1, FsyncPolicy::Always);
        assert_eq!(wal.append(&ingest(500)), 1);
        assert_eq!(wal.append(&ingest(1000)), 2);
        assert_eq!(wal.last_seq(), 2);
        assert!(
            media.bytes.lock().unwrap().is_empty(),
            "nothing flushed yet"
        );

        wal.commit().unwrap();
        let on_disk = media.bytes.lock().unwrap().clone();
        let scanned = scan_log(&on_disk);
        assert!(scanned.corruption.is_none());
        assert_eq!(scanned.last_seq(), Some(2));
        assert_eq!(*media.syncs.lock().unwrap(), 1);

        // An empty commit is free: no write, no sync.
        wal.commit().unwrap();
        assert_eq!(*media.syncs.lock().unwrap(), 1);
    }

    #[test]
    fn fsync_policies_control_sync_cadence() {
        for (policy, commits, expected_syncs) in [
            (FsyncPolicy::Always, 3, 3),
            (FsyncPolicy::EveryN(2), 3, 1),
            (FsyncPolicy::Never, 3, 0),
        ] {
            let media = MemMedia::default();
            let mut wal = ShardWal::new(Box::new(media.clone()), 1, policy);
            for i in 0..commits {
                wal.append(&ingest(500 * (i + 1)));
                wal.commit().unwrap();
            }
            assert_eq!(
                *media.syncs.lock().unwrap(),
                expected_syncs,
                "policy {policy:?}"
            );
        }
    }

    #[test]
    fn recovery_sequence_continues_where_the_log_left_off() {
        let media = MemMedia::default();
        let mut wal = ShardWal::new(Box::new(media.clone()), 43, FsyncPolicy::Never);
        assert_eq!(wal.last_seq(), 42);
        assert_eq!(wal.append(&ingest(500)), 43);
        assert_eq!(wal.next_seq(), 44);

        // `new` clamps to 1: sequence numbers start at 1 by contract.
        let fresh = ShardWal::new(Box::new(MemMedia::default()), 0, FsyncPolicy::Never);
        assert_eq!(fresh.next_seq(), 1);
        assert_eq!(fresh.last_seq(), 0);
    }

    #[test]
    fn file_media_roundtrips_through_a_real_file() {
        let dir = std::env::temp_dir().join(format!("sieve-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-shard-0.log");
        let _ = std::fs::remove_file(&path);

        let mut wal = ShardWal::open(&path, 1, FsyncPolicy::Always).unwrap();
        wal.append(&ingest(500));
        wal.append(&ingest(1000));
        wal.commit().unwrap();
        drop(wal);

        let bytes = std::fs::read(&path).unwrap();
        let scanned = scan_log(&bytes);
        assert!(scanned.corruption.is_none());
        assert_eq!(scanned.applied.len(), 2);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }
}
