//! Deterministic fault injection for the durability layer.
//!
//! [`FailpointFs`] wraps any [`WalMedia`] and corrupts the byte stream on
//! its way through, exactly as configured and perfectly reproducibly:
//!
//! * **Kill at offset** — the writer "process" dies mid-write: bytes up
//!   to the configured absolute offset reach the inner media, the rest
//!   never do, and every later operation fails. This is the torn-write /
//!   power-cut model.
//! * **Bit flips** — chosen bits at chosen absolute offsets are XOR-ed in
//!   flight. This is the silent-disk-corruption model.
//!
//! Because the offsets are plain numbers, a property test can derive them
//! from a seeded [`sieve_exec::hash::splitmix64`] stream and replay the
//! identical crash thousands of times — the harness demanded by the
//! recovery acceptance criterion: *never a panic, never a silently wrong
//! model*.

use crate::writer::WalMedia;

/// A [`WalMedia`] wrapper that kills the write stream at a configured
/// byte offset and flips configured bits in flight.
#[derive(Debug)]
pub struct FailpointFs {
    inner: Box<dyn WalMedia>,
    /// Absolute byte offset of the next byte to be written.
    written: u64,
    /// Absolute offset at which the writer dies, if configured.
    kill_at: Option<u64>,
    /// Whether the kill already happened; all later operations fail.
    killed: bool,
    /// `(absolute offset, xor mask)` corruptions applied in flight.
    bit_flips: Vec<(u64, u8)>,
}

impl FailpointFs {
    /// Wraps `inner` with no faults configured (a transparent proxy).
    pub fn new(inner: Box<dyn WalMedia>) -> Self {
        Self {
            inner,
            written: 0,
            kill_at: None,
            killed: false,
            bit_flips: Vec::new(),
        }
    }

    /// Configures the writer to die once `offset` total bytes have
    /// reached the inner media: the write crossing the offset is
    /// delivered only up to it (a torn write), and every later operation
    /// fails.
    pub fn kill_at(mut self, offset: u64) -> Self {
        self.kill_at = Some(offset);
        self
    }

    /// XORs `mask` into the byte at absolute stream offset `offset` as it
    /// passes through (silent corruption: the write "succeeds").
    pub fn flip_bits(mut self, offset: u64, mask: u8) -> Self {
        self.bit_flips.push((offset, mask));
        self
    }

    /// Total bytes delivered to the inner media so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Whether the configured kill has fired.
    pub fn is_killed(&self) -> bool {
        self.killed
    }

    fn killed_error() -> std::io::Error {
        std::io::Error::new(std::io::ErrorKind::BrokenPipe, "failpoint: writer killed")
    }

    fn corrupted(&self, bytes: &[u8], deliver: usize) -> Vec<u8> {
        let mut out = bytes[..deliver].to_vec();
        for &(offset, mask) in &self.bit_flips {
            if let Some(rel) = offset.checked_sub(self.written) {
                if (rel as usize) < out.len() {
                    out[rel as usize] ^= mask;
                }
            }
        }
        out
    }
}

impl WalMedia for FailpointFs {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if self.killed {
            return Err(Self::killed_error());
        }
        let deliver = match self.kill_at {
            Some(kill_at) if kill_at < self.written + bytes.len() as u64 => {
                self.killed = true;
                (kill_at - self.written) as usize
            }
            _ => bytes.len(),
        };
        let out = self.corrupted(bytes, deliver);
        self.inner.append(&out)?;
        self.written += deliver as u64;
        if self.killed {
            Err(Self::killed_error())
        } else {
            Ok(())
        }
    }

    fn sync(&mut self) -> std::io::Result<()> {
        if self.killed {
            return Err(Self::killed_error());
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[derive(Debug, Clone, Default)]
    struct MemMedia {
        bytes: Arc<Mutex<Vec<u8>>>,
    }

    impl WalMedia for MemMedia {
        fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            self.bytes.lock().unwrap().extend_from_slice(bytes);
            Ok(())
        }

        fn sync(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn transparent_without_configured_faults() {
        let media = MemMedia::default();
        let mut fp = FailpointFs::new(Box::new(media.clone()));
        fp.append(b"hello").unwrap();
        fp.append(b" world").unwrap();
        fp.sync().unwrap();
        assert_eq!(*media.bytes.lock().unwrap(), b"hello world");
        assert_eq!(fp.written(), 11);
        assert!(!fp.is_killed());
    }

    #[test]
    fn kill_tears_the_crossing_write_and_fails_everything_after() {
        let media = MemMedia::default();
        let mut fp = FailpointFs::new(Box::new(media.clone())).kill_at(7);
        fp.append(b"hello").unwrap();
        let err = fp.append(b" world").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        assert_eq!(*media.bytes.lock().unwrap(), b"hello w", "torn mid-write");
        assert!(fp.is_killed());
        assert!(fp.append(b"x").is_err(), "dead writers stay dead");
        assert!(fp.sync().is_err());

        // A kill exactly on a write boundary delivers nothing of the
        // next write.
        let media = MemMedia::default();
        let mut fp = FailpointFs::new(Box::new(media.clone())).kill_at(0);
        assert!(fp.append(b"abc").is_err());
        assert!(media.bytes.lock().unwrap().is_empty());
    }

    #[test]
    fn bit_flips_corrupt_in_flight_silently() {
        let media = MemMedia::default();
        let mut fp = FailpointFs::new(Box::new(media.clone()))
            .flip_bits(1, 0x01)
            .flip_bits(6, 0x80);
        fp.append(b"abc").unwrap();
        fp.append(b"defg").unwrap();
        let on_disk = media.bytes.lock().unwrap().clone();
        assert_eq!(on_disk[0], b'a');
        assert_eq!(on_disk[1], b'b' ^ 0x01);
        assert_eq!(on_disk[6], b'g' ^ 0x80);
        assert_eq!(fp.written(), 7, "flipped writes still count as written");
    }

    #[test]
    fn kill_and_flip_compose() {
        // Flip a bit inside the surviving prefix of a torn write.
        let media = MemMedia::default();
        let mut fp = FailpointFs::new(Box::new(media.clone()))
            .kill_at(4)
            .flip_bits(2, 0xFF);
        assert!(fp.append(b"abcdef").is_err());
        let on_disk = media.bytes.lock().unwrap().clone();
        assert_eq!(on_disk.len(), 4);
        assert_eq!(on_disk[2], b'c' ^ 0xFF);
    }
}
