//! Log scanning: the read half of crash recovery.
//!
//! [`scan_log`] walks a shard log byte-for-byte and splits it into the
//! *intact prefix* — the longest run of checksum-verified frames with
//! strictly increasing sequence numbers from the start of the file — and,
//! after the first bad frame, the *resynchronized suffix*: frames the
//! scanner can still locate by sliding forward one byte at a time and
//! re-validating headers. Resynchronized frames are **never applied**
//! (the events between them are gone, so applying them could violate the
//! ordering the fingerprint watermarks were computed against); they exist
//! so recovery can report *exactly* which tenants lost *how many* events
//! and points, instead of a vague "the tail is gone".

use crate::event::WalEvent;
use crate::frame::{parse_at, Parsed};

/// The outcome of scanning one shard log.
#[derive(Debug)]
pub struct ScannedLog {
    /// The intact prefix: checksum-verified frames with strictly
    /// increasing sequence numbers, in log order. These are safe to
    /// replay.
    pub applied: Vec<(u64, WalEvent)>,
    /// Present iff the log did not end cleanly after the intact prefix.
    pub corruption: Option<LogCorruption>,
}

impl ScannedLog {
    /// Sequence number of the last intact frame (`None` for an empty
    /// prefix).
    pub fn last_seq(&self) -> Option<u64> {
        self.applied.last().map(|(seq, _)| *seq)
    }
}

/// Everything known about the corrupt region of a scanned log.
#[derive(Debug)]
pub struct LogCorruption {
    /// Byte offset of the first bad frame.
    pub offset: u64,
    /// What failed first (checksum mismatch, torn header, …).
    pub reason: String,
    /// Frames recovered *after* the bad region by resynchronization —
    /// structurally valid and checksummed, but unsafe to apply because
    /// the events before them are missing. Recovery accounts them as the
    /// per-tenant lost suffix.
    pub resynced: Vec<(u64, WalEvent)>,
    /// Bytes of the corrupt region not accounted for by resynchronized
    /// frames (the unparseable wreckage itself).
    pub lost_bytes: u64,
}

/// Scans a shard log into its intact prefix and (if corrupt) the
/// accounted loss. Never fails and never panics: arbitrary garbage input
/// degrades to an empty prefix with everything accounted as lost.
pub fn scan_log(bytes: &[u8]) -> ScannedLog {
    let mut applied: Vec<(u64, WalEvent)> = Vec::new();
    let mut offset = 0usize;
    loop {
        match parse_at(bytes, offset) {
            Parsed::Eof => {
                return ScannedLog {
                    applied,
                    corruption: None,
                }
            }
            Parsed::Frame { seq, event, end } => {
                let monotone = applied.last().map_or(true, |&(last, _)| seq > last);
                if monotone {
                    applied.push((seq, event));
                    offset = end;
                    continue;
                }
                let corruption = resync(
                    bytes,
                    offset,
                    format!(
                        "non-monotone sequence {seq} after {}",
                        applied.last().map(|&(last, _)| last).unwrap_or(0)
                    ),
                    applied.last().map(|&(last, _)| last),
                );
                return ScannedLog {
                    applied,
                    corruption: Some(corruption),
                };
            }
            Parsed::Bad { reason } => {
                let corruption = resync(bytes, offset, reason, applied.last().map(|&(s, _)| s));
                return ScannedLog {
                    applied,
                    corruption: Some(corruption),
                };
            }
        }
    }
}

/// Slides forward from one byte past the corruption, collecting every
/// later frame that still verifies and keeps the sequence strictly
/// monotone. The slide resumes after each recovered frame, so several
/// corrupt regions still account most of the surviving frames.
fn resync(
    bytes: &[u8],
    corrupt_at: usize,
    reason: String,
    mut last_seq: Option<u64>,
) -> LogCorruption {
    let mut resynced: Vec<(u64, WalEvent)> = Vec::new();
    let mut resynced_bytes = 0usize;
    let mut pos = corrupt_at + 1;
    while pos < bytes.len() {
        match parse_at(bytes, pos) {
            Parsed::Frame { seq, event, end } if last_seq.map_or(true, |last| seq > last) => {
                resynced.push((seq, event));
                resynced_bytes += end - pos;
                last_seq = Some(seq);
                pos = end;
            }
            _ => pos += 1,
        }
    }
    LogCorruption {
        offset: corrupt_at as u64,
        reason,
        resynced,
        lost_bytes: (bytes.len() - corrupt_at - resynced_bytes) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode;
    use sieve_simulator::store::{MetricId, RetentionPolicy};

    fn ingest(tenant: &str, t: u64) -> WalEvent {
        WalEvent::IngestBatch {
            tenant: tenant.into(),
            points: vec![(MetricId::new("web", "cpu"), t, t as f64)],
            watermarks: vec![(MetricId::new("web", "cpu"), t ^ 0xABCD)],
        }
    }

    fn log_of(events: &[(u64, WalEvent)]) -> Vec<u8> {
        let mut bytes = Vec::new();
        for (seq, event) in events {
            bytes.extend_from_slice(&encode(*seq, event));
        }
        bytes
    }

    #[test]
    fn clean_log_scans_fully() {
        let events = vec![
            (1, ingest("a", 500)),
            (2, ingest("b", 500)),
            (3, ingest("a", 1000)),
        ];
        let scanned = scan_log(&log_of(&events));
        assert!(scanned.corruption.is_none());
        assert_eq!(scanned.applied, events);
        assert_eq!(scanned.last_seq(), Some(3));

        let empty = scan_log(&[]);
        assert!(empty.applied.is_empty() && empty.corruption.is_none());
        assert_eq!(empty.last_seq(), None);
    }

    #[test]
    fn torn_tail_keeps_the_prefix_and_counts_the_wreckage() {
        let events = vec![(1, ingest("a", 500)), (2, ingest("a", 1000))];
        let mut bytes = log_of(&events);
        let torn = 7;
        bytes.truncate(bytes.len() - torn);
        let scanned = scan_log(&bytes);
        assert_eq!(scanned.applied, events[..1]);
        let corruption = scanned.corruption.expect("the tail is torn");
        assert!(
            corruption.resynced.is_empty(),
            "nothing valid after a torn tail"
        );
        assert_eq!(
            corruption.offset as usize + corruption.lost_bytes as usize,
            bytes.len()
        );
    }

    #[test]
    fn mid_file_bit_flip_resyncs_to_the_surviving_frames() {
        let events = vec![
            (1, ingest("a", 500)),
            (2, ingest("b", 500)),
            (3, ingest("a", 1000)),
            (4, ingest("b", 1000)),
        ];
        let mut bytes = log_of(&events);
        // Flip one payload bit inside frame 2.
        let frame1_len = encode(1, &events[0].1).len();
        bytes[frame1_len + 25] ^= 0x10;
        let scanned = scan_log(&bytes);
        assert_eq!(scanned.applied, events[..1], "prefix stops at the flip");
        let corruption = scanned.corruption.expect("flip detected");
        assert_eq!(corruption.offset as usize, frame1_len);
        assert_eq!(
            corruption.resynced,
            events[2..],
            "later frames are found but not applied"
        );
        assert_eq!(
            corruption.lost_bytes as usize,
            encode(2, &events[1].1).len(),
            "exactly the flipped frame is wreckage"
        );
    }

    #[test]
    fn non_monotone_sequences_stop_the_prefix() {
        // A stale frame (seq 1 again) after seq 2: replaying it would
        // apply events in an order the watermarks never saw.
        let events = vec![
            (1, ingest("a", 500)),
            (2, ingest("a", 1000)),
            (1, ingest("a", 1500)),
        ];
        let scanned = scan_log(&log_of(&events));
        assert_eq!(scanned.applied, events[..2]);
        let corruption = scanned.corruption.expect("non-monotone detected");
        assert!(
            corruption.reason.contains("non-monotone"),
            "{}",
            corruption.reason
        );
    }

    #[test]
    fn arbitrary_garbage_degrades_to_an_empty_prefix() {
        let garbage: Vec<u8> = (0..256u32).map(|i| (i * 37 % 251) as u8).collect();
        let scanned = scan_log(&garbage);
        assert!(scanned.applied.is_empty());
        let corruption = scanned.corruption.expect("garbage is corrupt");
        assert_eq!(corruption.lost_bytes, 256);

        // An admin event buried in garbage is resynchronized, not applied.
        let mut bytes = vec![0xFFu8; 13];
        bytes.extend_from_slice(&encode(
            5,
            &WalEvent::RetentionChanged {
                tenant: "a".into(),
                retention: RetentionPolicy::windowed(8),
            },
        ));
        let scanned = scan_log(&bytes);
        assert!(scanned.applied.is_empty());
        let corruption = scanned.corruption.expect("prefix is garbage");
        assert_eq!(corruption.resynced.len(), 1);
        assert_eq!(corruption.lost_bytes, 13);
    }
}
