//! Cross-thread group commit: one leader write for many ingests.
//!
//! [`crate::writer::ShardWal`] group-commits within one caller — a burst
//! of appends inside one serving operation becomes one write — but it
//! lives behind a mutex, so *concurrent* callers serialize end to end
//! and each pays its own write + fsync. [`GroupCommitLog`] lifts group
//! commit across threads:
//!
//! 1. **Stage.** Every caller encodes its payload outside any lock, then
//!    takes a short staging lock to get a sequence number, checksum the
//!    frame and append it to the shared staging buffer. Sequence
//!    assignment and frame bytes are produced under the same lock, so
//!    the in-buffer order always equals the sequence order (recovery
//!    requires in-file monotonicity).
//! 2. **Elect.** The caller then calls [`GroupCommitLog::commit_through`]
//!    with its sequence number. Whoever wins a `try_lock` on the
//!    committer becomes the *leader*: it swaps the whole staging buffer
//!    out (draining every frame staged so far, its own and everybody
//!    else's), performs **one** media write and at most one fsync per
//!    [`FsyncPolicy`], and publishes the outcome.
//! 3. **Ride.** Losers are *followers*: they block until the committed
//!    watermark passes their sequence number. Their frames reach disk in
//!    the leader's write — zero syscalls on their thread.
//!
//! The byte stream an interleaving of staged events produces is exactly
//! what a [`ShardWal`] would have written for the same event order
//! (asserted by unit test), so the frame format, the recovery scanner
//! and every PR-8 crash-safety property are untouched.
//!
//! **Failure semantics** mirror `ShardWal`: the staging buffer is
//! drained *before* the write is attempted, so a failed media write
//! drops the drained frames (recovery's checksum scan handles whatever
//! fraction reached disk) and retrying an ingest is safe. A leader
//! failure is reported to every rider of that write via a recorded
//! failed-sequence range; the committed watermark still advances past
//! the range, so later commits are not poisoned and no follower hangs.
//!
//! [`ShardWal`]: crate::writer::ShardWal
//! [`FsyncPolicy`]: crate::writer::FsyncPolicy

use crate::event::WalEvent;
use crate::frame;
use crate::writer::{FileMedia, FsyncPolicy, WalMedia};
use crate::Result;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Failed-range history cap. Ranges are only recorded on media errors;
/// the cap exists so persistently failing media cannot grow the history
/// without bound. A waiter whose failed range was pruned past this cap
/// observes success — acceptable, because by then the error has been
/// reported to every rider of the failed write itself.
const MAX_FAILED_RANGES: usize = 1024;

/// Frames staged but not yet drained by a leader.
#[derive(Debug)]
struct Staging {
    /// Sequence number the next staged frame receives (≥ 1).
    next_seq: u64,
    /// Encoded frames in sequence order, swapped out whole by a leader.
    buf: Vec<u8>,
    /// Number of frames currently in `buf` (for fsync cadence).
    frames: u64,
}

/// The media side, owned by whichever thread currently leads.
#[derive(Debug)]
struct Committer {
    media: Box<dyn WalMedia>,
    /// Frames written since the last sync ([`FsyncPolicy::EveryN`]
    /// counts across leader writes, exactly as `ShardWal` counts across
    /// commits).
    frames_since_sync: u64,
    fsync: FsyncPolicy,
    /// Recycled staging buffer: the leader swaps this (empty) vector in
    /// when draining, so steady-state staging allocates nothing.
    spare: Vec<u8>,
}

/// Commit progress, shared with waiting followers.
#[derive(Debug)]
struct Progress {
    /// Every frame with `seq <= committed_seq` has a known outcome.
    committed_seq: u64,
    /// High-water sequence a leader has drained from staging. A frame at
    /// or below this mark is owned by an active (or finished) leader
    /// whose outcome will be published — waiting on the condvar is safe.
    drained_seq: u64,
    /// Inclusive `(first, last, reason)` ranges whose media write
    /// failed. `committed_seq` advances past them (non-sticky).
    failed: Vec<(u64, u64, String)>,
}

impl Progress {
    fn failure_for(&self, seq: u64) -> Option<&str> {
        self.failed
            .iter()
            .find(|(first, last, _)| (*first..=*last).contains(&seq))
            .map(|(_, _, reason)| reason.as_str())
    }
}

/// Monotone counters describing a log's commit traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupCommitStats {
    /// Frames durably committed (or failed — frames a leader drained).
    pub frames_committed: u64,
    /// Media writes leaders performed.
    pub leader_writes: u64,
    /// Frames that reached the media in *another* thread's write:
    /// `frames_committed - leader_writes`. The cross-thread coalescing
    /// payoff.
    pub commits_coalesced: u64,
    /// `fsync` calls issued.
    pub fsync_calls: u64,
    /// Total nanoseconds followers spent blocked on a leader.
    pub commit_wait_ns_total: u64,
}

/// A shard log with cross-thread group commit. See the module docs for
/// the stage → elect → ride protocol.
#[derive(Debug)]
pub struct GroupCommitLog {
    staging: Mutex<Staging>,
    committer: Mutex<Committer>,
    progress: Mutex<Progress>,
    committed: Condvar,
    frames_committed: AtomicU64,
    leader_writes: AtomicU64,
    fsync_calls: AtomicU64,
    commit_wait_ns_total: AtomicU64,
}

impl GroupCommitLog {
    /// Wraps `media`, continuing the sequence at `next_seq` (1 for a
    /// fresh log; recovery passes one past the last replayed frame).
    pub fn new(media: Box<dyn WalMedia>, next_seq: u64, fsync: FsyncPolicy) -> Self {
        let next_seq = next_seq.max(1);
        Self {
            staging: Mutex::new(Staging {
                next_seq,
                buf: Vec::new(),
                frames: 0,
            }),
            committer: Mutex::new(Committer {
                media,
                frames_since_sync: 0,
                fsync,
                spare: Vec::new(),
            }),
            progress: Mutex::new(Progress {
                committed_seq: next_seq - 1,
                drained_seq: next_seq - 1,
                failed: Vec::new(),
            }),
            committed: Condvar::new(),
            frames_committed: AtomicU64::new(0),
            leader_writes: AtomicU64::new(0),
            fsync_calls: AtomicU64::new(0),
            commit_wait_ns_total: AtomicU64::new(0),
        }
    }

    /// Opens a file-backed group-commit log at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying open failure.
    pub fn open(path: &Path, next_seq: u64, fsync: FsyncPolicy) -> Result<Self> {
        Ok(Self::new(
            Box::new(FileMedia::open_append(path)?),
            next_seq,
            fsync,
        ))
    }

    /// Encodes `event` and stages it. Convenience wrapper over
    /// [`GroupCommitLog::stage_encoded`] for admin-path events; the
    /// ingest hot path encodes into a pooled scratch buffer instead.
    pub fn stage(&self, event: &WalEvent) -> u64 {
        let mut payload = Vec::new();
        event.encode(&mut payload);
        self.stage_encoded(&payload)
    }

    /// Stages one already-encoded event payload: assigns the next
    /// sequence number, frames and checksums the payload, and appends
    /// the frame to the staging buffer. Returns the assigned sequence
    /// number — pass it to [`GroupCommitLog::commit_through`] to make it
    /// durable. The staging lock is held only for the header arithmetic
    /// and two buffer appends.
    pub fn stage_encoded(&self, payload: &[u8]) -> u64 {
        assert!(
            payload.len() <= frame::MAX_PAYLOAD,
            "event payload of {} bytes exceeds the frame cap",
            payload.len()
        );
        let mut staging = self.staging.lock().expect("wal staging poisoned");
        let seq = staging.next_seq;
        staging.next_seq += 1;
        staging.buf.reserve(frame::HEADER_LEN + payload.len());
        staging
            .buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        staging.buf.extend_from_slice(&seq.to_le_bytes());
        staging
            .buf
            .extend_from_slice(&frame::checksum(seq, payload).to_le_bytes());
        staging.buf.extend_from_slice(payload);
        staging.frames += 1;
        seq
    }

    /// Blocks until the frame staged as `seq` is committed (written, and
    /// synced per policy) — by this thread as an elected leader, or by
    /// riding another leader's write.
    ///
    /// # Errors
    ///
    /// Returns the media error of the write that covered `seq`, on every
    /// thread that staged into that write. Later commits are unaffected
    /// (the failure is not sticky); the failed frames are dropped and
    /// retrying the ingest is safe.
    pub fn commit_through(&self, seq: u64) -> Result<()> {
        loop {
            {
                let progress = self.progress.lock().expect("wal progress poisoned");
                if let Some(reason) = progress.failure_for(seq) {
                    return Err(std::io::Error::other(reason.to_string()).into());
                }
                if progress.committed_seq >= seq {
                    return Ok(());
                }
            }
            if let Ok(mut committer) = self.committer.try_lock() {
                self.lead(&mut committer);
                continue;
            }
            // Follower: wait only while some leader owns our frame;
            // otherwise re-race for leadership (the active leader drained
            // before we staged, so nobody else will commit us).
            let started = Instant::now();
            let mut progress = self.progress.lock().expect("wal progress poisoned");
            while progress.committed_seq < seq
                && progress.failure_for(seq).is_none()
                && progress.drained_seq >= seq
            {
                progress = self
                    .committed
                    .wait(progress)
                    .expect("wal progress poisoned");
            }
            drop(progress);
            let waited = started.elapsed().as_nanos() as u64;
            if waited > 0 {
                self.commit_wait_ns_total
                    .fetch_add(waited, Ordering::Relaxed);
            }
            std::thread::yield_now();
        }
    }

    /// Drains and commits everything staged so far (the snapshot path's
    /// quiesce barrier).
    ///
    /// # Errors
    ///
    /// As [`GroupCommitLog::commit_through`].
    pub fn commit_all(&self) -> Result<()> {
        let staged_through = {
            let staging = self.staging.lock().expect("wal staging poisoned");
            staging.next_seq - 1
        };
        if staged_through == 0 {
            return Ok(());
        }
        self.commit_through(staged_through)
    }

    /// One leader turn: drain the staging buffer, write it with one
    /// media call, sync per policy, publish the outcome.
    fn lead(&self, committer: &mut Committer) {
        let (mut bytes, frames, staged_through) = {
            let mut staging = self.staging.lock().expect("wal staging poisoned");
            if staging.frames == 0 {
                return;
            }
            let spare = std::mem::take(&mut committer.spare);
            let bytes = std::mem::replace(&mut staging.buf, spare);
            let frames = staging.frames;
            staging.frames = 0;
            (bytes, frames, staging.next_seq - 1)
        };
        // Publish ownership of the drained range before the (slow) write
        // so followers in it park on the condvar instead of spinning.
        {
            let mut progress = self.progress.lock().expect("wal progress poisoned");
            progress.drained_seq = progress.drained_seq.max(staged_through);
        }
        let outcome = self.write_and_sync(committer, &bytes);
        self.leader_writes.fetch_add(1, Ordering::Relaxed);
        self.frames_committed.fetch_add(frames, Ordering::Relaxed);
        {
            let mut progress = self.progress.lock().expect("wal progress poisoned");
            let first = progress.committed_seq + 1;
            if let Err(error) = outcome {
                progress
                    .failed
                    .push((first, staged_through, error.to_string()));
                let excess = progress.failed.len().saturating_sub(MAX_FAILED_RANGES);
                if excess > 0 {
                    progress.failed.drain(..excess);
                }
            }
            // The watermark advances even over a failed range: the
            // drained frames are gone either way, and followers of later
            // writes must not block behind a dead range.
            progress.committed_seq = staged_through;
            self.committed.notify_all();
        }
        bytes.clear();
        committer.spare = bytes;
    }

    /// The media half of a leader turn; mirrors `ShardWal::commit`.
    fn write_and_sync(&self, committer: &mut Committer, bytes: &[u8]) -> std::io::Result<()> {
        committer.media.append(bytes)?;
        committer.frames_since_sync += {
            let mut count = 0u64;
            let mut pos = 0usize;
            while pos < bytes.len() {
                let len =
                    u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
                pos += frame::HEADER_LEN + len;
                count += 1;
            }
            count
        };
        let should_sync = match committer.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => committer.frames_since_sync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if should_sync {
            committer.media.sync()?;
            committer.frames_since_sync = 0;
            self.fsync_calls.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Sequence number of the last staged event (0 if none yet).
    pub fn last_seq(&self) -> u64 {
        self.staging.lock().expect("wal staging poisoned").next_seq - 1
    }

    /// Sequence number the next staged event will receive.
    pub fn next_seq(&self) -> u64 {
        self.staging.lock().expect("wal staging poisoned").next_seq
    }

    /// Snapshot of the log's commit-traffic counters.
    pub fn stats(&self) -> GroupCommitStats {
        let frames_committed = self.frames_committed.load(Ordering::Relaxed);
        let leader_writes = self.leader_writes.load(Ordering::Relaxed);
        GroupCommitStats {
            frames_committed,
            leader_writes,
            commits_coalesced: frames_committed.saturating_sub(leader_writes),
            fsync_calls: self.fsync_calls.load(Ordering::Relaxed),
            commit_wait_ns_total: self.commit_wait_ns_total.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::scan_log;
    use crate::writer::ShardWal;
    use sieve_simulator::store::MetricId;
    use std::io;
    use std::sync::{Arc, Barrier};

    /// Shared in-memory media: same shape as the writer tests', plus a
    /// failure latch.
    #[derive(Debug, Clone, Default)]
    struct MemMedia {
        bytes: Arc<Mutex<Vec<u8>>>,
        syncs: Arc<Mutex<u64>>,
        appends: Arc<Mutex<u64>>,
        fail_next_append: Arc<Mutex<bool>>,
    }

    impl WalMedia for MemMedia {
        fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
            let mut fail = self.fail_next_append.lock().unwrap();
            if *fail {
                *fail = false;
                return Err(io::Error::other("injected append failure"));
            }
            drop(fail);
            *self.appends.lock().unwrap() += 1;
            self.bytes.lock().unwrap().extend_from_slice(bytes);
            Ok(())
        }

        fn sync(&mut self) -> io::Result<()> {
            *self.syncs.lock().unwrap() += 1;
            Ok(())
        }
    }

    fn ingest(t: u64) -> WalEvent {
        WalEvent::IngestBatch {
            tenant: "acme".into(),
            points: vec![(MetricId::new("web", "cpu"), t, t as f64)],
            watermarks: vec![(MetricId::new("web", "cpu"), t)],
        }
    }

    #[test]
    fn byte_stream_equals_shard_wal_for_the_same_event_order() {
        let events: Vec<WalEvent> = (1..=5).map(|i| ingest(i * 500)).collect();

        let serial = MemMedia::default();
        let mut wal = ShardWal::new(Box::new(serial.clone()), 1, FsyncPolicy::Always);
        for event in &events {
            wal.append(event);
        }
        wal.commit().unwrap();

        let grouped = MemMedia::default();
        let log = GroupCommitLog::new(Box::new(grouped.clone()), 1, FsyncPolicy::Always);
        let mut last = 0;
        for event in &events {
            last = log.stage(event);
        }
        log.commit_through(last).unwrap();

        assert_eq!(
            *grouped.bytes.lock().unwrap(),
            *serial.bytes.lock().unwrap(),
            "group commit must write the exact ShardWal byte stream"
        );
    }

    #[test]
    fn concurrent_commits_coalesce_into_few_writes() {
        let media = MemMedia::default();
        let log = Arc::new(GroupCommitLog::new(
            Box::new(media.clone()),
            1,
            FsyncPolicy::Always,
        ));
        let writers = 4;
        let per_writer = 25;
        let barrier = Arc::new(Barrier::new(writers));
        std::thread::scope(|scope| {
            for w in 0..writers {
                let log = Arc::clone(&log);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..per_writer {
                        let seq = log.stage(&ingest((w * per_writer + i + 1) as u64));
                        log.commit_through(seq).unwrap();
                    }
                });
            }
        });

        let total = (writers * per_writer) as u64;
        let scanned_bytes = media.bytes.lock().unwrap().clone();
        let scanned = scan_log(&scanned_bytes);
        assert!(scanned.corruption.is_none());
        assert_eq!(scanned.last_seq(), Some(total), "all frames on media");

        let stats = log.stats();
        assert_eq!(stats.frames_committed, total);
        assert_eq!(
            stats.frames_committed,
            stats.leader_writes + stats.commits_coalesced
        );
        // Under Always, syncs == leader writes — the whole point is that
        // leader writes (and so fsyncs) can be far fewer than frames.
        assert_eq!(*media.syncs.lock().unwrap(), stats.leader_writes);
        assert_eq!(stats.fsync_calls, stats.leader_writes);
    }

    #[test]
    fn every_n_counts_frames_across_leader_writes() {
        let media = MemMedia::default();
        let log = GroupCommitLog::new(Box::new(media.clone()), 1, FsyncPolicy::EveryN(4));
        for i in 1..=10u64 {
            let seq = log.stage(&ingest(i * 500));
            log.commit_through(seq).unwrap();
        }
        // 10 single-frame leader writes, sync after frames 4 and 8.
        assert_eq!(*media.syncs.lock().unwrap(), 2);
        assert_eq!(log.stats().fsync_calls, 2);

        let never = MemMedia::default();
        let log = GroupCommitLog::new(Box::new(never.clone()), 1, FsyncPolicy::Never);
        for i in 1..=10u64 {
            let seq = log.stage(&ingest(i * 500));
            log.commit_through(seq).unwrap();
        }
        assert_eq!(*never.syncs.lock().unwrap(), 0);
    }

    #[test]
    fn failed_writes_report_to_riders_and_are_not_sticky() {
        let media = MemMedia::default();
        let log = GroupCommitLog::new(Box::new(media.clone()), 1, FsyncPolicy::Always);

        let seq = log.stage(&ingest(500));
        *media.fail_next_append.lock().unwrap() = true;
        let err = log.commit_through(seq).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
        // The same seq keeps reporting its failure deterministically.
        assert!(log.commit_through(seq).is_err());

        // The next staged frame commits cleanly: the failure did not
        // poison the log, and the sequence keeps advancing.
        let seq2 = log.stage(&ingest(1000));
        assert_eq!(seq2, seq + 1);
        log.commit_through(seq2).unwrap();
        let bytes = media.bytes.lock().unwrap().clone();
        let scanned = scan_log(&bytes);
        assert!(scanned.corruption.is_none());
        assert_eq!(scanned.applied.len(), 1, "only the retried frame landed");
    }

    #[test]
    fn commit_all_flushes_everything_staged() {
        let media = MemMedia::default();
        let log = GroupCommitLog::new(Box::new(media.clone()), 1, FsyncPolicy::Always);
        log.commit_all().unwrap();
        assert_eq!(*media.appends.lock().unwrap(), 0);
        log.stage(&ingest(500));
        log.stage(&ingest(1000));
        log.commit_all().unwrap();
        assert_eq!(log.last_seq(), 2);
        assert_eq!(*media.appends.lock().unwrap(), 1, "one write for both");
    }

    #[test]
    fn sequence_continues_where_recovery_left_off() {
        let log = GroupCommitLog::new(Box::new(MemMedia::default()), 43, FsyncPolicy::Never);
        assert_eq!(log.last_seq(), 42);
        assert_eq!(log.next_seq(), 43);
        assert_eq!(log.stage(&ingest(500)), 43);

        let fresh = GroupCommitLog::new(Box::new(MemMedia::default()), 0, FsyncPolicy::Never);
        assert_eq!(fresh.next_seq(), 1);
    }
}
