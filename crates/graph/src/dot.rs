//! Graphviz DOT rendering of call and dependency graphs.
//!
//! Useful for reproducing visualisations such as Figure 6 of the paper (the
//! ShareLatex dependency graph).

use crate::{CallGraph, DependencyGraph};
use std::fmt::Write as _;

/// Renders a call graph as a DOT digraph. Edge labels carry call counts.
pub fn call_graph_to_dot(graph: &CallGraph) -> String {
    let mut out = String::from("digraph callgraph {\n");
    for component in graph.components() {
        let _ = writeln!(out, "    \"{}\";", escape(&component));
    }
    for (from, to, count) in graph.edges() {
        let _ = writeln!(
            out,
            "    \"{}\" -> \"{}\" [label=\"{}\"];",
            escape(from),
            escape(to),
            count
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a dependency graph as a DOT digraph. Edges are labelled with the
/// causing/affected metrics and the detected lag.
pub fn dependency_graph_to_dot(graph: &DependencyGraph) -> String {
    let mut out = String::from("digraph dependencies {\n");
    for component in graph.components() {
        let _ = writeln!(out, "    \"{}\";", escape(&component));
    }
    for e in graph.edges() {
        let _ = writeln!(
            out,
            "    \"{}\" -> \"{}\" [label=\"{} => {} ({} ms)\"];",
            escape(&e.source_component),
            escape(&e.target_component),
            escape(&e.source_metric),
            escape(&e.target_metric),
            e.lag_ms
        );
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depgraph::DependencyEdge;

    #[test]
    fn call_graph_dot_contains_nodes_and_edges() {
        let mut g = CallGraph::new();
        g.record_calls("haproxy", "web", 3);
        let dot = call_graph_to_dot(&g);
        assert!(dot.starts_with("digraph callgraph {"));
        assert!(dot.contains("\"haproxy\" -> \"web\" [label=\"3\"]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dependency_graph_dot_labels_metrics_and_lag() {
        let mut g = DependencyGraph::new();
        g.add_edge(DependencyEdge {
            source_component: "web".into(),
            source_metric: "http_requests_mean".into(),
            target_component: "mongodb".into(),
            target_metric: "queries".into(),
            p_value: 0.01,
            f_statistic: 12.0,
            lag_ms: 500,
        });
        let dot = dependency_graph_to_dot(&g);
        assert!(dot.contains("\"web\" -> \"mongodb\""));
        assert!(dot.contains("http_requests_mean => queries (500 ms)"));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let mut g = CallGraph::new();
        g.record_call("a\"b", "c");
        let dot = call_graph_to_dot(&g);
        assert!(dot.contains("a\\\"b"));
    }

    #[test]
    fn empty_graphs_render_valid_dot() {
        assert_eq!(
            call_graph_to_dot(&CallGraph::new()),
            "digraph callgraph {\n}\n"
        );
        assert_eq!(
            dependency_graph_to_dot(&DependencyGraph::new()),
            "digraph dependencies {\n}\n"
        );
    }
}
