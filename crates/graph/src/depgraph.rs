//! The metric dependency graph produced by Sieve's causality step.
//!
//! "If Sieve determines that there is a relationship between a metric of one
//! component and another metric of another component, a dependency edge
//! between these components is created using the corresponding metrics. The
//! direction of the edge depends on which component is affecting the other."
//! (§2.3/§3.3). Each edge also records the Granger p-value, F statistic and
//! the time lag at which the relation was found — the RCA engine compares
//! these attributes across application versions.
//!
//! Endpoints are interned [`Name`]s, so edge keys, bidirectional filtering
//! and the cross-version diffs below clone reference counts, not strings.

use sieve_exec::Name;
use std::collections::{BTreeMap, BTreeSet};

/// A directed dependency between two representative metrics of two
/// components.
#[derive(Debug, Clone, PartialEq)]
pub struct DependencyEdge {
    /// Component whose metric Granger-causes the target metric.
    pub source_component: Name,
    /// The causing (representative) metric.
    pub source_metric: Name,
    /// Component whose metric is affected.
    pub target_component: Name,
    /// The affected (representative) metric.
    pub target_metric: Name,
    /// p-value of the Granger F-test.
    pub p_value: f64,
    /// F statistic of the Granger test.
    pub f_statistic: f64,
    /// Time lag (in milliseconds) at which the dependency was detected.
    pub lag_ms: u64,
}

impl DependencyEdge {
    /// Key identifying the component-level direction of this edge.
    pub fn component_pair(&self) -> (Name, Name) {
        (self.source_component.clone(), self.target_component.clone())
    }

    /// Key identifying the full metric-level edge.
    pub fn metric_key(&self) -> (Name, Name, Name, Name) {
        (
            self.source_component.clone(),
            self.source_metric.clone(),
            self.target_component.clone(),
            self.target_metric.clone(),
        )
    }
}

/// A dependency graph: a set of [`DependencyEdge`]s plus the set of
/// components known to the analysis (components can exist without edges).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DependencyGraph {
    components: BTreeSet<Name>,
    edges: Vec<DependencyEdge>,
}

impl DependencyGraph {
    /// Creates an empty dependency graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a component.
    pub fn add_component(&mut self, name: impl Into<Name>) {
        self.components.insert(name.into());
    }

    /// Adds an edge, registering its endpoint components.
    pub fn add_edge(&mut self, edge: DependencyEdge) {
        self.components.insert(edge.source_component.clone());
        self.components.insert(edge.target_component.clone());
        self.edges.push(edge);
    }

    /// All registered components, sorted.
    pub fn components(&self) -> Vec<Name> {
        self.components.iter().cloned().collect()
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// All edges in insertion order.
    pub fn edges(&self) -> &[DependencyEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edges whose source or target component is `component`.
    pub fn edges_of(&self, component: &str) -> Vec<&DependencyEdge> {
        self.edges
            .iter()
            .filter(|e| e.source_component == component || e.target_component == component)
            .collect()
    }

    /// Edges from `source` to `target` (component level).
    pub fn edges_between(&self, source: &str, target: &str) -> Vec<&DependencyEdge> {
        self.edges
            .iter()
            .filter(|e| e.source_component == source && e.target_component == target)
            .collect()
    }

    /// Whether any metric-level edge connects `source` to `target`.
    pub fn has_component_edge(&self, source: &str, target: &str) -> bool {
        !self.edges_between(source, target).is_empty()
    }

    /// Removes *bidirectional metric pairs*: when metric A Granger-causes
    /// metric B **and** B Granger-causes A, both edges are dropped, because
    /// such relations usually indicate a hidden common cause ("an indicator
    /// of such a situation is that both metrics will Granger-cause each
    /// other ... Sieve filters these edges out", §3.3). Returns the number of
    /// removed edges.
    pub fn filter_bidirectional(&mut self) -> usize {
        let keys: BTreeSet<(Name, Name, Name, Name)> =
            self.edges.iter().map(|e| e.metric_key()).collect();
        let before = self.edges.len();
        self.edges.retain(|e| {
            let reverse = (
                e.target_component.clone(),
                e.target_metric.clone(),
                e.source_component.clone(),
                e.source_metric.clone(),
            );
            !keys.contains(&reverse)
        });
        before - self.edges.len()
    }

    /// Counts, per metric name, in how many edges (either endpoint) the
    /// metric participates — the statistic Sieve's autoscaling case study
    /// uses to pick the guiding metric ("We pick a metric m that appears the
    /// most in Granger Causality relations between components", §4.1).
    /// Returns the counts sorted descending by count, then by name.
    pub fn metric_appearance_counts(&self) -> Vec<(Name, usize)> {
        let mut counts: BTreeMap<Name, usize> = BTreeMap::new();
        for e in &self.edges {
            *counts.entry(e.source_metric.clone()).or_insert(0) += 1;
            *counts.entry(e.target_metric.clone()).or_insert(0) += 1;
        }
        let mut out: Vec<(Name, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// The metric that appears most often in dependency relations, if any.
    pub fn most_connected_metric(&self) -> Option<Name> {
        self.metric_appearance_counts()
            .first()
            .map(|(m, _)| m.clone())
    }

    /// Component-level out-degree (number of distinct target components).
    pub fn out_degree(&self, component: &str) -> usize {
        self.edges
            .iter()
            .filter(|e| e.source_component == component)
            .map(|e| e.target_component.clone())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Edges present in `self` but not in `other` (compared by full metric
    /// key, ignoring the statistical attributes).
    pub fn edges_not_in<'a>(&'a self, other: &DependencyGraph) -> Vec<&'a DependencyEdge> {
        let other_keys: BTreeSet<_> = other.edges.iter().map(|e| e.metric_key()).collect();
        self.edges
            .iter()
            .filter(|e| !other_keys.contains(&e.metric_key()))
            .collect()
    }

    /// Edges present in both graphs whose lag differs by more than
    /// `tolerance_ms`; returned as `(self_edge, other_edge)` pairs. The RCA
    /// engine treats lag changes between versions as anomaly indicators.
    pub fn lag_changes<'a>(
        &'a self,
        other: &'a DependencyGraph,
        tolerance_ms: u64,
    ) -> Vec<(&'a DependencyEdge, &'a DependencyEdge)> {
        let mut out = Vec::new();
        let other_by_key: BTreeMap<_, &DependencyEdge> =
            other.edges.iter().map(|e| (e.metric_key(), e)).collect();
        for e in &self.edges {
            if let Some(o) = other_by_key.get(&e.metric_key()) {
                let diff = e.lag_ms.abs_diff(o.lag_ms);
                if diff > tolerance_ms {
                    out.push((e, *o));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(sc: &str, sm: &str, tc: &str, tm: &str, p: f64, lag: u64) -> DependencyEdge {
        DependencyEdge {
            source_component: sc.into(),
            source_metric: sm.into(),
            target_component: tc.into(),
            target_metric: tm.into(),
            p_value: p,
            f_statistic: 10.0,
            lag_ms: lag,
        }
    }

    fn sample() -> DependencyGraph {
        let mut g = DependencyGraph::new();
        g.add_edge(edge(
            "haproxy",
            "http_requests_mean",
            "web",
            "cpu_usage",
            0.01,
            500,
        ));
        g.add_edge(edge(
            "web",
            "http_requests_mean",
            "mongodb",
            "queries",
            0.02,
            500,
        ));
        g.add_edge(edge(
            "web",
            "http_requests_mean",
            "redis",
            "ops",
            0.03,
            1000,
        ));
        g.add_component("spelling");
        g
    }

    #[test]
    fn components_include_isolated_ones() {
        let g = sample();
        assert_eq!(g.component_count(), 5);
        assert!(g.components().iter().any(|c| c == "spelling"));
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn edge_queries_work() {
        let g = sample();
        assert!(g.has_component_edge("haproxy", "web"));
        assert!(!g.has_component_edge("web", "haproxy"));
        assert_eq!(g.edges_of("web").len(), 3);
        assert_eq!(g.edges_between("web", "redis").len(), 1);
        assert_eq!(g.out_degree("web"), 2);
        assert_eq!(g.out_degree("spelling"), 0);
    }

    #[test]
    fn bidirectional_pairs_are_filtered() {
        let mut g = DependencyGraph::new();
        g.add_edge(edge("a", "m1", "b", "m2", 0.01, 500));
        g.add_edge(edge("b", "m2", "a", "m1", 0.02, 500));
        g.add_edge(edge("a", "m1", "c", "m3", 0.01, 500));
        let removed = g.filter_bidirectional();
        assert_eq!(removed, 2);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_component_edge("a", "c"));
    }

    #[test]
    fn one_directional_edges_survive_filtering() {
        let mut g = sample();
        assert_eq!(g.filter_bidirectional(), 0);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn metric_appearance_counts_rank_the_hub_metric_first() {
        let g = sample();
        let counts = g.metric_appearance_counts();
        assert_eq!(counts[0].0, "http_requests_mean");
        assert_eq!(counts[0].1, 3);
        assert_eq!(g.most_connected_metric().unwrap(), "http_requests_mean");
    }

    #[test]
    fn empty_graph_has_no_most_connected_metric() {
        assert!(DependencyGraph::new().most_connected_metric().is_none());
    }

    #[test]
    fn graph_diff_finds_new_and_discarded_edges() {
        let correct = sample();
        let mut faulty = sample();
        faulty.add_edge(edge(
            "nova_api",
            "instances_error",
            "neutron",
            "ports_down",
            0.001,
            500,
        ));
        let new_edges = faulty.edges_not_in(&correct);
        assert_eq!(new_edges.len(), 1);
        assert_eq!(new_edges[0].source_component, "nova_api");
        assert!(correct.edges_not_in(&faulty).is_empty());
    }

    #[test]
    fn lag_changes_are_detected_with_tolerance() {
        let a = sample();
        let mut b = sample();
        // Change the lag of one edge by 1500 ms.
        b.edges[2].lag_ms = 2500;
        assert_eq!(a.lag_changes(&b, 500).len(), 1);
        assert!(a.lag_changes(&b, 2000).is_empty());
    }

    #[test]
    fn clone_equality_roundtrip() {
        let g = sample();
        let copy = g.clone();
        assert_eq!(copy, g);
    }
}
