//! The component call graph.
//!
//! While the application is loaded, Sieve records which components talk to
//! which (via sysdig in the paper, via the simulator's tracer in this
//! reproduction) and models the communication "as a directed graph, where the
//! vertices represent the microservice components and the edges point from
//! the caller to the callee providing the service" (§3.1). The call graph
//! restricts the pairwise Granger comparisons to components that actually
//! communicate.
//!
//! Components are identified by interned [`Name`]s: recording a call interns
//! the endpoint names once, and every later lookup, merge or comparison is a
//! pointer-fast operation instead of a `String` clone-and-compare.

use sieve_exec::Name;
use std::collections::{BTreeMap, BTreeSet};

/// A directed graph of component-to-component calls with call counts.
///
/// # Example
///
/// ```
/// use sieve_graph::CallGraph;
///
/// let mut g = CallGraph::new();
/// g.record_call("haproxy", "web");
/// g.record_call("web", "mongodb");
/// g.record_call("web", "mongodb");
/// assert!(g.has_edge("haproxy", "web"));
/// assert_eq!(g.call_count("web", "mongodb"), 2);
/// assert_eq!(g.callees("web"), vec!["mongodb".to_string()]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CallGraph {
    components: BTreeSet<Name>,
    /// caller -> callee -> number of observed calls.
    edges: BTreeMap<Name, BTreeMap<Name, u64>>,
}

impl CallGraph {
    /// Creates an empty call graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a component even if it never communicates.
    pub fn add_component(&mut self, name: impl Into<Name>) {
        self.components.insert(name.into());
    }

    /// Records one call from `caller` to `callee`, registering both
    /// components as needed.
    pub fn record_call(&mut self, caller: impl Into<Name>, callee: impl Into<Name>) {
        self.record_calls(caller, callee, 1);
    }

    /// Records `count` calls from `caller` to `callee`.
    pub fn record_calls(&mut self, caller: impl Into<Name>, callee: impl Into<Name>, count: u64) {
        let caller = caller.into();
        let callee = callee.into();
        self.components.insert(caller.clone());
        self.components.insert(callee.clone());
        *self
            .edges
            .entry(caller)
            .or_default()
            .entry(callee)
            .or_insert(0) += count;
    }

    /// All registered components, sorted by name.
    pub fn components(&self) -> Vec<Name> {
        self.components.iter().cloned().collect()
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Number of distinct caller→callee edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|m| m.len()).sum()
    }

    /// Whether the graph contains the directed edge `caller → callee`.
    pub fn has_edge(&self, caller: &str, callee: &str) -> bool {
        self.edges
            .get(caller)
            .is_some_and(|m| m.contains_key(callee))
    }

    /// Number of calls observed on the edge (0 when absent).
    pub fn call_count(&self, caller: &str, callee: &str) -> u64 {
        self.edges
            .get(caller)
            .and_then(|m| m.get(callee))
            .copied()
            .unwrap_or(0)
    }

    /// Components directly called by `caller`, sorted by name.
    pub fn callees(&self, caller: &str) -> Vec<Name> {
        self.edges
            .get(caller)
            .map(|m| m.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Components that directly call `callee`, sorted by name.
    pub fn callers(&self, callee: &str) -> Vec<Name> {
        self.edges
            .iter()
            .filter(|(_, callees)| callees.contains_key(callee))
            .map(|(from, _)| from.clone())
            .collect()
    }

    /// Components adjacent to `component` in either direction (no
    /// duplicates, sorted).
    pub fn neighbours(&self, component: &str) -> Vec<Name> {
        let mut set: BTreeSet<Name> = BTreeSet::new();
        for (from, callees) in &self.edges {
            for to in callees.keys() {
                if from == component {
                    set.insert(to.clone());
                }
                if to == component {
                    set.insert(from.clone());
                }
            }
        }
        set.remove(component);
        set.into_iter().collect()
    }

    /// Iterator over `(caller, callee, call_count)` triples.
    pub fn edges(&self) -> impl Iterator<Item = (&Name, &Name, u64)> + '_ {
        self.edges
            .iter()
            .flat_map(|(from, callees)| callees.iter().map(move |(to, &count)| (from, to, count)))
    }

    /// The communicating component pairs Sieve must examine in its pairwise
    /// Granger comparison: each directed caller→callee edge.
    pub fn communicating_pairs(&self) -> Vec<(Name, Name)> {
        self.edges()
            .map(|(from, to, _)| (from.clone(), to.clone()))
            .collect()
    }

    /// Merges another call graph into this one (summing call counts).
    pub fn merge(&mut self, other: &CallGraph) {
        for name in &other.components {
            self.components.insert(name.clone());
        }
        for (from, to, count) in other.edges() {
            self.record_calls(from, to, count);
        }
    }

    /// Total number of recorded calls over all edges.
    pub fn total_calls(&self) -> u64 {
        self.edges().map(|(_, _, c)| c).sum()
    }
}

impl FromIterator<(String, String)> for CallGraph {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        let mut g = CallGraph::new();
        for (from, to) in iter {
            g.record_call(from, to);
        }
        g
    }
}

impl FromIterator<(Name, Name)> for CallGraph {
    fn from_iter<I: IntoIterator<Item = (Name, Name)>>(iter: I) -> Self {
        let mut g = CallGraph::new();
        for (from, to) in iter {
            g.record_call(from, to);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CallGraph {
        let mut g = CallGraph::new();
        g.record_call("haproxy", "web");
        g.record_call("web", "mongodb");
        g.record_call("web", "redis");
        g.record_call("web", "docstore");
        g.record_call("docstore", "mongodb");
        g.add_component("spelling");
        g
    }

    #[test]
    fn components_and_edges_are_tracked() {
        let g = sample();
        assert_eq!(g.component_count(), 6);
        assert_eq!(g.edge_count(), 5);
        assert!(g.has_edge("haproxy", "web"));
        assert!(!g.has_edge("web", "haproxy"));
        assert_eq!(g.total_calls(), 5);
    }

    #[test]
    fn call_counts_accumulate() {
        let mut g = CallGraph::new();
        g.record_calls("a", "b", 10);
        g.record_call("a", "b");
        assert_eq!(g.call_count("a", "b"), 11);
        assert_eq!(g.call_count("b", "a"), 0);
    }

    #[test]
    fn callees_and_callers_are_directional() {
        let g = sample();
        assert_eq!(g.callees("web"), vec!["docstore", "mongodb", "redis"]);
        assert_eq!(g.callers("mongodb"), vec!["docstore", "web"]);
        assert!(g.callees("spelling").is_empty());
    }

    #[test]
    fn neighbours_are_undirected_and_deduplicated() {
        let g = sample();
        assert_eq!(
            g.neighbours("web"),
            vec!["docstore", "haproxy", "mongodb", "redis"]
        );
        assert_eq!(g.neighbours("spelling"), Vec::<Name>::new());
    }

    #[test]
    fn isolated_component_appears_without_edges() {
        let g = sample();
        assert!(g.components().iter().any(|c| c == "spelling"));
        assert!(g.neighbours("spelling").is_empty());
    }

    #[test]
    fn merge_sums_counts_and_unions_components() {
        let mut a = CallGraph::new();
        a.record_calls("x", "y", 2);
        let mut b = CallGraph::new();
        b.record_calls("x", "y", 3);
        b.record_call("y", "z");
        a.merge(&b);
        assert_eq!(a.call_count("x", "y"), 5);
        assert!(a.has_edge("y", "z"));
        assert_eq!(a.component_count(), 3);
    }

    #[test]
    fn from_iterator_builds_graph() {
        let g: CallGraph = vec![
            ("a".to_string(), "b".to_string()),
            ("b".to_string(), "c".to_string()),
        ]
        .into_iter()
        .collect();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.communicating_pairs().len(), 2);

        let h: CallGraph = vec![(Name::new("a"), Name::new("b"))].into_iter().collect();
        assert!(h.has_edge("a", "b"));
    }

    #[test]
    fn self_calls_are_representable() {
        let mut g = CallGraph::new();
        g.record_call("worker", "worker");
        assert!(g.has_edge("worker", "worker"));
        // A self-loop does not make the component its own neighbour.
        assert!(g.neighbours("worker").is_empty());
    }

    #[test]
    fn clone_equality_roundtrip() {
        let g = sample();
        let copy = g.clone();
        assert_eq!(copy, g);
    }
}
