//! Graph data structures for Sieve.
//!
//! Two graphs matter in the Sieve pipeline (§3 of the paper):
//!
//! * the **call graph** recorded while loading the application — vertices
//!   are microservice components, edges point from caller to callee
//!   ([`callgraph`]), and
//! * the **dependency graph** produced by the Granger-causality step —
//!   edges connect *representative metrics* of neighbouring components and
//!   carry the causality direction, p-value and time lag ([`depgraph`]).
//!
//! Both can be rendered to Graphviz DOT ([`dot`]) for the kind of
//! visualisation shown in Figure 6 of the paper, and the dependency graph
//! supports the structural diffing the RCA engine builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod depgraph;
pub mod dot;

pub use callgraph::CallGraph;
pub use depgraph::{DependencyEdge, DependencyGraph};
