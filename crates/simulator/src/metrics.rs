//! Metric specifications and behaviours.
//!
//! Real microservice components export a mixture of system metrics (CPU,
//! memory, network, disk) and application metrics (request rates, latencies,
//! queue depths, garbage-collection pauses, business counters). The paper's
//! pipeline only cares about how those metrics *behave over time relative to
//! load*, so the simulator describes every metric by a [`MetricBehavior`]
//! that maps the component's current load (plus deterministic noise) to a
//! sample value.

/// Whether a metric is an instantaneous gauge or a monotonically increasing
/// counter (counters are what the ADF/first-difference handling in the
//  causality step exists for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Instantaneous value (CPU usage, queue depth, latency…).
    Gauge,
    /// Monotonically increasing value (bytes sent, requests served…).
    Counter,
}

/// How a metric responds to the component's load.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricBehavior {
    /// `value = offset + gain * load + noise_amplitude * noise`.
    ///
    /// Used for request rates, CPU usage, I/O throughput and most
    /// application metrics.
    LoadProportional {
        /// Multiplier applied to the per-instance load.
        gain: f64,
        /// Constant baseline.
        offset: f64,
        /// Amplitude of the deterministic pseudo-noise term.
        noise_amplitude: f64,
        /// Additional response delay in simulation ticks.
        lag_ticks: usize,
        /// Optional saturation ceiling (e.g. 100 for CPU percentages).
        ceiling: Option<f64>,
    },
    /// A queueing-style latency: `base * (1 + (load / capacity)^2)`.
    ///
    /// Grows slowly until the component approaches its capacity, then
    /// sharply — the shape autoscaling reacts to.
    Latency {
        /// Latency under negligible load, in milliseconds.
        base_ms: f64,
        /// Per-instance load at which latency has doubled.
        capacity: f64,
        /// Amplitude of the pseudo-noise term (milliseconds).
        noise_amplitude: f64,
    },
    /// A counter increasing by `rate_per_load * load + base_rate` each tick.
    Counter {
        /// Increment per unit of load per tick.
        rate_per_load: f64,
        /// Load-independent increment per tick.
        base_rate: f64,
    },
    /// A constant, unvarying metric (the kind Sieve's variance filter drops).
    Constant {
        /// The constant value.
        value: f64,
    },
    /// A periodic signal independent of load (e.g. a cron-driven flush).
    Periodic {
        /// Period in simulation ticks.
        period_ticks: usize,
        /// Amplitude of the oscillation.
        amplitude: f64,
        /// Constant baseline.
        offset: f64,
    },
    /// A bounded random walk independent of load (pure noise metrics).
    RandomWalk {
        /// Maximum step per tick.
        step: f64,
        /// Clamp for the absolute value.
        bound: f64,
    },
}

impl MetricBehavior {
    /// A plain load-proportional gauge with unit gain and small noise.
    pub fn load_proportional(gain: f64) -> Self {
        MetricBehavior::LoadProportional {
            gain,
            offset: 0.0,
            noise_amplitude: 0.05 * gain.abs().max(0.01),
            lag_ticks: 0,
            ceiling: None,
        }
    }

    /// A CPU-style percentage: proportional to load but capped at 100.
    pub fn cpu_like(gain: f64) -> Self {
        MetricBehavior::LoadProportional {
            gain,
            offset: 1.0,
            noise_amplitude: 0.5,
            lag_ticks: 0,
            ceiling: Some(100.0),
        }
    }

    /// A latency metric with the given base latency and capacity.
    pub fn latency(base_ms: f64, capacity: f64) -> Self {
        MetricBehavior::Latency {
            base_ms,
            capacity,
            noise_amplitude: base_ms * 0.02,
        }
    }

    /// A load-driven counter.
    pub fn counter(rate_per_load: f64) -> Self {
        MetricBehavior::Counter {
            rate_per_load,
            base_rate: 0.0,
        }
    }

    /// A constant metric.
    pub fn constant(value: f64) -> Self {
        MetricBehavior::Constant { value }
    }

    /// Whether the metric described by this behaviour reacts to load at all.
    pub fn is_load_dependent(&self) -> bool {
        matches!(
            self,
            MetricBehavior::LoadProportional { .. }
                | MetricBehavior::Latency { .. }
                | MetricBehavior::Counter { .. }
        )
    }
}

/// A named metric exported by a component.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSpec {
    /// Metric name, unique within its component.
    pub name: String,
    /// Gauge or counter semantics.
    pub kind: MetricKind,
    /// How the metric responds to load.
    pub behavior: MetricBehavior,
}

impl MetricSpec {
    /// Creates a gauge metric.
    pub fn gauge(name: impl Into<String>, behavior: MetricBehavior) -> Self {
        Self {
            name: name.into(),
            kind: MetricKind::Gauge,
            behavior,
        }
    }

    /// Creates a counter metric.
    pub fn counter(name: impl Into<String>, behavior: MetricBehavior) -> Self {
        Self {
            name: name.into(),
            kind: MetricKind::Counter,
            behavior,
        }
    }
}

/// Deterministic pseudo-noise in `[-0.5, 0.5]`, parameterised by a seed and a
/// step index, so that simulation runs are reproducible for a given seed and
/// differ across seeds.
pub fn deterministic_noise(seed: u64, step: u64) -> f64 {
    let mut s = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(step.wrapping_mul(0xBF58476D1CE4E5B9));
    s ^= s >> 30;
    s = s.wrapping_mul(0xBF58476D1CE4E5B9);
    s ^= s >> 27;
    s = s.wrapping_mul(0x94D049BB133111EB);
    s ^= s >> 31;
    ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
}

/// Internal evaluation state for one metric instance in a running simulation.
#[derive(Debug, Clone)]
pub struct MetricState {
    spec: MetricSpec,
    counter_value: f64,
    walk_value: f64,
    noise_seed: u64,
}

impl MetricState {
    /// Creates the evaluation state for a metric.
    pub fn new(spec: MetricSpec, noise_seed: u64) -> Self {
        Self {
            spec,
            counter_value: 0.0,
            walk_value: 0.0,
            noise_seed,
        }
    }

    /// The metric specification.
    pub fn spec(&self) -> &MetricSpec {
        &self.spec
    }

    /// Produces the metric's sample for the given tick.
    ///
    /// `load_history` must contain the component's per-instance load for all
    /// ticks up to and including the current one (index = tick).
    pub fn sample(&mut self, tick: usize, load_history: &[f64]) -> f64 {
        let noise = deterministic_noise(self.noise_seed, tick as u64);
        let current_load = load_history.last().copied().unwrap_or(0.0);
        match &self.spec.behavior {
            MetricBehavior::LoadProportional {
                gain,
                offset,
                noise_amplitude,
                lag_ticks,
                ceiling,
            } => {
                let idx = tick.saturating_sub(*lag_ticks);
                let load = load_history.get(idx).copied().unwrap_or(0.0);
                let mut v = offset + gain * load + noise_amplitude * noise;
                if let Some(c) = ceiling {
                    v = v.min(*c);
                }
                v.max(0.0)
            }
            MetricBehavior::Latency {
                base_ms,
                capacity,
                noise_amplitude,
            } => {
                let utilisation = if *capacity > 0.0 {
                    current_load / capacity
                } else {
                    0.0
                };
                (base_ms * (1.0 + utilisation * utilisation) + noise_amplitude * noise).max(0.0)
            }
            MetricBehavior::Counter {
                rate_per_load,
                base_rate,
            } => {
                self.counter_value += (base_rate + rate_per_load * current_load).max(0.0);
                self.counter_value
            }
            MetricBehavior::Constant { value } => *value,
            MetricBehavior::Periodic {
                period_ticks,
                amplitude,
                offset,
            } => {
                let period = (*period_ticks).max(1) as f64;
                offset + amplitude * (2.0 * std::f64::consts::PI * tick as f64 / period).sin()
            }
            MetricBehavior::RandomWalk { step, bound } => {
                self.walk_value = (self.walk_value + step * 2.0 * noise).clamp(-bound, *bound);
                self.walk_value
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_proportional_tracks_load() {
        let spec = MetricSpec::gauge("requests", MetricBehavior::load_proportional(2.0));
        let mut state = MetricState::new(spec, 1);
        let low = state.sample(0, &[1.0]);
        let high = state.sample(1, &[1.0, 50.0]);
        assert!(high > low);
        assert!((high - 100.0).abs() < 5.0);
    }

    #[test]
    fn cpu_like_saturates_at_100() {
        let spec = MetricSpec::gauge("cpu", MetricBehavior::cpu_like(1.0));
        let mut state = MetricState::new(spec, 2);
        let v = state.sample(0, &[10_000.0]);
        assert!(v <= 100.0);
    }

    #[test]
    fn lagged_metric_reacts_late() {
        let behavior = MetricBehavior::LoadProportional {
            gain: 1.0,
            offset: 0.0,
            noise_amplitude: 0.0,
            lag_ticks: 2,
            ceiling: None,
        };
        let spec = MetricSpec::gauge("lagged", behavior);
        let mut state = MetricState::new(spec, 3);
        // Load spikes at tick 3; a 2-tick lag means the metric reads the
        // value from tick 1 at tick 3 and only sees the spike at tick 5.
        let loads = [0.0, 0.0, 0.0, 100.0, 100.0, 100.0];
        assert_eq!(state.sample(3, &loads[..4]), 0.0);
        assert_eq!(state.sample(5, &loads[..6]), 100.0);
    }

    #[test]
    fn latency_grows_superlinearly_near_capacity() {
        let spec = MetricSpec::gauge("latency", MetricBehavior::latency(100.0, 50.0));
        let mut state = MetricState::new(spec, 4);
        let idle = state.sample(0, &[1.0]);
        let half = state.sample(1, &[1.0, 25.0]);
        let full = state.sample(2, &[1.0, 25.0, 50.0]);
        let over = state.sample(3, &[1.0, 25.0, 50.0, 100.0]);
        assert!(idle < half && half < full && full < over);
        assert!(
            over > 2.0 * full - idle * 0.5,
            "latency must grow faster than linear"
        );
    }

    #[test]
    fn counter_is_monotone() {
        let spec = MetricSpec::counter("bytes_total", MetricBehavior::counter(3.0));
        let mut state = MetricState::new(spec, 5);
        let mut prev = -1.0;
        for t in 0..20 {
            let loads: Vec<f64> = (0..=t).map(|i| (i % 7) as f64).collect();
            let v = state.sample(t, &loads);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn constant_metric_never_changes() {
        let spec = MetricSpec::gauge("buffer_size", MetricBehavior::constant(4096.0));
        let mut state = MetricState::new(spec, 6);
        for t in 0..10 {
            assert_eq!(state.sample(t, &[t as f64]), 4096.0);
        }
    }

    #[test]
    fn periodic_metric_oscillates_independently_of_load() {
        let behavior = MetricBehavior::Periodic {
            period_ticks: 8,
            amplitude: 5.0,
            offset: 10.0,
        };
        let mut state = MetricState::new(MetricSpec::gauge("gc", behavior), 7);
        let values: Vec<f64> = (0..16).map(|t| state.sample(t, &[0.0])).collect();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max > 14.0 && min < 6.0);
    }

    #[test]
    fn random_walk_stays_within_bounds() {
        let behavior = MetricBehavior::RandomWalk {
            step: 1.0,
            bound: 3.0,
        };
        let mut state = MetricState::new(MetricSpec::gauge("noise", behavior), 8);
        for t in 0..500 {
            let v = state.sample(t, &[0.0]);
            assert!(v.abs() <= 3.0);
        }
    }

    #[test]
    fn noise_is_deterministic_per_seed_and_varies_across_seeds() {
        assert_eq!(deterministic_noise(1, 10), deterministic_noise(1, 10));
        assert_ne!(deterministic_noise(1, 10), deterministic_noise(2, 10));
        for i in 0..100 {
            let v = deterministic_noise(42, i);
            assert!((-0.5..=0.5).contains(&v));
        }
    }

    #[test]
    fn behavior_classification() {
        assert!(MetricBehavior::load_proportional(1.0).is_load_dependent());
        assert!(MetricBehavior::latency(10.0, 5.0).is_load_dependent());
        assert!(MetricBehavior::counter(1.0).is_load_dependent());
        assert!(!MetricBehavior::constant(1.0).is_load_dependent());
    }
}
