//! A discrete-time microservice application simulator.
//!
//! The Sieve paper evaluates its pipeline on two real deployments
//! (ShareLatex on EC2/Rancher and OpenStack Kolla), loaded with Locust/Rally,
//! traced with sysdig and monitored with Telegraf + InfluxDB. None of that
//! infrastructure is available to a library reproduction, so this crate
//! provides the behaviour-preserving substitute documented in `DESIGN.md`:
//!
//! * [`app`] — declarative application models: components, their metrics and
//!   the RPC topology connecting them;
//! * [`metrics`] — metric behaviours (load-proportional gauges, saturating
//!   latencies, counters, constants, periodic and random-walk signals);
//! * [`workload`] — load generators: constant, ramp, spike, sessions and a
//!   WorldCup-98-like one-hour trace;
//! * [`engine`] — the discrete-time simulation that propagates load along
//!   the call graph (with per-edge lag) and emits every metric as a time
//!   series;
//! * [`tracer`] — the call-graph recorder, with the relative overhead model
//!   for native/sysdig/tcpdump tracing used by Figure 5;
//! * [`store`] — the in-memory metric store with the resource-accounting
//!   model (CPU, storage, network) used by Table 3, and the bounded-memory
//!   retention layer (ring windows + tiered mean/min/max downsampling)
//!   that lets long-running services ingest forever with flat memory;
//! * [`fault`] — fault injection used by the RCA case study to produce a
//!   "faulty version" of an application.
//!
//! # Example
//!
//! ```
//! use sieve_simulator::app::{AppSpec, CallSpec, ComponentSpec};
//! use sieve_simulator::engine::{SimConfig, Simulation};
//! use sieve_simulator::metrics::{MetricBehavior, MetricSpec};
//! use sieve_simulator::workload::Workload;
//!
//! let mut app = AppSpec::new("demo", "frontend");
//! app.add_component(
//!     ComponentSpec::new("frontend")
//!         .with_metric(MetricSpec::gauge("requests", MetricBehavior::load_proportional(1.0))),
//! );
//! app.add_component(
//!     ComponentSpec::new("db")
//!         .with_metric(MetricSpec::gauge("queries", MetricBehavior::load_proportional(2.0))),
//! );
//! app.add_call(CallSpec::new("frontend", "db"));
//!
//! let config = SimConfig::new(0xC0FFEE).with_duration_ms(60_000);
//! let mut sim = Simulation::new(app, Workload::constant(20.0), config).unwrap();
//! sim.run_to_completion();
//! let store = sim.store();
//! assert_eq!(store.series_count(), 2);
//! assert!(sim.call_graph().has_edge("frontend", "db"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod store;
pub mod tracer;
pub mod workload;

mod error;

pub use error::SimulatorError;

/// Convenient result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimulatorError>;
