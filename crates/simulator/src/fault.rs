//! Fault injection.
//!
//! The RCA case study of the paper compares the dependency graphs of a
//! *correct* and a *faulty* version of OpenStack, where the fault is the
//! crash of the Neutron Open vSwitch agent (Launchpad bug #1533942). This
//! module provides the generic fault primitives the `sieve-apps` crate uses
//! to construct that faulty version: metrics can appear or disappear, change
//! their response to load, and call edges can change their latency or vanish
//! entirely — the observable consequences of a real component failure.

use crate::app::AppSpec;
use crate::metrics::MetricSpec;
use crate::{Result, SimulatorError};

/// A single observable fault applied to an application specification.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// A metric stops being exported (e.g. an agent crashed).
    RemoveMetric {
        /// Component exporting the metric.
        component: String,
        /// Name of the metric to remove.
        metric: String,
    },
    /// A new metric appears (e.g. an error counter becomes non-trivial).
    AddMetric {
        /// Component to receive the metric.
        component: String,
        /// The new metric.
        metric: MetricSpec,
    },
    /// A metric's behaviour is replaced (e.g. an ACTIVE-state gauge flips to
    /// an ERROR-state gauge).
    ReplaceMetricBehavior {
        /// Component exporting the metric.
        component: String,
        /// Metric whose behaviour changes.
        metric: String,
        /// The replacement specification (keeps the same name).
        replacement: MetricSpec,
    },
    /// The latency of a call edge changes (e.g. retries and timeouts).
    ChangeCallLag {
        /// Calling component.
        caller: String,
        /// Called component.
        callee: String,
        /// New propagation lag in milliseconds.
        lag_ms: u64,
    },
    /// A call edge disappears entirely (the callee no longer receives work).
    DropCall {
        /// Calling component.
        caller: String,
        /// Called component.
        callee: String,
    },
    /// A component's capacity degrades by the given factor in `(0, 1]`.
    DegradeCapacity {
        /// Affected component.
        component: String,
        /// Multiplier applied to the per-instance capacity.
        factor: f64,
    },
}

/// A named set of faults representing one failure scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultScenario {
    /// Human-readable scenario name (e.g. "neutron-ovs-agent-crash").
    pub name: String,
    /// The faults to apply.
    pub faults: Vec<Fault>,
}

impl FaultScenario {
    /// Creates an empty scenario.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder style).
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Number of faults in the scenario.
    pub fn fault_count(&self) -> usize {
        self.faults.len()
    }

    /// Applies every fault to `spec`, producing the "faulty version" of the
    /// application.
    ///
    /// # Errors
    ///
    /// * [`SimulatorError::UnknownComponent`] when a fault references a
    ///   component that does not exist.
    /// * [`SimulatorError::InvalidSpec`] when a referenced metric or call
    ///   edge does not exist, or a capacity factor is out of range.
    pub fn apply(&self, spec: &mut AppSpec) -> Result<()> {
        for fault in &self.faults {
            apply_fault(spec, fault)?;
        }
        Ok(())
    }

    /// Convenience: clones `spec`, applies the scenario and returns the
    /// faulty copy.
    ///
    /// # Errors
    ///
    /// Same as [`FaultScenario::apply`].
    pub fn applied_to(&self, spec: &AppSpec) -> Result<AppSpec> {
        let mut faulty = spec.clone();
        self.apply(&mut faulty)?;
        Ok(faulty)
    }
}

fn apply_fault(spec: &mut AppSpec, fault: &Fault) -> Result<()> {
    match fault {
        Fault::RemoveMetric { component, metric } => {
            let comp =
                spec.component_mut(component)
                    .ok_or_else(|| SimulatorError::UnknownComponent {
                        name: component.clone(),
                    })?;
            let before = comp.metrics.len();
            comp.metrics.retain(|m| m.name != *metric);
            if comp.metrics.len() == before {
                return Err(SimulatorError::InvalidSpec {
                    reason: format!("metric `{metric}` not found in component `{component}`"),
                });
            }
            Ok(())
        }
        Fault::AddMetric { component, metric } => {
            let comp =
                spec.component_mut(component)
                    .ok_or_else(|| SimulatorError::UnknownComponent {
                        name: component.clone(),
                    })?;
            if comp.metrics.iter().any(|m| m.name == metric.name) {
                return Err(SimulatorError::InvalidSpec {
                    reason: format!(
                        "metric `{}` already exists in component `{component}`",
                        metric.name
                    ),
                });
            }
            comp.metrics.push(metric.clone());
            Ok(())
        }
        Fault::ReplaceMetricBehavior {
            component,
            metric,
            replacement,
        } => {
            let comp =
                spec.component_mut(component)
                    .ok_or_else(|| SimulatorError::UnknownComponent {
                        name: component.clone(),
                    })?;
            match comp.metrics.iter_mut().find(|m| m.name == *metric) {
                Some(slot) => {
                    *slot = MetricSpec {
                        name: slot.name.clone(),
                        ..replacement.clone()
                    };
                    Ok(())
                }
                None => Err(SimulatorError::InvalidSpec {
                    reason: format!("metric `{metric}` not found in component `{component}`"),
                }),
            }
        }
        Fault::ChangeCallLag {
            caller,
            callee,
            lag_ms,
        } => {
            let found = spec
                .calls_mut()
                .iter_mut()
                .find(|c| c.caller == *caller && c.callee == *callee);
            match found {
                Some(call) => {
                    call.lag_ms = *lag_ms;
                    Ok(())
                }
                None => Err(SimulatorError::InvalidSpec {
                    reason: format!("call edge `{caller}` -> `{callee}` not found"),
                }),
            }
        }
        Fault::DropCall { caller, callee } => {
            let before = spec.calls().len();
            spec.calls_mut()
                .retain(|c| !(c.caller == *caller && c.callee == *callee));
            if spec.calls().len() == before {
                return Err(SimulatorError::InvalidSpec {
                    reason: format!("call edge `{caller}` -> `{callee}` not found"),
                });
            }
            Ok(())
        }
        Fault::DegradeCapacity { component, factor } => {
            if !(*factor > 0.0 && *factor <= 1.0) {
                return Err(SimulatorError::InvalidSpec {
                    reason: format!("capacity factor {factor} must be in (0, 1]"),
                });
            }
            let comp =
                spec.component_mut(component)
                    .ok_or_else(|| SimulatorError::UnknownComponent {
                        name: component.clone(),
                    })?;
            comp.capacity_per_instance *= factor;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{CallSpec, ComponentSpec};
    use crate::metrics::MetricBehavior;

    fn app() -> AppSpec {
        let mut app = AppSpec::new("test", "api");
        app.add_component(
            ComponentSpec::new("api")
                .with_metric(MetricSpec::gauge(
                    "instances_active",
                    MetricBehavior::load_proportional(1.0),
                ))
                .with_metric(MetricSpec::gauge("cpu", MetricBehavior::cpu_like(1.0))),
        );
        app.add_component(
            ComponentSpec::new("agent")
                .with_metric(MetricSpec::gauge(
                    "ports_active",
                    MetricBehavior::load_proportional(2.0),
                ))
                .with_capacity(40.0),
        );
        app.add_call(CallSpec::new("api", "agent").with_lag_ms(500));
        app
    }

    #[test]
    fn remove_and_add_metrics() {
        let scenario = FaultScenario::new("crash")
            .with_fault(Fault::RemoveMetric {
                component: "agent".into(),
                metric: "ports_active".into(),
            })
            .with_fault(Fault::AddMetric {
                component: "agent".into(),
                metric: MetricSpec::gauge("ports_down", MetricBehavior::load_proportional(2.0)),
            });
        let faulty = scenario.applied_to(&app()).unwrap();
        let agent = faulty.component("agent").unwrap();
        assert_eq!(agent.metrics.len(), 1);
        assert_eq!(agent.metrics[0].name, "ports_down");
        assert_eq!(scenario.fault_count(), 2);
        // The original spec is untouched.
        assert_eq!(
            app().component("agent").unwrap().metrics[0].name,
            "ports_active"
        );
    }

    #[test]
    fn replace_behavior_keeps_the_name() {
        let scenario = FaultScenario::new("flip").with_fault(Fault::ReplaceMetricBehavior {
            component: "api".into(),
            metric: "instances_active".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::constant(0.0)),
        });
        let faulty = scenario.applied_to(&app()).unwrap();
        let api = faulty.component("api").unwrap();
        let m = api
            .metrics
            .iter()
            .find(|m| m.name == "instances_active")
            .unwrap();
        assert_eq!(m.behavior, MetricBehavior::constant(0.0));
    }

    #[test]
    fn change_lag_and_drop_call() {
        let lag = FaultScenario::new("lag").with_fault(Fault::ChangeCallLag {
            caller: "api".into(),
            callee: "agent".into(),
            lag_ms: 3000,
        });
        let faulty = lag.applied_to(&app()).unwrap();
        assert_eq!(faulty.calls()[0].lag_ms, 3000);

        let drop = FaultScenario::new("drop").with_fault(Fault::DropCall {
            caller: "api".into(),
            callee: "agent".into(),
        });
        let faulty = drop.applied_to(&app()).unwrap();
        assert!(faulty.calls().is_empty());
    }

    #[test]
    fn degrade_capacity_multiplies() {
        let scenario = FaultScenario::new("slow").with_fault(Fault::DegradeCapacity {
            component: "agent".into(),
            factor: 0.25,
        });
        let faulty = scenario.applied_to(&app()).unwrap();
        assert!((faulty.component("agent").unwrap().capacity_per_instance - 10.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_faults_are_rejected() {
        let unknown_component = FaultScenario::new("x").with_fault(Fault::RemoveMetric {
            component: "nope".into(),
            metric: "m".into(),
        });
        assert!(matches!(
            unknown_component.applied_to(&app()),
            Err(SimulatorError::UnknownComponent { .. })
        ));

        let unknown_metric = FaultScenario::new("x").with_fault(Fault::RemoveMetric {
            component: "api".into(),
            metric: "nope".into(),
        });
        assert!(unknown_metric.applied_to(&app()).is_err());

        let duplicate_metric = FaultScenario::new("x").with_fault(Fault::AddMetric {
            component: "api".into(),
            metric: MetricSpec::gauge("cpu", MetricBehavior::constant(1.0)),
        });
        assert!(duplicate_metric.applied_to(&app()).is_err());

        let missing_edge = FaultScenario::new("x").with_fault(Fault::DropCall {
            caller: "agent".into(),
            callee: "api".into(),
        });
        assert!(missing_edge.applied_to(&app()).is_err());

        let bad_factor = FaultScenario::new("x").with_fault(Fault::DegradeCapacity {
            component: "api".into(),
            factor: 0.0,
        });
        assert!(bad_factor.applied_to(&app()).is_err());
    }

    #[test]
    fn faulty_spec_still_validates() {
        let scenario = FaultScenario::new("crash").with_fault(Fault::AddMetric {
            component: "api".into(),
            metric: MetricSpec::gauge("instances_error", MetricBehavior::load_proportional(0.5)),
        });
        let faulty = scenario.applied_to(&app()).unwrap();
        assert!(faulty.validate().is_ok());
    }
}
