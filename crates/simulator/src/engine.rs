//! The discrete-time simulation engine.
//!
//! The engine advances an [`AppSpec`] tick by tick (default 500 ms, the
//! discretisation Sieve itself uses):
//!
//! 1. the [`Workload`] offers an external request rate at the entrypoint;
//! 2. load propagates along every [`CallSpec`](crate::app::CallSpec) edge
//!    with the edge's fanout and lag, so downstream components react *after*
//!    their callers — which is exactly the temporal structure the Granger
//!    step later rediscovers;
//! 3. every component's metrics are sampled from its per-instance load and
//!    written to the [`MetricStore`];
//! 4. the tracer records the caller→callee calls of the tick.
//!
//! The engine is deterministic for a given seed, supports changing instance
//! counts while running (for the autoscaling case study) and reports an
//! end-to-end request latency per tick (for SLA evaluation).
//!
//! All per-tick bookkeeping is keyed by interned [`Name`]s, and the
//! [`MetricId`] of every exported metric is interned once at construction —
//! the tick loop never touches the interner or clones a `String`.

use crate::app::AppSpec;
use crate::metrics::MetricState;
use crate::store::{MetricId, MetricStore, RetentionPolicy};
use crate::tracer::{Tracer, TracingMode};
use crate::workload::Workload;
use crate::{Result, SimulatorError};
use sieve_exec::Name;
use sieve_graph::CallGraph;
use std::collections::{BTreeMap, BTreeSet};

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Seed for all deterministic noise.
    pub seed: u64,
    /// Tick length in milliseconds (500 ms by default, matching Sieve's
    /// discretisation).
    pub tick_ms: u64,
    /// Total simulated duration in milliseconds.
    pub duration_ms: u64,
    /// How the call graph is captured (affects the modelled tracing
    /// overhead only, never the recorded graph).
    pub tracing_mode: TracingMode,
    /// How much history the simulation's metric store retains per series
    /// (unbounded by default — the offline-experiment oracle mode).
    pub retention: RetentionPolicy,
}

impl SimConfig {
    /// Creates a configuration with the default 500 ms tick and a 2-minute
    /// duration.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            tick_ms: 500,
            duration_ms: 120_000,
            tracing_mode: TracingMode::Sysdig,
            retention: RetentionPolicy::unbounded(),
        }
    }

    /// Sets the simulated duration (builder style).
    pub fn with_duration_ms(mut self, duration_ms: u64) -> Self {
        self.duration_ms = duration_ms;
        self
    }

    /// Sets the metric store's retention policy (builder style).
    pub fn with_retention(mut self, retention: RetentionPolicy) -> Self {
        self.retention = retention;
        self
    }

    /// Sets the tick length (builder style).
    pub fn with_tick_ms(mut self, tick_ms: u64) -> Self {
        self.tick_ms = tick_ms;
        self
    }

    /// Number of ticks in a full run.
    pub fn total_ticks(&self) -> usize {
        (self.duration_ms / self.tick_ms.max(1)) as usize
    }
}

/// Per-tick state exposed to interactive drivers such as the autoscaler.
#[derive(Debug, Clone, PartialEq)]
pub struct TickSnapshot {
    /// Tick index (0-based).
    pub tick: usize,
    /// Simulated time at the end of this tick, in milliseconds.
    pub time_ms: u64,
    /// External request rate offered to the entrypoint during this tick.
    pub offered_load: f64,
    /// Per-instance load of every component.
    pub component_loads: BTreeMap<Name, f64>,
    /// Modelled end-to-end latency of a request entering at the entrypoint
    /// during this tick, in milliseconds.
    pub end_to_end_latency_ms: f64,
}

/// A running simulation of one application under one workload.
#[derive(Debug)]
pub struct Simulation {
    spec: AppSpec,
    workload: Workload,
    config: SimConfig,
    store: MetricStore,
    tracer: Tracer,
    /// Per component: every exported metric's interned id and evaluation
    /// state, resolved once so the tick loop records without interning.
    metric_states: BTreeMap<Name, Vec<(MetricId, MetricState)>>,
    /// Interned caller/callee names of `spec.calls()`, index-aligned.
    call_edges: Vec<(Name, Name)>,
    /// Per-edge enabled flag, index-aligned with `call_edges`. Disabled
    /// edges propagate no load and record no calls (dependency drift).
    call_enabled: Vec<bool>,
    /// Components currently crashed: they process no load, export no
    /// metrics and issue no calls until brought back online.
    offline: BTreeSet<Name>,
    /// Metrics whose export is suppressed (monitoring-agent dropout).
    disabled_metrics: BTreeSet<MetricId>,
    /// Per-component clock skew applied to recorded timestamps, in
    /// milliseconds (a skewed monitoring agent's wall clock).
    clock_skew_ms: BTreeMap<Name, i64>,
    /// Multiplier on the external workload (load-regime change).
    rate_multiplier: f64,
    request_history: BTreeMap<Name, Vec<f64>>,
    load_history: BTreeMap<Name, Vec<f64>>,
    instances: BTreeMap<Name, usize>,
    reachable: BTreeSet<Name>,
    latency_base_ms: BTreeMap<Name, f64>,
    current_tick: usize,
    total_ticks: usize,
    latency_samples: Vec<f64>,
}

impl Simulation {
    /// Creates a new simulation.
    ///
    /// # Errors
    ///
    /// * Propagates [`AppSpec::validate`] failures.
    /// * [`SimulatorError::InvalidParameter`] when the tick length is zero or
    ///   the duration yields no ticks.
    pub fn new(spec: AppSpec, workload: Workload, config: SimConfig) -> Result<Self> {
        spec.validate()?;
        if config.tick_ms == 0 {
            return Err(SimulatorError::InvalidParameter {
                name: "tick_ms",
                reason: "must be positive".to_string(),
            });
        }
        let total_ticks = config.total_ticks();
        if total_ticks == 0 {
            return Err(SimulatorError::InvalidParameter {
                name: "duration_ms",
                reason: "duration must cover at least one tick".to_string(),
            });
        }

        let mut metric_states = BTreeMap::new();
        let mut instances = BTreeMap::new();
        let mut latency_base_ms = BTreeMap::new();
        let mut tracer = Tracer::new();
        for (ci, component) in spec.components().enumerate() {
            let component_name = Name::new(&component.name);
            let states: Vec<(MetricId, MetricState)> = component
                .metrics
                .iter()
                .enumerate()
                .map(|(mi, m)| {
                    (
                        MetricId::new(component_name.clone(), m.name.as_str()),
                        MetricState::new(
                            m.clone(),
                            config
                                .seed
                                .wrapping_add((ci as u64) << 32)
                                .wrapping_add(mi as u64),
                        ),
                    )
                })
                .collect();
            metric_states.insert(component_name.clone(), states);
            instances.insert(component_name.clone(), component.instances.max(1));
            // Base processing latency: derived from an exported latency
            // metric when present, otherwise a 10 ms default.
            let base = component
                .metrics
                .iter()
                .find_map(|m| match &m.behavior {
                    crate::metrics::MetricBehavior::Latency { base_ms, .. } => Some(*base_ms),
                    _ => None,
                })
                .unwrap_or(10.0);
            latency_base_ms.insert(component_name.clone(), base);
            tracer.register_component(component_name);
        }

        let call_edges: Vec<(Name, Name)> = spec
            .calls()
            .iter()
            .map(|c| (Name::new(&c.caller), Name::new(&c.callee)))
            .collect();
        let reachable = reachable_from(&spec, &spec.entrypoint);

        Ok(Self {
            request_history: metric_states
                .keys()
                .map(|n| (n.clone(), Vec::new()))
                .collect(),
            load_history: metric_states
                .keys()
                .map(|n| (n.clone(), Vec::new()))
                .collect(),
            metric_states,
            call_enabled: vec![true; call_edges.len()],
            call_edges,
            offline: BTreeSet::new(),
            disabled_metrics: BTreeSet::new(),
            clock_skew_ms: BTreeMap::new(),
            rate_multiplier: 1.0,
            instances,
            reachable,
            latency_base_ms,
            spec,
            workload,
            config,
            store: MetricStore::with_retention(config.retention),
            tracer,
            current_tick: 0,
            total_ticks,
            latency_samples: Vec::new(),
        })
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The application specification being simulated.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// The metric store receiving all samples.
    pub fn store(&self) -> &MetricStore {
        &self.store
    }

    /// The call graph observed so far.
    pub fn call_graph(&self) -> CallGraph {
        self.tracer.call_graph().clone()
    }

    /// Consumes the finished simulation and hands out its recorded data —
    /// the metric store and the observed call graph — without copying
    /// either. This is what the pipeline's loading step uses.
    pub fn into_parts(self) -> (MetricStore, CallGraph) {
        (self.store, self.tracer.into_call_graph())
    }

    /// Current instance count of a component (0 if unknown).
    pub fn instances(&self, component: &str) -> usize {
        self.instances.get(component).copied().unwrap_or(0)
    }

    /// Total instances across all components.
    pub fn total_instances(&self) -> usize {
        self.instances.values().sum()
    }

    /// Changes the instance count of a component (autoscaling). Counts are
    /// clamped to at least 1.
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::UnknownComponent`] for unknown components.
    pub fn set_instances(&mut self, component: &str, count: usize) -> Result<()> {
        match self.instances.get_mut(component) {
            Some(slot) => {
                *slot = count.max(1);
                Ok(())
            }
            None => Err(SimulatorError::UnknownComponent {
                name: component.to_string(),
            }),
        }
    }

    /// Enables or disables every call edge between `caller` and `callee`
    /// at runtime — the dependency-drift primitive. A disabled edge
    /// propagates no load and records no calls; re-enabling it restores
    /// the original behaviour. Returns the number of edges toggled.
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::InvalidSpec`] when no such edge exists.
    pub fn set_call_enabled(&mut self, caller: &str, callee: &str, enabled: bool) -> Result<usize> {
        let mut toggled = 0;
        for (i, (from, to)) in self.call_edges.iter().enumerate() {
            if from == caller && to == callee {
                self.call_enabled[i] = enabled;
                toggled += 1;
            }
        }
        if toggled == 0 {
            return Err(SimulatorError::InvalidSpec {
                reason: format!("call edge `{caller}` -> `{callee}` not found"),
            });
        }
        Ok(toggled)
    }

    /// Crashes a component (`online = false`) or brings it back. While
    /// offline it processes no load, issues and receives no calls, and
    /// exports no metrics; its load histories keep advancing at zero so
    /// tick alignment survives the outage.
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::UnknownComponent`] for unknown components.
    pub fn set_component_online(&mut self, component: &str, online: bool) -> Result<()> {
        let name = self.known_component(component)?;
        if online {
            self.offline.remove(&name);
        } else {
            self.offline.insert(name);
        }
        Ok(())
    }

    /// Suppresses (or restores) the export of one metric — a monitoring
    /// agent dropout. While disabled the metric records nothing and its
    /// internal state freezes, so a counter resumes from its last value.
    ///
    /// # Errors
    ///
    /// * [`SimulatorError::UnknownComponent`] for unknown components.
    /// * [`SimulatorError::InvalidSpec`] when the metric does not exist.
    pub fn set_metric_enabled(
        &mut self,
        component: &str,
        metric: &str,
        enabled: bool,
    ) -> Result<()> {
        let name = self.known_component(component)?;
        let id = self
            .metric_states
            .get(&name)
            .and_then(|states| states.iter().find(|(id, _)| id.metric == metric))
            .map(|(id, _)| id.clone())
            .ok_or_else(|| SimulatorError::InvalidSpec {
                reason: format!("metric `{metric}` not found in component `{component}`"),
            })?;
        if enabled {
            self.disabled_metrics.remove(&id);
        } else {
            self.disabled_metrics.insert(id);
        }
        Ok(())
    }

    /// Sets the clock skew of a component's monitoring agent, in
    /// milliseconds. Recorded timestamps are shifted by the skew
    /// (saturating at zero); when a skew is later reduced, the store's
    /// monotone-timestamp rule drops the agent's reports until simulated
    /// time catches up with the previously reported clock — exactly how a
    /// stepped-back NTP clock looks to a monitoring pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`SimulatorError::UnknownComponent`] for unknown components.
    pub fn set_clock_skew_ms(&mut self, component: &str, skew_ms: i64) -> Result<()> {
        let name = self.known_component(component)?;
        if skew_ms == 0 {
            self.clock_skew_ms.remove(&name);
        } else {
            self.clock_skew_ms.insert(name, skew_ms);
        }
        Ok(())
    }

    /// Multiplies the external workload by `multiplier` from the next tick
    /// on (load-regime change). Clamped to be nonnegative; 1.0 restores
    /// the configured workload.
    pub fn set_rate_multiplier(&mut self, multiplier: f64) {
        self.rate_multiplier = if multiplier.is_finite() {
            multiplier.max(0.0)
        } else {
            1.0
        };
    }

    /// The current external-workload multiplier.
    pub fn rate_multiplier(&self) -> f64 {
        self.rate_multiplier
    }

    /// Applies a [`FaultScenario`](crate::fault::FaultScenario) to the *running* simulation — the
    /// mid-stream counterpart of building a faulty [`AppSpec`] up front.
    /// Metric states whose specification is unchanged keep their internal
    /// state (counters keep counting); added or behaviour-replaced metrics
    /// get fresh deterministic states seeded from the component and metric
    /// names, so two runs applying the same scenario at the same tick stay
    /// bitwise identical. Call edges, reachability, latency bases and
    /// per-edge enable flags are re-resolved against the faulty spec.
    ///
    /// # Errors
    ///
    /// Propagates [`FaultScenario::apply`](crate::fault::FaultScenario::apply) and [`AppSpec::validate`]
    /// failures; on error the simulation is unchanged.
    pub fn apply_faults(&mut self, scenario: &crate::fault::FaultScenario) -> Result<()> {
        let new_spec = scenario.applied_to(&self.spec)?;
        new_spec.validate()?;

        for component in new_spec.components() {
            let component_name = Name::new(&component.name);
            let old_states = self
                .metric_states
                .remove(&component_name)
                .unwrap_or_default();
            let mut old_by_name: BTreeMap<&str, &(MetricId, MetricState)> = BTreeMap::new();
            for entry in &old_states {
                old_by_name.insert(entry.0.metric.as_str(), entry);
            }
            let states: Vec<(MetricId, MetricState)> = component
                .metrics
                .iter()
                .map(|m| match old_by_name.get(m.name.as_str()) {
                    Some((id, state)) if state.spec() == m => (id.clone(), (*state).clone()),
                    _ => (
                        MetricId::new(component_name.clone(), m.name.as_str()),
                        MetricState::new(
                            m.clone(),
                            chaos_metric_seed(self.config.seed, &component.name, &m.name),
                        ),
                    ),
                })
                .collect();
            self.metric_states.insert(component_name.clone(), states);
            let base = component
                .metrics
                .iter()
                .find_map(|m| match &m.behavior {
                    crate::metrics::MetricBehavior::Latency { base_ms, .. } => Some(*base_ms),
                    _ => None,
                })
                .unwrap_or(10.0);
            self.latency_base_ms.insert(component_name, base);
        }

        let old_enabled: BTreeMap<(Name, Name), bool> = self
            .call_edges
            .iter()
            .cloned()
            .zip(self.call_enabled.iter().copied())
            .collect();
        self.call_edges = new_spec
            .calls()
            .iter()
            .map(|c| (Name::new(&c.caller), Name::new(&c.callee)))
            .collect();
        self.call_enabled = self
            .call_edges
            .iter()
            .map(|edge| old_enabled.get(edge).copied().unwrap_or(true))
            .collect();
        self.reachable = reachable_from(&new_spec, &new_spec.entrypoint);
        self.spec = new_spec;
        Ok(())
    }

    fn known_component(&self, component: &str) -> Result<Name> {
        self.metric_states
            .keys()
            .find(|n| n.as_str() == component)
            .cloned()
            .ok_or_else(|| SimulatorError::UnknownComponent {
                name: component.to_string(),
            })
    }

    /// Whether the simulation has processed all ticks.
    pub fn is_finished(&self) -> bool {
        self.current_tick >= self.total_ticks
    }

    /// End-to-end latency samples recorded so far (one per tick).
    pub fn latency_samples(&self) -> &[f64] {
        &self.latency_samples
    }

    /// Advances the simulation by one tick. Returns `None` once the
    /// configured duration has been simulated.
    pub fn step(&mut self) -> Option<TickSnapshot> {
        self.step_observed(|_, _, _| {})
    }

    /// Like [`Simulation::step`], but invokes `observer` for every metric
    /// point offered to the store — `(id, timestamp_ms, value)`, in record
    /// order. Feeding the observed stream to a fresh [`MetricStore`] (or a
    /// serving layer's ingest path) reproduces this simulation's store
    /// contents exactly, including the points a skewed clock makes the
    /// store drop: the observer sees what the monitoring agent *sent*, the
    /// store decides what survives.
    pub fn step_observed(
        &mut self,
        mut observer: impl FnMut(&MetricId, u64, f64),
    ) -> Option<TickSnapshot> {
        if self.is_finished() {
            return None;
        }
        let tick = self.current_tick;
        let time_ms = (tick as u64 + 1) * self.config.tick_ms;
        let offered = self.workload.rate_at(tick, self.total_ticks) * self.rate_multiplier;

        // 1. Request rates: external load at the entrypoint plus propagated
        //    load from callers at earlier ticks. Disabled edges propagate
        //    nothing; crashed components neither issue nor receive calls.
        let mut rates: BTreeMap<Name, f64> = self
            .request_history
            .keys()
            .map(|n| (n.clone(), 0.0))
            .collect();
        *rates
            .get_mut(self.spec.entrypoint.as_str())
            .expect("validated") += offered;
        for (i, (call, (caller, callee))) in self
            .spec
            .calls()
            .iter()
            .zip(self.call_edges.iter())
            .enumerate()
        {
            if !self.call_enabled[i]
                || self.offline.contains(caller)
                || self.offline.contains(callee)
            {
                continue;
            }
            let lag_ticks = (call.lag_ms / self.config.tick_ms).max(1) as usize;
            if tick < lag_ticks {
                continue;
            }
            let caller_rate = self
                .request_history
                .get(caller)
                .and_then(|h| h.get(tick - lag_ticks))
                .copied()
                .unwrap_or(0.0);
            let propagated = call.fanout * caller_rate;
            if let Some(slot) = rates.get_mut(callee) {
                *slot += propagated;
            }
            // Tracing: record the calls made during this tick.
            self.tracer
                .record(caller, callee, propagated.round() as u64);
        }
        // A crashed component processes nothing, wherever the load came from.
        for component in &self.offline {
            if let Some(slot) = rates.get_mut(component) {
                *slot = 0.0;
            }
        }

        // 2. Per-instance loads and metric sampling. Histories are pushed
        //    for every component every tick (crashed ones at zero) so tick
        //    alignment survives outages; crashed components and disabled
        //    metrics export nothing, and a metric skipped this tick keeps
        //    its internal state (a counter resumes from its last value).
        let mut component_loads = BTreeMap::new();
        for (component, rate) in &rates {
            let instances = self.instances.get(component).copied().unwrap_or(1).max(1);
            let load = rate / instances as f64;
            self.request_history
                .get_mut(component)
                .expect("component registered")
                .push(*rate);
            let history = self
                .load_history
                .get_mut(component)
                .expect("component registered");
            history.push(load);
            component_loads.insert(component.clone(), load);

            if self.offline.contains(component) {
                continue;
            }
            let skew = self.clock_skew_ms.get(component).copied().unwrap_or(0);
            let stamp = if skew >= 0 {
                time_ms.saturating_add(skew as u64)
            } else {
                time_ms.saturating_sub(skew.unsigned_abs())
            };
            let states = self
                .metric_states
                .get_mut(component)
                .expect("component registered");
            for (id, state) in states.iter_mut() {
                if self.disabled_metrics.contains(id) {
                    continue;
                }
                let value = state.sample(tick, history);
                self.store.record(id, stamp, value);
                observer(id, stamp, value);
            }
        }

        // 3. End-to-end latency across all components reachable from the
        //    entrypoint (crashed components fail requests instead of
        //    serving them, so they contribute no latency sample).
        let mut latency = 0.0;
        for component in &self.reachable {
            if self.offline.contains(component) {
                continue;
            }
            let load = component_loads.get(component).copied().unwrap_or(0.0);
            let capacity = self
                .spec
                .component(component)
                .map(|c| c.capacity_per_instance)
                .unwrap_or(100.0);
            let base = self.latency_base_ms.get(component).copied().unwrap_or(10.0);
            let utilisation = load / capacity.max(1e-9);
            latency += base * (1.0 + utilisation * utilisation);
        }
        // The tracing overhead applies to every request end-to-end.
        latency *= self.config.tracing_mode.overhead_factor().clamp(1.0, 1.25);
        self.latency_samples.push(latency);

        self.current_tick += 1;
        Some(TickSnapshot {
            tick,
            time_ms,
            offered_load: offered,
            component_loads,
            end_to_end_latency_ms: latency,
        })
    }

    /// Runs the remaining ticks to completion and returns the number of
    /// ticks executed.
    pub fn run_to_completion(&mut self) -> usize {
        let mut executed = 0;
        while self.step().is_some() {
            executed += 1;
        }
        executed
    }

    /// Snapshots the series touched since the last drain and advances the
    /// store's epoch watermark — the streaming counterpart of
    /// [`Simulation::run_to_completion`]: a driver alternates
    /// [`Simulation::step`] calls with `drain_delta` and feeds each delta
    /// to an incremental analysis session.
    pub fn drain_delta(&self) -> crate::store::StoreDelta {
        self.store.drain_delta()
    }

    /// Advances the simulation by up to `ticks` ticks and drains the
    /// resulting delta in one call — one "observation epoch" of a
    /// streaming monitoring loop. Returns the delta and the number of
    /// ticks actually executed (less than `ticks` at the end of the run).
    pub fn step_epoch(&mut self, ticks: usize) -> (crate::store::StoreDelta, usize) {
        let mut executed = 0;
        while executed < ticks && self.step().is_some() {
            executed += 1;
        }
        (self.drain_delta(), executed)
    }
}

/// Deterministic per-metric seed for states created by a mid-run fault:
/// derived from the simulation seed and the component/metric names (an
/// FNV-style byte fold), so the stream a fault introduces is independent
/// of metric ordering and reproducible across runs.
fn chaos_metric_seed(base: u64, component: &str, metric: &str) -> u64 {
    let mut h = base ^ 0xC3A5_C85C_97CB_3127;
    for b in component
        .bytes()
        .chain(std::iter::once(0xFF))
        .chain(metric.bytes())
    {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        h ^= h >> 29;
    }
    h
}

/// Components reachable from `start` along call edges (including `start`).
fn reachable_from(spec: &AppSpec, start: &str) -> BTreeSet<Name> {
    let mut visited: BTreeSet<Name> = BTreeSet::new();
    let mut stack = vec![Name::new(start)];
    while let Some(node) = stack.pop() {
        if !visited.insert(node.clone()) {
            continue;
        }
        for call in spec.calls() {
            if call.caller == node && !visited.contains(call.callee.as_str()) {
                stack.push(Name::new(&call.callee));
            }
        }
    }
    visited
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{CallSpec, ComponentSpec};
    use crate::metrics::{MetricBehavior, MetricSpec};

    fn three_tier_app() -> AppSpec {
        let mut app = AppSpec::new("threetier", "lb");
        app.add_component(
            ComponentSpec::new("lb")
                .with_metric(MetricSpec::gauge(
                    "requests_per_s",
                    MetricBehavior::load_proportional(1.0),
                ))
                .with_metric(MetricSpec::gauge("cpu", MetricBehavior::cpu_like(0.5))),
        );
        app.add_component(
            ComponentSpec::new("web")
                .with_metric(MetricSpec::gauge(
                    "http_latency_ms",
                    MetricBehavior::latency(20.0, 80.0),
                ))
                .with_metric(MetricSpec::gauge("cpu", MetricBehavior::cpu_like(1.0)))
                .with_metric(MetricSpec::gauge(
                    "constant_buffer",
                    MetricBehavior::constant(64.0),
                )),
        );
        app.add_component(
            ComponentSpec::new("db")
                .with_metric(MetricSpec::gauge(
                    "queries_per_s",
                    MetricBehavior::load_proportional(3.0),
                ))
                .with_metric(MetricSpec::counter(
                    "bytes_written_total",
                    MetricBehavior::counter(10.0),
                )),
        );
        app.add_call(CallSpec::new("lb", "web").with_lag_ms(500));
        app.add_call(CallSpec::new("web", "db").with_fanout(2.0).with_lag_ms(500));
        app
    }

    fn run_sim(workload: Workload, duration_ms: u64, seed: u64) -> Simulation {
        let config = SimConfig::new(seed).with_duration_ms(duration_ms);
        let mut sim = Simulation::new(three_tier_app(), workload, config).unwrap();
        sim.run_to_completion();
        sim
    }

    #[test]
    fn records_every_metric_for_every_tick() {
        let sim = run_sim(Workload::constant(30.0), 30_000, 1);
        let store = sim.store();
        assert_eq!(store.series_count(), 7);
        let id = MetricId::new("web", "cpu");
        assert_eq!(store.series(&id).unwrap().len(), 60);
    }

    #[test]
    fn call_graph_matches_the_topology() {
        let sim = run_sim(Workload::constant(30.0), 20_000, 2);
        let g = sim.call_graph();
        assert!(g.has_edge("lb", "web"));
        assert!(g.has_edge("web", "db"));
        assert!(!g.has_edge("db", "web"));
        assert_eq!(g.component_count(), 3);
        assert!(
            g.call_count("web", "db") > g.call_count("lb", "web"),
            "fanout 2 doubles calls"
        );
    }

    #[test]
    fn load_propagates_downstream_with_lag() {
        // A spike starting at tick 10 must reach the db (two hops, one tick
        // lag each) around tick 12, not earlier.
        let workload = Workload::spike(0.0, 100.0, 10, 40);
        let sim = run_sim(workload, 30_000, 3);
        let db_series = sim
            .store()
            .series(&MetricId::new("db", "queries_per_s"))
            .unwrap();
        let values = db_series.values();
        assert!(
            values[..11].iter().all(|&v| v < 10.0),
            "no load before the spike propagates"
        );
        assert!(
            values[13] > 100.0,
            "db sees the fanned-out spike after two lag ticks"
        );
    }

    #[test]
    fn latency_increases_under_overload() {
        let light = run_sim(Workload::constant(5.0), 30_000, 4);
        let heavy = run_sim(Workload::constant(500.0), 30_000, 4);
        let light_p90 = sieve_timeseries::stats::percentile(light.latency_samples(), 90.0).unwrap();
        let heavy_p90 = sieve_timeseries::stats::percentile(heavy.latency_samples(), 90.0).unwrap();
        assert!(
            heavy_p90 > 3.0 * light_p90,
            "p90 {heavy_p90} vs {light_p90}"
        );
    }

    #[test]
    fn adding_instances_reduces_latency() {
        let config = SimConfig::new(5).with_duration_ms(30_000);
        let mut scaled =
            Simulation::new(three_tier_app(), Workload::constant(300.0), config).unwrap();
        scaled.set_instances("web", 8).unwrap();
        scaled.set_instances("db", 8).unwrap();
        scaled.run_to_completion();
        let unscaled = run_sim(Workload::constant(300.0), 30_000, 5);
        let scaled_mean: f64 =
            scaled.latency_samples().iter().sum::<f64>() / scaled.latency_samples().len() as f64;
        let unscaled_mean: f64 = unscaled.latency_samples().iter().sum::<f64>()
            / unscaled.latency_samples().len() as f64;
        assert!(scaled_mean < unscaled_mean);
        assert_eq!(scaled.instances("web"), 8);
        assert_eq!(scaled.total_instances(), 17);
    }

    #[test]
    fn set_instances_rejects_unknown_component_and_clamps_to_one() {
        let config = SimConfig::new(6).with_duration_ms(10_000);
        let mut sim = Simulation::new(three_tier_app(), Workload::constant(1.0), config).unwrap();
        assert!(sim.set_instances("nope", 3).is_err());
        sim.set_instances("web", 0).unwrap();
        assert_eq!(sim.instances("web"), 1);
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let a = run_sim(Workload::randomized(40.0, 9), 20_000, 77);
        let b = run_sim(Workload::randomized(40.0, 9), 20_000, 77);
        let id = MetricId::new("db", "queries_per_s");
        assert_eq!(
            a.store().series(&id).unwrap(),
            b.store().series(&id).unwrap()
        );
        // A different seed changes the noise.
        let c = run_sim(Workload::randomized(40.0, 9), 20_000, 78);
        assert_ne!(
            a.store().series(&id).unwrap(),
            c.store().series(&id).unwrap()
        );
    }

    #[test]
    fn step_reports_snapshots_until_finished() {
        let config = SimConfig::new(1).with_duration_ms(5_000);
        let mut sim = Simulation::new(three_tier_app(), Workload::constant(10.0), config).unwrap();
        let mut count = 0;
        while let Some(snap) = sim.step() {
            assert_eq!(snap.tick, count);
            assert!(snap.end_to_end_latency_ms > 0.0);
            assert_eq!(snap.component_loads.len(), 3);
            count += 1;
        }
        assert_eq!(count, 10);
        assert!(sim.is_finished());
        assert!(sim.step().is_none());
    }

    #[test]
    fn step_epoch_streams_deltas_matching_a_batch_run() {
        // Streaming mode: alternating step/drain must record exactly the
        // same store content as one uninterrupted run.
        let config = SimConfig::new(21).with_duration_ms(20_000);
        let mut streamed =
            Simulation::new(three_tier_app(), Workload::randomized(30.0, 2), config).unwrap();
        let mut epochs = 0;
        loop {
            let (delta, executed) = streamed.step_epoch(7);
            if executed == 0 {
                assert!(delta.is_empty());
                break;
            }
            epochs += 1;
            assert_eq!(delta.epoch, epochs);
            // Every tick touches every metric, so each non-final epoch
            // reports all seven series.
            assert_eq!(delta.touched.len(), 7);
            assert_eq!(delta.touched_components().len(), 3);
        }
        assert_eq!(epochs, 6, "40 ticks in epochs of 7");

        let batch = run_sim(Workload::randomized(30.0, 2), 20_000, 21);
        let id = MetricId::new("db", "queries_per_s");
        assert_eq!(
            streamed.store().series(&id).unwrap(),
            batch.store().series(&id).unwrap()
        );
        assert_eq!(
            streamed.store().fingerprint(&id),
            batch.store().fingerprint(&id)
        );
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let app = three_tier_app();
        assert!(Simulation::new(
            app.clone(),
            Workload::constant(1.0),
            SimConfig::new(1).with_tick_ms(0)
        )
        .is_err());
        assert!(Simulation::new(
            app,
            Workload::constant(1.0),
            SimConfig::new(1).with_duration_ms(0)
        )
        .is_err());
    }

    #[test]
    fn windowed_simulation_bounds_retained_points() {
        let config = SimConfig::new(9)
            .with_duration_ms(60_000)
            .with_retention(RetentionPolicy::windowed(20));
        let mut sim = Simulation::new(three_tier_app(), Workload::constant(25.0), config).unwrap();
        sim.run_to_completion();
        let store = sim.store();
        assert_eq!(store.point_count(), 120 * 7, "every tick still recorded");
        assert_eq!(store.retained_point_count(), 20 * 7);
        let series = store.series(&MetricId::new("web", "cpu")).unwrap();
        assert_eq!(series.len(), 20);
        // The retained window is the exact tail of an unbounded run.
        let oracle = run_sim(Workload::constant(25.0), 60_000, 9);
        let full = oracle.store().series(&MetricId::new("web", "cpu")).unwrap();
        assert_eq!(series.timestamps(), &full.timestamps()[100..]);
        assert_eq!(series.values(), &full.values()[100..]);
    }

    #[test]
    fn disabling_a_call_edge_starves_the_downstream_component() {
        let config = SimConfig::new(31).with_duration_ms(30_000);
        let mut sim = Simulation::new(three_tier_app(), Workload::constant(50.0), config).unwrap();
        for _ in 0..20 {
            sim.step();
        }
        assert_eq!(sim.set_call_enabled("web", "db", false).unwrap(), 1);
        sim.run_to_completion();
        let db = sim
            .store()
            .series(&MetricId::new("db", "queries_per_s"))
            .unwrap();
        let values = db.values();
        assert!(values[15] > 100.0, "db loaded before the edge went down");
        assert!(
            values[25..].iter().all(|&v| v < 10.0),
            "no load after the edge went down"
        );
        assert!(sim.set_call_enabled("db", "lb", false).is_err());
    }

    #[test]
    fn crashed_component_exports_nothing_until_restored() {
        let config = SimConfig::new(32).with_duration_ms(30_000);
        let mut sim = Simulation::new(three_tier_app(), Workload::constant(50.0), config).unwrap();
        for _ in 0..20 {
            sim.step();
        }
        sim.set_component_online("web", false).unwrap();
        for _ in 0..20 {
            sim.step();
        }
        sim.set_component_online("web", true).unwrap();
        sim.run_to_completion();
        let web = sim.store().series(&MetricId::new("web", "cpu")).unwrap();
        // 60 ticks total, 20 of them down: only 40 samples recorded.
        assert_eq!(web.len(), 40);
        // Downstream load collapses while the middle tier is dead: the db
        // receives nothing once in-flight lag drains.
        let db = sim
            .store()
            .series(&MetricId::new("db", "queries_per_s"))
            .unwrap();
        let during_outage: Vec<f64> = db
            .timestamps()
            .iter()
            .zip(db.values())
            .filter(|(&ts, _)| (12_000..20_000).contains(&ts))
            .map(|(_, &v)| v)
            .collect();
        assert!(!during_outage.is_empty());
        assert!(during_outage.iter().all(|&v| v < 10.0));
        assert!(sim.set_component_online("nope", false).is_err());
    }

    #[test]
    fn disabled_metric_drops_out_and_resumes() {
        let config = SimConfig::new(33).with_duration_ms(30_000);
        let mut sim = Simulation::new(three_tier_app(), Workload::constant(20.0), config).unwrap();
        for _ in 0..10 {
            sim.step();
        }
        sim.set_metric_enabled("db", "bytes_written_total", false)
            .unwrap();
        for _ in 0..30 {
            sim.step();
        }
        sim.set_metric_enabled("db", "bytes_written_total", true)
            .unwrap();
        sim.run_to_completion();
        let series = sim
            .store()
            .series(&MetricId::new("db", "bytes_written_total"))
            .unwrap();
        assert_eq!(series.len(), 30, "30 of 60 ticks exported");
        // The counter froze during the dropout instead of jumping.
        let values = series.values();
        assert!(values.windows(2).all(|w| w[1] >= w[0]), "still monotone");
        // Sibling metric is unaffected.
        let sibling = sim
            .store()
            .series(&MetricId::new("db", "queries_per_s"))
            .unwrap();
        assert_eq!(sibling.len(), 60);
        assert!(sim.set_metric_enabled("db", "nope", false).is_err());
        assert!(sim.set_metric_enabled("nope", "x", false).is_err());
    }

    #[test]
    fn clock_skew_shifts_stamps_and_skew_reversal_drops_points() {
        let config = SimConfig::new(34).with_duration_ms(30_000);
        let mut sim = Simulation::new(three_tier_app(), Workload::constant(20.0), config).unwrap();
        sim.set_clock_skew_ms("web", 5_000).unwrap();
        for _ in 0..20 {
            sim.step();
        }
        // The agent's clock steps back to true time: its next reports are
        // older than what it already reported and get dropped until
        // simulated time passes the old skewed watermark.
        sim.set_clock_skew_ms("web", 0).unwrap();
        sim.run_to_completion();
        let web = sim.store().series(&MetricId::new("web", "cpu")).unwrap();
        // Ticks 1..=20 recorded at +5s; ticks 21..30 (10.5s..15s) are below
        // the 15s watermark and dropped; ticks 31..60 advance again.
        assert_eq!(web.len(), 20 + 30);
        assert_eq!(web.timestamps()[0], 5_500);
        assert_eq!(web.timestamps()[19], 15_000);
        assert_eq!(web.timestamps()[20], 15_500);
        // Unskewed components are untouched.
        let lb = sim
            .store()
            .series(&MetricId::new("lb", "requests_per_s"))
            .unwrap();
        assert_eq!(lb.len(), 60);
        assert!(sim.set_clock_skew_ms("nope", 1).is_err());
    }

    #[test]
    fn rate_multiplier_changes_the_load_regime() {
        let config = SimConfig::new(35).with_duration_ms(30_000);
        let mut sim = Simulation::new(three_tier_app(), Workload::constant(40.0), config).unwrap();
        for _ in 0..30 {
            sim.step();
        }
        sim.set_rate_multiplier(3.0);
        assert_eq!(sim.rate_multiplier(), 3.0);
        sim.run_to_completion();
        let lb = sim
            .store()
            .series(&MetricId::new("lb", "requests_per_s"))
            .unwrap();
        let before = lb.values()[..30].iter().sum::<f64>() / 30.0;
        let after = lb.values()[30..].iter().sum::<f64>() / 30.0;
        assert!(
            (after / before - 3.0).abs() < 0.2,
            "regime shift visible at the entrypoint: {before} -> {after}"
        );
        sim.set_rate_multiplier(f64::NAN);
        assert_eq!(sim.rate_multiplier(), 1.0);
        sim.set_rate_multiplier(-2.0);
        assert_eq!(sim.rate_multiplier(), 0.0);
    }

    #[test]
    fn apply_faults_mid_run_swaps_metrics_and_stays_deterministic() {
        use crate::fault::{Fault, FaultScenario};
        let scenario = FaultScenario::new("agent-crash")
            .with_fault(Fault::RemoveMetric {
                component: "db".into(),
                metric: "queries_per_s".into(),
            })
            .with_fault(Fault::AddMetric {
                component: "db".into(),
                metric: MetricSpec::gauge("queries_failed", MetricBehavior::load_proportional(2.0)),
            });
        let run = |seed: u64| {
            let config = SimConfig::new(seed).with_duration_ms(30_000);
            let mut sim =
                Simulation::new(three_tier_app(), Workload::constant(30.0), config).unwrap();
            for _ in 0..30 {
                sim.step();
            }
            sim.apply_faults(&scenario).unwrap();
            sim.run_to_completion();
            sim
        };
        let sim = run(41);
        let removed = sim
            .store()
            .series(&MetricId::new("db", "queries_per_s"))
            .unwrap();
        assert_eq!(removed.len(), 30, "removed metric stops mid-run");
        let added = sim
            .store()
            .series(&MetricId::new("db", "queries_failed"))
            .unwrap();
        assert_eq!(added.len(), 30, "added metric starts mid-run");
        // The surviving counter kept its internal state across the fault.
        let counter = sim
            .store()
            .series(&MetricId::new("db", "bytes_written_total"))
            .unwrap();
        assert_eq!(counter.len(), 60);
        assert!(counter.values().windows(2).all(|w| w[1] >= w[0]));
        // Bitwise deterministic across identical chaos runs.
        let again = run(41);
        for id in [
            MetricId::new("db", "queries_failed"),
            MetricId::new("db", "bytes_written_total"),
            MetricId::new("web", "cpu"),
        ] {
            assert_eq!(sim.store().series(&id), again.store().series(&id));
        }
        // Unknown references fail without corrupting the simulation.
        let mut sim = run(42);
        let bad = FaultScenario::new("bad").with_fault(Fault::RemoveMetric {
            component: "nope".into(),
            metric: "x".into(),
        });
        assert!(sim.apply_faults(&bad).is_err());
        assert_eq!(sim.spec().component_count(), 3);
    }

    #[test]
    fn observed_stream_reproduces_the_store() {
        let config = SimConfig::new(36).with_duration_ms(20_000);
        let mut sim =
            Simulation::new(three_tier_app(), Workload::randomized(30.0, 4), config).unwrap();
        sim.set_clock_skew_ms("web", 2_000).unwrap();
        let mut observed: Vec<(MetricId, u64, f64)> = Vec::new();
        let mut skew_dropped = false;
        let mut tick = 0;
        loop {
            if tick == 15 {
                sim.set_clock_skew_ms("web", 0).unwrap();
                skew_dropped = true;
            }
            let stepped = sim
                .step_observed(|id, ts, v| observed.push((id.clone(), ts, v)))
                .is_some();
            if !stepped {
                break;
            }
            tick += 1;
        }
        assert!(skew_dropped);
        // Replaying the observed stream into a fresh store reproduces the
        // simulation's store exactly — including the skew-reverted points
        // both stores drop by the same monotone-timestamp rule.
        let replay = MetricStore::new();
        for (id, ts, v) in &observed {
            replay.record(id, *ts, *v);
        }
        assert!(
            observed.len() as u64 > replay.point_count(),
            "some points dropped"
        );
        for id in sim.store().metric_ids() {
            assert_eq!(sim.store().series(&id), replay.series(&id));
        }
    }

    #[test]
    fn constant_metric_stays_constant_under_load() {
        let sim = run_sim(Workload::randomized(80.0, 11), 30_000, 8);
        let series = sim
            .store()
            .series(&MetricId::new("web", "constant_buffer"))
            .unwrap();
        assert!(series.values().iter().all(|&v| v == 64.0));
    }
}
