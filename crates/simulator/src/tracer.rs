//! Call-graph tracing and the tracing-overhead model.
//!
//! Sieve obtains the component call graph by observing network-related
//! system calls with sysdig, and the paper compares the overhead of doing so
//! against tcpdump and against no tracing at all (Figure 5: completing 10k
//! HTTP requests takes ~7% longer under tcpdump and ~22% longer under sysdig
//! than natively). The simulator's tracer records RPC edges exactly and
//! models those relative overheads so the Figure 5 experiment can be
//! regenerated.

use sieve_exec::Name;
use sieve_graph::CallGraph;

/// How the call graph is captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TracingMode {
    /// No tracing (baseline).
    Native,
    /// Kernel-module based system-call stream (what Sieve uses).
    Sysdig,
    /// Packet capture on every host.
    Tcpdump,
}

impl TracingMode {
    /// Relative per-request overhead factor of this tracing mode, calibrated
    /// to the measurements of Figure 5 (native = 1.00).
    pub fn overhead_factor(self) -> f64 {
        match self {
            TracingMode::Native => 1.0,
            TracingMode::Sysdig => 1.22,
            TracingMode::Tcpdump => 1.07,
        }
    }

    /// Whether this mode can attribute traffic to the component (process)
    /// that generated it — the reason Sieve picks sysdig despite its higher
    /// overhead.
    pub fn provides_process_context(self) -> bool {
        matches!(self, TracingMode::Sysdig)
    }

    /// All modes, for iteration in experiments.
    pub fn all() -> [TracingMode; 3] {
        [
            TracingMode::Native,
            TracingMode::Sysdig,
            TracingMode::Tcpdump,
        ]
    }
}

impl std::fmt::Display for TracingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            TracingMode::Native => "native",
            TracingMode::Sysdig => "sysdig",
            TracingMode::Tcpdump => "tcpdump",
        };
        f.write_str(name)
    }
}

/// Records component-to-component calls during a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    graph: CallGraph,
    events: u64,
}

impl Tracer {
    /// Creates an idle tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` calls from `caller` to `callee`. Accepts anything
    /// that interns to a [`Name`]; passing `&Name`s (as the simulation
    /// engine does every tick) skips the interner entirely.
    pub fn record(&mut self, caller: impl Into<Name>, callee: impl Into<Name>, count: u64) {
        if count == 0 {
            return;
        }
        self.graph.record_calls(caller, callee, count);
        self.events += count;
    }

    /// Registers a component that may never communicate.
    pub fn register_component(&mut self, name: impl Into<Name>) {
        self.graph.add_component(name);
    }

    /// The call graph observed so far.
    pub fn call_graph(&self) -> &CallGraph {
        &self.graph
    }

    /// Consumes the tracer and returns the call graph.
    pub fn into_call_graph(self) -> CallGraph {
        self.graph
    }

    /// Total number of call events recorded.
    pub fn event_count(&self) -> u64 {
        self.events
    }
}

/// Models the wall-clock time to complete `requests` HTTP requests against a
/// lightweight static-file server under the given tracing mode — the Figure 5
/// microbenchmark. `base_request_us` is the native per-request service time
/// in microseconds (the paper's Nginx setup completes 10k requests in ~0.35 s
/// natively, i.e. ~35 µs per request).
pub fn completion_time_s(requests: u64, base_request_us: f64, mode: TracingMode) -> f64 {
    requests as f64 * base_request_us * mode.overhead_factor() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_builds_call_graph() {
        let mut t = Tracer::new();
        t.record("haproxy", "web", 5);
        t.record("web", "mongodb", 3);
        t.record("web", "mongodb", 2);
        t.register_component("spelling");
        assert_eq!(t.event_count(), 10);
        let g = t.call_graph();
        assert_eq!(g.call_count("web", "mongodb"), 5);
        assert!(g.components().iter().any(|c| c == "spelling"));
        let owned = t.into_call_graph();
        assert_eq!(owned.edge_count(), 2);
    }

    #[test]
    fn zero_count_records_are_ignored() {
        let mut t = Tracer::new();
        t.record("a", "b", 0);
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.call_graph().edge_count(), 0);
    }

    #[test]
    fn overhead_ordering_matches_figure_5() {
        // native < tcpdump < sysdig
        let native = completion_time_s(10_000, 35.0, TracingMode::Native);
        let tcpdump = completion_time_s(10_000, 35.0, TracingMode::Tcpdump);
        let sysdig = completion_time_s(10_000, 35.0, TracingMode::Sysdig);
        assert!(native < tcpdump && tcpdump < sysdig);
        // Roughly 7% and 22% overhead respectively.
        assert!(((tcpdump / native) - 1.07).abs() < 1e-9);
        assert!(((sysdig / native) - 1.22).abs() < 1e-9);
    }

    #[test]
    fn only_sysdig_provides_process_context() {
        assert!(TracingMode::Sysdig.provides_process_context());
        assert!(!TracingMode::Tcpdump.provides_process_context());
        assert!(!TracingMode::Native.provides_process_context());
    }

    #[test]
    fn display_names_are_lowercase() {
        assert_eq!(TracingMode::Native.to_string(), "native");
        assert_eq!(TracingMode::Sysdig.to_string(), "sysdig");
        assert_eq!(TracingMode::Tcpdump.to_string(), "tcpdump");
        assert_eq!(TracingMode::all().len(), 3);
    }
}
