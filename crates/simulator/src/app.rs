//! Declarative application models: components, metrics and RPC topology.
//!
//! An [`AppSpec`] is the simulator's stand-in for a deployed
//! microservices-based application: a set of [`ComponentSpec`]s (each
//! exporting metrics) connected by [`CallSpec`] edges along which request
//! load propagates. The concrete ShareLatex- and OpenStack-like models live
//! in the `sieve-apps` crate.

use crate::metrics::MetricSpec;
use crate::{Result, SimulatorError};
use std::collections::BTreeMap;

/// One microservice component and the metrics it exports.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSpec {
    /// Component name (unique within the application).
    pub name: String,
    /// Metrics exported by this component.
    pub metrics: Vec<MetricSpec>,
    /// Number of instances initially deployed (autoscaling changes this at
    /// runtime).
    pub instances: usize,
    /// Per-instance load at which the component saturates; used by the
    /// built-in latency model.
    pub capacity_per_instance: f64,
}

impl ComponentSpec {
    /// Creates a component with one instance and a default capacity of 100
    /// load units per instance.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            metrics: Vec::new(),
            instances: 1,
            capacity_per_instance: 100.0,
        }
    }

    /// Adds a metric (builder style).
    pub fn with_metric(mut self, metric: MetricSpec) -> Self {
        self.metrics.push(metric);
        self
    }

    /// Adds several metrics (builder style).
    pub fn with_metrics(mut self, metrics: impl IntoIterator<Item = MetricSpec>) -> Self {
        self.metrics.extend(metrics);
        self
    }

    /// Sets the initial instance count (builder style).
    pub fn with_instances(mut self, instances: usize) -> Self {
        self.instances = instances.max(1);
        self
    }

    /// Sets the per-instance capacity (builder style).
    pub fn with_capacity(mut self, capacity: f64) -> Self {
        self.capacity_per_instance = capacity.max(1e-6);
        self
    }

    /// Number of metrics exported by this component.
    pub fn metric_count(&self) -> usize {
        self.metrics.len()
    }
}

/// A caller→callee RPC relationship along which load propagates.
#[derive(Debug, Clone, PartialEq)]
pub struct CallSpec {
    /// The calling component.
    pub caller: String,
    /// The called component.
    pub callee: String,
    /// How many downstream requests each incoming request at the caller
    /// generates on this edge.
    pub fanout: f64,
    /// Propagation delay of the load effect, in milliseconds.
    pub lag_ms: u64,
}

impl CallSpec {
    /// Creates a call edge with fanout 1.0 and a 500 ms lag (one tick at the
    /// default discretisation).
    pub fn new(caller: impl Into<String>, callee: impl Into<String>) -> Self {
        Self {
            caller: caller.into(),
            callee: callee.into(),
            fanout: 1.0,
            lag_ms: 500,
        }
    }

    /// Sets the fanout (builder style).
    pub fn with_fanout(mut self, fanout: f64) -> Self {
        self.fanout = fanout.max(0.0);
        self
    }

    /// Sets the propagation lag (builder style).
    pub fn with_lag_ms(mut self, lag_ms: u64) -> Self {
        self.lag_ms = lag_ms;
        self
    }
}

/// A complete application model.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Application name (e.g. "sharelatex").
    pub name: String,
    /// Name of the component that receives the external workload.
    pub entrypoint: String,
    components: BTreeMap<String, ComponentSpec>,
    calls: Vec<CallSpec>,
}

impl AppSpec {
    /// Creates an application with the given name and entrypoint component
    /// (the entrypoint must still be added via [`AppSpec::add_component`]).
    pub fn new(name: impl Into<String>, entrypoint: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            entrypoint: entrypoint.into(),
            components: BTreeMap::new(),
            calls: Vec::new(),
        }
    }

    /// Adds (or replaces) a component.
    pub fn add_component(&mut self, component: ComponentSpec) {
        self.components.insert(component.name.clone(), component);
    }

    /// Adds a call edge.
    pub fn add_call(&mut self, call: CallSpec) {
        self.calls.push(call);
    }

    /// All components, sorted by name.
    pub fn components(&self) -> impl Iterator<Item = &ComponentSpec> {
        self.components.values()
    }

    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<&ComponentSpec> {
        self.components.get(name)
    }

    /// Mutable access to a component (used by fault injection).
    pub fn component_mut(&mut self, name: &str) -> Option<&mut ComponentSpec> {
        self.components.get_mut(name)
    }

    /// All call edges.
    pub fn calls(&self) -> &[CallSpec] {
        &self.calls
    }

    /// Mutable access to the call edges (used by fault injection).
    pub fn calls_mut(&mut self) -> &mut Vec<CallSpec> {
        &mut self.calls
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// Component names, sorted.
    pub fn component_names(&self) -> Vec<String> {
        self.components.keys().cloned().collect()
    }

    /// Total number of metrics exported by the whole application (the
    /// quantity reported in Table 1 of the paper).
    pub fn total_metric_count(&self) -> usize {
        self.components.values().map(|c| c.metrics.len()).sum()
    }

    /// Validates the specification: the entrypoint and every call endpoint
    /// must exist, every component must export at least one metric and
    /// metric names must be unique within a component.
    ///
    /// # Errors
    ///
    /// * [`SimulatorError::UnknownComponent`] for dangling references.
    /// * [`SimulatorError::InvalidSpec`] for empty/duplicate metric sets.
    pub fn validate(&self) -> Result<()> {
        if self.components.is_empty() {
            return Err(SimulatorError::InvalidSpec {
                reason: "application has no components".to_string(),
            });
        }
        if !self.components.contains_key(&self.entrypoint) {
            return Err(SimulatorError::UnknownComponent {
                name: self.entrypoint.clone(),
            });
        }
        for call in &self.calls {
            for endpoint in [&call.caller, &call.callee] {
                if !self.components.contains_key(endpoint) {
                    return Err(SimulatorError::UnknownComponent {
                        name: endpoint.clone(),
                    });
                }
            }
        }
        for component in self.components.values() {
            if component.metrics.is_empty() {
                return Err(SimulatorError::InvalidSpec {
                    reason: format!("component `{}` exports no metrics", component.name),
                });
            }
            let mut names: Vec<&str> = component.metrics.iter().map(|m| m.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            if names.len() != before {
                return Err(SimulatorError::InvalidSpec {
                    reason: format!("component `{}` has duplicate metric names", component.name),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricBehavior;

    fn metric(name: &str) -> MetricSpec {
        MetricSpec::gauge(name, MetricBehavior::load_proportional(1.0))
    }

    fn valid_app() -> AppSpec {
        let mut app = AppSpec::new("test", "frontend");
        app.add_component(ComponentSpec::new("frontend").with_metric(metric("requests")));
        app.add_component(
            ComponentSpec::new("backend")
                .with_metric(metric("queries"))
                .with_instances(2)
                .with_capacity(50.0),
        );
        app.add_call(
            CallSpec::new("frontend", "backend")
                .with_fanout(2.0)
                .with_lag_ms(1000),
        );
        app
    }

    #[test]
    fn valid_spec_passes_validation() {
        let app = valid_app();
        assert!(app.validate().is_ok());
        assert_eq!(app.component_count(), 2);
        assert_eq!(app.total_metric_count(), 2);
        assert_eq!(app.component_names(), vec!["backend", "frontend"]);
    }

    #[test]
    fn builders_apply_settings() {
        let app = valid_app();
        let backend = app.component("backend").unwrap();
        assert_eq!(backend.instances, 2);
        assert_eq!(backend.capacity_per_instance, 50.0);
        let call = &app.calls()[0];
        assert_eq!(call.fanout, 2.0);
        assert_eq!(call.lag_ms, 1000);
    }

    #[test]
    fn missing_entrypoint_is_rejected() {
        let mut app = AppSpec::new("test", "missing");
        app.add_component(ComponentSpec::new("a").with_metric(metric("m")));
        assert!(matches!(
            app.validate(),
            Err(SimulatorError::UnknownComponent { .. })
        ));
    }

    #[test]
    fn dangling_call_is_rejected() {
        let mut app = valid_app();
        app.add_call(CallSpec::new("backend", "nowhere"));
        assert!(matches!(
            app.validate(),
            Err(SimulatorError::UnknownComponent { name }) if name == "nowhere"
        ));
    }

    #[test]
    fn component_without_metrics_is_rejected() {
        let mut app = valid_app();
        app.add_component(ComponentSpec::new("empty"));
        assert!(matches!(
            app.validate(),
            Err(SimulatorError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn duplicate_metric_names_are_rejected() {
        let mut app = valid_app();
        app.add_component(
            ComponentSpec::new("dupe")
                .with_metric(metric("m"))
                .with_metric(metric("m")),
        );
        assert!(matches!(
            app.validate(),
            Err(SimulatorError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn empty_application_is_rejected() {
        let app = AppSpec::new("empty", "x");
        assert!(matches!(
            app.validate(),
            Err(SimulatorError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn instances_are_clamped_to_at_least_one() {
        let c = ComponentSpec::new("c").with_instances(0);
        assert_eq!(c.instances, 1);
    }
}
