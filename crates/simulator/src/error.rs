use std::fmt;

/// Errors produced by the application simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimulatorError {
    /// The application specification references an unknown component.
    UnknownComponent {
        /// The missing component name.
        name: String,
    },
    /// The application specification is invalid.
    InvalidSpec {
        /// Explanation of the problem.
        reason: String,
    },
    /// A simulation parameter is out of range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Explanation of the violation.
        reason: String,
    },
}

impl fmt::Display for SimulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimulatorError::UnknownComponent { name } => {
                write!(f, "unknown component `{name}`")
            }
            SimulatorError::InvalidSpec { reason } => {
                write!(f, "invalid application spec: {reason}")
            }
            SimulatorError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SimulatorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = vec![
            SimulatorError::UnknownComponent { name: "web".into() },
            SimulatorError::InvalidSpec {
                reason: "no entrypoint".into(),
            },
            SimulatorError::InvalidParameter {
                name: "tick_ms",
                reason: "must be positive".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
