//! Workload (load) generators.
//!
//! Sieve requires an application-specific load generator (Locust for
//! ShareLatex, Rally for OpenStack) and, for the autoscaling evaluation, a
//! one-hour trace shaped like the 1998 soccer World Cup HTTP trace (§6.2).
//! This module provides deterministic, seedable equivalents: constant, ramp,
//! spike, randomized and session-based workloads plus a
//! [`Workload::worldcup_like`] trace with the same "slow build-up, sharp
//! spike, decay" shape.

use crate::metrics::deterministic_noise;

/// A workload: the external request rate offered to the application's
/// entrypoint as a function of time.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// Constant request rate.
    Constant {
        /// Requests per tick.
        rate: f64,
    },
    /// Linear ramp from `start_rate` to `end_rate` over the run.
    Ramp {
        /// Rate at the first tick.
        start_rate: f64,
        /// Rate at the last tick.
        end_rate: f64,
    },
    /// Baseline load with periodic sinusoidal variation — the randomized
    /// load shape used for the robustness measurements.
    Oscillating {
        /// Baseline requests per tick.
        base: f64,
        /// Amplitude of the oscillation.
        amplitude: f64,
        /// Period in ticks.
        period_ticks: usize,
        /// Relative amplitude of deterministic noise (0 disables it).
        noise: f64,
        /// Seed for the noise stream.
        seed: u64,
    },
    /// Baseline load with a square spike in the middle of the run.
    Spike {
        /// Baseline requests per tick.
        base: f64,
        /// Requests per tick during the spike.
        peak: f64,
        /// Tick at which the spike starts.
        start_tick: usize,
        /// Tick at which the spike ends (exclusive).
        end_tick: usize,
    },
    /// A session-arrival trace: each entry is the request rate for one tick.
    Trace {
        /// Requests per tick, one entry per tick (the last value is held if
        /// the simulation runs longer).
        rates: Vec<f64>,
    },
    /// Independent Poisson arrivals: the per-tick request count is drawn
    /// from a Poisson distribution with the given mean, so consecutive
    /// ticks are genuinely bursty (variance equals the mean) instead of
    /// smoothly oscillating — the M/M/c-style arrival process used by the
    /// chaos scenarios.
    Poisson {
        /// Mean arrivals per tick (clamped to `[0, 600]` so the Knuth
        /// sampler's `exp(-lambda)` stays representable).
        lambda_per_tick: f64,
        /// Seed for the deterministic arrival stream.
        seed: u64,
    },
}

/// A scripted load burst inside a [`Workload::diurnal_bursts`] trace: the
/// ground truth the autoscaling score checks reactions against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// First tick of the burst.
    pub start_tick: usize,
    /// Burst length in ticks.
    pub duration_ticks: usize,
    /// Mean arrival rate during the burst (replaces the diurnal mean).
    pub peak_rate: f64,
}

impl Burst {
    /// Creates a burst.
    pub fn new(start_tick: usize, duration_ticks: usize, peak_rate: f64) -> Self {
        Self {
            start_tick,
            duration_ticks,
            peak_rate,
        }
    }

    /// First tick after the burst.
    pub fn end_tick(&self) -> usize {
        self.start_tick + self.duration_ticks
    }

    /// Whether `tick` falls inside the burst window.
    pub fn contains(&self, tick: usize) -> bool {
        (self.start_tick..self.end_tick()).contains(&tick)
    }
}

/// Draws one Poisson-distributed arrival count, deterministically in
/// `(seed, step)`: Knuth's product-of-uniforms algorithm over the same
/// splitmix-style stream as [`deterministic_noise`]. `lambda` is clamped to
/// `[0, 600]` so `exp(-lambda)` stays above `f64::MIN_POSITIVE`.
pub fn poisson_sample(seed: u64, step: u64, lambda: f64) -> f64 {
    let lambda = if lambda.is_finite() {
        lambda.clamp(0.0, 600.0)
    } else {
        0.0
    };
    if lambda == 0.0 {
        return 0.0;
    }
    let limit = (-lambda).exp();
    let stream = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(step.wrapping_mul(0xD1B54A32D192ED03));
    let mut product = 1.0_f64;
    let mut count = 0u64;
    loop {
        let uniform = deterministic_noise(stream, count) + 0.5;
        product *= uniform;
        if product <= limit {
            return count as f64;
        }
        count += 1;
    }
}

impl Workload {
    /// Constant workload.
    pub fn constant(rate: f64) -> Self {
        Workload::Constant { rate }
    }

    /// Linear ramp workload.
    pub fn ramp(start_rate: f64, end_rate: f64) -> Self {
        Workload::Ramp {
            start_rate,
            end_rate,
        }
    }

    /// Randomized oscillating workload (the "random workloads" used for
    /// Sieve's robustness evaluation, §6.1).
    pub fn randomized(base: f64, seed: u64) -> Self {
        Workload::Oscillating {
            base,
            amplitude: base * 0.6,
            period_ticks: 37 + (seed % 23) as usize,
            noise: 0.3,
            seed,
        }
    }

    /// Square spike workload.
    pub fn spike(base: f64, peak: f64, start_tick: usize, end_tick: usize) -> Self {
        Workload::Spike {
            base,
            peak,
            start_tick,
            end_tick,
        }
    }

    /// A synthetic one-hour HTTP trace with the shape of the WorldCup-98
    /// sample used by the paper: a slow diurnal build-up, a sharp spike
    /// around two thirds of the trace, and a decay back to the baseline.
    /// `total_ticks` controls the resolution; `peak_rate` the height of the
    /// spike; `seed` the deterministic jitter.
    pub fn worldcup_like(total_ticks: usize, peak_rate: f64, seed: u64) -> Self {
        let mut rates = Vec::with_capacity(total_ticks);
        for t in 0..total_ticks {
            let phase = t as f64 / total_ticks.max(1) as f64;
            // Diurnal build-up: half a sine over the trace.
            let diurnal = 0.35 + 0.4 * (std::f64::consts::PI * phase).sin();
            // Sharp event spike centred at 65% of the trace.
            let spike = 0.9 * (-((phase - 0.65) / 0.06).powi(2)).exp();
            // Session-level burstiness.
            let jitter = 0.12 * deterministic_noise(seed, t as u64);
            let rate = peak_rate * (diurnal + spike) * (1.0 + jitter);
            rates.push(rate.max(0.0));
        }
        Workload::Trace { rates }
    }

    /// Poisson arrivals with the given mean per tick.
    pub fn poisson(lambda_per_tick: f64, seed: u64) -> Self {
        Workload::Poisson {
            lambda_per_tick,
            seed,
        }
    }

    /// A diurnal trace with Poisson burstiness and scripted load bursts:
    /// the per-tick mean follows `base * (1 + relative_amplitude *
    /// sin(2*pi*t/period_ticks))`, each [`Burst`] window replaces the mean
    /// with its `peak_rate`, and the offered rate is a Poisson draw around
    /// that mean — diurnal shape, bursty arrivals, and a ground-truth burst
    /// schedule in one trace. Fully deterministic in `seed`.
    pub fn diurnal_bursts(
        total_ticks: usize,
        base: f64,
        relative_amplitude: f64,
        period_ticks: usize,
        bursts: &[Burst],
        seed: u64,
    ) -> Self {
        let period = period_ticks.max(1) as f64;
        let mut rates = Vec::with_capacity(total_ticks);
        for t in 0..total_ticks {
            let diurnal = base
                * (1.0
                    + relative_amplitude * (2.0 * std::f64::consts::PI * t as f64 / period).sin());
            let mean = bursts
                .iter()
                .find(|b| b.contains(t))
                .map(|b| b.peak_rate)
                .unwrap_or(diurnal)
                .max(0.0);
            rates.push(poisson_sample(seed, t as u64, mean));
        }
        Workload::Trace { rates }
    }

    /// The request rate offered at `tick` of a run with `total_ticks` ticks.
    pub fn rate_at(&self, tick: usize, total_ticks: usize) -> f64 {
        match self {
            Workload::Constant { rate } => *rate,
            Workload::Ramp {
                start_rate,
                end_rate,
            } => {
                if total_ticks <= 1 {
                    return *start_rate;
                }
                let frac = tick as f64 / (total_ticks - 1) as f64;
                start_rate + (end_rate - start_rate) * frac.clamp(0.0, 1.0)
            }
            Workload::Oscillating {
                base,
                amplitude,
                period_ticks,
                noise,
                seed,
            } => {
                let period = (*period_ticks).max(1) as f64;
                let osc = (2.0 * std::f64::consts::PI * tick as f64 / period).sin();
                let jitter = noise * 2.0 * deterministic_noise(*seed, tick as u64);
                (base + amplitude * osc + base * jitter).max(0.0)
            }
            Workload::Spike {
                base,
                peak,
                start_tick,
                end_tick,
            } => {
                if tick >= *start_tick && tick < *end_tick {
                    *peak
                } else {
                    *base
                }
            }
            Workload::Trace { rates } => {
                if rates.is_empty() {
                    0.0
                } else {
                    rates[tick.min(rates.len() - 1)]
                }
            }
            Workload::Poisson {
                lambda_per_tick,
                seed,
            } => poisson_sample(*seed, tick as u64, *lambda_per_tick),
        }
    }

    /// Peak rate over a run of `total_ticks` ticks.
    pub fn peak_rate(&self, total_ticks: usize) -> f64 {
        (0..total_ticks)
            .map(|t| self.rate_at(t, total_ticks))
            .fold(0.0, f64::max)
    }

    /// Mean rate over a run of `total_ticks` ticks.
    pub fn mean_rate(&self, total_ticks: usize) -> f64 {
        if total_ticks == 0 {
            return 0.0;
        }
        (0..total_ticks)
            .map(|t| self.rate_at(t, total_ticks))
            .sum::<f64>()
            / total_ticks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_workload_is_flat() {
        let w = Workload::constant(25.0);
        for t in 0..100 {
            assert_eq!(w.rate_at(t, 100), 25.0);
        }
    }

    #[test]
    fn ramp_interpolates_linearly() {
        let w = Workload::ramp(0.0, 100.0);
        assert_eq!(w.rate_at(0, 101), 0.0);
        assert!((w.rate_at(50, 101) - 50.0).abs() < 1e-9);
        assert_eq!(w.rate_at(100, 101), 100.0);
        // Degenerate single-tick run.
        assert_eq!(w.rate_at(0, 1), 0.0);
    }

    #[test]
    fn spike_is_active_only_in_window() {
        let w = Workload::spike(10.0, 200.0, 20, 30);
        assert_eq!(w.rate_at(19, 100), 10.0);
        assert_eq!(w.rate_at(20, 100), 200.0);
        assert_eq!(w.rate_at(29, 100), 200.0);
        assert_eq!(w.rate_at(30, 100), 10.0);
    }

    #[test]
    fn oscillating_workload_is_nonnegative_and_varies() {
        let w = Workload::randomized(50.0, 7);
        let rates: Vec<f64> = (0..200).map(|t| w.rate_at(t, 200)).collect();
        assert!(rates.iter().all(|&r| r >= 0.0));
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 20.0, "workload should vary substantially");
    }

    #[test]
    fn randomized_workloads_differ_across_seeds() {
        let a = Workload::randomized(50.0, 1);
        let b = Workload::randomized(50.0, 2);
        let differ = (0..100).any(|t| (a.rate_at(t, 100) - b.rate_at(t, 100)).abs() > 1e-9);
        assert!(differ);
    }

    #[test]
    fn worldcup_like_has_a_spike_above_the_baseline() {
        let w = Workload::worldcup_like(720, 100.0, 3);
        let peak = w.peak_rate(720);
        let mean = w.mean_rate(720);
        assert!(peak > 1.5 * mean, "peak {peak} vs mean {mean}");
        // The spike is located around 65% of the trace.
        let spike_region_max = (0..720)
            .filter(|&t| (430..510).contains(&t))
            .map(|t| w.rate_at(t, 720))
            .fold(0.0, f64::max);
        assert!((spike_region_max - peak).abs() < 1e-9);
    }

    #[test]
    fn trace_holds_last_value_beyond_its_end() {
        let w = Workload::Trace {
            rates: vec![1.0, 2.0, 3.0],
        };
        assert_eq!(w.rate_at(10, 20), 3.0);
        let empty = Workload::Trace { rates: vec![] };
        assert_eq!(empty.rate_at(5, 20), 0.0);
    }

    #[test]
    fn poisson_arrivals_have_the_right_mean_and_are_bursty() {
        let w = Workload::poisson(40.0, 11);
        let total = 400;
        let mean = w.mean_rate(total);
        assert!(
            (mean - 40.0).abs() < 4.0,
            "empirical mean {mean} should be near lambda"
        );
        // Poisson variance equals the mean — far from a constant stream.
        let var = (0..total)
            .map(|t| {
                let d = w.rate_at(t, total) - mean;
                d * d
            })
            .sum::<f64>()
            / total as f64;
        assert!(
            var > 15.0 && var < 90.0,
            "variance {var} should be near lambda"
        );
        // Counts are nonnegative integers.
        assert!((0..total).all(|t| {
            let r = w.rate_at(t, total);
            r >= 0.0 && r.fract() == 0.0
        }));
    }

    #[test]
    fn poisson_is_deterministic_per_seed_and_differs_across_seeds() {
        let a = Workload::poisson(25.0, 5);
        let b = Workload::poisson(25.0, 5);
        let c = Workload::poisson(25.0, 6);
        assert!((0..200).all(|t| a.rate_at(t, 200) == b.rate_at(t, 200)));
        assert!((0..200).any(|t| a.rate_at(t, 200) != c.rate_at(t, 200)));
    }

    #[test]
    fn poisson_sample_handles_degenerate_lambdas() {
        assert_eq!(poisson_sample(1, 0, 0.0), 0.0);
        assert_eq!(poisson_sample(1, 0, -3.0), 0.0);
        assert_eq!(poisson_sample(1, 0, f64::NAN), 0.0);
        // The clamp keeps exp(-lambda) representable even for huge means.
        assert!(poisson_sample(1, 0, 1e9) > 400.0);
    }

    #[test]
    fn diurnal_bursts_spike_inside_the_scripted_windows() {
        let bursts = [Burst::new(60, 20, 300.0)];
        let w = Workload::diurnal_bursts(160, 40.0, 0.5, 48, &bursts, 9);
        let burst_mean = (60..80).map(|t| w.rate_at(t, 160)).sum::<f64>() / 20.0;
        let baseline_mean = (0..60)
            .chain(80..160)
            .map(|t| w.rate_at(t, 160))
            .sum::<f64>()
            / 140.0;
        assert!(
            burst_mean > 3.0 * baseline_mean,
            "burst mean {burst_mean} vs baseline {baseline_mean}"
        );
        assert!(bursts[0].contains(60) && bursts[0].contains(79));
        assert!(!bursts[0].contains(80) && bursts[0].end_tick() == 80);
        // Deterministic in the seed.
        let again = Workload::diurnal_bursts(160, 40.0, 0.5, 48, &bursts, 9);
        assert_eq!(w, again);
        let other = Workload::diurnal_bursts(160, 40.0, 0.5, 48, &bursts, 10);
        assert_ne!(w, other);
    }

    #[test]
    fn mean_and_peak_are_consistent() {
        let w = Workload::spike(10.0, 100.0, 0, 50);
        assert_eq!(w.peak_rate(100), 100.0);
        assert!((w.mean_rate(100) - 55.0).abs() < 1e-9);
        assert_eq!(w.mean_rate(0), 0.0);
    }
}
