//! Randomized property tests for the metric store's epoch/delta layer.
//!
//! Deterministic splitmix64 case generation (the container has no registry
//! access for `proptest`): every run checks the identical pseudo-random
//! inputs, so failures are trivially reproducible.

use sieve_simulator::store::{MetricId, MetricStore};

/// Deterministic splitmix64 generator for test data.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        // `hash::splitmix64` advances by the golden-ratio increment and
        // finalizes in one step; feeding back the previous input keeps
        // the standard splitmix64 stream.
        let out = sieve_exec::hash::splitmix64(self.0);
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        out
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

const CASES: u64 = 60;

/// A random accepted point sequence: strictly increasing timestamps with
/// random gaps, random finite values.
fn random_points(rng: &mut Rng, len: usize) -> Vec<(u64, f64)> {
    let mut t = 0u64;
    (0..len)
        .map(|_| {
            t += 100 + rng.next_u64() % 900;
            (t, rng.unit() * 2.0e3 - 1.0e3)
        })
        .collect()
}

fn record_all(store: &MetricStore, id: &MetricId, points: &[(u64, f64)]) {
    for &(t, v) in points {
        store.record(id, t, v);
    }
}

#[test]
fn equal_content_yields_equal_fingerprints_anywhere() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let len = rng.usize_in(1, 80);
        let points = random_points(&mut rng, len);
        let id = MetricId::new("svc", "metric");

        let a = MetricStore::new();
        let b = MetricStore::new();
        record_all(&a, &id, &points);
        record_all(&b, &id, &points);
        assert_eq!(
            a.fingerprint(&id),
            b.fingerprint(&id),
            "seed {seed}: same accepted sequence, same fingerprint"
        );
    }
}

#[test]
fn any_content_change_changes_the_fingerprint() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let len = rng.usize_in(2, 60);
        let points = random_points(&mut rng, len);
        let id = MetricId::new("svc", "metric");

        let base = MetricStore::new();
        record_all(&base, &id, &points);
        let base_fp = base.fingerprint(&id).unwrap();

        // Mutate one random point's value.
        let mut value_mutated = points.clone();
        let idx = rng.usize_in(0, value_mutated.len() - 1);
        value_mutated[idx].1 += 1.0 + rng.unit();
        let m1 = MetricStore::new();
        record_all(&m1, &id, &value_mutated);
        assert_ne!(
            m1.fingerprint(&id),
            Some(base_fp),
            "seed {seed}: changed value must change the fingerprint"
        );

        // Shift one random point's timestamp (keeping monotonicity by
        // nudging within the preceding gap).
        let mut time_mutated = points.clone();
        let idx = rng.usize_in(1, time_mutated.len() - 1);
        time_mutated[idx].0 -= 1;
        let m2 = MetricStore::new();
        record_all(&m2, &id, &time_mutated);
        assert_ne!(
            m2.fingerprint(&id),
            Some(base_fp),
            "seed {seed}: shifted timestamp must change the fingerprint"
        );

        // A strict prefix has a different fingerprint (length matters).
        let prefix = &points[..points.len() - 1];
        let m3 = MetricStore::new();
        record_all(&m3, &id, prefix);
        assert_ne!(
            m3.fingerprint(&id),
            Some(base_fp),
            "seed {seed}: prefix must fingerprint differently"
        );

        // Rejected out-of-order points change nothing.
        let m4 = MetricStore::new();
        record_all(&m4, &id, &points);
        m4.record(&id, points[0].0, 123.0);
        assert_eq!(
            m4.fingerprint(&id),
            Some(base_fp),
            "seed {seed}: dropped point must not change the fingerprint"
        );
    }
}

#[test]
fn watermark_is_strictly_monotone_and_deltas_partition_the_writes() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let store = MetricStore::new();
        let ids: Vec<MetricId> = (0..rng.usize_in(1, 5))
            .map(|c| MetricId::new(format!("svc{c}"), "m"))
            .collect();
        let mut clocks = vec![0u64; ids.len()];

        let mut last_epoch = store.epoch();
        assert_eq!(last_epoch, 0);
        let mut total_accepted = 0usize;
        let mut total_reported = 0usize;

        for _ in 0..rng.usize_in(1, 12) {
            // A random (possibly empty) batch of writes to random series.
            let writes = rng.usize_in(0, 10);
            let mut touched_now = std::collections::BTreeSet::new();
            for _ in 0..writes {
                let which = rng.usize_in(0, ids.len() - 1);
                clocks[which] += 100 + rng.next_u64() % 400;
                store.record(&ids[which], clocks[which], rng.unit());
                touched_now.insert(ids[which].clone());
                total_accepted += 1;
            }
            let delta = store.drain_delta();
            assert!(
                delta.epoch > last_epoch,
                "seed {seed}: watermark must strictly increase"
            );
            assert_eq!(delta.epoch, store.epoch(), "seed {seed}");
            last_epoch = delta.epoch;
            // The delta reports exactly the touched series, sorted.
            let expected: Vec<MetricId> = touched_now.into_iter().collect();
            assert_eq!(delta.touched, expected, "seed {seed}");
            total_reported += delta.touched.len();
        }
        // Draining again reports nothing new.
        assert!(store.drain_delta().is_empty(), "seed {seed}");
        assert!(total_reported <= total_accepted, "seed {seed}");
        assert_eq!(store.point_count(), total_accepted as u64, "seed {seed}");
    }
}
