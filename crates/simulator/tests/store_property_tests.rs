//! Randomized property tests for the metric store's epoch/delta layer.
//!
//! Deterministic splitmix64 case generation (the container has no registry
//! access for `proptest`): every run checks the identical pseudo-random
//! inputs, so failures are trivially reproducible.

use sieve_simulator::store::{DownsampleTier, MetricId, MetricStore, RetentionPolicy};

/// Deterministic splitmix64 generator for test data.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        // `hash::splitmix64` advances by the golden-ratio increment and
        // finalizes in one step; feeding back the previous input keeps
        // the standard splitmix64 stream.
        let out = sieve_exec::hash::splitmix64(self.0);
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        out
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

const CASES: u64 = 60;

/// A random accepted point sequence: strictly increasing timestamps with
/// random gaps, random finite values.
fn random_points(rng: &mut Rng, len: usize) -> Vec<(u64, f64)> {
    let mut t = 0u64;
    (0..len)
        .map(|_| {
            t += 100 + rng.next_u64() % 900;
            (t, rng.unit() * 2.0e3 - 1.0e3)
        })
        .collect()
}

fn record_all(store: &MetricStore, id: &MetricId, points: &[(u64, f64)]) {
    for &(t, v) in points {
        store.record(id, t, v);
    }
}

#[test]
fn equal_content_yields_equal_fingerprints_anywhere() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let len = rng.usize_in(1, 80);
        let points = random_points(&mut rng, len);
        let id = MetricId::new("svc", "metric");

        let a = MetricStore::new();
        let b = MetricStore::new();
        record_all(&a, &id, &points);
        record_all(&b, &id, &points);
        assert_eq!(
            a.fingerprint(&id),
            b.fingerprint(&id),
            "seed {seed}: same accepted sequence, same fingerprint"
        );
    }
}

#[test]
fn any_content_change_changes_the_fingerprint() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let len = rng.usize_in(2, 60);
        let points = random_points(&mut rng, len);
        let id = MetricId::new("svc", "metric");

        let base = MetricStore::new();
        record_all(&base, &id, &points);
        let base_fp = base.fingerprint(&id).unwrap();

        // Mutate one random point's value.
        let mut value_mutated = points.clone();
        let idx = rng.usize_in(0, value_mutated.len() - 1);
        value_mutated[idx].1 += 1.0 + rng.unit();
        let m1 = MetricStore::new();
        record_all(&m1, &id, &value_mutated);
        assert_ne!(
            m1.fingerprint(&id),
            Some(base_fp),
            "seed {seed}: changed value must change the fingerprint"
        );

        // Shift one random point's timestamp (keeping monotonicity by
        // nudging within the preceding gap).
        let mut time_mutated = points.clone();
        let idx = rng.usize_in(1, time_mutated.len() - 1);
        time_mutated[idx].0 -= 1;
        let m2 = MetricStore::new();
        record_all(&m2, &id, &time_mutated);
        assert_ne!(
            m2.fingerprint(&id),
            Some(base_fp),
            "seed {seed}: shifted timestamp must change the fingerprint"
        );

        // A strict prefix has a different fingerprint (length matters).
        let prefix = &points[..points.len() - 1];
        let m3 = MetricStore::new();
        record_all(&m3, &id, prefix);
        assert_ne!(
            m3.fingerprint(&id),
            Some(base_fp),
            "seed {seed}: prefix must fingerprint differently"
        );

        // Rejected out-of-order points change nothing.
        let m4 = MetricStore::new();
        record_all(&m4, &id, &points);
        m4.record(&id, points[0].0, 123.0);
        assert_eq!(
            m4.fingerprint(&id),
            Some(base_fp),
            "seed {seed}: dropped point must not change the fingerprint"
        );
    }
}

#[test]
fn watermark_is_strictly_monotone_and_deltas_partition_the_writes() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let store = MetricStore::new();
        let ids: Vec<MetricId> = (0..rng.usize_in(1, 5))
            .map(|c| MetricId::new(format!("svc{c}"), "m"))
            .collect();
        let mut clocks = vec![0u64; ids.len()];

        let mut last_epoch = store.epoch();
        assert_eq!(last_epoch, 0);
        let mut total_accepted = 0usize;
        let mut total_reported = 0usize;

        for _ in 0..rng.usize_in(1, 12) {
            // A random (possibly empty) batch of writes to random series.
            let writes = rng.usize_in(0, 10);
            let mut touched_now = std::collections::BTreeSet::new();
            for _ in 0..writes {
                let which = rng.usize_in(0, ids.len() - 1);
                clocks[which] += 100 + rng.next_u64() % 400;
                store.record(&ids[which], clocks[which], rng.unit());
                touched_now.insert(ids[which].clone());
                total_accepted += 1;
            }
            let delta = store.drain_delta();
            assert!(
                delta.epoch > last_epoch,
                "seed {seed}: watermark must strictly increase"
            );
            assert_eq!(delta.epoch, store.epoch(), "seed {seed}");
            last_epoch = delta.epoch;
            // The delta reports exactly the touched series, sorted.
            let expected: Vec<MetricId> = touched_now.into_iter().collect();
            assert_eq!(delta.touched, expected, "seed {seed}");
            total_reported += delta.touched.len();
        }
        // Draining again reports nothing new.
        assert!(store.drain_delta().is_empty(), "seed {seed}");
        assert!(total_reported <= total_accepted, "seed {seed}");
        assert_eq!(store.point_count(), total_accepted as u64, "seed {seed}");
    }
}

#[test]
fn windowed_store_retains_exactly_the_unbounded_tail() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed.wrapping_add(1000));
        let len = rng.usize_in(1, 120);
        let cap = rng.usize_in(1, 130);
        let points = random_points(&mut rng, len);
        let id = MetricId::new("svc", "metric");

        let oracle = MetricStore::new();
        let windowed = MetricStore::with_retention(RetentionPolicy::windowed(cap));
        record_all(&oracle, &id, &points);
        record_all(&windowed, &id, &points);

        let full = oracle.series(&id).unwrap();
        let kept = windowed.series(&id).unwrap();
        let tail_start = len.saturating_sub(cap);
        assert_eq!(
            kept.timestamps(),
            &full.timestamps()[tail_start..],
            "seed {seed}: retained window must be the newest points"
        );
        assert_eq!(kept.values(), &full.values()[tail_start..], "seed {seed}");
        assert_eq!(
            windowed.retained_point_count(),
            (len - tail_start) as u64,
            "seed {seed}"
        );
        assert_eq!(
            windowed.evicted_point_count(),
            tail_start as u64,
            "seed {seed}"
        );
        // Cumulative accounting is retention-independent.
        assert_eq!(windowed.point_count(), oracle.point_count(), "seed {seed}");
    }
}

#[test]
fn eviction_changes_the_fingerprint_iff_points_were_dropped() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed.wrapping_add(2000));
        let len = rng.usize_in(1, 90);
        let cap = rng.usize_in(1, 100);
        let points = random_points(&mut rng, len);
        let id = MetricId::new("svc", "metric");

        let oracle = MetricStore::new();
        let windowed = MetricStore::with_retention(RetentionPolicy::windowed(cap));
        record_all(&oracle, &id, &points);
        record_all(&windowed, &id, &points);

        if len <= cap {
            assert_eq!(
                windowed.fingerprint(&id),
                oracle.fingerprint(&id),
                "seed {seed}: no eviction, so the fingerprint rule is unchanged"
            );
        } else {
            assert_ne!(
                windowed.fingerprint(&id),
                oracle.fingerprint(&id),
                "seed {seed}: every eviction must advance the fingerprint"
            );
        }
        // Two windowed stores fed the same stream always agree.
        let twin = MetricStore::with_retention(RetentionPolicy::windowed(cap));
        record_all(&twin, &id, &points);
        assert_eq!(
            twin.fingerprint(&id),
            windowed.fingerprint(&id),
            "seed {seed}"
        );
    }
}

#[test]
fn watermark_and_delta_invariants_hold_under_interleaved_record_and_evict() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed.wrapping_add(3000));
        let store = MetricStore::with_retention(RetentionPolicy::windowed(rng.usize_in(4, 12)));
        let ids: Vec<MetricId> = (0..rng.usize_in(1, 5))
            .map(|c| MetricId::new(format!("svc{c}"), "m"))
            .collect();
        let mut clocks = vec![0u64; ids.len()];
        // Our own model of each series' retained length, kept exact so the
        // expected dirty set under tightening is computable.
        let mut retained = vec![0usize; ids.len()];
        let mut cap = store.retention().raw_capacity.unwrap();

        let mut last_epoch = store.epoch();
        for _ in 0..rng.usize_in(1, 12) {
            let mut touched_now = std::collections::BTreeSet::new();
            for _ in 0..rng.usize_in(0, 15) {
                let which = rng.usize_in(0, ids.len() - 1);
                clocks[which] += 100 + rng.next_u64() % 400;
                store.record(&ids[which], clocks[which], rng.unit());
                retained[which] = (retained[which] + 1).min(cap);
                touched_now.insert(ids[which].clone());
            }
            // Sometimes tighten (or loosen) retention mid-stream: every
            // series the trim evicts from must show up as dirty exactly
            // like a written one.
            if rng.usize_in(0, 2) == 0 {
                let new_cap = rng.usize_in(2, 12);
                store.set_retention(RetentionPolicy::windowed(new_cap));
                for (which, r) in retained.iter_mut().enumerate() {
                    if *r > new_cap {
                        *r = new_cap;
                        touched_now.insert(ids[which].clone());
                    }
                }
                cap = new_cap;
            }
            let delta = store.drain_delta();
            assert!(delta.epoch > last_epoch, "seed {seed}: watermark monotone");
            assert_eq!(delta.epoch, store.epoch(), "seed {seed}");
            last_epoch = delta.epoch;
            let expected: Vec<MetricId> = touched_now.into_iter().collect();
            assert_eq!(
                delta.touched, expected,
                "seed {seed}: dirty set = written ∪ trimmed, sorted"
            );
        }
        assert!(store.drain_delta().is_empty(), "seed {seed}");
        let model_retained: usize = retained.iter().sum();
        assert_eq!(
            store.retained_point_count(),
            model_retained as u64,
            "seed {seed}: retained counter matches the reference model"
        );
    }
}

#[test]
fn downsampled_tiers_are_a_deterministic_function_of_the_stream() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed.wrapping_add(4000));
        let len = rng.usize_in(1, 400);
        let cap = rng.usize_in(1, 8);
        let policy = RetentionPolicy::windowed(cap).with_tier_capacity(rng.usize_in(1, 6));
        let points = random_points(&mut rng, len);
        let id = MetricId::new("svc", "metric");

        // One store fed point by point, one fed in random batch splits:
        // the tiers (and everything else) must be bit-identical.
        let one_by_one = MetricStore::with_retention(policy);
        record_all(&one_by_one, &id, &points);
        let batched = MetricStore::with_retention(policy);
        let mut rest = &points[..];
        while !rest.is_empty() {
            let take = rng.usize_in(1, rest.len());
            batched.record_batch(rest[..take].iter().map(|&(t, v)| (&id, t, v)));
            rest = &rest[take..];
        }

        for tier in [DownsampleTier::TenX, DownsampleTier::HundredX] {
            let a = one_by_one.downsampled(&id, tier);
            let b = batched.downsampled(&id, tier);
            assert_eq!(a, b, "seed {seed}: tiers are stream-determined");
        }
        assert_eq!(
            one_by_one.fingerprint(&id),
            batched.fingerprint(&id),
            "seed {seed}"
        );
        // Every closed bucket summarizes exactly TIER_FANOUT sources and
        // its extremes bracket its mean.
        for bucket in one_by_one.downsampled(&id, DownsampleTier::TenX) {
            assert_eq!(bucket.count, 10, "seed {seed}");
            assert!(
                bucket.min <= bucket.mean && bucket.mean <= bucket.max,
                "seed {seed}"
            );
            assert!(bucket.start_ms <= bucket.end_ms, "seed {seed}");
        }
        for bucket in one_by_one.downsampled(&id, DownsampleTier::HundredX) {
            assert_eq!(bucket.count, 100, "seed {seed}");
            assert!(
                bucket.min <= bucket.mean && bucket.mean <= bucket.max,
                "seed {seed}"
            );
        }
    }
}
