//! A small radix-2 Cooley–Tukey FFT.
//!
//! Sieve's shape-based distance is defined via the normalized
//! cross-correlation, which k-Shape computes with the Fast Fourier Transform
//! (§3.2: "Cross correlation is calculated using Fast Fourier
//! Transformation"). We implement the transform from scratch so that the
//! reproduction does not depend on external numerics crates.

use std::collections::HashMap;
use std::ops::{Add, Mul, Neg, Sub};
use std::sync::{Arc, Mutex, OnceLock};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The purely real complex number `re + 0i`.
    pub fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (absolute value).
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// `e^{i theta}` on the unit circle.
    pub fn from_polar_unit(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Smallest power of two that is `>= n` (returns 1 for `n == 0`).
pub fn next_power_of_two(n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    n.next_power_of_two()
}

/// Precomputed twiddle factors for one radix-2 FFT length.
///
/// The table stores, for every butterfly stage `len = 2, 4, …, n`, the
/// `len/2` twiddles `w_0 … w_{len/2-1}` that the seed FFT derived on the fly
/// via the recurrence `w_{k+1} = w_k * wlen`. The table is built with the
/// **exact same recurrence** (not `e^{-2πik/len}` closed-form calls), so an
/// FFT driven by the table performs bit-for-bit the same float operations as
/// the recomputing oracle [`fft_in_place_naive`] — which is what keeps every
/// cached==naive model-equality assert in the workspace bitwise.
///
/// All stages are flattened into one buffer; stage `len` starts at offset
/// `len/2 - 1` (the stage sizes `1 + 2 + … + len/4` telescope), for `n - 1`
/// factors in total.
#[derive(Debug)]
pub struct TwiddleTable {
    n: usize,
    factors: Vec<Complex>,
}

impl TwiddleTable {
    /// Builds the table for FFT length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT length must be a power of two");
        let mut factors = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            // Same per-stage recurrence as the seed FFT's inner loop.
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex::from_polar_unit(ang);
            let mut w = Complex::from_real(1.0);
            for _ in 0..len / 2 {
                factors.push(w);
                w = w * wlen;
            }
            len <<= 1;
        }
        Self { n, factors }
    }

    /// The FFT length this table serves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the table is for the trivial length-1 transform (which has no
    /// twiddle factors at all).
    pub fn is_empty(&self) -> bool {
        self.factors.is_empty()
    }

    /// The twiddles of the stage with butterfly span `len` (a power of two
    /// in `2..=self.len()`).
    #[inline]
    fn stage(&self, len: usize) -> &[Complex] {
        &self.factors[len / 2 - 1..len - 1]
    }
}

/// Process-wide cache of twiddle tables, keyed by FFT length.
///
/// A metric-reduction sweep runs thousands of same-length FFTs per
/// component (every series of a component pads to the same power of two),
/// so the table for each padded length is built once and shared via `Arc`
/// across threads and call sites. The handful of distinct padded lengths a
/// process ever sees keeps the cache tiny.
pub fn twiddle_table(n: usize) -> Arc<TwiddleTable> {
    static TABLES: OnceLock<Mutex<HashMap<usize, Arc<TwiddleTable>>>> = OnceLock::new();
    let tables = TABLES.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = tables.lock().expect("twiddle cache poisoned");
    Arc::clone(
        guard
            .entry(n)
            .or_insert_with(|| Arc::new(TwiddleTable::new(n))),
    )
}

/// In-place iterative radix-2 FFT, driven by the process-wide twiddle cache.
///
/// Bit-identical to the recomputing oracle [`fft_in_place_naive`]: the cached
/// table is produced by the same recurrence the oracle evaluates inline.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two (use [`next_power_of_two`]
/// and zero-padding to prepare inputs).
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    let table = twiddle_table(n);
    fft_in_place_with(data, &table);
}

/// In-place FFT against a caller-held twiddle table (one lock-free lookup
/// per transform — the batched path fetches the table once per component).
///
/// # Panics
///
/// Panics if `data.len()` differs from the table's length.
pub fn fft_in_place_with(data: &mut [Complex], table: &TwiddleTable) {
    let n = data.len();
    assert_eq!(n, table.len(), "FFT length must match the twiddle table");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly passes: identical float operations to the seed FFT, with the
    // per-butterfly `w = w * wlen` recurrence replaced by a table load.
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let twiddles = table.stage(len);
        let mut i = 0;
        while i < n {
            let (lo, hi) = data[i..i + len].split_at_mut(half);
            for ((a, b), &w) in lo.iter_mut().zip(hi.iter_mut()).zip(twiddles.iter()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// The seed in-place radix-2 FFT, recomputing twiddles on the fly via the
/// per-stage recurrence. Kept as the reference oracle: property tests assert
/// [`fft_in_place`] is **bitwise** equal to this across random lengths, and
/// the `analysis` bench measures the twiddle-cached/batched paths against it.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place_naive(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex::from_real(1.0);
            for k in 0..len / 2 {
                let u = data[i + k];
                let v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w = w * wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Batched in-place FFT: transforms every consecutive `n`-chunk of `data`
/// with a single twiddle-table fetch, streaming one contiguous buffer.
///
/// Bit-identical to running [`fft_in_place`] on each chunk separately — the
/// batch shares the table and the memory layout, not the summation order —
/// so batched spectra can feed every bitwise model-equality assert.
///
/// # Panics
///
/// Panics if `n` is not a power of two or `data.len()` is not a multiple of
/// `n`.
pub fn fft_batch(data: &mut [Complex], n: usize) {
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    assert_eq!(
        data.len() % n,
        0,
        "batch buffer must be a whole number of length-{n} transforms"
    );
    if n <= 1 {
        return;
    }
    let table = twiddle_table(n);
    for chunk in data.chunks_exact_mut(n) {
        fft_in_place_with(chunk, &table);
    }
}

/// In-place inverse FFT (including the `1/n` scaling).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex]) {
    let n = data.len();
    for v in data.iter_mut() {
        *v = v.conj();
    }
    fft_in_place(data);
    let scale = 1.0 / n as f64;
    for v in data.iter_mut() {
        *v = Complex::new(v.re * scale, -v.im * scale);
    }
}

/// Forward FFT of a real signal, zero-padded to `padded_len` (which must be a
/// power of two at least as large as the signal).
///
/// # Panics
///
/// Panics if `padded_len` is smaller than `signal.len()` or not a power of
/// two.
pub fn fft_real(signal: &[f64], padded_len: usize) -> Vec<Complex> {
    assert!(padded_len >= signal.len(), "padded length too small");
    let mut buf: Vec<Complex> = signal.iter().map(|&v| Complex::from_real(v)).collect();
    buf.resize(padded_len, Complex::default());
    fft_in_place(&mut buf);
    buf
}

/// Full (linear) cross-correlation of `x` and `y` computed via FFT.
///
/// The result has length `x.len() + y.len() - 1`. Index `k` corresponds to a
/// shift of `k - (y.len() - 1)` of `x` relative to `y`, i.e. the centre of
/// the output is the zero-shift correlation — the same layout as the CC
/// sequence in the k-Shape paper.
pub fn cross_correlation(x: &[f64], y: &[f64]) -> Vec<f64> {
    if x.is_empty() || y.is_empty() {
        return Vec::new();
    }
    let out_len = x.len() + y.len() - 1;
    let fft_len = next_power_of_two(out_len);
    let fx = fft_real(x, fft_len);
    let fy = fft_real(y, fft_len);
    cross_correlation_from_ffts(&fx, &fy, x.len(), y.len())
}

/// The back half of [`cross_correlation`]: multiplies two precomputed
/// forward spectra, inverts the product and rearranges the circular result
/// into the linear shift layout.
///
/// Both spectra must have been produced by [`fft_real`] at the *same* padded
/// length `next_power_of_two(n + m - 1)` — [`cross_correlation`] funnels
/// through this function, so a caller holding cached spectra (see
/// [`crate::spectrum::SeriesSpectrum`]) obtains bit-identical results to the
/// direct path.
///
/// # Panics
///
/// Panics if the spectra have different lengths or are shorter than
/// `n + m - 1`.
pub fn cross_correlation_from_ffts(fx: &[Complex], fy: &[Complex], n: usize, m: usize) -> Vec<f64> {
    let out_len = n + m - 1;
    let fft_len = fx.len();
    assert_eq!(fft_len, fy.len(), "spectra must share the padded length");
    assert!(
        fft_len >= out_len,
        "spectra too short for the output length"
    );
    let mut prod: Vec<Complex> = fx
        .iter()
        .zip(fy.iter())
        .map(|(a, b)| *a * b.conj())
        .collect();
    ifft_in_place(&mut prod);
    // The circular correlation places non-negative shifts at the head and
    // negative shifts at the tail; rearrange so the output runs from shift
    // -(m-1) .. (n-1) like a linear correlation.
    let mut out = Vec::with_capacity(out_len);
    for k in 0..out_len {
        let shift = k as isize - (m as isize - 1);
        let idx = if shift >= 0 {
            shift as usize
        } else {
            fft_len - shift.unsigned_abs()
        };
        out.push(prod[idx].re);
    }
    out
}

/// Naive O(n²) cross-correlation used as a test oracle and for very short
/// series.
pub fn cross_correlation_naive(x: &[f64], y: &[f64]) -> Vec<f64> {
    if x.is_empty() || y.is_empty() {
        return Vec::new();
    }
    let n = x.len();
    let m = y.len();
    let mut out = vec![0.0; n + m - 1];
    for (k, slot) in out.iter_mut().enumerate() {
        let shift = k as isize - (m as isize - 1);
        let mut acc = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            let j = i as isize - shift;
            if j >= 0 && (j as usize) < m {
                acc += xi * y[j as usize];
            }
        }
        *slot = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::from_real(1.0);
        fft_in_place(&mut data);
        for c in data {
            assert!((c.re - 1.0).abs() < 1e-12);
            assert!(c.im.abs() < 1e-12);
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let original: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, (i * i) as f64 * 0.1))
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data);
        ifft_in_place(&mut data);
        for (a, b) in data.iter().zip(original.iter()) {
            assert!((a.re - b.re).abs() < 1e-9);
            assert!((a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn fft_parseval_energy_is_preserved() {
        let signal: Vec<f64> = (0..32).map(|i| ((i as f64) * 0.7).sin()).collect();
        let spectrum = fft_real(&signal, 32);
        let time_energy: f64 = signal.iter().map(|v| v * v).sum();
        let freq_energy: f64 = spectrum.iter().map(|c| c.abs().powi(2)).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn next_power_of_two_bounds() {
        assert_eq!(next_power_of_two(0), 1);
        assert_eq!(next_power_of_two(1), 1);
        assert_eq!(next_power_of_two(5), 8);
        assert_eq!(next_power_of_two(8), 8);
        assert_eq!(next_power_of_two(1000), 1024);
    }

    #[test]
    fn fft_cross_correlation_matches_naive() {
        let x = [1.0, 2.0, 3.0, 4.0, 0.5, -1.0];
        let y = [0.0, 1.0, 0.5, 2.0];
        let fast = cross_correlation(&x, &y);
        let slow = cross_correlation_naive(&x, &y);
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn cross_correlation_peak_identifies_lag() {
        // y is x delayed by 3 samples: the peak should sit at shift -3
        // (x must be shifted back to match) i.e. index (m-1) - 3.
        let x: Vec<f64> = (0..32).map(|i| if i == 5 { 1.0 } else { 0.0 }).collect();
        let y: Vec<f64> = (0..32).map(|i| if i == 8 { 1.0 } else { 0.0 }).collect();
        let cc = cross_correlation(&x, &y);
        let (argmax, _) = cc
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let shift = argmax as isize - (y.len() as isize - 1);
        assert_eq!(shift, -3);
    }

    #[test]
    fn cross_correlation_of_empty_is_empty() {
        assert!(cross_correlation(&[], &[1.0]).is_empty());
        assert!(cross_correlation(&[1.0], &[]).is_empty());
    }

    /// Deterministic splitmix64-style generator for the property tests.
    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        ((z >> 11) as f64) / (1u64 << 53) as f64 - 0.5
    }

    fn random_complex(len: usize, seed: u64) -> Vec<Complex> {
        let mut s = seed;
        (0..len)
            .map(|_| Complex::new(50.0 * splitmix(&mut s), 50.0 * splitmix(&mut s)))
            .collect()
    }

    fn assert_bitwise_eq(a: &[Complex], b: &[Complex], ctx: &str) {
        assert_eq!(a.len(), b.len(), "{ctx}");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "{ctx}: re[{i}]");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "{ctx}: im[{i}]");
        }
    }

    #[test]
    fn twiddle_cached_fft_is_bitwise_equal_to_seed_fft() {
        // Property: across random power-of-two lengths and random inputs, the
        // table-driven FFT performs the exact float operations of the seed's
        // recomputing FFT — bitwise, not approximately.
        for exp in 0..=11usize {
            let n = 1usize << exp;
            for seed in 0..4u64 {
                let original = random_complex(n, seed.wrapping_mul(0x9E37) + exp as u64 + 1);
                let mut cached = original.clone();
                let mut naive = original;
                fft_in_place(&mut cached);
                fft_in_place_naive(&mut naive);
                assert_bitwise_eq(&cached, &naive, &format!("n={n} seed={seed}"));
            }
        }
    }

    #[test]
    fn twiddle_table_matches_seed_recurrence() {
        let n = 64;
        let table = TwiddleTable::new(n);
        assert_eq!(table.len(), n);
        assert!(!table.is_empty());
        let mut len = 2;
        while len <= n {
            let ang = -2.0 * std::f64::consts::PI / len as f64;
            let wlen = Complex::from_polar_unit(ang);
            let mut w = Complex::from_real(1.0);
            for (k, &t) in table.stage(len).iter().enumerate() {
                assert_eq!(t.re.to_bits(), w.re.to_bits(), "len={len} k={k}");
                assert_eq!(t.im.to_bits(), w.im.to_bits(), "len={len} k={k}");
                w = w * wlen;
            }
            len <<= 1;
        }
    }

    #[test]
    fn twiddle_cache_shares_tables_per_length() {
        let a = twiddle_table(256);
        let b = twiddle_table(256);
        assert!(Arc::ptr_eq(&a, &b), "same length must share one table");
        let c = twiddle_table(512);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn fft_batch_is_bitwise_equal_to_per_series_ffts() {
        for (count, n) in [(1usize, 8usize), (3, 64), (7, 128), (16, 32)] {
            let mut batch: Vec<Complex> = Vec::with_capacity(count * n);
            let mut singles: Vec<Vec<Complex>> = Vec::with_capacity(count);
            for series in 0..count {
                let data = random_complex(n, series as u64 * 31 + 7);
                batch.extend_from_slice(&data);
                singles.push(data);
            }
            fft_batch(&mut batch, n);
            for (series, single) in singles.iter_mut().enumerate() {
                fft_in_place(single);
                assert_bitwise_eq(
                    &batch[series * n..(series + 1) * n],
                    single,
                    &format!("count={count} n={n} series={series}"),
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn fft_batch_rejects_ragged_buffers() {
        let mut data = vec![Complex::default(); 12];
        fft_batch(&mut data, 8);
    }

    #[test]
    fn complex_arithmetic_identities() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert_eq!(a + b, Complex::new(-2.0, 2.5));
        assert_eq!(a - b, Complex::new(4.0, 1.5));
        let prod = a * b;
        assert!((prod.re - (-4.0)).abs() < 1e-12);
        assert!((prod.im - (-5.5)).abs() < 1e-12);
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
    }
}
