//! Discretization of irregular observations onto a fixed grid.
//!
//! Monitoring systems retrieve metrics at slightly different points in time;
//! Sieve discretizes them onto a common 500 ms grid before clustering and
//! causality testing (§3.2: "we discretize using 500ms instead of the
//! original 2s used in the original k-Shape paper"). This module resamples a
//! [`TimeSeries`] onto such a grid using cubic-spline (or linear)
//! interpolation and aligns pairs of series onto a shared grid.

use crate::interpolate::{linear_interpolate, CubicSpline};
use crate::series::SeriesView;
use crate::{Result, TimeSeries, TimeSeriesError};

/// The sampling interval Sieve uses when discretizing metrics (500 ms).
pub const DEFAULT_INTERVAL_MS: u64 = 500;

/// Resamples `series` onto a regular grid of `interval_ms` covering the
/// original time span.
///
/// The grid starts at the first observation and extends until it *covers*
/// the last one (ceiling division of the span): when the span is not an
/// exact multiple of `interval_ms`, the final grid point lies within one
/// interval past the last observation rather than one interval before it —
/// truncating the grid at the last multiple below `end` used to silently
/// drop up to a full interval of data at the end of every series.
///
/// Grid points between observations are interpolated with a natural cubic
/// spline when at least three observations exist, otherwise linearly; the
/// at-most-one overhang point past the last observation is extrapolated
/// (linearly by the spline's boundary segment, as the boundary constant by
/// the linear fallback).
///
/// # Errors
///
/// * [`TimeSeriesError::Empty`] for an empty input series.
/// * [`TimeSeriesError::InvalidParameter`] when `interval_ms` is zero.
pub fn resample(series: &TimeSeries, interval_ms: u64) -> Result<TimeSeries> {
    resample_view(series.view(), interval_ms)
}

/// Resamples a borrowed [`SeriesView`] onto a regular grid of `interval_ms`.
///
/// This is the zero-copy entry point used when reading a retained window
/// straight out of the metric store: the grid and interpolation are computed
/// directly from the borrowed slices, and only the resampled output is
/// allocated. [`resample`] is a thin wrapper over this function, so both
/// paths are bit-identical by construction.
///
/// # Errors
///
/// Same as [`resample`].
pub fn resample_view(series: SeriesView<'_>, interval_ms: u64) -> Result<TimeSeries> {
    if series.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    if interval_ms == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "interval_ms",
            reason: "must be positive".to_string(),
        });
    }
    let start = series.start_ms().expect("non-empty");
    let end = series.end_ms().expect("non-empty");
    let xs: Vec<f64> = series.timestamps().iter().map(|&t| t as f64).collect();
    let ys = series.values();

    let n_points = (end - start).div_ceil(interval_ms) as usize + 1;
    let grid: Vec<u64> = (0..n_points as u64)
        .map(|i| start + i * interval_ms)
        .collect();

    let values: Vec<f64> = if xs.len() >= 3 {
        let spline = CubicSpline::fit(&xs, ys)?;
        grid.iter().map(|&t| spline.evaluate(t as f64)).collect()
    } else {
        grid.iter()
            .map(|&t| linear_interpolate(&xs, ys, t as f64).unwrap_or(ys[0]))
            .collect()
    };
    TimeSeries::from_parts(grid, values)
}

/// Resamples onto the default 500 ms grid.
///
/// # Errors
///
/// Same as [`resample`].
pub fn resample_default(series: &TimeSeries) -> Result<TimeSeries> {
    resample(series, DEFAULT_INTERVAL_MS)
}

/// Aligns two series onto a shared regular grid spanning the overlap of
/// their time ranges, returning `(grid_timestamps, a_values, b_values)`.
///
/// # Errors
///
/// * [`TimeSeriesError::Empty`] if either series is empty or the series do
///   not overlap in time.
/// * [`TimeSeriesError::InvalidParameter`] when `interval_ms` is zero.
pub fn align(
    a: &TimeSeries,
    b: &TimeSeries,
    interval_ms: u64,
) -> Result<(Vec<u64>, Vec<f64>, Vec<f64>)> {
    if a.is_empty() || b.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    if interval_ms == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "interval_ms",
            reason: "must be positive".to_string(),
        });
    }
    let start = a.start_ms().unwrap().max(b.start_ms().unwrap());
    let end = a.end_ms().unwrap().min(b.end_ms().unwrap());
    if end < start {
        return Err(TimeSeriesError::Empty);
    }
    let ra = resample(a, interval_ms)?;
    let rb = resample(b, interval_ms)?;
    let wa = ra.window(start, end + 1);
    let wb = rb.window(start, end + 1);
    let n = wa.len().min(wb.len());
    Ok((
        wa.timestamps()[..n].to_vec(),
        wa.values()[..n].to_vec(),
        wb.values()[..n].to_vec(),
    ))
}

/// Downsamples by averaging consecutive non-overlapping buckets of
/// `bucket_ms` width; useful for coarse visualisation and the monitoring
/// cost model.
///
/// # Errors
///
/// * [`TimeSeriesError::Empty`] for an empty input.
/// * [`TimeSeriesError::InvalidParameter`] when `bucket_ms` is zero.
pub fn downsample_mean(series: &TimeSeries, bucket_ms: u64) -> Result<TimeSeries> {
    if series.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    if bucket_ms == 0 {
        return Err(TimeSeriesError::InvalidParameter {
            name: "bucket_ms",
            reason: "must be positive".to_string(),
        });
    }
    let start = series.start_ms().unwrap();
    let mut out_ts = Vec::new();
    let mut out_vals = Vec::new();
    let mut bucket_start = start;
    let mut acc = 0.0;
    let mut count = 0usize;
    for (t, v) in series.iter() {
        while t >= bucket_start + bucket_ms {
            if count > 0 {
                out_ts.push(bucket_start);
                out_vals.push(acc / count as f64);
            }
            bucket_start += bucket_ms;
            acc = 0.0;
            count = 0;
        }
        acc += v;
        count += 1;
    }
    if count > 0 {
        out_ts.push(bucket_start);
        out_vals.push(acc / count as f64);
    }
    TimeSeries::from_parts(out_ts, out_vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resample_preserves_regular_series() {
        let ts = TimeSeries::from_values(0, 500, vec![1.0, 2.0, 3.0, 4.0]);
        let r = resample(&ts, 500).unwrap();
        assert_eq!(r.timestamps(), ts.timestamps());
        for (a, b) in r.values().iter().zip(ts.values()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn resample_densifies_coarse_series() {
        // 2 s sampling resampled to 500 ms: 4x as many intervals.
        let ts = TimeSeries::from_values(0, 2000, vec![0.0, 4.0, 8.0, 12.0]);
        let r = resample(&ts, 500).unwrap();
        assert_eq!(r.len(), 13);
        // The underlying signal is linear, so interior points are exact.
        assert!((r.values()[1] - 1.0).abs() < 1e-9);
        assert!((r.values()[6] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn resample_grid_covers_the_final_observation() {
        // Regression: span 0..1700 at 500 ms used to stop the grid at 1500,
        // silently dropping the 1700 ms observation. The ceiling grid now
        // ends at 2000 and the final value survives (by extrapolation of the
        // boundary segment).
        let ts =
            TimeSeries::from_parts(vec![0, 600, 1200, 1700], vec![0.0, 6.0, 12.0, 17.0]).unwrap();
        let r = resample(&ts, 500).unwrap();
        assert_eq!(r.timestamps(), &[0, 500, 1000, 1500, 2000]);
        assert!(r.end_ms().unwrap() >= ts.end_ms().unwrap());
        // The signal is linear, so even the extrapolated tail is exact.
        for (t, v) in r.iter() {
            assert!((v - t as f64 / 100.0).abs() < 1e-9, "grid point {t}");
        }
    }

    #[test]
    fn resample_two_point_series_covers_end_with_boundary_value() {
        // Linear fallback: the overhang point takes the boundary value
        // (constant extrapolation of `linear_interpolate`).
        let ts = TimeSeries::from_parts(vec![0, 700], vec![0.0, 7.0]).unwrap();
        let r = resample(&ts, 500).unwrap();
        assert_eq!(r.timestamps(), &[0, 500, 1000]);
        assert!((r.values()[2] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn resample_rejects_bad_input() {
        assert!(resample(&TimeSeries::new(), 500).is_err());
        let ts = TimeSeries::from_values(0, 100, vec![1.0, 2.0]);
        assert!(resample(&ts, 0).is_err());
    }

    #[test]
    fn resample_two_point_series_uses_linear() {
        let ts = TimeSeries::from_values(0, 1000, vec![0.0, 10.0]);
        let r = resample(&ts, 500).unwrap();
        assert_eq!(r.len(), 3);
        assert!((r.values()[1] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn resample_view_is_bit_identical_to_resample() {
        let ts =
            TimeSeries::from_parts(vec![0, 600, 1200, 1700], vec![0.3, 6.1, 11.7, 17.2]).unwrap();
        let owned = resample(&ts, 500).unwrap();
        let viewed = resample_view(ts.view(), 500).unwrap();
        assert_eq!(owned, viewed);
        // A view over only the tail resamples exactly that tail.
        let tail = SeriesView::new(&ts.timestamps()[1..], &ts.values()[1..]);
        let tail_resampled = resample_view(tail, 500).unwrap();
        assert_eq!(tail_resampled.start_ms(), Some(600));
    }

    #[test]
    fn align_intersects_time_ranges() {
        let a = TimeSeries::from_values(0, 500, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = TimeSeries::from_values(1000, 500, vec![10.0, 11.0, 12.0, 13.0]);
        let (grid, va, vb) = align(&a, &b, 500).unwrap();
        assert_eq!(grid.first().copied(), Some(1000));
        assert_eq!(va.len(), vb.len());
        assert_eq!(va.len(), 4);
        assert!((va[0] - 2.0).abs() < 1e-9);
        assert!((vb[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn align_fails_without_overlap() {
        let a = TimeSeries::from_values(0, 100, vec![1.0, 2.0]);
        let b = TimeSeries::from_values(10_000, 100, vec![1.0, 2.0]);
        assert!(align(&a, &b, 100).is_err());
    }

    #[test]
    fn downsample_mean_averages_buckets() {
        let ts = TimeSeries::from_values(0, 100, vec![1.0, 3.0, 5.0, 7.0]);
        let d = downsample_mean(&ts, 200).unwrap();
        assert_eq!(d.len(), 2);
        assert!((d.values()[0] - 2.0).abs() < 1e-9);
        assert!((d.values()[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn downsample_handles_sparse_series() {
        let ts = TimeSeries::from_parts(vec![0, 1000, 5000], vec![1.0, 2.0, 3.0]).unwrap();
        let d = downsample_mean(&ts, 1000).unwrap();
        assert_eq!(d.len(), 3);
    }
}
