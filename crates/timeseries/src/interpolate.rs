//! Gap reconstruction by interpolation.
//!
//! Sieve preprocesses collected time series before clustering: "To
//! reconstruct missing data, we use spline interpolation of the third order
//! (cubic)" (§3.2). This module implements natural cubic splines (with a
//! tridiagonal solver) plus a simpler linear interpolator used as a fallback
//! when fewer than three knots are available.

use crate::{Result, TimeSeriesError};

/// A natural cubic spline fitted to `(x, y)` knots.
///
/// # Example
///
/// ```
/// use sieve_timeseries::interpolate::CubicSpline;
///
/// # fn main() -> Result<(), sieve_timeseries::TimeSeriesError> {
/// let xs = [0.0, 1.0, 2.0, 3.0];
/// let ys = [0.0, 1.0, 8.0, 27.0];
/// let spline = CubicSpline::fit(&xs, &ys)?;
/// // Exact at the knots, smooth in between.
/// assert!((spline.evaluate(2.0) - 8.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots.
    m: Vec<f64>,
}

impl CubicSpline {
    /// Fits a natural cubic spline through the given knots.
    ///
    /// # Errors
    ///
    /// * [`TimeSeriesError::LengthMismatch`] if `xs` and `ys` differ in length.
    /// * [`TimeSeriesError::TooFewObservations`] if fewer than 3 knots are given.
    /// * [`TimeSeriesError::UnsortedTimestamps`] if `xs` is not strictly increasing.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(TimeSeriesError::LengthMismatch {
                left: xs.len(),
                right: ys.len(),
            });
        }
        if xs.len() < 3 {
            return Err(TimeSeriesError::TooFewObservations {
                required: 3,
                actual: xs.len(),
            });
        }
        for i in 1..xs.len() {
            if xs[i] <= xs[i - 1] {
                return Err(TimeSeriesError::UnsortedTimestamps { index: i });
            }
        }
        let n = xs.len();
        // Solve for second derivatives m[0..n] with natural boundary
        // conditions m[0] = m[n-1] = 0 using the Thomas algorithm.
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        let mut c = vec![0.0; n];
        let mut d = vec![0.0; n];
        b[0] = 1.0;
        b[n - 1] = 1.0;
        for i in 1..n - 1 {
            let h_prev = xs[i] - xs[i - 1];
            let h_next = xs[i + 1] - xs[i];
            a[i] = h_prev;
            b[i] = 2.0 * (h_prev + h_next);
            c[i] = h_next;
            d[i] = 6.0 * ((ys[i + 1] - ys[i]) / h_next - (ys[i] - ys[i - 1]) / h_prev);
        }
        // Forward sweep.
        let mut c_star = vec![0.0; n];
        let mut d_star = vec![0.0; n];
        c_star[0] = c[0] / b[0];
        d_star[0] = d[0] / b[0];
        for i in 1..n {
            let denom = b[i] - a[i] * c_star[i - 1];
            c_star[i] = c[i] / denom;
            d_star[i] = (d[i] - a[i] * d_star[i - 1]) / denom;
        }
        // Back substitution.
        let mut m = vec![0.0; n];
        m[n - 1] = d_star[n - 1];
        for i in (0..n - 1).rev() {
            m[i] = d_star[i] - c_star[i] * m[i + 1];
        }
        Ok(Self {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            m,
        })
    }

    /// Evaluates the spline at `x`.
    ///
    /// Values outside the knot range are linearly extrapolated from the
    /// boundary segments.
    pub fn evaluate(&self, x: f64) -> f64 {
        let n = self.xs.len();
        // Locate the segment via binary search.
        let i = match self
            .xs
            .binary_search_by(|probe| probe.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(idx) => return self.ys[idx],
            Err(0) => 0,
            Err(idx) if idx >= n => n - 2,
            Err(idx) => idx - 1,
        };
        let h = self.xs[i + 1] - self.xs[i];
        let a = (self.xs[i + 1] - x) / h;
        let b = (x - self.xs[i]) / h;
        a * self.ys[i]
            + b * self.ys[i + 1]
            + ((a.powi(3) - a) * self.m[i] + (b.powi(3) - b) * self.m[i + 1]) * h * h / 6.0
    }
}

/// Piecewise-linear interpolation at `x` given knots `(xs, ys)`.
///
/// Outside the knot range the boundary values are returned (constant
/// extrapolation). Returns `None` when no knots are provided or the slices
/// have different lengths.
pub fn linear_interpolate(xs: &[f64], ys: &[f64], x: f64) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    if x <= xs[0] {
        return Some(ys[0]);
    }
    if x >= xs[xs.len() - 1] {
        return Some(ys[ys.len() - 1]);
    }
    for i in 1..xs.len() {
        if x <= xs[i] {
            let t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
            return Some(ys[i - 1] * (1.0 - t) + ys[i] * t);
        }
    }
    Some(ys[ys.len() - 1])
}

/// Fills missing values (`None`) in `samples` by interpolating over the
/// present ones: cubic spline when at least three observations are present,
/// linear for two, constant for one. All-missing input yields all zeros.
pub fn fill_gaps(samples: &[Option<f64>]) -> Vec<f64> {
    let known: Vec<(f64, f64)> = samples
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|v| (i as f64, v)))
        .collect();
    if known.is_empty() {
        return vec![0.0; samples.len()];
    }
    if known.len() == 1 {
        return vec![known[0].1; samples.len()];
    }
    let xs: Vec<f64> = known.iter().map(|(x, _)| *x).collect();
    let ys: Vec<f64> = known.iter().map(|(_, y)| *y).collect();
    if known.len() >= 3 {
        if let Ok(spline) = CubicSpline::fit(&xs, &ys) {
            return (0..samples.len())
                .map(|i| match samples[i] {
                    Some(v) => v,
                    None => spline.evaluate(i as f64),
                })
                .collect();
        }
    }
    (0..samples.len())
        .map(|i| match samples[i] {
            Some(v) => v,
            None => linear_interpolate(&xs, &ys, i as f64).unwrap_or(0.0),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spline_is_exact_at_knots() {
        let xs = [0.0, 1.0, 2.5, 4.0, 5.0];
        let ys = [1.0, -2.0, 0.5, 3.0, 3.0];
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((s.evaluate(*x) - y).abs() < 1e-9, "knot ({x}, {y})");
        }
    }

    #[test]
    fn spline_reproduces_linear_function_exactly() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for i in 0..90 {
            let x = i as f64 / 10.0;
            assert!((s.evaluate(x) - (3.0 * x + 2.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn spline_approximates_smooth_function_between_knots() {
        let xs: Vec<f64> = (0..21).map(|i| i as f64 * 0.5).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sin()).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for i in 0..100 {
            let x = i as f64 * 0.1;
            assert!(
                (s.evaluate(x) - x.sin()).abs() < 0.01,
                "poor approximation at {x}"
            );
        }
    }

    #[test]
    fn spline_rejects_bad_input() {
        assert!(CubicSpline::fit(&[0.0, 1.0], &[0.0, 1.0]).is_err());
        assert!(CubicSpline::fit(&[0.0, 1.0, 1.0], &[0.0, 1.0, 2.0]).is_err());
        assert!(CubicSpline::fit(&[0.0, 1.0, 2.0], &[0.0, 1.0]).is_err());
    }

    #[test]
    fn linear_interpolation_midpoint() {
        let v = linear_interpolate(&[0.0, 2.0], &[0.0, 10.0], 1.0).unwrap();
        assert!((v - 5.0).abs() < 1e-12);
        // Constant extrapolation outside the range.
        assert_eq!(
            linear_interpolate(&[0.0, 2.0], &[0.0, 10.0], -1.0),
            Some(0.0)
        );
        assert_eq!(
            linear_interpolate(&[0.0, 2.0], &[0.0, 10.0], 5.0),
            Some(10.0)
        );
    }

    #[test]
    fn fill_gaps_recovers_smooth_signal() {
        // Quadratic signal with two holes.
        let truth: Vec<f64> = (0..10).map(|i| (i as f64).powi(2)).collect();
        let mut samples: Vec<Option<f64>> = truth.iter().copied().map(Some).collect();
        samples[3] = None;
        samples[7] = None;
        let filled = fill_gaps(&samples);
        assert!((filled[3] - 9.0).abs() < 0.5);
        assert!((filled[7] - 49.0).abs() < 0.5);
        // Present samples are untouched.
        assert_eq!(filled[0], 0.0);
        assert_eq!(filled[9], 81.0);
    }

    #[test]
    fn fill_gaps_handles_degenerate_inputs() {
        assert_eq!(fill_gaps(&[None, None]), vec![0.0, 0.0]);
        assert_eq!(fill_gaps(&[None, Some(5.0), None]), vec![5.0, 5.0, 5.0]);
        let two = fill_gaps(&[Some(0.0), None, Some(2.0)]);
        assert!((two[1] - 1.0).abs() < 1e-9);
    }
}
