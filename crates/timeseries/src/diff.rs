//! Differencing and lagging transforms.
//!
//! Non-stationary series (e.g. monotonically increasing counters) would make
//! Sieve's Granger F-tests find spurious regressions; the paper takes the
//! first difference of those series (§3.3). The Granger tests also compare a
//! metric against the *time-lagged* version of another metric, so lag/shift
//! helpers live here too.

use crate::TimeSeries;

/// First difference of `data`: `d[i] = data[i+1] - data[i]`.
///
/// The result has length `data.len() - 1` (empty for inputs shorter than 2).
///
/// ```
/// assert_eq!(sieve_timeseries::diff::first_difference(&[1.0, 4.0, 9.0]), vec![3.0, 5.0]);
/// ```
pub fn first_difference(data: &[f64]) -> Vec<f64> {
    if data.len() < 2 {
        return Vec::new();
    }
    data.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Applies [`first_difference`] `order` times.
pub fn difference(data: &[f64], order: usize) -> Vec<f64> {
    let mut out = data.to_vec();
    for _ in 0..order {
        out = first_difference(&out);
    }
    out
}

/// First difference of a [`TimeSeries`], keeping the later timestamp of each
/// pair so that causality ordering is preserved.
pub fn difference_series(series: &TimeSeries) -> TimeSeries {
    if series.len() < 2 {
        return TimeSeries::new();
    }
    let ts = series.timestamps()[1..].to_vec();
    let vals = first_difference(series.values());
    TimeSeries::from_parts(ts, vals).expect("differenced series keeps ordering")
}

/// Shifts `data` forward by `lag` positions, filling the head with the first
/// observed value (used to build the "time-lagged version" of a metric).
pub fn shift_forward(data: &[f64], lag: usize) -> Vec<f64> {
    if data.is_empty() {
        return Vec::new();
    }
    if lag == 0 {
        return data.to_vec();
    }
    let fill = data[0];
    let mut out = Vec::with_capacity(data.len());
    for i in 0..data.len() {
        if i < lag {
            out.push(fill);
        } else {
            out.push(data[i - lag]);
        }
    }
    out
}

/// Builds a lagged design matrix: row `t` contains
/// `[y[t-1], y[t-2], ..., y[t-p]]` for `t` in `p..n`. Returns the rows and
/// the corresponding targets `y[t]`.
///
/// This is the autoregressive part shared by the restricted and unrestricted
/// models of the Granger test.
pub fn lagged_matrix(y: &[f64], p: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = y.len();
    if p == 0 || n <= p {
        return (Vec::new(), Vec::new());
    }
    let mut rows = Vec::with_capacity(n - p);
    let mut targets = Vec::with_capacity(n - p);
    for t in p..n {
        let mut row = Vec::with_capacity(p);
        for k in 1..=p {
            row.push(y[t - k]);
        }
        rows.push(row);
        targets.push(y[t]);
    }
    (rows, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_difference_of_counter_is_rate() {
        let counter = [0.0, 10.0, 25.0, 25.0, 40.0];
        assert_eq!(first_difference(&counter), vec![10.0, 15.0, 0.0, 15.0]);
    }

    #[test]
    fn first_difference_of_short_input_is_empty() {
        assert!(first_difference(&[]).is_empty());
        assert!(first_difference(&[1.0]).is_empty());
    }

    #[test]
    fn second_difference_removes_linear_trend() {
        let data: Vec<f64> = (0..10).map(|i| 3.0 * i as f64 + 7.0).collect();
        let d2 = difference(&data, 2);
        assert_eq!(d2.len(), 8);
        assert!(d2.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn difference_series_shifts_timestamps() {
        let ts = TimeSeries::from_values(0, 500, vec![1.0, 3.0, 6.0]);
        let d = difference_series(&ts);
        assert_eq!(d.timestamps(), &[500, 1000]);
        assert_eq!(d.values(), &[2.0, 3.0]);
    }

    #[test]
    fn difference_of_single_point_series_is_empty() {
        let ts = TimeSeries::from_values(0, 500, vec![42.0]);
        assert!(difference_series(&ts).is_empty());
    }

    #[test]
    fn shift_forward_pads_with_first_value() {
        assert_eq!(shift_forward(&[1.0, 2.0, 3.0], 1), vec![1.0, 1.0, 2.0]);
        assert_eq!(shift_forward(&[1.0, 2.0, 3.0], 0), vec![1.0, 2.0, 3.0]);
        assert!(shift_forward(&[], 2).is_empty());
    }

    #[test]
    fn lagged_matrix_shapes_are_consistent() {
        let y = [1.0, 2.0, 3.0, 4.0, 5.0];
        let (rows, targets) = lagged_matrix(&y, 2);
        assert_eq!(rows.len(), 3);
        assert_eq!(targets, vec![3.0, 4.0, 5.0]);
        assert_eq!(rows[0], vec![2.0, 1.0]);
        assert_eq!(rows[2], vec![4.0, 3.0]);
    }

    #[test]
    fn lagged_matrix_degenerate_cases() {
        let (rows, targets) = lagged_matrix(&[1.0, 2.0], 5);
        assert!(rows.is_empty() && targets.is_empty());
        let (rows, _) = lagged_matrix(&[1.0, 2.0, 3.0], 0);
        assert!(rows.is_empty());
    }
}
