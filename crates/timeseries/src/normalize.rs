//! Normalization helpers.
//!
//! k-Shape (and therefore Sieve's clustering step) compares time series after
//! *z-normalization* so that metrics with different units and amplitudes
//! become comparable (§3.2 of the paper: "k-Shape is robust against
//! distortion in amplitude because data is normalized via z-normalization").

use crate::stats;

/// Returns the z-normalized copy of `data`: `(x - mean) / std`.
///
/// A constant series (zero standard deviation) maps to all zeros, which is
/// the conventional behaviour in the k-Shape reference implementation.
///
/// ```
/// let z = sieve_timeseries::normalize::z_normalize(&[2.0, 4.0, 6.0]);
/// assert!(z[1].abs() < 1e-12);
/// ```
pub fn z_normalize(data: &[f64]) -> Vec<f64> {
    let m = stats::mean(data);
    let s = stats::std_dev(data);
    if s == 0.0 {
        return vec![0.0; data.len()];
    }
    // Hoist the division out of the loop: the scale is loop-invariant, and a
    // multiply vectorizes where a divide stalls. Part of the documented
    // epsilon tier (±1 ULP per element vs. the seed's per-element divide);
    // every z-normalizing path in the workspace shares this kernel, so all
    // pairwise bitwise asserts are unaffected.
    let inv = 1.0 / s;
    data.iter().map(|v| (v - m) * inv).collect()
}

/// In-place z-normalization. Identical float operations to [`z_normalize`].
pub fn z_normalize_in_place(data: &mut [f64]) {
    let m = stats::mean(data);
    let s = stats::std_dev(data);
    if s == 0.0 {
        for v in data.iter_mut() {
            *v = 0.0;
        }
        return;
    }
    let inv = 1.0 / s;
    for v in data.iter_mut() {
        *v = (*v - m) * inv;
    }
}

/// z-normalizes `data` into the caller-provided `out` slice — the columnar
/// series caches use this to fill one contiguous arena without a temporary
/// allocation per series. Identical float operations to [`z_normalize`].
///
/// # Panics
///
/// Panics if `out.len() != data.len()`.
pub fn z_normalize_into(data: &[f64], out: &mut [f64]) {
    assert_eq!(out.len(), data.len(), "output slice length must match");
    let m = stats::mean(data);
    let s = stats::std_dev(data);
    if s == 0.0 {
        out.fill(0.0);
        return;
    }
    let inv = 1.0 / s;
    for (o, &v) in out.iter_mut().zip(data.iter()) {
        *o = (v - m) * inv;
    }
}

/// Min-max normalization into `[0, 1]`. A constant series maps to all zeros.
pub fn min_max_normalize(data: &[f64]) -> Vec<f64> {
    let (Some(lo), Some(hi)) = (stats::min(data), stats::max(data)) else {
        return Vec::new();
    };
    let range = hi - lo;
    if range == 0.0 {
        return vec![0.0; data.len()];
    }
    data.iter().map(|v| (v - lo) / range).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn z_normalized_series_has_zero_mean_unit_variance() {
        let data = [1.0, 5.0, 9.0, 2.0, 8.0, 3.0];
        let z = z_normalize(&data);
        assert!(stats::mean(&z).abs() < 1e-12);
        assert!((stats::variance(&z) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalize_constant_series_is_all_zero() {
        let z = z_normalize(&[4.0, 4.0, 4.0]);
        assert_eq!(z, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn z_normalize_in_place_matches_copy_version() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0];
        let copy = z_normalize(&data);
        let mut inplace = data.to_vec();
        z_normalize_in_place(&mut inplace);
        for (a, b) in copy.iter().zip(inplace.iter()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn z_normalize_is_scale_and_shift_invariant() {
        let data = [1.0, 2.0, 7.0, 3.0];
        let scaled: Vec<f64> = data.iter().map(|v| v * 13.0 + 100.0).collect();
        let za = z_normalize(&data);
        let zb = z_normalize(&scaled);
        for (a, b) in za.iter().zip(zb.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn z_normalize_into_is_bitwise_equal_to_allocating_version() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let alloc = z_normalize(&data);
        let mut out = vec![f64::NAN; data.len()];
        z_normalize_into(&data, &mut out);
        for (a, b) in alloc.iter().zip(out.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let mut zeros = vec![f64::NAN; 3];
        z_normalize_into(&[2.0, 2.0, 2.0], &mut zeros);
        assert_eq!(zeros, vec![0.0; 3]);
    }

    #[test]
    fn min_max_maps_to_unit_interval() {
        let n = min_max_normalize(&[10.0, 20.0, 15.0]);
        assert_eq!(n, vec![0.0, 1.0, 0.5]);
    }

    #[test]
    fn min_max_of_constant_is_zero() {
        assert_eq!(min_max_normalize(&[7.0, 7.0]), vec![0.0, 0.0]);
        assert!(min_max_normalize(&[]).is_empty());
    }
}
