//! Cached series spectra: the shared SBD computation engine.
//!
//! Every shape-based distance evaluation needs the same three ingredients
//! per series — its z-normalized values, their L2 norm, and the forward FFT
//! of the z-normalized signal at the padded power-of-two length. The naive
//! [`crate::sbd::shape_based_distance`] recomputes all three for *both*
//! operands on every call; k-Shape fit, centroid refinement and
//! silhouette-based k selection together issue O(n²·k·iterations) such
//! calls per component. A [`SeriesSpectrum`] computes the ingredients once
//! per series, after which each pairwise distance costs one spectrum
//! product and one inverse FFT instead of two z-normalizations and three
//! FFTs.
//!
//! The cached path is **bit-identical** to the naive one: it funnels
//! through the same [`crate::fft::cross_correlation_from_ffts`] and NCC
//! peak-scan code as [`crate::sbd::shape_based_distance`], and the cached
//! forward FFT is produced by the same [`crate::fft::fft_real`] call the
//! direct path performs internally. The pipeline's cached/naive model
//! equality tests rely on this.

use crate::fft::{
    cross_correlation_from_ffts, fft_in_place_with, fft_real, next_power_of_two, twiddle_table,
    Complex,
};
use crate::normalize::z_normalize;
use crate::sbd::{peak_of_ncc, SbdResult};
use crate::stats::sum_of_squares;
use crate::{Result, TimeSeriesError};
use std::sync::Arc;

/// The per-series state of the SBD engine: z-normalized values, their L2
/// norm and the forward FFT at the padded power-of-two length.
///
/// The buffers live behind `Arc`s, so cloning a spectrum (e.g. to share it
/// between a distance matrix and a k-Shape run) is a refcount bump.
#[derive(Debug, Clone)]
pub struct SeriesSpectrum {
    /// Original series length.
    len: usize,
    /// z-normalized copy of the input series.
    z: Arc<[f64]>,
    /// L2 norm of the z-normalized values.
    norm: f64,
    /// Forward FFT of the z-normalized values, zero-padded to `padded_len`.
    fft: Arc<[Complex]>,
    /// The power-of-two FFT length: `next_power_of_two(2 * len - 1)`.
    padded_len: usize,
}

impl SeriesSpectrum {
    /// Computes the spectrum of `values`: z-normalizes, takes the norm and
    /// runs one forward FFT at `next_power_of_two(2 * len - 1)` — the padded
    /// length a cross-correlation against any series of the *same* length
    /// requires, which is the shape of every pairwise computation in the
    /// pipeline (prepared series are truncated to a common length and
    /// k-Shape centroids inherit it).
    ///
    /// # Errors
    ///
    /// * [`TimeSeriesError::Empty`] for an empty input.
    pub fn compute(values: &[f64]) -> Result<Self> {
        if values.is_empty() {
            return Err(TimeSeriesError::Empty);
        }
        let len = values.len();
        let z = z_normalize(values);
        // Same chunked kernel as the direct SBD path and the batched path, so
        // all three stay bitwise interchangeable.
        let norm = sum_of_squares(&z).sqrt();
        let padded_len = next_power_of_two(2 * len - 1);
        let fft = fft_real(&z, padded_len);
        Ok(Self {
            len,
            z: z.into(),
            norm,
            fft: fft.into(),
            padded_len,
        })
    }

    /// Original series length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying series is empty (never true for a constructed
    /// spectrum; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The z-normalized values the spectrum was computed from.
    pub fn z_values(&self) -> &[f64] {
        &self.z
    }

    /// L2 norm of the z-normalized values (0 for a constant series).
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// The padded FFT length.
    pub fn padded_len(&self) -> usize {
        self.padded_len
    }
}

/// All spectra of one component, computed in a single pass over one
/// contiguous FFT arena.
///
/// The pipeline's prepared series are truncated to a common length per
/// component, so every spectrum of a component shares one padded FFT
/// length. The batch exploits that: it fetches the twiddle table once,
/// packs every z-normalized series into one contiguous `Complex` buffer and
/// transforms the chunks back to back — one allocation and one table fetch
/// for the whole component instead of one of each per series.
///
/// The result is **bitwise identical** to calling
/// [`SeriesSpectrum::compute`] per series (asserted by property tests): the
/// batch changes memory layout and table reuse, never the float operations.
#[derive(Debug, Clone)]
pub struct SpectrumBatch {
    spectra: Vec<SeriesSpectrum>,
}

impl SpectrumBatch {
    /// Computes the spectra of `series`, which must all have the same
    /// nonzero length (the shape every per-component computation in the
    /// pipeline has).
    ///
    /// # Errors
    ///
    /// * [`TimeSeriesError::Empty`] if any series is empty.
    /// * [`TimeSeriesError::LengthMismatch`] if the series lengths differ.
    pub fn compute<S: AsRef<[f64]>>(series: &[S]) -> Result<Self> {
        let Some(first) = series.first() else {
            return Ok(Self {
                spectra: Vec::new(),
            });
        };
        let len = first.as_ref().len();
        if len == 0 {
            return Err(TimeSeriesError::Empty);
        }
        for s in series {
            let other = s.as_ref().len();
            if other != len {
                return Err(TimeSeriesError::LengthMismatch {
                    left: len,
                    right: other,
                });
            }
            if other == 0 {
                return Err(TimeSeriesError::Empty);
            }
        }
        let padded_len = next_power_of_two(2 * len - 1);
        let table = twiddle_table(padded_len);
        // One contiguous arena for every transform of the component.
        let mut arena = vec![Complex::default(); series.len() * padded_len];
        let mut zs: Vec<Vec<f64>> = Vec::with_capacity(series.len());
        for (chunk, s) in arena.chunks_exact_mut(padded_len).zip(series.iter()) {
            let z = z_normalize(s.as_ref());
            for (slot, &v) in chunk.iter_mut().zip(z.iter()) {
                *slot = Complex::from_real(v);
            }
            zs.push(z);
        }
        for chunk in arena.chunks_exact_mut(padded_len) {
            fft_in_place_with(chunk, &table);
        }
        let spectra = zs
            .into_iter()
            .zip(arena.chunks_exact(padded_len))
            .map(|(z, fft)| {
                let norm = sum_of_squares(&z).sqrt();
                SeriesSpectrum {
                    len,
                    z: z.into(),
                    norm,
                    fft: fft.into(),
                    padded_len,
                }
            })
            .collect();
        Ok(Self { spectra })
    }

    /// The computed spectra, in input order.
    pub fn spectra(&self) -> &[SeriesSpectrum] {
        &self.spectra
    }

    /// Number of spectra in the batch.
    pub fn len(&self) -> usize {
        self.spectra.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.spectra.is_empty()
    }

    /// Consumes the batch, yielding the spectra in input order.
    pub fn into_spectra(self) -> Vec<SeriesSpectrum> {
        self.spectra
    }
}

/// Computes the shape-based distance between two cached spectra,
/// bit-identical to `shape_based_distance(x_values, y_values)` on the raw
/// series the spectra were computed from.
///
/// # Errors
///
/// * [`TimeSeriesError::LengthMismatch`] when the spectra were padded to
///   different lengths, or when the pair's required FFT length
///   `next_power_of_two(x.len + y.len - 1)` differs from the cached one —
///   both only possible for series of different lengths, which the pipeline
///   never compares.
pub fn sbd_from_spectra(x: &SeriesSpectrum, y: &SeriesSpectrum) -> Result<SbdResult> {
    let required = next_power_of_two(x.len + y.len - 1);
    if x.padded_len != y.padded_len || x.padded_len != required {
        return Err(TimeSeriesError::LengthMismatch {
            left: x.len,
            right: y.len,
        });
    }
    let cc = cross_correlation_from_ffts(&x.fft, &y.fft, x.len, y.len);
    let denom = x.norm * y.norm;
    let ncc: Vec<f64> = if denom == 0.0 {
        // At least one series is constant: same convention as
        // `ncc_sequence` — all-zero NCC, so SBD becomes 1.
        vec![0.0; cc.len()]
    } else {
        cc.into_iter().map(|v| v / denom).collect()
    };
    Ok(peak_of_ncc(&ncc, y.len))
}

/// Convenience wrapper returning just the distance.
///
/// # Errors
///
/// Same as [`sbd_from_spectra`].
pub fn sbd_distance_from_spectra(x: &SeriesSpectrum, y: &SeriesSpectrum) -> Result<f64> {
    Ok(sbd_from_spectra(x, y)?.distance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sbd::shape_based_distance;

    /// Deterministic splitmix64 generator (matching the repo's property-test
    /// style).
    fn splitmix(state: &mut u64) -> f64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        ((z >> 11) as f64) / (1u64 << 53) as f64 - 0.5
    }

    fn random_series(len: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        (0..len).map(|_| 100.0 * splitmix(&mut s)).collect()
    }

    #[test]
    fn cached_path_is_bit_identical_to_direct_path() {
        for len in [1usize, 2, 3, 7, 16, 33, 100, 256] {
            for seed in 0..8u64 {
                let x = random_series(len, seed * 2 + 1);
                let y = random_series(len, seed * 2 + 2);
                let direct = shape_based_distance(&x, &y).unwrap();
                let sx = SeriesSpectrum::compute(&x).unwrap();
                let sy = SeriesSpectrum::compute(&y).unwrap();
                let cached = sbd_from_spectra(&sx, &sy).unwrap();
                // Bitwise equality, not approximate: both paths must run the
                // exact same float operations.
                assert_eq!(
                    direct.distance.to_bits(),
                    cached.distance.to_bits(),
                    "len {len} seed {seed}"
                );
                assert_eq!(direct.shift, cached.shift, "len {len} seed {seed}");
                assert_eq!(
                    direct.ncc.to_bits(),
                    cached.ncc.to_bits(),
                    "len {len} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn cached_path_handles_constant_series_like_the_direct_path() {
        let x = vec![5.0; 32];
        let y = random_series(32, 9);
        let sx = SeriesSpectrum::compute(&x).unwrap();
        let sy = SeriesSpectrum::compute(&y).unwrap();
        assert_eq!(sx.norm(), 0.0);
        let direct = shape_based_distance(&x, &y).unwrap();
        let cached = sbd_from_spectra(&sx, &sy).unwrap();
        assert_eq!(direct.distance.to_bits(), cached.distance.to_bits());
        assert_eq!(direct.shift, cached.shift);
        assert!((cached.distance - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batch_is_bitwise_equal_to_per_series_spectra() {
        // The documented contract is "within epsilon"; the implementation is
        // in fact bitwise because only layout and table reuse change, never
        // the float operations — assert the stronger property.
        for count in [1usize, 2, 5, 9] {
            for len in [1usize, 3, 16, 100] {
                let series: Vec<Vec<f64>> = (0..count)
                    .map(|i| random_series(len, i as u64 * 17 + 3))
                    .collect();
                let batch = SpectrumBatch::compute(&series).unwrap();
                assert_eq!(batch.len(), count);
                assert!(!batch.is_empty());
                for (i, (b, s)) in batch
                    .spectra()
                    .iter()
                    .zip(series.iter().map(|s| SeriesSpectrum::compute(s).unwrap()))
                    .enumerate()
                {
                    let ctx = format!("count={count} len={len} series={i}");
                    assert_eq!(b.len(), s.len(), "{ctx}");
                    assert_eq!(b.padded_len(), s.padded_len(), "{ctx}");
                    assert_eq!(b.norm().to_bits(), s.norm().to_bits(), "{ctx}");
                    for (a, c) in b.z_values().iter().zip(s.z_values().iter()) {
                        assert_eq!(a.to_bits(), c.to_bits(), "{ctx}: z");
                    }
                    for (a, c) in b.fft.iter().zip(s.fft.iter()) {
                        assert_eq!(a.re.to_bits(), c.re.to_bits(), "{ctx}: fft re");
                        assert_eq!(a.im.to_bits(), c.im.to_bits(), "{ctx}: fft im");
                    }
                }
            }
        }
    }

    #[test]
    fn batch_distances_match_direct_path_bitwise() {
        let series: Vec<Vec<f64>> = (0..6).map(|i| random_series(48, i + 100)).collect();
        let batch = SpectrumBatch::compute(&series).unwrap();
        for i in 0..series.len() {
            for j in 0..series.len() {
                let direct = shape_based_distance(&series[i], &series[j]).unwrap();
                let cached = sbd_from_spectra(&batch.spectra()[i], &batch.spectra()[j]).unwrap();
                assert_eq!(direct.distance.to_bits(), cached.distance.to_bits());
                assert_eq!(direct.shift, cached.shift);
            }
        }
    }

    #[test]
    fn batch_rejects_mixed_lengths_and_empty_series() {
        assert!(matches!(
            SpectrumBatch::compute(&[vec![1.0, 2.0], vec![1.0, 2.0, 3.0]]),
            Err(TimeSeriesError::LengthMismatch { .. })
        ));
        assert!(matches!(
            SpectrumBatch::compute(&[Vec::<f64>::new()]),
            Err(TimeSeriesError::Empty)
        ));
        let empty: Vec<Vec<f64>> = Vec::new();
        assert!(SpectrumBatch::compute(&empty).unwrap().is_empty());
    }

    #[test]
    fn spectrum_rejects_empty_input() {
        assert!(matches!(
            SeriesSpectrum::compute(&[]),
            Err(TimeSeriesError::Empty)
        ));
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        // 5-point series pads to 16, 20-point series pads to 64: the pair
        // cannot be combined from these caches.
        let a = SeriesSpectrum::compute(&random_series(5, 1)).unwrap();
        let b = SeriesSpectrum::compute(&random_series(20, 2)).unwrap();
        assert!(matches!(
            sbd_from_spectra(&a, &b),
            Err(TimeSeriesError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn accessors_expose_the_cached_state() {
        let x = random_series(10, 3);
        let s = SeriesSpectrum::compute(&x).unwrap();
        assert_eq!(s.len(), 10);
        assert!(!s.is_empty());
        assert_eq!(s.padded_len(), 32);
        assert_eq!(s.z_values().len(), 10);
        assert!(s.norm() > 0.0);
        // Clone shares the buffers.
        let c = s.clone();
        assert!(std::sync::Arc::ptr_eq(&c.z, &s.z));
        assert!(std::sync::Arc::ptr_eq(&c.fft, &s.fft));
    }

    #[test]
    fn pairwise_distance_wrapper_matches_full_result() {
        let x = random_series(40, 5);
        let y = random_series(40, 6);
        let sx = SeriesSpectrum::compute(&x).unwrap();
        let sy = SeriesSpectrum::compute(&y).unwrap();
        let d = sbd_distance_from_spectra(&sx, &sy).unwrap();
        assert_eq!(
            d.to_bits(),
            sbd_from_spectra(&sx, &sy).unwrap().distance.to_bits()
        );
    }
}
