//! Time-series primitives used throughout the Sieve reproduction.
//!
//! This crate implements, from scratch, every piece of numerical time-series
//! machinery that the Sieve pipeline (Thalheim et al., Middleware 2017)
//! relies on:
//!
//! * a [`TimeSeries`] container with millisecond timestamps,
//! * descriptive statistics ([`stats`]),
//! * z-normalization ([`normalize`]) as required by k-Shape,
//! * natural cubic-spline interpolation for gap reconstruction
//!   ([`interpolate`], §3.2 of the paper),
//! * resampling/discretization to a fixed 500 ms grid ([`resample`]),
//! * first-differencing and lagging for the Granger causality tests
//!   ([`diff`]),
//! * a radix-2 FFT ([`fft`]) used to compute the normalized
//!   cross-correlation,
//! * the shape-based distance (SBD) of the k-Shape algorithm ([`sbd`]), and
//! * cached per-series spectra ([`spectrum`]) that make repeated SBD
//!   evaluations cheap (one product + inverse FFT per pair) while staying
//!   bit-identical to the direct path.
//!
//! # Example
//!
//! ```
//! use sieve_timeseries::{TimeSeries, sbd};
//!
//! # fn main() -> Result<(), sieve_timeseries::TimeSeriesError> {
//! // Two series with identical shape but different amplitude and a lag.
//! let a = TimeSeries::from_values(0, 500, vec![0.0, 1.0, 4.0, 1.0, 0.0, 0.0]);
//! let b = TimeSeries::from_values(0, 500, vec![0.0, 0.0, 2.0, 8.0, 2.0, 0.0]);
//! let d = sbd::shape_based_distance(a.values(), b.values())?;
//! assert!(d.distance < 0.2, "shape-based distance ignores scale and lag");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diff;
pub mod fft;
pub mod interpolate;
pub mod normalize;
pub mod resample;
pub mod sbd;
pub mod series;
pub mod spectrum;
pub mod stats;

mod error;

pub use error::TimeSeriesError;
pub use series::{SeriesView, TimeSeries};

/// Convenient result alias used by fallible operations in this crate.
pub type Result<T> = std::result::Result<T, TimeSeriesError>;
