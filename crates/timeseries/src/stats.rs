//! Descriptive statistics over slices of `f64` samples.
//!
//! These helpers back the variance pre-filter of Sieve's metric-reduction
//! step (§3.2, "Filtering unvarying metrics": drop metrics with
//! `var <= 0.002`) and the regression machinery in `sieve-causality`.

/// Number of independent accumulators in the chunked summation kernels.
///
/// Splitting a reduction across four accumulators breaks the sequential
/// dependency chain of a single-accumulator float sum, which is what allows
/// the autovectorizer to lift these loops — float addition is not
/// associative, so LLVM will never reassociate a strict left fold on its
/// own. The reassociation changes results by at most a few ULPs relative to
/// the seed's sequential sums; this is the documented *epsilon tier* of the
/// kernel layer (see `docs/ARCHITECTURE.md`). Every cached/naive model pair
/// in the workspace shares these kernels on both sides, so all bitwise
/// pair-equality asserts are unaffected.
const LANES: usize = 4;

/// Chunked sum with [`LANES`] independent accumulators.
#[inline]
fn chunked_sum(data: &[f64]) -> f64 {
    let chunks = data.chunks_exact(LANES);
    let remainder = chunks.remainder();
    let mut acc = [0.0f64; LANES];
    for chunk in chunks {
        for (a, &v) in acc.iter_mut().zip(chunk.iter()) {
            *a += v;
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &v in remainder {
        total += v;
    }
    total
}

/// Chunked sum of `f(v)` over `data` with [`LANES`] accumulators; `f` must be
/// cheap and pure (it is applied once per element, in order, per lane).
#[inline]
fn chunked_sum_with(data: &[f64], f: impl Fn(f64) -> f64) -> f64 {
    let chunks = data.chunks_exact(LANES);
    let remainder = chunks.remainder();
    let mut acc = [0.0f64; LANES];
    for chunk in chunks {
        for (a, &v) in acc.iter_mut().zip(chunk.iter()) {
            *a += f(v);
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for &v in remainder {
        total += f(v);
    }
    total
}

/// Chunked dot product of two equally long slices.
///
/// This is the innermost kernel of the OLS normal equations
/// (`sieve-causality`) and the spectrum norms; like every chunked kernel
/// here it trades the seed's sequential summation order for a 4-lane
/// reassociated one (epsilon tier).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot product needs equal lengths");
    let x_chunks = x.chunks_exact(LANES);
    let x_rem = x_chunks.remainder();
    let y_rem = &y[y.len() - x_rem.len()..];
    let mut acc = [0.0f64; LANES];
    for (xc, yc) in x_chunks.zip(y.chunks_exact(LANES)) {
        for ((a, &xv), &yv) in acc.iter_mut().zip(xc.iter()).zip(yc.iter()) {
            *a += xv * yv;
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&xv, &yv) in x_rem.iter().zip(y_rem.iter()) {
        total += xv * yv;
    }
    total
}

/// Chunked sum of squared deviations `Σ (v - center)²` — the numerator of a
/// variance, exposed for callers (the OLS total sum of squares) that already
/// hold the mean. Epsilon tier, like every chunked kernel here.
pub fn centered_sum_of_squares(data: &[f64], center: f64) -> f64 {
    chunked_sum_with(data, |v| (v - center) * (v - center))
}

/// Arithmetic mean of `data`. Returns `0.0` for an empty slice.
///
/// ```
/// assert_eq!(sieve_timeseries::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    chunked_sum(data) / data.len() as f64
}

/// Population variance (divides by `n`). Returns `0.0` for fewer than two
/// observations.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    chunked_sum_with(data, |v| (v - m) * (v - m)) / data.len() as f64
}

/// Sample variance (divides by `n - 1`). Returns `0.0` for fewer than two
/// observations.
pub fn sample_variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    chunked_sum_with(data, |v| (v - m) * (v - m)) / (data.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Minimum value; `None` for an empty slice.
pub fn min(data: &[f64]) -> Option<f64> {
    data.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(m) => Some(if v < m { v } else { m }),
    })
}

/// Maximum value; `None` for an empty slice.
pub fn max(data: &[f64]) -> Option<f64> {
    data.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(m) => Some(if v > m { v } else { m }),
    })
}

/// Linear-interpolated percentile, `p` in `[0, 100]`. Returns `None` for an
/// empty slice.
///
/// This is the estimator used to evaluate the "90% of request latencies below
/// 1000 ms" SLA condition of the autoscaling case study (§4.1, §6.2).
pub fn percentile(data: &[f64], p: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile).
pub fn median(data: &[f64]) -> Option<f64> {
    percentile(data, 50.0)
}

/// Population covariance of two equally long slices; `0.0` if the slices are
/// shorter than two observations or have different lengths.
pub fn covariance(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let x_chunks = x.chunks_exact(LANES);
    let x_rem = x_chunks.remainder();
    let y_rem = &y[y.len() - x_rem.len()..];
    let mut acc = [0.0f64; LANES];
    for (xc, yc) in x_chunks.zip(y.chunks_exact(LANES)) {
        for ((a, &xv), &yv) in acc.iter_mut().zip(xc.iter()).zip(yc.iter()) {
            *a += (xv - mx) * (yv - my);
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&xv, &yv) in x_rem.iter().zip(y_rem.iter()) {
        total += (xv - mx) * (yv - my);
    }
    total / x.len() as f64
}

/// Pearson correlation coefficient; `0.0` when either series is constant or
/// the lengths differ.
///
/// Fused single-pass form: after the two means, one chunked sweep
/// accumulates `Σ(x-mx)²`, `Σ(y-my)²` and `Σ(x-mx)(y-my)` together instead
/// of the seed's five separate passes. The hot caller is the Granger stage's
/// `strongest_lag`, which evaluates this once per candidate lag per edge.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let x_chunks = x.chunks_exact(LANES);
    let x_rem = x_chunks.remainder();
    let y_rem = &y[y.len() - x_rem.len()..];
    let mut sxx = [0.0f64; LANES];
    let mut syy = [0.0f64; LANES];
    let mut sxy = [0.0f64; LANES];
    for (xc, yc) in x_chunks.zip(y.chunks_exact(LANES)) {
        for i in 0..LANES {
            let dx = xc[i] - mx;
            let dy = yc[i] - my;
            sxx[i] += dx * dx;
            syy[i] += dy * dy;
            sxy[i] += dx * dy;
        }
    }
    let mut txx = (sxx[0] + sxx[1]) + (sxx[2] + sxx[3]);
    let mut tyy = (syy[0] + syy[1]) + (syy[2] + syy[3]);
    let mut txy = (sxy[0] + sxy[1]) + (sxy[2] + sxy[3]);
    for (&xv, &yv) in x_rem.iter().zip(y_rem.iter()) {
        let dx = xv - mx;
        let dy = yv - my;
        txx += dx * dx;
        tyy += dy * dy;
        txy += dx * dy;
    }
    let n = x.len() as f64;
    let sx = (txx / n).sqrt();
    let sy = (tyy / n).sqrt();
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    (txy / n) / (sx * sy)
}

/// Autocorrelation of `data` at a given `lag` (biased estimator, normalised
/// by the lag-0 autocovariance). Returns `0.0` when it is not defined.
pub fn autocorrelation(data: &[f64], lag: usize) -> f64 {
    let n = data.len();
    if n < 2 || lag >= n {
        return 0.0;
    }
    let m = mean(data);
    let denom: f64 = data.iter().map(|v| (v - m).powi(2)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - lag)
        .map(|i| (data[i] - m) * (data[i + lag] - m))
        .sum();
    num / denom
}

/// Sum of squared values.
pub fn sum_of_squares(data: &[f64]) -> f64 {
    chunked_sum_with(data, |v| v * v)
}

/// Residual sum of squares between observations and fitted values.
///
/// Both slices must have equal length; extra elements in the longer slice are
/// ignored.
pub fn residual_sum_of_squares(observed: &[f64], fitted: &[f64]) -> f64 {
    let len = observed.len().min(fitted.len());
    let (observed, fitted) = (&observed[..len], &fitted[..len]);
    let o_chunks = observed.chunks_exact(LANES);
    let o_rem = o_chunks.remainder();
    let f_rem = &fitted[len - o_rem.len()..];
    let mut acc = [0.0f64; LANES];
    for (oc, fc) in o_chunks.zip(fitted.chunks_exact(LANES)) {
        for ((a, &o), &f) in acc.iter_mut().zip(oc.iter()).zip(fc.iter()) {
            let d = o - f;
            *a += d * d;
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&o, &f) in o_rem.iter().zip(f_rem.iter()) {
        let d = o - f;
        total += d * d;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // Population variance of [2, 4, 4, 4, 5, 5, 7, 9] is 4.
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(variance(&data), 4.0, 1e-12);
        assert_close(std_dev(&data), 2.0, 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let data = [1.0, 2.0, 3.0];
        assert_close(variance(&data), 2.0 / 3.0, 1e-12);
        assert_close(sample_variance(&data), 1.0, 1e-12);
    }

    #[test]
    fn constant_series_has_zero_variance() {
        let data = vec![5.0; 100];
        assert_eq!(variance(&data), 0.0);
    }

    #[test]
    fn min_max_handle_negatives() {
        let data = [-3.0, 7.5, 0.0];
        assert_eq!(min(&data), Some(-3.0));
        assert_eq!(max(&data), Some(7.5));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_close(percentile(&data, 0.0).unwrap(), 1.0, 1e-12);
        assert_close(percentile(&data, 100.0).unwrap(), 4.0, 1e-12);
        assert_close(percentile(&data, 50.0).unwrap(), 2.5, 1e-12);
        assert_close(percentile(&data, 90.0).unwrap(), 3.7, 1e-12);
    }

    #[test]
    fn percentile_of_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert_close(pearson(&x, &y), 1.0, 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert_close(pearson(&x, &neg), -1.0, 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn autocorrelation_is_one_at_lag_zero() {
        let data = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert_close(autocorrelation(&data, 0), 1.0, 1e-12);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative_at_lag_one() {
        let data: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&data, 1) < -0.9);
    }

    /// Deterministic pseudo-noise for the kernel-oracle tests.
    fn noise_series(len: usize, seed: u64) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let mut s = (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15)
                    ^ seed.wrapping_mul(0xD1B54A32D192ED03);
                s ^= s >> 33;
                s = s.wrapping_mul(0xff51afd7ed558ccd);
                s ^= s >> 29;
                100.0 * (((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5)
            })
            .collect()
    }

    /// Epsilon tier: the chunked kernels reassociate summation, so they are
    /// compared against sequential (seed-order) oracles within a relative
    /// tolerance instead of bitwise.
    #[test]
    fn chunked_kernels_match_sequential_oracles_within_epsilon() {
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 64, 257, 1000] {
            for seed in 0..4u64 {
                let x = noise_series(len, seed * 2 + 1);
                let y = noise_series(len, seed * 2 + 2);
                let close = |a: f64, b: f64, what: &str| {
                    let scale = 1.0_f64.max(b.abs());
                    assert!(
                        (a - b).abs() <= 1e-9 * scale,
                        "{what}: {a} vs {b} (len {len} seed {seed})"
                    );
                };
                let seq_sum: f64 = x.iter().sum();
                close(chunked_sum(&x), seq_sum, "sum");
                if !x.is_empty() {
                    close(mean(&x), seq_sum / len as f64, "mean");
                }
                let seq_dot: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
                close(dot(&x, &y), seq_dot, "dot");
                close(
                    sum_of_squares(&x),
                    x.iter().map(|v| v * v).sum(),
                    "sum_of_squares",
                );
                if len >= 2 {
                    let m = mean(&x);
                    let seq_var = x.iter().map(|v| (v - m).powi(2)).sum::<f64>() / len as f64;
                    close(variance(&x), seq_var, "variance");
                    // Sequential five-pass Pearson as the oracle.
                    let mx = mean(&x);
                    let my = mean(&y);
                    let cov = x
                        .iter()
                        .zip(y.iter())
                        .map(|(a, b)| (a - mx) * (b - my))
                        .sum::<f64>()
                        / len as f64;
                    let seq_pearson = cov / (std_dev(&x) * std_dev(&y));
                    close(pearson(&x, &y), seq_pearson, "pearson");
                    close(covariance(&x, &y), cov, "covariance");
                }
                close(
                    residual_sum_of_squares(&x, &y),
                    x.iter().zip(y.iter()).map(|(o, f)| (o - f).powi(2)).sum(),
                    "rss",
                );
            }
        }
    }

    #[test]
    fn dot_handles_empty_and_short_slices() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0], &[3.0]), 6.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn dot_rejects_mismatched_lengths() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn rss_of_perfect_fit_is_zero() {
        let obs = [1.0, 2.0, 3.0];
        assert_eq!(residual_sum_of_squares(&obs, &obs), 0.0);
        assert_close(residual_sum_of_squares(&obs, &[1.0, 2.0, 4.0]), 1.0, 1e-12);
    }
}
