//! Descriptive statistics over slices of `f64` samples.
//!
//! These helpers back the variance pre-filter of Sieve's metric-reduction
//! step (§3.2, "Filtering unvarying metrics": drop metrics with
//! `var <= 0.002`) and the regression machinery in `sieve-causality`.

/// Arithmetic mean of `data`. Returns `0.0` for an empty slice.
///
/// ```
/// assert_eq!(sieve_timeseries::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance (divides by `n`). Returns `0.0` for fewer than two
/// observations.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|v| (v - m).powi(2)).sum::<f64>() / data.len() as f64
}

/// Sample variance (divides by `n - 1`). Returns `0.0` for fewer than two
/// observations.
pub fn sample_variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (data.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Minimum value; `None` for an empty slice.
pub fn min(data: &[f64]) -> Option<f64> {
    data.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(m) => Some(if v < m { v } else { m }),
    })
}

/// Maximum value; `None` for an empty slice.
pub fn max(data: &[f64]) -> Option<f64> {
    data.iter().copied().fold(None, |acc, v| match acc {
        None => Some(v),
        Some(m) => Some(if v > m { v } else { m }),
    })
}

/// Linear-interpolated percentile, `p` in `[0, 100]`. Returns `None` for an
/// empty slice.
///
/// This is the estimator used to evaluate the "90% of request latencies below
/// 1000 ms" SLA condition of the autoscaling case study (§4.1, §6.2).
pub fn percentile(data: &[f64], p: f64) -> Option<f64> {
    if data.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile).
pub fn median(data: &[f64]) -> Option<f64> {
    percentile(data, 50.0)
}

/// Population covariance of two equally long slices; `0.0` if the slices are
/// shorter than two observations or have different lengths.
pub fn covariance(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    x.iter()
        .zip(y.iter())
        .map(|(a, b)| (a - mx) * (b - my))
        .sum::<f64>()
        / x.len() as f64
}

/// Pearson correlation coefficient; `0.0` when either series is constant or
/// the lengths differ.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    let sx = std_dev(x);
    let sy = std_dev(y);
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    covariance(x, y) / (sx * sy)
}

/// Autocorrelation of `data` at a given `lag` (biased estimator, normalised
/// by the lag-0 autocovariance). Returns `0.0` when it is not defined.
pub fn autocorrelation(data: &[f64], lag: usize) -> f64 {
    let n = data.len();
    if n < 2 || lag >= n {
        return 0.0;
    }
    let m = mean(data);
    let denom: f64 = data.iter().map(|v| (v - m).powi(2)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let num: f64 = (0..n - lag)
        .map(|i| (data[i] - m) * (data[i + lag] - m))
        .sum();
    num / denom
}

/// Sum of squared values.
pub fn sum_of_squares(data: &[f64]) -> f64 {
    data.iter().map(|v| v * v).sum()
}

/// Residual sum of squares between observations and fitted values.
///
/// Both slices must have equal length; extra elements in the longer slice are
/// ignored.
pub fn residual_sum_of_squares(observed: &[f64], fitted: &[f64]) -> f64 {
    observed
        .iter()
        .zip(fitted.iter())
        .map(|(o, f)| (o - f).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_matches_hand_computation() {
        // Population variance of [2, 4, 4, 4, 5, 5, 7, 9] is 4.
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_close(variance(&data), 4.0, 1e-12);
        assert_close(std_dev(&data), 2.0, 1e-12);
    }

    #[test]
    fn sample_variance_uses_n_minus_one() {
        let data = [1.0, 2.0, 3.0];
        assert_close(variance(&data), 2.0 / 3.0, 1e-12);
        assert_close(sample_variance(&data), 1.0, 1e-12);
    }

    #[test]
    fn constant_series_has_zero_variance() {
        let data = vec![5.0; 100];
        assert_eq!(variance(&data), 0.0);
    }

    #[test]
    fn min_max_handle_negatives() {
        let data = [-3.0, 7.5, 0.0];
        assert_eq!(min(&data), Some(-3.0));
        assert_eq!(max(&data), Some(7.5));
        assert_eq!(min(&[]), None);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_close(percentile(&data, 0.0).unwrap(), 1.0, 1e-12);
        assert_close(percentile(&data, 100.0).unwrap(), 4.0, 1e-12);
        assert_close(percentile(&data, 50.0).unwrap(), 2.5, 1e-12);
        assert_close(percentile(&data, 90.0).unwrap(), 3.7, 1e-12);
    }

    #[test]
    fn percentile_of_empty_is_none() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert_close(pearson(&x, &y), 1.0, 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert_close(pearson(&x, &neg), -1.0, 1e-12);
    }

    #[test]
    fn pearson_of_constant_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y), 0.0);
    }

    #[test]
    fn autocorrelation_is_one_at_lag_zero() {
        let data = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert_close(autocorrelation(&data, 0), 1.0, 1e-12);
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative_at_lag_one() {
        let data: Vec<f64> = (0..50)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&data, 1) < -0.9);
    }

    #[test]
    fn rss_of_perfect_fit_is_zero() {
        let obs = [1.0, 2.0, 3.0];
        assert_eq!(residual_sum_of_squares(&obs, &obs), 0.0);
        assert_close(residual_sum_of_squares(&obs, &[1.0, 2.0, 4.0]), 1.0, 1e-12);
    }
}
