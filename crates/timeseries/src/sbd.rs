//! Shape-based distance (SBD) and normalized cross-correlation (NCC).
//!
//! The distance measure of the k-Shape algorithm used by Sieve's metric
//! clustering (§3.2):
//!
//! ```text
//! SBD(x, y) = 1 - max_w NCC_w(x, y)
//! ```
//!
//! where `NCC` is the cross-correlation normalized by the geometric mean of
//! each series' autocorrelation at lag zero. `SBD` is 0 for series with
//! identical shape (regardless of amplitude scaling or time shift within the
//! window) and approaches 2 for anti-correlated series.

use crate::fft::cross_correlation;
use crate::normalize::z_normalize;
use crate::stats::sum_of_squares;
use crate::{Result, TimeSeriesError};

/// Result of a shape-based distance computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SbdResult {
    /// The shape-based distance, in `[0, 2]`.
    pub distance: f64,
    /// The optimal alignment lag in samples.
    ///
    /// Sign convention: **positive means `y` lags `x`** — `y` looks like a
    /// copy of `x` delayed by `shift` samples, so aligning moves `y`
    /// *earlier* in time. Negative means `y` *leads* `x` and alignment moves
    /// `y` later. The value lies in `-(x.len() - 1) ..= y.len() - 1`; its
    /// magnitude can therefore exceed `y.len()` when `x` is the longer
    /// series. [`align_to`] (and [`apply_shift`]) clamp the copy ranges, so
    /// any shift in that range yields a zero-padded vector of `y`'s length —
    /// an extreme lead/lag degenerates to all zeros instead of panicking.
    pub shift: isize,
    /// The maximal normalized cross-correlation value, in `[-1, 1]`.
    pub ncc: f64,
}

/// Computes the full normalized cross-correlation sequence `NCC_w(x, y)` for
/// all shifts `w`, on the z-normalized inputs.
///
/// # Errors
///
/// * [`TimeSeriesError::Empty`] if either input is empty.
pub fn ncc_sequence(x: &[f64], y: &[f64]) -> Result<Vec<f64>> {
    if x.is_empty() || y.is_empty() {
        return Err(TimeSeriesError::Empty);
    }
    let zx = z_normalize(x);
    let zy = z_normalize(y);
    // Same chunked norm kernel as the cached-spectrum path, keeping the
    // direct and cached SBD paths bitwise interchangeable.
    let norm_x = sum_of_squares(&zx).sqrt();
    let norm_y = sum_of_squares(&zy).sqrt();
    let denom = norm_x * norm_y;
    let cc = cross_correlation(&zx, &zy);
    if denom == 0.0 {
        // At least one series is constant: define NCC as all zeros so that
        // SBD becomes the maximal "no shared shape" distance of 1.
        return Ok(vec![0.0; cc.len()]);
    }
    Ok(cc.into_iter().map(|v| v / denom).collect())
}

/// Computes the shape-based distance between `x` and `y` together with the
/// optimal alignment shift.
///
/// # Errors
///
/// * [`TimeSeriesError::Empty`] if either input is empty.
///
/// # Example
///
/// ```
/// use sieve_timeseries::sbd::shape_based_distance;
///
/// # fn main() -> Result<(), sieve_timeseries::TimeSeriesError> {
/// let a = vec![0.0, 0.0, 1.0, 2.0, 1.0, 0.0, 0.0, 0.0];
/// let b = vec![0.0, 0.0, 0.0, 2.0, 4.0, 2.0, 0.0, 0.0];
/// let r = shape_based_distance(&a, &b)?;
/// assert!(r.distance < 0.2);
/// assert_eq!(r.shift, 1); // `b` lags `a` by one sample
/// # Ok(())
/// # }
/// ```
pub fn shape_based_distance(x: &[f64], y: &[f64]) -> Result<SbdResult> {
    let ncc = ncc_sequence(x, y)?;
    Ok(peak_of_ncc(&ncc, y.len()))
}

/// Finds the NCC peak and converts it into an [`SbdResult`]; `m` is
/// `y.len()`. Shared by the direct path above and the cached-spectrum path
/// ([`crate::spectrum::sbd_from_spectra`]) so both produce bit-identical
/// results.
pub(crate) fn peak_of_ncc(ncc: &[f64], m: usize) -> SbdResult {
    let mut best_idx = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    for (i, &v) in ncc.iter().enumerate() {
        if v > best_val {
            best_val = v;
            best_idx = i;
        }
    }
    // Clamp tiny numerical overshoots.
    let best_val = best_val.clamp(-1.0, 1.0);
    SbdResult {
        distance: 1.0 - best_val,
        shift: (m as isize - 1) - best_idx as isize,
        ncc: best_val,
    }
}

/// Convenience wrapper returning just the distance.
///
/// # Errors
///
/// Same as [`shape_based_distance`].
pub fn sbd(x: &[f64], y: &[f64]) -> Result<f64> {
    Ok(shape_based_distance(x, y)?.distance)
}

/// Aligns `y` towards the reference `x` using the optimal SBD shift: the
/// returned vector has the same length as `y`, shifted by the optimal lag and
/// zero-padded. This is the alignment step used when k-Shape recomputes
/// cluster centroids.
///
/// # Errors
///
/// Same as [`shape_based_distance`].
pub fn align_to(x: &[f64], y: &[f64]) -> Result<Vec<f64>> {
    let r = shape_based_distance(x, y)?;
    Ok(apply_shift(y, r.shift))
}

/// Shifts `y` by `shift` samples (the [`SbdResult::shift`] sign convention:
/// positive moves `y` earlier in time, negative later), zero-padding the
/// vacated positions. Both copy ranges are clamped, so *any* shift — even one
/// whose magnitude exceeds `y.len()`, which happens when the reference series
/// is longer than `y` and leads it by more than `y.len()` samples — yields a
/// well-formed (possibly all-zero) vector of `y`'s length instead of
/// panicking with an out-of-bounds slice.
pub fn apply_shift(y: &[f64], shift: isize) -> Vec<f64> {
    let n = y.len();
    let mut out = vec![0.0; n];
    let s = shift.unsigned_abs().min(n);
    let keep = n - s;
    if shift >= 0 {
        // `y` lags `x`: move `y` earlier in time.
        out[..keep].copy_from_slice(&y[s..]);
    } else {
        // `y` leads `x`: move `y` later in time.
        out[s..].copy_from_slice(&y[..keep]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbd_of_identical_series_is_zero() {
        let x = vec![1.0, 3.0, 2.0, 5.0, 4.0, 1.0];
        let r = shape_based_distance(&x, &x).unwrap();
        assert!(r.distance.abs() < 1e-9);
        assert_eq!(r.shift, 0);
    }

    #[test]
    fn sbd_is_amplitude_invariant() {
        let x = vec![0.0, 1.0, 4.0, 1.0, 0.0, 2.0, 0.0];
        let y: Vec<f64> = x.iter().map(|v| v * 37.5 + 12.0).collect();
        let d = sbd(&x, &y).unwrap();
        assert!(d < 1e-9, "distance {d} should be ~0 for scaled copy");
    }

    #[test]
    fn sbd_detects_time_shift() {
        let n = 64;
        let x: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.3).sin()).collect();
        let y: Vec<f64> = (0..n).map(|i| (((i as f64) - 5.0) * 0.3).sin()).collect();
        let r = shape_based_distance(&x, &y).unwrap();
        // The overlap shrinks by the shift, so the distance is small but not
        // exactly zero.
        assert!(r.distance < 0.15, "shifted sine should still match shape");
        assert_eq!(r.shift, 5, "y lags x by 5 samples");
    }

    #[test]
    fn sbd_of_opposite_shapes_is_large() {
        // A single bump against a single dip: no shift can make these shapes
        // agree, so the distance stays far from zero.
        let x: Vec<f64> = (0..64)
            .map(|i| (-((i as f64 - 32.0) / 6.0).powi(2)).exp())
            .collect();
        let y: Vec<f64> = x.iter().map(|v| -v).collect();
        let d = sbd(&x, &y).unwrap();
        assert!(d > 0.5, "opposite-shape distance was {d}");
    }

    #[test]
    fn sbd_of_unrelated_noise_is_moderate() {
        // Deterministic pseudo-noise from different linear congruential streams.
        let mut s1: u64 = 42;
        let mut s2: u64 = 1337;
        let next = |s: &mut u64| {
            *s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((*s >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let x: Vec<f64> = (0..256).map(|_| next(&mut s1)).collect();
        let y: Vec<f64> = (0..256).map(|_| next(&mut s2)).collect();
        let d = sbd(&x, &y).unwrap();
        assert!(d > 0.5, "independent noise should have large SBD, got {d}");
    }

    #[test]
    fn sbd_with_constant_series_is_one() {
        let x = vec![3.0; 16];
        let y: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert!((sbd(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sbd_rejects_empty_input() {
        assert!(sbd(&[], &[1.0]).is_err());
        assert!(sbd(&[1.0], &[]).is_err());
    }

    #[test]
    fn ncc_is_bounded() {
        let x = vec![0.5, 2.0, -1.0, 3.0, 0.0, 1.0];
        let y = vec![1.0, -2.0, 0.5, 0.5, 2.0, -1.0];
        let seq = ncc_sequence(&x, &y).unwrap();
        for v in seq {
            assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn align_to_shifts_series_towards_reference() {
        let reference: Vec<f64> = (0..32).map(|i| if i == 10 { 1.0 } else { 0.0 }).collect();
        let moved: Vec<f64> = (0..32).map(|i| if i == 14 { 1.0 } else { 0.0 }).collect();
        let aligned = align_to(&reference, &moved).unwrap();
        let argmax = aligned
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 10);
    }

    #[test]
    fn align_to_survives_extreme_leads_and_lags() {
        // Regression: `y` (8 points) leads `x` (64 points) by ~60 samples —
        // the optimal shift's magnitude exceeds `y.len()`, which used to
        // panic with an out-of-bounds slice in the negative-shift branch.
        let x: Vec<f64> = (0..64).map(|i| if i == 60 { 1.0 } else { 0.0 }).collect();
        let y: Vec<f64> = (0..8).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
        let r = shape_based_distance(&x, &y).unwrap();
        assert!(
            r.shift < -(y.len() as isize),
            "repro needs |shift| > y.len()"
        );
        let aligned = align_to(&x, &y).unwrap();
        assert_eq!(aligned.len(), y.len());
        assert!(aligned.iter().all(|&v| v == 0.0), "fully shifted out");
        // Mirror case: `y` lags a reference that sits at the very start.
        let x2: Vec<f64> = (0..8).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
        let y2: Vec<f64> = (0..64).map(|i| if i == 60 { 1.0 } else { 0.0 }).collect();
        let aligned2 = align_to(&x2, &y2).unwrap();
        assert_eq!(aligned2.len(), y2.len());
        assert_eq!(aligned2[0], 1.0, "spike moved to the reference position");
    }

    #[test]
    fn apply_shift_clamps_any_shift_magnitude() {
        let y = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(apply_shift(&y, 0), y);
        assert_eq!(apply_shift(&y, 1), vec![2.0, 3.0, 4.0, 0.0]);
        assert_eq!(apply_shift(&y, -1), vec![0.0, 1.0, 2.0, 3.0]);
        // Shifts at and beyond the length collapse to all zeros in both
        // directions instead of slicing out of bounds.
        for s in [4isize, 5, 100, -4, -5, -100] {
            assert_eq!(apply_shift(&y, s), vec![0.0; 4], "shift {s}");
        }
        assert!(apply_shift(&[], 3).is_empty());
    }

    #[test]
    fn sbd_is_symmetric_in_distance() {
        let x = vec![1.0, 2.0, 4.0, 3.0, 0.0, 1.0, 2.0, 5.0];
        let y = vec![2.0, 1.0, 0.0, 3.0, 4.0, 2.0, 1.0, 0.0];
        let dxy = sbd(&x, &y).unwrap();
        let dyx = sbd(&y, &x).unwrap();
        assert!((dxy - dyx).abs() < 1e-9);
    }
}
