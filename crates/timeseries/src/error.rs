use std::fmt;

/// Errors produced by time-series operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimeSeriesError {
    /// The operation requires a non-empty series.
    Empty,
    /// Two series were expected to have the same length.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// Timestamps and values have different lengths.
    MalformedSeries {
        /// Number of timestamps provided.
        timestamps: usize,
        /// Number of values provided.
        values: usize,
    },
    /// Timestamps must be strictly increasing.
    UnsortedTimestamps {
        /// Index at which the ordering is violated.
        index: usize,
    },
    /// The operation requires at least `required` observations.
    TooFewObservations {
        /// Observations required.
        required: usize,
        /// Observations available.
        actual: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A value was not finite (NaN or infinite) where finiteness is required.
    NonFiniteValue {
        /// Index of the offending value.
        index: usize,
    },
}

impl fmt::Display for TimeSeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeSeriesError::Empty => write!(f, "operation requires a non-empty time series"),
            TimeSeriesError::LengthMismatch { left, right } => {
                write!(f, "series length mismatch: {left} vs {right}")
            }
            TimeSeriesError::MalformedSeries { timestamps, values } => write!(
                f,
                "malformed series: {timestamps} timestamps but {values} values"
            ),
            TimeSeriesError::UnsortedTimestamps { index } => {
                write!(f, "timestamps are not strictly increasing at index {index}")
            }
            TimeSeriesError::TooFewObservations { required, actual } => {
                write!(f, "too few observations: required {required}, got {actual}")
            }
            TimeSeriesError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            TimeSeriesError::NonFiniteValue { index } => {
                write!(f, "non-finite value at index {index}")
            }
        }
    }
}

impl std::error::Error for TimeSeriesError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let variants = vec![
            TimeSeriesError::Empty,
            TimeSeriesError::LengthMismatch { left: 1, right: 2 },
            TimeSeriesError::MalformedSeries {
                timestamps: 3,
                values: 4,
            },
            TimeSeriesError::UnsortedTimestamps { index: 5 },
            TimeSeriesError::TooFewObservations {
                required: 10,
                actual: 2,
            },
            TimeSeriesError::InvalidParameter {
                name: "k",
                reason: "must be positive".to_string(),
            },
            TimeSeriesError::NonFiniteValue { index: 0 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error + Send + Sync>() {}
        assert_error::<TimeSeriesError>();
    }
}
