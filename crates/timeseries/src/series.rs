//! The [`TimeSeries`] container: timestamped observations of one metric.

use crate::{Result, TimeSeriesError};

/// A single metric's observations over time.
///
/// Timestamps are stored in milliseconds since an arbitrary epoch (the start
/// of a measurement run in the Sieve pipeline) and are strictly increasing.
/// Values are `f64` samples of the metric at those instants.
///
/// # Example
///
/// ```
/// use sieve_timeseries::TimeSeries;
///
/// let ts = TimeSeries::from_values(0, 1000, vec![1.0, 2.0, 3.0]);
/// assert_eq!(ts.len(), 3);
/// assert_eq!(ts.timestamps(), &[0, 1000, 2000]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    timestamps_ms: Vec<u64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series from parallel vectors of timestamps and values.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::MalformedSeries`] if the vectors have
    /// different lengths and [`TimeSeriesError::UnsortedTimestamps`] if the
    /// timestamps are not strictly increasing.
    pub fn from_parts(timestamps_ms: Vec<u64>, values: Vec<f64>) -> Result<Self> {
        if timestamps_ms.len() != values.len() {
            return Err(TimeSeriesError::MalformedSeries {
                timestamps: timestamps_ms.len(),
                values: values.len(),
            });
        }
        for i in 1..timestamps_ms.len() {
            if timestamps_ms[i] <= timestamps_ms[i - 1] {
                return Err(TimeSeriesError::UnsortedTimestamps { index: i });
            }
        }
        Ok(Self {
            timestamps_ms,
            values,
        })
    }

    /// Creates a regularly sampled series starting at `start_ms` with a fixed
    /// `interval_ms` between consecutive observations.
    ///
    /// # Panics
    ///
    /// Panics if `interval_ms` is zero.
    pub fn from_values(start_ms: u64, interval_ms: u64, values: Vec<f64>) -> Self {
        assert!(interval_ms > 0, "interval_ms must be positive");
        let timestamps_ms = (0..values.len() as u64)
            .map(|i| start_ms + i * interval_ms)
            .collect();
        Self {
            timestamps_ms,
            values,
        }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The observation timestamps in milliseconds.
    pub fn timestamps(&self) -> &[u64] {
        &self.timestamps_ms
    }

    /// The observation values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the observation values (timestamps are fixed).
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the series and returns `(timestamps, values)`.
    pub fn into_parts(self) -> (Vec<u64>, Vec<f64>) {
        (self.timestamps_ms, self.values)
    }

    /// Appends an observation.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::UnsortedTimestamps`] if `timestamp_ms` is
    /// not greater than the last timestamp already in the series.
    pub fn push(&mut self, timestamp_ms: u64, value: f64) -> Result<()> {
        if let Some(&last) = self.timestamps_ms.last() {
            if timestamp_ms <= last {
                return Err(TimeSeriesError::UnsortedTimestamps {
                    index: self.timestamps_ms.len(),
                });
            }
        }
        self.timestamps_ms.push(timestamp_ms);
        self.values.push(value);
        Ok(())
    }

    /// Iterator over `(timestamp_ms, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.timestamps_ms
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// First timestamp, if any.
    pub fn start_ms(&self) -> Option<u64> {
        self.timestamps_ms.first().copied()
    }

    /// Last timestamp, if any.
    pub fn end_ms(&self) -> Option<u64> {
        self.timestamps_ms.last().copied()
    }

    /// Total covered duration in milliseconds (zero for < 2 points).
    pub fn duration_ms(&self) -> u64 {
        match (self.start_ms(), self.end_ms()) {
            (Some(s), Some(e)) => e - s,
            _ => 0,
        }
    }

    /// Returns the sub-series with timestamps in `[from_ms, to_ms)`.
    pub fn window(&self, from_ms: u64, to_ms: u64) -> TimeSeries {
        let mut timestamps = Vec::new();
        let mut values = Vec::new();
        for (t, v) in self.iter() {
            if t >= from_ms && t < to_ms {
                timestamps.push(t);
                values.push(v);
            }
        }
        TimeSeries {
            timestamps_ms: timestamps,
            values,
        }
    }

    /// Returns a new series with the same timestamps and values transformed
    /// by `f`.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> TimeSeries {
        TimeSeries {
            timestamps_ms: self.timestamps_ms.clone(),
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Checks that every value is finite.
    ///
    /// # Errors
    ///
    /// Returns [`TimeSeriesError::NonFiniteValue`] with the index of the
    /// first NaN or infinite value.
    pub fn check_finite(&self) -> Result<()> {
        for (i, v) in self.values.iter().enumerate() {
            if !v.is_finite() {
                return Err(TimeSeriesError::NonFiniteValue { index: i });
            }
        }
        Ok(())
    }
}

/// A borrowed, zero-copy view of a contiguous run of observations:
/// parallel slices of strictly increasing timestamps and their values.
///
/// Views are what the bounded-memory metric store hands to its visitors:
/// a windowed series keeps its *retained window* as a contiguous region
/// of a larger backing buffer, and a `SeriesView` borrows exactly that
/// region — no copy, no allocation. Everything downstream of the store
/// (series preparation, resampling, the autoscaler's metric polling)
/// consumes views, so the same code path serves bounded and unbounded
/// stores alike.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesView<'a> {
    timestamps_ms: &'a [u64],
    values: &'a [f64],
}

impl<'a> SeriesView<'a> {
    /// Creates a view over parallel timestamp/value slices.
    ///
    /// The timestamps must be strictly increasing — the invariant every
    /// [`TimeSeries`] and every store window already upholds; only the
    /// lengths are checked here.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn new(timestamps_ms: &'a [u64], values: &'a [f64]) -> Self {
        assert_eq!(
            timestamps_ms.len(),
            values.len(),
            "timestamp and value slices must be parallel"
        );
        Self {
            timestamps_ms,
            values,
        }
    }

    /// Number of observations in the view.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the view holds no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The viewed timestamps in milliseconds.
    pub fn timestamps(&self) -> &'a [u64] {
        self.timestamps_ms
    }

    /// The viewed values.
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// Iterator over `(timestamp_ms, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + 'a {
        self.timestamps_ms
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// First timestamp, if any.
    pub fn start_ms(&self) -> Option<u64> {
        self.timestamps_ms.first().copied()
    }

    /// Last timestamp, if any.
    pub fn end_ms(&self) -> Option<u64> {
        self.timestamps_ms.last().copied()
    }

    /// Copies the viewed window into an owned [`TimeSeries`].
    pub fn to_series(&self) -> TimeSeries {
        TimeSeries {
            timestamps_ms: self.timestamps_ms.to_vec(),
            values: self.values.to_vec(),
        }
    }
}

impl TimeSeries {
    /// A zero-copy view of the whole series.
    pub fn view(&self) -> SeriesView<'_> {
        SeriesView {
            timestamps_ms: &self.timestamps_ms,
            values: &self.values,
        }
    }
}

impl<'a> From<&'a TimeSeries> for SeriesView<'a> {
    fn from(series: &'a TimeSeries) -> Self {
        series.view()
    }
}

impl FromIterator<(u64, f64)> for TimeSeries {
    /// Builds a series from `(timestamp, value)` pairs.
    ///
    /// Pairs must already be sorted by strictly increasing timestamp;
    /// out-of-order pairs are dropped.
    fn from_iter<I: IntoIterator<Item = (u64, f64)>>(iter: I) -> Self {
        let mut ts = TimeSeries::new();
        for (t, v) in iter {
            let _ = ts.push(t, v);
        }
        ts
    }
}

impl Extend<(u64, f64)> for TimeSeries {
    fn extend<I: IntoIterator<Item = (u64, f64)>>(&mut self, iter: I) {
        for (t, v) in iter {
            let _ = self.push(t, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_builds_regular_grid() {
        let ts = TimeSeries::from_values(100, 500, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.timestamps(), &[100, 600, 1100, 1600]);
        assert_eq!(ts.duration_ms(), 1500);
    }

    #[test]
    fn from_parts_rejects_length_mismatch() {
        let err = TimeSeries::from_parts(vec![0, 1], vec![1.0]).unwrap_err();
        assert!(matches!(err, TimeSeriesError::MalformedSeries { .. }));
    }

    #[test]
    fn from_parts_rejects_unsorted_timestamps() {
        let err = TimeSeries::from_parts(vec![0, 5, 5], vec![1.0, 2.0, 3.0]).unwrap_err();
        assert_eq!(err, TimeSeriesError::UnsortedTimestamps { index: 2 });
    }

    #[test]
    fn push_enforces_monotonicity() {
        let mut ts = TimeSeries::new();
        ts.push(10, 1.0).unwrap();
        assert!(ts.push(10, 2.0).is_err());
        assert!(ts.push(11, 2.0).is_ok());
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn window_selects_half_open_range() {
        let ts = TimeSeries::from_values(0, 100, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        let w = ts.window(100, 300);
        assert_eq!(w.values(), &[1.0, 2.0]);
        assert_eq!(w.timestamps(), &[100, 200]);
    }

    #[test]
    fn map_preserves_timestamps() {
        let ts = TimeSeries::from_values(0, 100, vec![1.0, 2.0]);
        let doubled = ts.map(|v| v * 2.0);
        assert_eq!(doubled.values(), &[2.0, 4.0]);
        assert_eq!(doubled.timestamps(), ts.timestamps());
    }

    #[test]
    fn check_finite_detects_nan() {
        let ts = TimeSeries::from_values(0, 100, vec![1.0, f64::NAN]);
        assert_eq!(
            ts.check_finite().unwrap_err(),
            TimeSeriesError::NonFiniteValue { index: 1 }
        );
    }

    #[test]
    fn from_iterator_drops_out_of_order_pairs() {
        let ts: TimeSeries = vec![(0, 1.0), (5, 2.0), (3, 9.0), (10, 3.0)]
            .into_iter()
            .collect();
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn empty_series_has_zero_duration() {
        let ts = TimeSeries::new();
        assert!(ts.is_empty());
        assert_eq!(ts.duration_ms(), 0);
        assert_eq!(ts.start_ms(), None);
    }
}
