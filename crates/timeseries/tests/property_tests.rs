//! Property-based tests for the time-series primitives.

use proptest::prelude::*;
use sieve_timeseries::{diff, fft, interpolate, normalize, resample, sbd, stats, TimeSeries};

fn finite_vec(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e3f64..1.0e3f64, min_len..=max_len)
}

proptest! {
    #[test]
    fn z_normalization_yields_zero_mean(data in finite_vec(2, 200)) {
        let z = normalize::z_normalize(&data);
        prop_assert!(stats::mean(&z).abs() < 1e-6);
    }

    #[test]
    fn z_normalization_yields_unit_variance_or_zero(data in finite_vec(2, 200)) {
        let z = normalize::z_normalize(&data);
        let var = stats::variance(&z);
        // Either the input was (numerically) constant, or variance is 1.
        prop_assert!(var.abs() < 1e-6 || (var - 1.0).abs() < 1e-6);
    }

    #[test]
    fn variance_is_non_negative(data in finite_vec(0, 100)) {
        prop_assert!(stats::variance(&data) >= 0.0);
        prop_assert!(stats::sample_variance(&data) >= 0.0);
    }

    #[test]
    fn percentile_is_within_min_max(data in finite_vec(1, 100), p in 0.0f64..100.0) {
        let v = stats::percentile(&data, p).unwrap();
        let lo = stats::min(&data).unwrap();
        let hi = stats::max(&data).unwrap();
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
    }

    #[test]
    fn pearson_is_bounded(x in finite_vec(2, 100), y in finite_vec(2, 100)) {
        let n = x.len().min(y.len());
        let r = stats::pearson(&x[..n], &y[..n]);
        prop_assert!(r >= -1.0 - 1e-9 && r <= 1.0 + 1e-9);
    }

    #[test]
    fn fft_cross_correlation_matches_naive(
        x in finite_vec(1, 40),
        y in finite_vec(1, 40),
    ) {
        let fast = fft::cross_correlation(&x, &y);
        let slow = fft::cross_correlation_naive(&x, &y);
        prop_assert_eq!(fast.len(), slow.len());
        let scale = 1.0 + slow.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (a, b) in fast.iter().zip(slow.iter()) {
            prop_assert!((a - b).abs() / scale < 1e-6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn sbd_is_in_valid_range(x in finite_vec(2, 100), y in finite_vec(2, 100)) {
        let d = sbd::sbd(&x, &y).unwrap();
        prop_assert!((-1e-9..=2.0 + 1e-9).contains(&d), "sbd out of range: {}", d);
    }

    #[test]
    fn sbd_of_series_with_itself_is_zero(x in finite_vec(2, 100)) {
        let d = sbd::sbd(&x, &x).unwrap();
        // Constant series have SBD 1 against everything including themselves
        // (defined that way); otherwise the self-distance must vanish.
        if stats::variance(&x) > 1e-12 {
            prop_assert!(d.abs() < 1e-6, "self distance {}", d);
        }
    }

    #[test]
    fn sbd_is_symmetric(x in finite_vec(2, 60), y in finite_vec(2, 60)) {
        let dxy = sbd::sbd(&x, &y).unwrap();
        let dyx = sbd::sbd(&y, &x).unwrap();
        prop_assert!((dxy - dyx).abs() < 1e-6);
    }

    #[test]
    fn first_difference_reduces_length_by_one(data in finite_vec(2, 100)) {
        prop_assert_eq!(diff::first_difference(&data).len(), data.len() - 1);
    }

    #[test]
    fn differencing_a_cumulative_sum_recovers_the_signal(data in finite_vec(1, 100)) {
        let mut cumsum = Vec::with_capacity(data.len() + 1);
        let mut acc = 0.0;
        cumsum.push(0.0);
        for v in &data {
            acc += v;
            cumsum.push(acc);
        }
        let recovered = diff::first_difference(&cumsum);
        for (a, b) in recovered.iter().zip(data.iter()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn spline_passes_through_all_knots(ys in finite_vec(3, 30)) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let spline = interpolate::CubicSpline::fit(&xs, &ys).unwrap();
        let scale = 1.0 + ys.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (x, y) in xs.iter().zip(ys.iter()) {
            prop_assert!((spline.evaluate(*x) - y).abs() / scale < 1e-6);
        }
    }

    #[test]
    fn resampling_keeps_endpoints(values in finite_vec(2, 50), interval in 1u64..5000) {
        let ts = TimeSeries::from_values(0, 1000, values.clone());
        let r = resample::resample(&ts, interval).unwrap();
        prop_assert_eq!(r.start_ms(), ts.start_ms());
        // First value must match exactly (grid starts at the first sample).
        let scale = 1.0 + values.iter().map(|v| v.abs()).fold(0.0, f64::max);
        prop_assert!((r.values()[0] - values[0]).abs() / scale < 1e-6);
    }

    #[test]
    fn timeseries_roundtrips_through_parts(values in finite_vec(0, 50)) {
        let ts = TimeSeries::from_values(10, 250, values.clone());
        let (t, v) = ts.clone().into_parts();
        let rebuilt = TimeSeries::from_parts(t, v).unwrap();
        prop_assert_eq!(rebuilt, ts);
    }
}
