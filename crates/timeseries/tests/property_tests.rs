//! Randomized property tests for the time-series primitives.
//!
//! The original suite used `proptest`; the build container has no registry
//! access, so the same properties are exercised with a deterministic
//! splitmix64 case generator — every run checks the identical set of
//! pseudo-random inputs, which also makes failures trivially reproducible.

use sieve_timeseries::{
    diff, fft, interpolate, normalize, resample, sbd, spectrum, stats, TimeSeries,
};

/// Deterministic splitmix64 generator for test data.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    /// A vector of finite values in `[-1e3, 1e3)` with a random length in
    /// `[min_len, max_len]`.
    fn finite_vec(&mut self, min_len: usize, max_len: usize) -> Vec<f64> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| self.range(-1.0e3, 1.0e3)).collect()
    }
}

const CASES: u64 = 50;

#[test]
fn z_normalization_yields_zero_mean() {
    for seed in 0..CASES {
        let data = Rng::new(seed).finite_vec(2, 200);
        let z = normalize::z_normalize(&data);
        assert!(stats::mean(&z).abs() < 1e-6, "seed {seed}");
    }
}

#[test]
fn z_normalization_yields_unit_variance_or_zero() {
    for seed in 0..CASES {
        let data = Rng::new(seed).finite_vec(2, 200);
        let z = normalize::z_normalize(&data);
        let var = stats::variance(&z);
        // Either the input was (numerically) constant, or variance is 1.
        assert!(var.abs() < 1e-6 || (var - 1.0).abs() < 1e-6, "seed {seed}");
    }
}

#[test]
fn variance_is_non_negative() {
    for seed in 0..CASES {
        let data = Rng::new(seed).finite_vec(0, 100);
        assert!(stats::variance(&data) >= 0.0, "seed {seed}");
        assert!(stats::sample_variance(&data) >= 0.0, "seed {seed}");
    }
}

#[test]
fn percentile_is_within_min_max() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let data = rng.finite_vec(1, 100);
        let p = rng.range(0.0, 100.0);
        let v = stats::percentile(&data, p).unwrap();
        let lo = stats::min(&data).unwrap();
        let hi = stats::max(&data).unwrap();
        assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "seed {seed}");
    }
}

#[test]
fn pearson_is_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let x = rng.finite_vec(2, 100);
        let y = rng.finite_vec(2, 100);
        let n = x.len().min(y.len());
        let r = stats::pearson(&x[..n], &y[..n]);
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "seed {seed}");
    }
}

#[test]
fn fft_cross_correlation_matches_naive() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let x = rng.finite_vec(1, 40);
        let y = rng.finite_vec(1, 40);
        let fast = fft::cross_correlation(&x, &y);
        let slow = fft::cross_correlation_naive(&x, &y);
        assert_eq!(fast.len(), slow.len(), "seed {seed}");
        let scale = 1.0 + slow.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (a, b) in fast.iter().zip(slow.iter()) {
            assert!((a - b).abs() / scale < 1e-6, "seed {seed}: {a} vs {b}");
        }
    }
}

#[test]
fn sbd_is_in_valid_range() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let x = rng.finite_vec(2, 100);
        let y = rng.finite_vec(2, 100);
        let d = sbd::sbd(&x, &y).unwrap();
        assert!(
            (-1e-9..=2.0 + 1e-9).contains(&d),
            "seed {seed}: sbd out of range: {d}"
        );
    }
}

#[test]
fn sbd_of_series_with_itself_is_zero() {
    for seed in 0..CASES {
        let x = Rng::new(seed).finite_vec(2, 100);
        let d = sbd::sbd(&x, &x).unwrap();
        // Constant series have SBD 1 against everything including themselves
        // (defined that way); otherwise the self-distance must vanish.
        if stats::variance(&x) > 1e-12 {
            assert!(d.abs() < 1e-6, "seed {seed}: self distance {d}");
        }
    }
}

#[test]
fn sbd_is_symmetric() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let x = rng.finite_vec(2, 60);
        let y = rng.finite_vec(2, 60);
        let dxy = sbd::sbd(&x, &y).unwrap();
        let dyx = sbd::sbd(&y, &x).unwrap();
        assert!((dxy - dyx).abs() < 1e-6, "seed {seed}");
    }
}

#[test]
fn align_to_never_panics_and_preserves_length() {
    // Random reference/series lengths, including the extreme where the
    // reference is much longer than the series (the optimal shift's
    // magnitude then exceeds the series length — the out-of-bounds
    // regression this guards against).
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let x = rng.finite_vec(1, 120);
        let y = rng.finite_vec(1, 120);
        let aligned = sbd::align_to(&x, &y).unwrap();
        assert_eq!(aligned.len(), y.len(), "seed {seed}");
        assert!(aligned.iter().all(|v| v.is_finite()), "seed {seed}");
    }
    // Adversarial impulse pairs: spike far into a long reference vs a short
    // series, both lead and lag directions, across every short length.
    for len in 1..=12usize {
        let x: Vec<f64> = (0..128).map(|i| if i == 120 { 1.0 } else { 0.0 }).collect();
        let y: Vec<f64> = (0..len).map(|i| if i == 0 { 1.0 } else { 0.0 }).collect();
        assert_eq!(sbd::align_to(&x, &y).unwrap().len(), len);
        assert_eq!(sbd::align_to(&y, &x).unwrap().len(), x.len());
    }
}

#[test]
fn apply_shift_is_total_over_the_full_shift_range() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let y = rng.finite_vec(0, 60);
        let n = y.len() as isize;
        for shift in [-3 * n - 7, -n, -1, 0, 1, n, 3 * n + 7] {
            let out = sbd::apply_shift(&y, shift);
            assert_eq!(out.len(), y.len(), "seed {seed} shift {shift}");
            if shift.unsigned_abs() >= y.len() {
                assert!(out.iter().all(|&v| v == 0.0), "seed {seed} shift {shift}");
            }
        }
    }
}

#[test]
fn resample_grid_always_covers_the_end() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let values = rng.finite_vec(2, 50);
        // Random irregular-ish spacing via a random interval, so spans are
        // usually not multiples of the resample interval.
        let native = rng.usize_in(1, 3000) as u64;
        let interval = rng.usize_in(1, 4999) as u64;
        let ts = TimeSeries::from_values(0, native, values);
        let r = resample::resample(&ts, interval).unwrap();
        let end = ts.end_ms().unwrap();
        let last = r.end_ms().unwrap();
        assert!(last >= end, "seed {seed}: grid ends {last} before {end}");
        assert!(
            last - end < interval,
            "seed {seed}: overhang {} not below one interval",
            last - end
        );
        // Grid is exactly start + i * interval.
        for (i, &t) in r.timestamps().iter().enumerate() {
            assert_eq!(t, i as u64 * interval, "seed {seed}");
        }
    }
}

#[test]
fn resample_is_exact_at_grid_aligned_knots() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let values = rng.finite_vec(3, 40);
        let interval = rng.usize_in(1, 2000) as u64;
        // Knots on multiples of the interval: resampling must reproduce them
        // exactly (the spline interpolates through its knots).
        let ts = TimeSeries::from_values(0, interval * 3, values.clone());
        let r = resample::resample(&ts, interval).unwrap();
        let scale = 1.0 + values.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (i, v) in values.iter().enumerate() {
            let at = r.values()[i * 3];
            assert!(
                (at - v).abs() / scale < 1e-6,
                "seed {seed} knot {i}: {at} vs {v}"
            );
        }
    }
}

#[test]
fn spectrum_sbd_matches_direct_sbd_bitwise() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let len = rng.usize_in(1, 100);
        let x: Vec<f64> = (0..len).map(|_| rng.range(-1.0e3, 1.0e3)).collect();
        let y: Vec<f64> = (0..len).map(|_| rng.range(-1.0e3, 1.0e3)).collect();
        let direct = sbd::shape_based_distance(&x, &y).unwrap();
        let sx = spectrum::SeriesSpectrum::compute(&x).unwrap();
        let sy = spectrum::SeriesSpectrum::compute(&y).unwrap();
        let cached = spectrum::sbd_from_spectra(&sx, &sy).unwrap();
        assert_eq!(
            direct.distance.to_bits(),
            cached.distance.to_bits(),
            "seed {seed}"
        );
        assert_eq!(direct.shift, cached.shift, "seed {seed}");
    }
}

#[test]
fn first_difference_reduces_length_by_one() {
    for seed in 0..CASES {
        let data = Rng::new(seed).finite_vec(2, 100);
        assert_eq!(
            diff::first_difference(&data).len(),
            data.len() - 1,
            "seed {seed}"
        );
    }
}

#[test]
fn differencing_a_cumulative_sum_recovers_the_signal() {
    for seed in 0..CASES {
        let data = Rng::new(seed).finite_vec(1, 100);
        let mut cumsum = Vec::with_capacity(data.len() + 1);
        let mut acc = 0.0;
        cumsum.push(0.0);
        for v in &data {
            acc += v;
            cumsum.push(acc);
        }
        let recovered = diff::first_difference(&cumsum);
        for (a, b) in recovered.iter().zip(data.iter()) {
            assert!((a - b).abs() < 1e-6, "seed {seed}");
        }
    }
}

#[test]
fn spline_passes_through_all_knots() {
    for seed in 0..CASES {
        let ys = Rng::new(seed).finite_vec(3, 30);
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let spline = interpolate::CubicSpline::fit(&xs, &ys).unwrap();
        let scale = 1.0 + ys.iter().map(|v| v.abs()).fold(0.0, f64::max);
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!(
                (spline.evaluate(*x) - y).abs() / scale < 1e-6,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn resampling_keeps_endpoints() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let values = rng.finite_vec(2, 50);
        let interval = rng.usize_in(1, 4999) as u64;
        let ts = TimeSeries::from_values(0, 1000, values.clone());
        let r = resample::resample(&ts, interval).unwrap();
        assert_eq!(r.start_ms(), ts.start_ms(), "seed {seed}");
        // First value must match exactly (grid starts at the first sample).
        let scale = 1.0 + values.iter().map(|v| v.abs()).fold(0.0, f64::max);
        assert!(
            (r.values()[0] - values[0]).abs() / scale < 1e-6,
            "seed {seed}"
        );
    }
}

#[test]
fn timeseries_roundtrips_through_parts() {
    for seed in 0..CASES {
        let values = Rng::new(seed).finite_vec(0, 50);
        let ts = TimeSeries::from_values(10, 250, values);
        let (t, v) = ts.clone().into_parts();
        let rebuilt = TimeSeries::from_parts(t, v).unwrap();
        assert_eq!(rebuilt, ts, "seed {seed}");
    }
}
