//! The OpenStack-like application model and the Launchpad-#1533942 fault.
//!
//! The paper's RCA case study (§4.2, §6.3) deploys OpenStack with Kolla,
//! drives it with Rally's `boot_and_delete` task and reproduces a documented
//! bug: the Neutron Open vSwitch agent crashes because of a deployment
//! configuration error, so newly launched VMs cannot get networking and fall
//! into the `ERROR` state ("No valid host was found"). Sieve's RCA engine is
//! expected to rank the Nova and Neutron components highest and to isolate
//! the edge between `nova_instances_in_state_ERROR` and
//! `neutron_ports_in_status_DOWN`.
//!
//! The model below mirrors the 16 components of Table 5, the metric families
//! they export, and — in [`ovs_agent_crash_scenario`] — the *observable*
//! consequences of the bug: agent metrics freeze, ACTIVE-state gauges go
//! flat, ERROR/DOWN gauges start following load, RabbitMQ retry traffic
//! changes shape and some call edges change latency or disappear.

use crate::profiles::{
    datastore_metrics, http_service_metrics, message_queue_metrics, system_metrics, MetricRichness,
};
use sieve_simulator::app::{AppSpec, CallSpec, ComponentSpec};
use sieve_simulator::fault::{Fault, FaultScenario};
use sieve_simulator::metrics::{MetricBehavior, MetricSpec};

/// Name of the application.
pub const APP_NAME: &str = "openstack";

/// The entrypoint component (the API load balancer Rally talks to).
pub const ENTRYPOINT: &str = "haproxy";

/// The metric whose appearance signals the anomaly (VM launches failing).
pub const ERROR_METRIC: &str = "nova_instances_in_state_ERROR";

/// The metric carrying the true root cause (VM networking broken).
pub const ROOT_CAUSE_METRIC: &str = "neutron_ports_in_status_DOWN";

/// The 16 OpenStack components modelled here (matching Table 5).
pub const COMPONENTS: [&str; 16] = [
    "haproxy",
    "nova-api",
    "nova-scheduler",
    "nova-conductor",
    "nova-compute",
    "nova-libvirt",
    "nova-novncproxy",
    "neutron-server",
    "neutron-l3-agent",
    "neutron-dhcp-agent",
    "neutron-ovs-agent",
    "glance-api",
    "glance-registry",
    "keystone",
    "rabbitmq",
    "memcached",
];

/// Builds the (correct-version) OpenStack application model.
pub fn app_spec(richness: MetricRichness) -> AppSpec {
    let mut app = AppSpec::new(APP_NAME, ENTRYPOINT);

    app.add_component(
        ComponentSpec::new("haproxy")
            .with_capacity(400.0)
            .with_metrics(system_metrics(0.3, richness))
            .with_metrics(http_service_metrics("haproxy_frontend", 400.0, richness)),
    );

    // Nova control plane.
    let mut nova_api = ComponentSpec::new("nova-api")
        .with_capacity(150.0)
        .with_metrics(system_metrics(1.0, richness))
        .with_metrics(http_service_metrics("nova_api", 150.0, richness))
        .with_metric(MetricSpec::gauge(
            "nova_instances_in_state_ACTIVE",
            MetricBehavior::load_proportional(4.5),
        ))
        .with_metric(MetricSpec::gauge(
            "nova_instances_in_state_BUILD",
            MetricBehavior::LoadProportional {
                gain: 1.2,
                offset: 0.0,
                noise_amplitude: 0.3,
                lag_ticks: 1,
                ceiling: None,
            },
        ))
        .with_metric(MetricSpec::gauge(
            ERROR_METRIC,
            // Healthy deployments see essentially no ERROR instances.
            MetricBehavior::constant(0.0),
        ));
    if matches!(richness, MetricRichness::Full) {
        nova_api = nova_api
            .with_metric(MetricSpec::gauge(
                "nova_instances_in_state_DELETED",
                MetricBehavior::LoadProportional {
                    gain: 4.0,
                    offset: 0.0,
                    noise_amplitude: 0.4,
                    lag_ticks: 3,
                    ceiling: None,
                },
            ))
            .with_metric(MetricSpec::counter(
                "nova_boot_requests_total",
                MetricBehavior::counter(1.0),
            ));
    }
    app.add_component(nova_api);

    app.add_component(
        ComponentSpec::new("nova-scheduler")
            .with_capacity(200.0)
            .with_metrics(system_metrics(0.6, richness))
            .with_metric(MetricSpec::gauge(
                "scheduler_placements_per_second",
                MetricBehavior::load_proportional(1.0),
            ))
            .with_metric(MetricSpec::gauge(
                "scheduler_host_candidates",
                MetricBehavior::constant(2.0),
            ))
            .with_metric(MetricSpec::gauge(
                "scheduler_decision_time_ms",
                MetricBehavior::latency(12.0, 200.0),
            )),
    );

    app.add_component(
        ComponentSpec::new("nova-conductor")
            .with_capacity(250.0)
            .with_metrics(system_metrics(0.5, richness))
            .with_metric(MetricSpec::gauge(
                "conductor_rpc_per_second",
                MetricBehavior::load_proportional(2.0),
            ))
            .with_metric(MetricSpec::gauge(
                "conductor_db_time_ms",
                MetricBehavior::latency(6.0, 250.0),
            )),
    );

    app.add_component(
        ComponentSpec::new("nova-compute")
            .with_capacity(120.0)
            .with_metrics(system_metrics(1.2, richness))
            .with_metric(MetricSpec::gauge(
                "compute_build_requests_per_second",
                MetricBehavior::load_proportional(1.0),
            ))
            .with_metric(MetricSpec::gauge(
                "compute_build_time_ms",
                MetricBehavior::latency(150.0, 100.0),
            )),
    );

    app.add_component(
        ComponentSpec::new("nova-libvirt")
            .with_capacity(100.0)
            .with_metrics(system_metrics(1.5, richness))
            .with_metric(MetricSpec::gauge(
                "libvirt_domains_running",
                MetricBehavior::LoadProportional {
                    gain: 4.0,
                    offset: 0.0,
                    noise_amplitude: 0.3,
                    lag_ticks: 2,
                    ceiling: None,
                },
            ))
            .with_metric(MetricSpec::gauge(
                "libvirt_vcpus_used",
                MetricBehavior::LoadProportional {
                    gain: 8.0,
                    offset: 0.0,
                    noise_amplitude: 0.5,
                    lag_ticks: 2,
                    ceiling: None,
                },
            ))
            .with_metric(MetricSpec::gauge(
                "libvirt_memory_used_mb",
                MetricBehavior::LoadProportional {
                    gain: 512.0,
                    offset: 1024.0,
                    noise_amplitude: 32.0,
                    lag_ticks: 2,
                    ceiling: None,
                },
            )),
    );

    app.add_component(
        ComponentSpec::new("nova-novncproxy")
            .with_capacity(300.0)
            .with_metrics(system_metrics(0.2, richness))
            .with_metric(MetricSpec::gauge(
                "novnc_sessions_active",
                MetricBehavior::load_proportional(0.1),
            )),
    );

    // Neutron networking plane.
    let mut neutron_server = ComponentSpec::new("neutron-server")
        .with_capacity(180.0)
        .with_metrics(system_metrics(0.9, richness))
        .with_metrics(http_service_metrics("neutron_api", 180.0, richness))
        .with_metric(MetricSpec::gauge(
            "neutron_ports_in_status_ACTIVE",
            MetricBehavior::LoadProportional {
                gain: 3.0,
                offset: 0.0,
                noise_amplitude: 0.4,
                lag_ticks: 2,
                ceiling: None,
            },
        ))
        .with_metric(MetricSpec::gauge(
            ROOT_CAUSE_METRIC,
            // Healthy deployments keep essentially no DOWN ports.
            MetricBehavior::constant(0.0),
        ));
    if matches!(richness, MetricRichness::Full) {
        neutron_server = neutron_server.with_metric(MetricSpec::gauge(
            "neutron_networks_total",
            MetricBehavior::load_proportional(0.8),
        ));
    }
    app.add_component(neutron_server);

    for (agent, gain) in [
        ("neutron-l3-agent", 0.6),
        ("neutron-dhcp-agent", 0.5),
        ("neutron-ovs-agent", 0.8),
    ] {
        let prefix = agent.replace('-', "_");
        app.add_component(
            ComponentSpec::new(agent)
                .with_capacity(150.0)
                .with_metrics(system_metrics(gain, richness))
                .with_metric(MetricSpec::gauge(
                    format!("{prefix}_devices_configured_per_second"),
                    MetricBehavior::load_proportional(1.0),
                ))
                .with_metric(MetricSpec::gauge(
                    format!("{prefix}_sync_time_ms"),
                    MetricBehavior::latency(25.0, 150.0),
                )),
        );
    }

    // Glance image service.
    app.add_component(
        ComponentSpec::new("glance-api")
            .with_capacity(200.0)
            .with_metrics(system_metrics(0.7, richness))
            .with_metrics(http_service_metrics("glance_api", 200.0, richness)),
    );
    app.add_component(
        ComponentSpec::new("glance-registry")
            .with_capacity(250.0)
            .with_metrics(system_metrics(0.4, richness))
            .with_metrics(datastore_metrics("glance_registry", 250.0, richness)),
    );

    // Identity + auxiliaries.
    app.add_component(
        ComponentSpec::new("keystone")
            .with_capacity(300.0)
            .with_metrics(system_metrics(0.5, richness))
            .with_metrics(http_service_metrics("keystone", 300.0, richness)),
    );
    app.add_component(
        ComponentSpec::new("rabbitmq")
            .with_capacity(600.0)
            .with_metrics(system_metrics(0.6, richness))
            .with_metrics(message_queue_metrics(richness)),
    );
    app.add_component(
        ComponentSpec::new("memcached")
            .with_capacity(900.0)
            .with_metrics(system_metrics(0.3, richness))
            .with_metrics(datastore_metrics("memcached", 900.0, richness)),
    );

    // Topology: Rally -> haproxy -> the API services.
    for (callee, fanout) in [
        ("nova-api", 1.0),
        ("keystone", 0.8),
        ("glance-api", 0.3),
        ("neutron-server", 0.4),
        ("nova-novncproxy", 0.05),
    ] {
        app.add_call(
            CallSpec::new("haproxy", callee)
                .with_fanout(fanout)
                .with_lag_ms(500),
        );
    }

    // Nova boot workflow.
    for (caller, callee, fanout, lag) in [
        ("nova-api", "keystone", 0.5, 500),
        ("nova-api", "rabbitmq", 2.0, 500),
        ("nova-api", "neutron-server", 0.8, 500),
        ("nova-api", "glance-api", 0.5, 500),
        ("nova-api", "nova-scheduler", 1.0, 500),
        ("nova-scheduler", "rabbitmq", 1.5, 500),
        ("nova-scheduler", "nova-compute", 1.0, 1000),
        ("nova-conductor", "rabbitmq", 1.2, 500),
        ("nova-api", "nova-conductor", 0.8, 500),
        ("nova-compute", "nova-libvirt", 1.0, 1000),
        ("nova-compute", "glance-api", 0.4, 1000),
        ("nova-compute", "rabbitmq", 1.0, 500),
        ("nova-compute", "neutron-ovs-agent", 0.8, 1000),
        ("glance-api", "glance-registry", 1.0, 500),
        ("glance-api", "keystone", 0.3, 500),
        ("keystone", "memcached", 1.5, 500),
        ("neutron-server", "rabbitmq", 1.0, 500),
        ("neutron-server", "neutron-l3-agent", 0.6, 1000),
        ("neutron-server", "neutron-dhcp-agent", 0.6, 1000),
        ("neutron-server", "neutron-ovs-agent", 0.9, 1000),
        ("neutron-server", "keystone", 0.3, 500),
    ] {
        app.add_call(
            CallSpec::new(caller, callee)
                .with_fanout(fanout)
                .with_lag_ms(lag),
        );
    }

    app
}

/// The fault scenario reproducing the observable consequences of Launchpad
/// bug #1533942 (Neutron Open vSwitch agent crash caused by a Kolla
/// deployment misconfiguration).
pub fn ovs_agent_crash_scenario() -> FaultScenario {
    FaultScenario::new("neutron-ovs-agent-crash")
        // The agent itself dies: its activity metrics freeze at zero and the
        // components that used to push work to it stop reaching it.
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "neutron-ovs-agent".into(),
            metric: "neutron_ovs_agent_devices_configured_per_second".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::constant(0.0)),
        })
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "neutron-ovs-agent".into(),
            metric: "neutron_ovs_agent_sync_time_ms".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::constant(0.0)),
        })
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "neutron-ovs-agent".into(),
            metric: "cpu_usage".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::constant(0.1)),
        })
        .with_fault(Fault::DropCall {
            caller: "neutron-server".into(),
            callee: "neutron-ovs-agent".into(),
        })
        .with_fault(Fault::DropCall {
            caller: "nova-compute".into(),
            callee: "neutron-ovs-agent".into(),
        })
        // VM networking never comes up: DOWN ports track load, ACTIVE ports
        // stay flat.
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "neutron-server".into(),
            metric: ROOT_CAUSE_METRIC.into(),
            replacement: MetricSpec::gauge(
                "ignored",
                MetricBehavior::LoadProportional {
                    gain: 3.0,
                    offset: 0.0,
                    noise_amplitude: 0.4,
                    lag_ticks: 2,
                    ceiling: None,
                },
            ),
        })
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "neutron-server".into(),
            metric: "neutron_ports_in_status_ACTIVE".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::constant(0.0)),
        })
        // Instances fail to launch: ERROR instances track load, ACTIVE and
        // BUILD states collapse.
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "nova-api".into(),
            metric: ERROR_METRIC.into(),
            replacement: MetricSpec::gauge(
                "ignored",
                MetricBehavior::LoadProportional {
                    gain: 4.5,
                    offset: 0.0,
                    noise_amplitude: 0.3,
                    lag_ticks: 3,
                    ceiling: None,
                },
            ),
        })
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "nova-api".into(),
            metric: "nova_instances_in_state_ACTIVE".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::constant(0.0)),
        })
        // No VMs ever reach the hypervisor: libvirt metrics flatten.
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "nova-libvirt".into(),
            metric: "libvirt_domains_running".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::constant(0.0)),
        })
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "nova-libvirt".into(),
            metric: "libvirt_vcpus_used".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::constant(0.0)),
        })
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "nova-libvirt".into(),
            metric: "libvirt_memory_used_mb".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::constant(1024.0)),
        })
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "nova-libvirt".into(),
            metric: "cpu_usage".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::constant(0.5)),
        })
        // Scheduler keeps retrying placements that fail late: its decision
        // time inflates and host candidates drop to zero variance at 0.
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "nova-scheduler".into(),
            metric: "scheduler_decision_time_ms".into(),
            replacement: MetricSpec::gauge("ignored", MetricBehavior::latency(60.0, 80.0)),
        })
        // RabbitMQ sees retry storms: the ack backlog now follows load much
        // more strongly, and message delivery to compute slows down.
        .with_fault(Fault::ReplaceMetricBehavior {
            component: "rabbitmq".into(),
            metric: "messages_ack_diff".into(),
            replacement: MetricSpec::gauge(
                "ignored",
                MetricBehavior::LoadProportional {
                    gain: 2.5,
                    offset: 0.0,
                    noise_amplitude: 0.4,
                    lag_ticks: 2,
                    ceiling: None,
                },
            ),
        })
        .with_fault(Fault::ChangeCallLag {
            caller: "nova-scheduler".into(),
            callee: "nova-compute".into(),
            lag_ms: 2000,
        })
        .with_fault(Fault::ChangeCallLag {
            caller: "nova-api".into(),
            callee: "neutron-server".into(),
            lag_ms: 1500,
        })
        // The API returns errors quickly instead of doing real work, so some
        // of its request handling degrades.
        .with_fault(Fault::DegradeCapacity {
            component: "nova-api".into(),
            factor: 0.6,
        })
}

/// Convenience: the faulty-version application spec (correct spec + the OVS
/// agent crash scenario).
///
/// # Panics
///
/// Never panics for the specs built by [`app_spec`]; the scenario only
/// references components and metrics that exist in both richness modes.
pub fn faulty_app_spec(richness: MetricRichness) -> AppSpec {
    ovs_agent_crash_scenario()
        .applied_to(&app_spec(richness))
        .expect("fault scenario matches the OpenStack model")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_simulator::engine::{SimConfig, Simulation};
    use sieve_simulator::store::MetricId;
    use sieve_simulator::workload::Workload;

    #[test]
    fn spec_is_valid_in_both_richness_modes() {
        for richness in [MetricRichness::Minimal, MetricRichness::Full] {
            let app = app_spec(richness);
            assert!(app.validate().is_ok());
            assert_eq!(app.component_count(), 16);
        }
    }

    #[test]
    fn component_names_match_table_5() {
        let app = app_spec(MetricRichness::Minimal);
        for name in COMPONENTS {
            assert!(app.component(name).is_some(), "missing component {name}");
        }
    }

    #[test]
    fn full_richness_approximates_the_papers_metric_count() {
        let total = app_spec(MetricRichness::Full).total_metric_count();
        // Table 5 reports 508 metrics across the 16 components.
        assert!(total > 250, "only {total} metrics");
        assert!(total < 900, "{total} metrics is far beyond Table 5");
    }

    #[test]
    fn faulty_spec_is_valid_and_differs_from_the_correct_one() {
        for richness in [MetricRichness::Minimal, MetricRichness::Full] {
            let correct = app_spec(richness);
            let faulty = faulty_app_spec(richness);
            assert!(faulty.validate().is_ok());
            assert_ne!(correct, faulty);
            // The crashed agent lost its call edges.
            assert!(correct
                .calls()
                .iter()
                .any(|c| c.callee == "neutron-ovs-agent"));
            assert!(!faulty
                .calls()
                .iter()
                .any(|c| c.callee == "neutron-ovs-agent"));
        }
    }

    #[test]
    fn scenario_matches_documented_symptoms() {
        let scenario = ovs_agent_crash_scenario();
        assert_eq!(scenario.name, "neutron-ovs-agent-crash");
        assert!(scenario.fault_count() >= 10);
    }

    #[test]
    fn error_metric_reacts_to_load_only_in_the_faulty_version() {
        let workload = Workload::constant(40.0);
        let config = SimConfig::new(7).with_duration_ms(60_000);

        let mut correct =
            Simulation::new(app_spec(MetricRichness::Minimal), workload.clone(), config).unwrap();
        correct.run_to_completion();
        let correct_errors = correct
            .store()
            .series(&MetricId::new("nova-api", ERROR_METRIC))
            .unwrap();
        assert!(sieve_timeseries::stats::variance(correct_errors.values()) < 1e-9);

        let mut faulty =
            Simulation::new(faulty_app_spec(MetricRichness::Minimal), workload, config).unwrap();
        faulty.run_to_completion();
        let faulty_errors = faulty
            .store()
            .series(&MetricId::new("nova-api", ERROR_METRIC))
            .unwrap();
        assert!(sieve_timeseries::stats::variance(faulty_errors.values()) > 1.0);
        let faulty_ports = faulty
            .store()
            .series(&MetricId::new("neutron-server", ROOT_CAUSE_METRIC))
            .unwrap();
        assert!(sieve_timeseries::stats::variance(faulty_ports.values()) > 1.0);
    }
}
