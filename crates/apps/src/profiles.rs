//! Shared metric-family builders.
//!
//! Real components export a mixture of system metrics (collected by Telegraf
//! from the OS and Docker), runtime metrics (garbage collection, thread
//! pools) and application metrics (request rates, latencies, business
//! counters). The builders here generate those families with the behaviours
//! the Sieve pipeline cares about: load-following gauges, saturating
//! latencies, monotone counters, constants (to be filtered) and pure noise.

use sieve_simulator::metrics::{MetricBehavior, MetricSpec};

/// How many metrics each component exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricRichness {
    /// A handful of metrics per component; keeps tests fast.
    Minimal,
    /// Approximates the per-component metric counts reported in the paper
    /// (hundreds of metrics per application).
    Full,
}

/// System-level metrics every containerised component exports (CPU, memory,
/// network, disk, plus a few constants and noise metrics). `load_gain`
/// scales how strongly resource usage follows the component's load; `extra`
/// adds redundant percentile/average variants in `Full` mode.
pub fn system_metrics(load_gain: f64, richness: MetricRichness) -> Vec<MetricSpec> {
    let mut metrics = vec![
        MetricSpec::gauge("cpu_usage", MetricBehavior::cpu_like(load_gain)),
        MetricSpec::gauge(
            "memory_usage_bytes",
            MetricBehavior::LoadProportional {
                gain: load_gain * 1.0e5,
                offset: 5.0e7,
                noise_amplitude: 1.0e5,
                lag_ticks: 1,
                ceiling: None,
            },
        ),
        MetricSpec::counter(
            "net_bytes_recv_total",
            MetricBehavior::counter(load_gain * 900.0),
        ),
        MetricSpec::counter(
            "net_bytes_sent_total",
            MetricBehavior::counter(load_gain * 1400.0),
        ),
    ];
    if matches!(richness, MetricRichness::Full) {
        metrics.extend(vec![
            MetricSpec::gauge("cpu_usage_user", MetricBehavior::cpu_like(load_gain * 0.7)),
            MetricSpec::gauge(
                "cpu_usage_system",
                MetricBehavior::cpu_like(load_gain * 0.3),
            ),
            MetricSpec::gauge(
                "cpu_usage_iowait",
                MetricBehavior::cpu_like(load_gain * 0.1),
            ),
            MetricSpec::gauge(
                "memory_rss_bytes",
                MetricBehavior::LoadProportional {
                    gain: load_gain * 9.0e4,
                    offset: 4.5e7,
                    noise_amplitude: 1.0e5,
                    lag_ticks: 1,
                    ceiling: None,
                },
            ),
            MetricSpec::gauge(
                "memory_heap_bytes",
                MetricBehavior::LoadProportional {
                    gain: load_gain * 6.0e4,
                    offset: 2.0e7,
                    noise_amplitude: 2.0e5,
                    lag_ticks: 2,
                    ceiling: None,
                },
            ),
            MetricSpec::counter(
                "net_packets_recv_total",
                MetricBehavior::counter(load_gain * 12.0),
            ),
            MetricSpec::counter(
                "net_packets_sent_total",
                MetricBehavior::counter(load_gain * 15.0),
            ),
            MetricSpec::counter(
                "disk_read_bytes_total",
                MetricBehavior::counter(load_gain * 300.0),
            ),
            MetricSpec::counter(
                "disk_write_bytes_total",
                MetricBehavior::counter(load_gain * 800.0),
            ),
            MetricSpec::counter(
                "context_switches_total",
                MetricBehavior::counter(load_gain * 40.0),
            ),
            // Constants that the variance filter should drop.
            MetricSpec::gauge("open_file_limit", MetricBehavior::constant(65536.0)),
            MetricSpec::gauge("num_cpus", MetricBehavior::constant(4.0)),
            MetricSpec::gauge(
                "container_memory_limit_bytes",
                MetricBehavior::constant(8.0e9),
            ),
            // Load-independent noise and periodic housekeeping signals.
            MetricSpec::gauge(
                "clock_skew_ms",
                MetricBehavior::RandomWalk {
                    step: 0.2,
                    bound: 5.0,
                },
            ),
            MetricSpec::gauge(
                "gc_pause_ms",
                MetricBehavior::Periodic {
                    period_ticks: 53,
                    amplitude: 3.0,
                    offset: 4.0,
                },
            ),
        ]);
    }
    metrics
}

/// HTTP-service metrics (request rate, latency mean and percentiles, error
/// counters). The latency metrics saturate against `capacity`.
pub fn http_service_metrics(
    prefix: &str,
    capacity: f64,
    richness: MetricRichness,
) -> Vec<MetricSpec> {
    let mut metrics = vec![
        MetricSpec::gauge(
            format!("{prefix}_requests_per_second"),
            MetricBehavior::load_proportional(1.0),
        ),
        MetricSpec::gauge(
            format!("{prefix}_request_time_mean"),
            MetricBehavior::latency(35.0, capacity),
        ),
        MetricSpec::counter(
            format!("{prefix}_requests_total"),
            MetricBehavior::counter(1.0),
        ),
    ];
    if matches!(richness, MetricRichness::Full) {
        for (suffix, base) in [("p50", 30.0), ("p90", 55.0), ("p99", 90.0)] {
            metrics.push(MetricSpec::gauge(
                format!("{prefix}_request_time_{suffix}"),
                MetricBehavior::latency(base, capacity),
            ));
        }
        metrics.push(MetricSpec::gauge(
            format!("{prefix}_active_connections"),
            MetricBehavior::load_proportional(0.8),
        ));
        metrics.push(MetricSpec::gauge(
            format!("{prefix}_queue_depth"),
            MetricBehavior::LoadProportional {
                gain: 0.2,
                offset: 0.0,
                noise_amplitude: 0.1,
                lag_ticks: 1,
                ceiling: None,
            },
        ));
        metrics.push(MetricSpec::counter(
            format!("{prefix}_errors_total"),
            MetricBehavior::counter(0.01),
        ));
        metrics.push(MetricSpec::gauge(
            format!("{prefix}_response_size_mean_bytes"),
            MetricBehavior::LoadProportional {
                gain: 0.0,
                offset: 2048.0,
                noise_amplitude: 64.0,
                lag_ticks: 0,
                ceiling: None,
            },
        ));
    }
    metrics
}

/// Database/KV-store metrics (query rate, query latency, connections, cache
/// statistics).
pub fn datastore_metrics(prefix: &str, capacity: f64, richness: MetricRichness) -> Vec<MetricSpec> {
    let mut metrics = vec![
        MetricSpec::gauge(
            format!("{prefix}_queries_per_second"),
            MetricBehavior::load_proportional(2.5),
        ),
        MetricSpec::gauge(
            format!("{prefix}_query_time_mean"),
            MetricBehavior::latency(8.0, capacity),
        ),
        MetricSpec::gauge(
            format!("{prefix}_connections_active"),
            MetricBehavior::load_proportional(0.4),
        ),
    ];
    if matches!(richness, MetricRichness::Full) {
        metrics.extend(vec![
            MetricSpec::counter(
                format!("{prefix}_queries_total"),
                MetricBehavior::counter(2.5),
            ),
            MetricSpec::gauge(
                format!("{prefix}_cache_hit_ratio"),
                MetricBehavior::LoadProportional {
                    gain: -0.001,
                    offset: 0.95,
                    noise_amplitude: 0.01,
                    lag_ticks: 1,
                    ceiling: Some(1.0),
                },
            ),
            MetricSpec::gauge(
                format!("{prefix}_lock_wait_ms"),
                MetricBehavior::latency(0.5, capacity * 0.8),
            ),
            MetricSpec::counter(
                format!("{prefix}_bytes_written_total"),
                MetricBehavior::counter(500.0),
            ),
            MetricSpec::gauge(
                format!("{prefix}_open_cursors"),
                MetricBehavior::load_proportional(0.2),
            ),
            MetricSpec::gauge(
                format!("{prefix}_replication_lag_ms"),
                MetricBehavior::RandomWalk {
                    step: 0.5,
                    bound: 20.0,
                },
            ),
        ]);
    }
    metrics
}

/// Message-queue metrics (RabbitMQ-like: published/acked message counters,
/// queue depths, consumer counts).
pub fn message_queue_metrics(richness: MetricRichness) -> Vec<MetricSpec> {
    let mut metrics = vec![
        MetricSpec::gauge("messages", MetricBehavior::load_proportional(3.0)),
        MetricSpec::gauge(
            "messages_ack_diff",
            MetricBehavior::LoadProportional {
                gain: 0.5,
                offset: 0.0,
                noise_amplitude: 0.3,
                lag_ticks: 1,
                ceiling: None,
            },
        ),
        MetricSpec::counter("messages_published_total", MetricBehavior::counter(3.0)),
    ];
    if matches!(richness, MetricRichness::Full) {
        metrics.extend(vec![
            MetricSpec::counter("messages_acked_total", MetricBehavior::counter(2.9)),
            MetricSpec::counter("messages_redelivered_total", MetricBehavior::counter(0.05)),
            MetricSpec::gauge("queue_depth", MetricBehavior::load_proportional(0.6)),
            MetricSpec::gauge("consumers", MetricBehavior::constant(24.0)),
            MetricSpec::gauge("channels", MetricBehavior::load_proportional(0.1)),
            MetricSpec::gauge(
                "message_publish_rate",
                MetricBehavior::load_proportional(3.1),
            ),
            MetricSpec::gauge("memory_watermark_ratio", MetricBehavior::constant(0.4)),
        ]);
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_profiles_are_larger_than_minimal_ones() {
        assert!(
            system_metrics(1.0, MetricRichness::Full).len()
                > system_metrics(1.0, MetricRichness::Minimal).len()
        );
        assert!(
            http_service_metrics("web", 100.0, MetricRichness::Full).len()
                > http_service_metrics("web", 100.0, MetricRichness::Minimal).len()
        );
        assert!(
            datastore_metrics("mongodb", 200.0, MetricRichness::Full).len()
                > datastore_metrics("mongodb", 200.0, MetricRichness::Minimal).len()
        );
        assert!(
            message_queue_metrics(MetricRichness::Full).len()
                > message_queue_metrics(MetricRichness::Minimal).len()
        );
    }

    #[test]
    fn metric_names_are_unique_within_each_family() {
        for metrics in [
            system_metrics(1.0, MetricRichness::Full),
            http_service_metrics("api", 50.0, MetricRichness::Full),
            datastore_metrics("db", 50.0, MetricRichness::Full),
            message_queue_metrics(MetricRichness::Full),
        ] {
            let mut names: Vec<&str> = metrics.iter().map(|m| m.name.as_str()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), before);
        }
    }

    #[test]
    fn full_system_profile_contains_constants_for_the_variance_filter() {
        let metrics = system_metrics(1.0, MetricRichness::Full);
        let constants = metrics
            .iter()
            .filter(|m| matches!(m.behavior, MetricBehavior::Constant { .. }))
            .count();
        assert!(constants >= 3);
    }

    #[test]
    fn http_metrics_use_the_given_prefix() {
        let metrics = http_service_metrics("chat", 10.0, MetricRichness::Full);
        assert!(metrics.iter().all(|m| m.name.starts_with("chat_")));
    }

    #[test]
    fn profiles_include_load_dependent_metrics() {
        for metrics in [
            system_metrics(2.0, MetricRichness::Minimal),
            datastore_metrics("redis", 100.0, MetricRichness::Minimal),
        ] {
            assert!(metrics.iter().any(|m| m.behavior.is_load_dependent()));
        }
    }
}
