//! Application models used by the Sieve evaluation.
//!
//! The paper deploys two real microservices-based systems:
//!
//! * **ShareLatex** (§4.1, §6.2) — a collaborative LaTeX editor with a load
//!   balancer, a KV store, two databases and 11 node.js services, exporting
//!   889 metrics in total; used for the metric-reduction, overhead and
//!   autoscaling experiments.
//! * **OpenStack Kolla** (§4.2, §6.3) — a cloud manager whose main services
//!   (Nova, Neutron, Glance, …) plus auxiliary components expose ~500
//!   metrics in the paper's measurement setup (Table 5 reports 508); used
//!   for the root-cause-analysis experiment around Launchpad bug #1533942.
//!
//! This crate models both applications for the `sieve-simulator` substrate:
//! the same component names, realistic per-component metric families whose
//! values are causally driven by request flow along the real call topology,
//! and — for OpenStack — a fault scenario that reproduces the observable
//! symptoms of the Open vSwitch agent crash.
//!
//! Each model comes in two sizes via [`MetricRichness`]: `Minimal` keeps a
//! handful of metrics per component so unit tests stay fast, `Full`
//! approximates the paper's metric counts for the benchmark harness.
//!
//! The [`tenants`] module additionally generates deterministic
//! *multi-tenant fleets* (many small applications vs few large ones) for
//! the serving-layer benchmarks and examples, and the [`chaos`] module
//! provides the adversarial profile with a built-in answer sheet (true
//! cluster counts, flippable call edges, a canonical root-cause fault)
//! that the `sieve-scenario` engine scores the pipeline against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod openstack;
pub mod profiles;
pub mod sharelatex;
pub mod tenants;

pub use profiles::MetricRichness;
pub use tenants::{tenant_fleet, TenantMix, TenantWorkload};
