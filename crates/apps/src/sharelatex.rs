//! The ShareLatex-like application model.
//!
//! ShareLatex (§4.1 of the paper) is "structured as a microservices-based
//! application, delegating tasks to multiple well-defined components that
//! include a KV-store, load balancer, two databases and 11 node.js based
//! components". The model below uses the same 15 component names that appear
//! in Figures 4 and 6 of the paper, wires them with the topology implied by
//! the application (haproxy in front of `web` and `real-time`, `web` fanning
//! out to the feature services, everything persisting into MongoDB /
//! PostgreSQL / Redis), and exports the metric families such services expose.
//!
//! The metric the paper's autoscaling case study ends up selecting,
//! `http-requests_Project_id_GET_mean`, is exported by the `web` component
//! as a saturating latency metric.

use crate::profiles::{datastore_metrics, http_service_metrics, system_metrics, MetricRichness};
use sieve_simulator::app::{AppSpec, CallSpec, ComponentSpec};
use sieve_simulator::metrics::{MetricBehavior, MetricSpec};

/// Name of the application.
pub const APP_NAME: &str = "sharelatex";

/// The entrypoint component (the load balancer).
pub const ENTRYPOINT: &str = "haproxy";

/// The application metric Sieve identifies as the best autoscaling trigger
/// in the paper's case study (§6.2).
pub const GUIDING_METRIC: &str = "http-requests_Project_id_GET_mean";

/// The component exporting [`GUIDING_METRIC`].
pub const GUIDING_COMPONENT: &str = "web";

/// The 15 ShareLatex components modelled here (the names used in Figures 4
/// and 6 of the paper).
pub const COMPONENTS: [&str; 15] = [
    "haproxy",
    "web",
    "real-time",
    "chat",
    "clsi",
    "contacts",
    "doc-updater",
    "docstore",
    "filestore",
    "spelling",
    "tags",
    "track-changes",
    "mongodb",
    "postgresql",
    "redis",
];

/// Builds the ShareLatex application model.
pub fn app_spec(richness: MetricRichness) -> AppSpec {
    let mut app = AppSpec::new(APP_NAME, ENTRYPOINT);

    // Load balancer.
    app.add_component(
        ComponentSpec::new("haproxy")
            .with_capacity(400.0)
            .with_metrics(system_metrics(0.3, richness))
            .with_metrics(http_service_metrics("haproxy_frontend", 400.0, richness)),
    );

    // The main web front-end: exports the guiding metric of the case study.
    // The node.js web tier is I/O bound, so its CPU usage is a weak and
    // noisy proxy of the actual SLA risk — exactly the property that makes
    // the traditional CPU-based autoscaling trigger perform worse than the
    // latency metric Sieve selects (§6.2).
    let web_system_metrics: Vec<MetricSpec> = system_metrics(0.35, richness)
        .into_iter()
        .map(|m| {
            if m.name == "cpu_usage" {
                // CloudWatch-style CPU metrics are averaged over a reporting
                // window, so as an autoscaling trigger the signal is both
                // noisy and stale (here: 10 s behind the actual load, far
                // less than CloudWatch's one-minute minimum period).
                MetricSpec::gauge(
                    "cpu_usage",
                    MetricBehavior::LoadProportional {
                        gain: 0.35,
                        offset: 1.0,
                        noise_amplitude: 5.0,
                        lag_ticks: 20,
                        ceiling: Some(100.0),
                    },
                )
            } else {
                m
            }
        })
        .collect();
    let mut web = ComponentSpec::new("web")
        .with_capacity(120.0)
        .with_metrics(web_system_metrics)
        .with_metrics(http_service_metrics("http-requests", 120.0, richness))
        .with_metric(MetricSpec::gauge(
            GUIDING_METRIC,
            MetricBehavior::latency(180.0, 110.0),
        ))
        .with_metric(MetricSpec::gauge(
            "active_users",
            MetricBehavior::load_proportional(0.9),
        ));
    if matches!(richness, MetricRichness::Full) {
        web = web
            .with_metric(MetricSpec::gauge(
                "http-requests_Project_id_POST_mean",
                MetricBehavior::latency(210.0, 110.0),
            ))
            .with_metric(MetricSpec::gauge(
                "http-requests_project_id_download_mean",
                MetricBehavior::latency(260.0, 100.0),
            ))
            .with_metric(MetricSpec::counter(
                "login_attempts_total",
                MetricBehavior::counter(0.2),
            ));
    }
    app.add_component(web);

    // Websocket layer.
    app.add_component(
        ComponentSpec::new("real-time")
            .with_capacity(200.0)
            .with_metrics(system_metrics(0.7, richness))
            .with_metrics(http_service_metrics("websocket", 200.0, richness)),
    );

    // node.js feature services.
    for (name, gain, capacity) in [
        ("chat", 0.4, 150.0),
        ("clsi", 1.4, 60.0), // LaTeX compilation is CPU heavy
        ("contacts", 0.3, 200.0),
        ("doc-updater", 1.0, 100.0),
        ("docstore", 0.6, 150.0),
        ("filestore", 0.7, 120.0),
        ("spelling", 0.5, 150.0),
        ("tags", 0.3, 200.0),
        ("track-changes", 0.6, 130.0),
    ] {
        app.add_component(
            ComponentSpec::new(name)
                .with_capacity(capacity)
                .with_metrics(system_metrics(gain, richness))
                .with_metrics(http_service_metrics(name, capacity, richness)),
        );
    }

    // Datastores.
    app.add_component(
        ComponentSpec::new("mongodb")
            .with_capacity(500.0)
            .with_metrics(system_metrics(0.8, richness))
            .with_metrics(datastore_metrics("mongodb", 500.0, richness)),
    );
    app.add_component(
        ComponentSpec::new("postgresql")
            .with_capacity(300.0)
            .with_metrics(system_metrics(0.5, richness))
            .with_metrics(datastore_metrics("postgresql", 300.0, richness)),
    );
    app.add_component(
        ComponentSpec::new("redis")
            .with_capacity(800.0)
            .with_metrics(system_metrics(0.4, richness))
            .with_metrics(datastore_metrics("redis", 800.0, richness)),
    );

    // Topology: haproxy fronts web and the websocket layer.
    app.add_call(
        CallSpec::new("haproxy", "web")
            .with_fanout(1.0)
            .with_lag_ms(500),
    );
    app.add_call(
        CallSpec::new("haproxy", "real-time")
            .with_fanout(0.5)
            .with_lag_ms(500),
    );

    // web fans out to the feature services and the datastores.
    for (callee, fanout) in [
        ("chat", 0.2),
        ("clsi", 0.3),
        ("contacts", 0.1),
        ("doc-updater", 0.8),
        ("docstore", 0.6),
        ("filestore", 0.3),
        ("spelling", 0.4),
        ("tags", 0.1),
        ("track-changes", 0.3),
        ("mongodb", 1.2),
        ("redis", 1.5),
        ("postgresql", 0.4),
    ] {
        app.add_call(
            CallSpec::new("web", callee)
                .with_fanout(fanout)
                .with_lag_ms(500),
        );
    }

    // real-time pushes edits through doc-updater and Redis pub/sub.
    app.add_call(
        CallSpec::new("real-time", "doc-updater")
            .with_fanout(0.9)
            .with_lag_ms(500),
    );
    app.add_call(
        CallSpec::new("real-time", "redis")
            .with_fanout(1.2)
            .with_lag_ms(500),
    );

    // Feature services persist into the datastores.
    for (caller, callee, fanout) in [
        ("doc-updater", "mongodb", 1.0),
        ("doc-updater", "redis", 1.5),
        ("doc-updater", "track-changes", 0.5),
        ("docstore", "mongodb", 1.2),
        ("chat", "mongodb", 0.8),
        ("contacts", "mongodb", 0.6),
        ("tags", "mongodb", 0.7),
        ("track-changes", "mongodb", 0.9),
        ("spelling", "postgresql", 0.8),
        ("clsi", "postgresql", 0.5),
        ("filestore", "mongodb", 0.4),
    ] {
        app.add_call(
            CallSpec::new(caller, callee)
                .with_fanout(fanout)
                .with_lag_ms(1000),
        );
    }

    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_simulator::engine::{SimConfig, Simulation};
    use sieve_simulator::store::MetricId;
    use sieve_simulator::workload::Workload;

    #[test]
    fn spec_is_valid_in_both_richness_modes() {
        for richness in [MetricRichness::Minimal, MetricRichness::Full] {
            let app = app_spec(richness);
            assert!(app.validate().is_ok());
            assert_eq!(app.component_count(), 15);
        }
    }

    #[test]
    fn component_names_match_the_paper() {
        let app = app_spec(MetricRichness::Minimal);
        for name in COMPONENTS {
            assert!(app.component(name).is_some(), "missing component {name}");
        }
    }

    #[test]
    fn full_richness_approximates_the_papers_metric_count() {
        let full = app_spec(MetricRichness::Full).total_metric_count();
        // The paper reports 889 unique metrics for ShareLatex; the model
        // should be the same order of magnitude (several hundred).
        assert!(full > 300, "full model has only {full} metrics");
        assert!(full < 1500, "full model has {full} metrics, too many");
        let minimal = app_spec(MetricRichness::Minimal).total_metric_count();
        assert!(minimal < full / 2);
    }

    #[test]
    fn guiding_metric_is_exported_by_web() {
        let app = app_spec(MetricRichness::Minimal);
        let web = app.component(GUIDING_COMPONENT).unwrap();
        assert!(web.metrics.iter().any(|m| m.name == GUIDING_METRIC));
    }

    #[test]
    fn topology_connects_haproxy_through_web_to_the_datastores() {
        let app = app_spec(MetricRichness::Minimal);
        let calls = app.calls();
        assert!(calls
            .iter()
            .any(|c| c.caller == "haproxy" && c.callee == "web"));
        assert!(calls
            .iter()
            .any(|c| c.caller == "web" && c.callee == "mongodb"));
        assert!(calls
            .iter()
            .any(|c| c.caller == "doc-updater" && c.callee == "redis"));
        // No component calls haproxy (it is the entrypoint).
        assert!(calls.iter().all(|c| c.callee != "haproxy"));
    }

    #[test]
    fn simulation_produces_load_dependent_guiding_metric() {
        let app = app_spec(MetricRichness::Minimal);
        let config = SimConfig::new(42).with_duration_ms(60_000);
        let mut sim = Simulation::new(app, Workload::spike(5.0, 300.0, 40, 90), config).unwrap();
        sim.run_to_completion();
        let series = sim
            .store()
            .series(&MetricId::new(GUIDING_COMPONENT, GUIDING_METRIC))
            .unwrap();
        let early: f64 = series.values()[..30].iter().sum::<f64>() / 30.0;
        let spike: f64 = series.values()[60..90].iter().sum::<f64>() / 30.0;
        assert!(
            spike > 1.5 * early,
            "guiding metric should react to the load spike ({early} -> {spike})"
        );
        // The call graph observed by the tracer covers the whole topology.
        assert_eq!(sim.call_graph().component_count(), 15);
    }
}
