//! Multi-tenant workload profiles for the serving layer.
//!
//! A serving deployment ([`sieve-serve`]) multiplexes many isolated
//! applications over one analysis fleet, and its performance envelope is
//! shaped by the tenant *mix*: many small applications stress the
//! per-tenant fixed costs and the sweep fan-out, while a few large
//! applications stress per-tenant analysis depth. The builders here
//! generate deterministic fleets of both shapes for benchmarks, examples
//! and tests — every tenant gets its own [`AppSpec`], [`Workload`] and
//! seed, derived only from the fleet seed and the tenant index, so a fleet
//! is bit-reproducible anywhere.
//!
//! [`sieve-serve`]: ../../sieve_serve/index.html

use crate::profiles::{datastore_metrics, http_service_metrics, system_metrics, MetricRichness};
use crate::sharelatex;
use sieve_exec::hash::splitmix64;
use sieve_simulator::app::{AppSpec, CallSpec, ComponentSpec};
use sieve_simulator::workload::Workload;

/// The shape of a multi-tenant fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantMix {
    /// Many tenants, each a small 3-component application (gateway → api →
    /// db, a handful of metrics per component). Stresses tenant count:
    /// registry routing, sweep fan-out, per-tenant fixed costs.
    ManySmall,
    /// Few tenants, each a full ShareLatex-like deployment (15 components).
    /// Stresses per-tenant analysis depth: one dirty tenant means real
    /// clustering and Granger work.
    FewLarge,
}

/// One tenant of a generated fleet: everything needed to simulate its
/// traffic and register it with a serving layer.
#[derive(Debug, Clone)]
pub struct TenantWorkload {
    /// Tenant name, unique within the fleet (e.g. `tenant-03`).
    pub name: String,
    /// The tenant's application model.
    pub spec: AppSpec,
    /// The tenant's request workload (per-tenant base rate and seed).
    pub workload: Workload,
    /// Simulation seed for the tenant (deterministic per fleet seed and
    /// tenant index).
    pub seed: u64,
}

/// A small per-tenant application: gateway → api → db with the standard
/// metric families in `Minimal` richness (≈ 10 series per tenant).
fn small_app(name: &str) -> AppSpec {
    let mut app = AppSpec::new(name, "gateway");
    app.add_component(
        ComponentSpec::new("gateway")
            .with_capacity(250.0)
            .with_metrics(system_metrics(0.3, MetricRichness::Minimal))
            .with_metrics(http_service_metrics("gw", 250.0, MetricRichness::Minimal)),
    );
    app.add_component(
        ComponentSpec::new("api")
            .with_capacity(120.0)
            .with_metrics(system_metrics(0.8, MetricRichness::Minimal))
            .with_metrics(http_service_metrics("api", 120.0, MetricRichness::Minimal)),
    );
    app.add_component(
        ComponentSpec::new("db")
            .with_capacity(300.0)
            .with_metrics(system_metrics(0.5, MetricRichness::Minimal))
            .with_metrics(datastore_metrics("db", 300.0, MetricRichness::Minimal)),
    );
    app.add_call(CallSpec::new("gateway", "api").with_lag_ms(500));
    app.add_call(CallSpec::new("api", "db").with_fanout(2.0).with_lag_ms(500));
    app
}

/// Generates a deterministic fleet of `tenants` tenants of the given mix.
///
/// Per-tenant seeds and workload rates are derived from `fleet_seed` and
/// the tenant index through splitmix64, so two fleets with the same
/// arguments are identical — including across hosts — while tenants within
/// a fleet get genuinely different traffic (different rates, phases and
/// noise streams), which keeps their analysis results distinct.
pub fn tenant_fleet(mix: TenantMix, tenants: usize, fleet_seed: u64) -> Vec<TenantWorkload> {
    (0..tenants)
        .map(|i| {
            let seed = splitmix64(fleet_seed ^ splitmix64(i as u64 + 1));
            let name = format!("tenant-{i:02}");
            let spec = match mix {
                TenantMix::ManySmall => small_app(&name),
                TenantMix::FewLarge => sharelatex::app_spec(MetricRichness::Minimal),
            };
            // Base rates spread over [40, 100) so tenants saturate their
            // components differently.
            let rate = 40.0 + (seed % 60) as f64;
            TenantWorkload {
                name,
                spec,
                workload: Workload::randomized(rate, seed ^ 0xA5A5),
                seed,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleets_are_deterministic_and_named_uniquely() {
        let a = tenant_fleet(TenantMix::ManySmall, 8, 7);
        let b = tenant_fleet(TenantMix::ManySmall, 8, 7);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.spec.name, y.spec.name);
        }
        let mut names: Vec<&str> = a.iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "tenant names are unique");

        let other_seed = tenant_fleet(TenantMix::ManySmall, 8, 8);
        assert_ne!(a[0].seed, other_seed[0].seed);
    }

    #[test]
    fn small_tenants_are_smaller_than_large_ones() {
        let small = tenant_fleet(TenantMix::ManySmall, 1, 1);
        let large = tenant_fleet(TenantMix::FewLarge, 1, 1);
        assert_eq!(small[0].spec.component_count(), 3);
        assert_eq!(large[0].spec.component_count(), 15);
        assert!(small[0].spec.total_metric_count() < large[0].spec.total_metric_count());
        assert!(small[0].spec.validate().is_ok());
        assert!(large[0].spec.validate().is_ok());
    }

    #[test]
    fn tenant_rates_vary_across_the_fleet() {
        let fleet = tenant_fleet(TenantMix::ManySmall, 16, 3);
        let distinct: std::collections::BTreeSet<u64> = fleet.iter().map(|t| t.seed % 60).collect();
        assert!(distinct.len() > 4, "rates spread across tenants");
    }
}
