//! The chaos-scenario application profile.
//!
//! Unlike the well-behaved ShareLatex/OpenStack models, this profile is
//! built for *adversarial* runs with a known answer sheet: every component
//! exports three behaviourally distinct metric families (load-following,
//! saturating-latency, periodic housekeeping) plus one constant, so the
//! true cluster count per component is known by construction; the call
//! topology includes edges a scenario script can flip on and off
//! (dependency drift); and [`root_cause_fault`] produces the
//! remove+add+degrade fault signature whose injected component an RCA
//! comparison must rank first.

use crate::profiles::MetricRichness;
use sieve_simulator::app::{AppSpec, CallSpec, ComponentSpec};
use sieve_simulator::fault::{Fault, FaultScenario};
use sieve_simulator::metrics::{MetricBehavior, MetricSpec};
use std::collections::BTreeMap;

/// Entry point of the chaos application.
pub const ENTRYPOINT: &str = "gateway";
/// Middle-tier service A (the default root-cause injection target).
pub const SVC_A: &str = "svc-a";
/// Middle-tier service B.
pub const SVC_B: &str = "svc-b";
/// Shared datastore.
pub const DB: &str = "db";
/// Async leaf worker (the default dropout/clock-skew target — not on any
/// drift-scored path, so its faults must not confuse the other scores).
pub const WORKER: &str = "worker";

/// The metric removed by [`root_cause_fault`].
pub const FAULT_REMOVED_METRIC: &str = "req_rate";
/// The metric added by [`root_cause_fault`].
pub const FAULT_ADDED_METRIC: &str = "req_errors";

/// A chaos application plus its ground-truth cluster structure.
#[derive(Debug, Clone)]
pub struct ChaosApp {
    /// The application specification (all potential call edges included).
    pub spec: AppSpec,
    /// True number of behaviourally distinct varying metric families per
    /// component — what a perfect k-sweep would choose as `k`.
    pub true_cluster_counts: BTreeMap<String, usize>,
}

/// One component's chaos metric family: three behaviourally distinct
/// varying families plus one constant (to be variance-filtered).
///
/// * **Load family** (3 metrics): `req_rate`, `io_ops` (lagged, scaled),
///   `conn_active` — linear in the component's load, one shape.
/// * **Latency family** (2 metrics): `lat_mean`, `lat_p99` — saturating
///   `base * (1 + u^2)` curves; under an oscillating load the squared
///   utilisation doubles the frequency, a genuinely different shape.
/// * **Periodic family** (2 metrics): `gc_pause`, `flush_ops` — a
///   load-independent housekeeping oscillation.
/// * **Constant** (1 metric): `buf_limit`.
///
/// `Full` richness adds one redundant member to each varying family; the
/// family count — the true `k` — stays 3 either way.
pub fn chaos_component_metrics(
    load_gain: f64,
    capacity: f64,
    periodic_ticks: usize,
    richness: MetricRichness,
) -> Vec<MetricSpec> {
    let mut metrics = vec![
        MetricSpec::gauge(
            "req_rate",
            MetricBehavior::LoadProportional {
                gain: load_gain,
                offset: 0.0,
                noise_amplitude: 0.02 * load_gain.abs().max(0.01),
                lag_ticks: 0,
                ceiling: None,
            },
        ),
        MetricSpec::gauge(
            "io_ops",
            MetricBehavior::LoadProportional {
                gain: 2.5 * load_gain,
                offset: 4.0,
                noise_amplitude: 0.1 * load_gain.abs().max(0.01),
                lag_ticks: 1,
                ceiling: None,
            },
        ),
        MetricSpec::gauge(
            "conn_active",
            MetricBehavior::LoadProportional {
                gain: 0.4 * load_gain,
                offset: 2.0,
                noise_amplitude: 0.08 * load_gain.abs().max(0.01),
                lag_ticks: 0,
                ceiling: None,
            },
        ),
        MetricSpec::gauge("lat_mean", MetricBehavior::latency(20.0, capacity)),
        MetricSpec::gauge("lat_p99", MetricBehavior::latency(60.0, capacity)),
        MetricSpec::gauge(
            "gc_pause",
            MetricBehavior::Periodic {
                period_ticks: periodic_ticks,
                amplitude: 6.0,
                offset: 9.0,
            },
        ),
        MetricSpec::gauge(
            "flush_ops",
            MetricBehavior::Periodic {
                period_ticks: periodic_ticks,
                amplitude: 3.0,
                offset: 5.0,
            },
        ),
        MetricSpec::gauge("buf_limit", MetricBehavior::constant(4096.0)),
    ];
    if matches!(richness, MetricRichness::Full) {
        metrics.push(MetricSpec::gauge(
            "cpu_pct",
            MetricBehavior::LoadProportional {
                gain: 0.8 * load_gain,
                offset: 3.0,
                noise_amplitude: 0.12 * load_gain.abs().max(0.01),
                lag_ticks: 0,
                ceiling: Some(100.0),
            },
        ));
        metrics.push(MetricSpec::gauge(
            "lat_p50",
            MetricBehavior::latency(12.0, capacity),
        ));
        metrics.push(MetricSpec::gauge(
            "compact_ops",
            MetricBehavior::Periodic {
                period_ticks: periodic_ticks,
                amplitude: 2.0,
                offset: 3.0,
            },
        ));
    }
    metrics
}

/// Builds the chaos application: a gateway fanning out to two services
/// over a shared datastore, plus an async worker. The spec lists every
/// *potential* call edge — including the `svc-b -> worker` edge the drift
/// scenarios script on and off — and per-component capacities sized so a
/// base rate around 40 requests/tick keeps utilisation in the shape-rich
/// 0.2–0.9 band.
pub fn chaos_app(richness: MetricRichness) -> ChaosApp {
    let mut app = AppSpec::new("chaos", ENTRYPOINT);
    // (name, load_gain, latency-metric capacity, periodic phase ticks,
    //  component capacity_per_instance)
    let components: [(&str, f64, f64, usize, f64); 5] = [
        (ENTRYPOINT, 1.0, 120.0, 12, 150.0),
        (SVC_A, 1.2, 100.0, 14, 130.0),
        (SVC_B, 0.9, 100.0, 16, 130.0),
        (DB, 0.6, 260.0, 12, 320.0),
        (WORKER, 1.5, 90.0, 18, 110.0),
    ];
    for (name, gain, capacity, period, component_capacity) in components {
        let mut spec = ComponentSpec::new(name).with_capacity(component_capacity);
        for metric in chaos_component_metrics(gain, capacity, period, richness) {
            spec = spec.with_metric(metric);
        }
        app.add_component(spec);
    }
    app.add_call(CallSpec::new(ENTRYPOINT, SVC_A).with_lag_ms(500));
    app.add_call(CallSpec::new(ENTRYPOINT, SVC_B).with_lag_ms(500));
    app.add_call(CallSpec::new(SVC_A, DB).with_fanout(2.0).with_lag_ms(500));
    app.add_call(CallSpec::new(SVC_B, DB).with_lag_ms(500));
    app.add_call(CallSpec::new(SVC_A, WORKER).with_lag_ms(1000));
    // The drift edge: present in the spec, scripted on/off by scenarios.
    app.add_call(CallSpec::new(SVC_B, WORKER).with_lag_ms(1000));

    let true_cluster_counts = [ENTRYPOINT, SVC_A, SVC_B, DB, WORKER]
        .into_iter()
        .map(|c| (c.to_string(), 3))
        .collect();
    ChaosApp {
        spec: app,
        true_cluster_counts,
    }
}

/// The root-cause fault signature injected by the RCA scenarios: the
/// component's `req_rate` exporter dies, a `req_errors` gauge appears in
/// its place, and the component's capacity halves. The name swap gives the
/// faulted component a metric-novelty score of 2 while every innocent
/// component scores 0, and the changed cluster memberships make its edges
/// pass the RCA edge filter — so a correct five-step comparison ranks it
/// first.
pub fn root_cause_fault(component: &str) -> FaultScenario {
    FaultScenario::new(format!("chaos-root-cause-{component}"))
        .with_fault(Fault::RemoveMetric {
            component: component.to_string(),
            metric: FAULT_REMOVED_METRIC.to_string(),
        })
        .with_fault(Fault::AddMetric {
            component: component.to_string(),
            metric: MetricSpec::gauge(
                FAULT_ADDED_METRIC,
                MetricBehavior::LoadProportional {
                    gain: 1.1,
                    offset: 0.5,
                    noise_amplitude: 0.15,
                    lag_ticks: 0,
                    ceiling: None,
                },
            ),
        })
        .with_fault(Fault::DegradeCapacity {
            component: component.to_string(),
            factor: 0.5,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_app_validates_and_names_the_expected_topology() {
        let chaos = chaos_app(MetricRichness::Minimal);
        assert!(chaos.spec.validate().is_ok());
        assert_eq!(chaos.spec.component_count(), 5);
        assert_eq!(chaos.spec.calls().len(), 6);
        assert_eq!(chaos.spec.entrypoint, ENTRYPOINT);
        assert!(chaos
            .spec
            .calls()
            .iter()
            .any(|c| c.caller == SVC_B && c.callee == WORKER));
        assert_eq!(chaos.true_cluster_counts.len(), 5);
        assert!(chaos.true_cluster_counts.values().all(|&k| k == 3));
    }

    #[test]
    fn component_metrics_have_three_varying_families_and_a_constant() {
        for richness in [MetricRichness::Minimal, MetricRichness::Full] {
            let metrics = chaos_component_metrics(1.0, 100.0, 12, richness);
            let constants = metrics
                .iter()
                .filter(|m| matches!(m.behavior, MetricBehavior::Constant { .. }))
                .count();
            assert_eq!(constants, 1);
            let varying = metrics.len() - constants;
            assert!(varying >= 7);
            let mut names: Vec<&str> = metrics.iter().map(|m| m.name.as_str()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), before, "metric names unique");
        }
        assert!(
            chaos_component_metrics(1.0, 100.0, 12, MetricRichness::Full).len()
                > chaos_component_metrics(1.0, 100.0, 12, MetricRichness::Minimal).len()
        );
    }

    #[test]
    fn root_cause_fault_swaps_the_metric_names() {
        let chaos = chaos_app(MetricRichness::Minimal);
        let faulty = root_cause_fault(SVC_A).applied_to(&chaos.spec).unwrap();
        let comp = faulty.component(SVC_A).unwrap();
        assert!(comp.metrics.iter().all(|m| m.name != FAULT_REMOVED_METRIC));
        assert!(comp.metrics.iter().any(|m| m.name == FAULT_ADDED_METRIC));
        assert!(
            comp.capacity_per_instance < chaos.spec.component(SVC_A).unwrap().capacity_per_instance
        );
        // Innocent components are untouched.
        assert_eq!(
            faulty.component(DB).unwrap().metrics.len(),
            chaos.spec.component(DB).unwrap().metrics.len()
        );
        assert!(faulty.validate().is_ok());
    }
}
