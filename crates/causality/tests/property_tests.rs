//! Property-based tests for the statistical routines.

use proptest::prelude::*;
use sieve_causality::dist::{f_cdf, incomplete_beta, normal_cdf, t_cdf};
use sieve_causality::granger::{granger_causes, GrangerConfig};
use sieve_causality::linalg::{solve, Matrix};
use sieve_causality::ols;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incomplete_beta_is_monotone_and_bounded(
        a in 0.5f64..20.0,
        b in 0.5f64..20.0,
        x1 in 0.0f64..1.0,
        x2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if x1 < x2 { (x1, x2) } else { (x2, x1) };
        let vlo = incomplete_beta(a, b, lo);
        let vhi = incomplete_beta(a, b, hi);
        prop_assert!((0.0..=1.0).contains(&vlo));
        prop_assert!((0.0..=1.0).contains(&vhi));
        prop_assert!(vhi >= vlo - 1e-9);
    }

    #[test]
    fn f_cdf_is_a_probability(f in 0.0f64..100.0, d1 in 1.0f64..40.0, d2 in 1.0f64..40.0) {
        let v = f_cdf(f, d1, d2);
        prop_assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn t_cdf_symmetry(t in -20.0f64..20.0, df in 1.0f64..60.0) {
        let upper = t_cdf(t, df);
        let lower = t_cdf(-t, df);
        prop_assert!((upper + lower - 1.0).abs() < 1e-7);
    }

    #[test]
    fn normal_cdf_symmetry(z in -6.0f64..6.0) {
        prop_assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn solve_recovers_known_solution(
        coeffs in prop::collection::vec(-5.0f64..5.0, 3),
        perturb in prop::collection::vec(0.1f64..2.0, 3),
    ) {
        // Build a diagonally dominant (hence non-singular) matrix.
        let mut rows = Vec::new();
        for i in 0..3 {
            let mut row = vec![0.5; 3];
            row[i] = 5.0 + perturb[i];
            rows.push(row);
        }
        let a = Matrix::from_rows(&rows).unwrap();
        let b = a.matvec(&coeffs).unwrap();
        let x = solve(&a, &b).unwrap();
        for (xi, ci) in x.iter().zip(coeffs.iter()) {
            prop_assert!((xi - ci).abs() < 1e-8);
        }
    }

    #[test]
    fn ols_residuals_are_orthogonal_to_regressors(
        xs in prop::collection::vec(-10.0f64..10.0, 20..60),
        slope in -3.0f64..3.0,
    ) {
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| slope * x + ((i as f64) * 1.7).sin())
            .collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        if let Ok(fit) = ols::fit(&rows, &ys, true) {
            let dot: f64 = fit
                .residuals
                .iter()
                .zip(xs.iter())
                .map(|(r, x)| r * x)
                .sum();
            let scale = 1.0 + xs.iter().map(|v| v.abs()).fold(0.0, f64::max)
                * ys.iter().map(|v| v.abs()).fold(0.0, f64::max);
            prop_assert!(dot.abs() / scale < 1e-6, "dot {}", dot);
            prop_assert!(fit.rss >= 0.0);
            prop_assert!(fit.r_squared() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn granger_p_values_are_probabilities(
        seed in 0u64..500,
        n in 60usize..150,
    ) {
        let x: Vec<f64> = (0..n)
            .map(|i| ((i as f64) * 0.3 + seed as f64).sin() + ((i * 7 + seed as usize) % 13) as f64 * 0.05)
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| ((i as f64) * 0.21 + seed as f64 * 0.5).cos() + ((i * 11 + seed as usize) % 7) as f64 * 0.07)
            .collect();
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        prop_assert!((0.0..=1.0).contains(&r.p_value));
        prop_assert_eq!(r.causal, r.p_value < 0.05);
    }
}
