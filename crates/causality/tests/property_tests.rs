//! Randomized property tests for the statistical routines.
//!
//! The original suite used `proptest`; the build container has no registry
//! access, so the same properties are exercised with a deterministic
//! splitmix64 case generator — every run checks the identical set of
//! pseudo-random inputs, which also makes failures trivially reproducible.

use sieve_causality::dist::{f_cdf, incomplete_beta, normal_cdf, t_cdf};
use sieve_causality::engine::{granger_causes_prepared, PreparedGrangerSeries};
use sieve_causality::granger::{granger_causes, GrangerConfig, GrangerResult};
use sieve_causality::linalg::{solve, Matrix};
use sieve_causality::ols;

/// Deterministic splitmix64 generator for test data.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    fn vec_in(&mut self, lo: f64, hi: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.range(lo, hi)).collect()
    }
}

const CASES: u64 = 64;

#[test]
fn incomplete_beta_is_monotone_and_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = rng.range(0.5, 20.0);
        let b = rng.range(0.5, 20.0);
        let x1 = rng.unit();
        let x2 = rng.unit();
        let (lo, hi) = if x1 < x2 { (x1, x2) } else { (x2, x1) };
        let vlo = incomplete_beta(a, b, lo);
        let vhi = incomplete_beta(a, b, hi);
        assert!((0.0..=1.0).contains(&vlo), "seed {seed}");
        assert!((0.0..=1.0).contains(&vhi), "seed {seed}");
        assert!(vhi >= vlo - 1e-9, "seed {seed}");
    }
}

#[test]
fn f_cdf_is_a_probability() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let f = rng.range(0.0, 100.0);
        let d1 = rng.range(1.0, 40.0);
        let d2 = rng.range(1.0, 40.0);
        let v = f_cdf(f, d1, d2);
        assert!((0.0..=1.0).contains(&v), "seed {seed}");
    }
}

#[test]
fn t_cdf_symmetry() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let t = rng.range(-20.0, 20.0);
        let df = rng.range(1.0, 60.0);
        let upper = t_cdf(t, df);
        let lower = t_cdf(-t, df);
        assert!((upper + lower - 1.0).abs() < 1e-7, "seed {seed}");
    }
}

#[test]
fn normal_cdf_symmetry() {
    for seed in 0..CASES {
        let z = Rng::new(seed).range(-6.0, 6.0);
        assert!(
            (normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-6,
            "seed {seed}"
        );
    }
}

#[test]
fn solve_recovers_known_solution() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let coeffs = rng.vec_in(-5.0, 5.0, 3);
        let perturb = rng.vec_in(0.1, 2.0, 3);
        // Build a diagonally dominant (hence non-singular) matrix.
        let mut rows = Vec::new();
        for i in 0..3 {
            let mut row = vec![0.5; 3];
            row[i] = 5.0 + perturb[i];
            rows.push(row);
        }
        let a = Matrix::from_rows(&rows).unwrap();
        let b = a.matvec(&coeffs).unwrap();
        let x = solve(&a, &b).unwrap();
        for (xi, ci) in x.iter().zip(coeffs.iter()) {
            assert!((xi - ci).abs() < 1e-8, "seed {seed}");
        }
    }
}

#[test]
fn ols_residuals_are_orthogonal_to_regressors() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let len = rng.usize_in(20, 59);
        let xs = rng.vec_in(-10.0, 10.0, len);
        let slope = rng.range(-3.0, 3.0);
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| slope * x + ((i as f64) * 1.7).sin())
            .collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        if let Ok(fit) = ols::fit(&rows, &ys, true) {
            let dot: f64 = fit
                .residuals
                .iter()
                .zip(xs.iter())
                .map(|(r, x)| r * x)
                .sum();
            let scale = 1.0
                + xs.iter().map(|v| v.abs()).fold(0.0, f64::max)
                    * ys.iter().map(|v| v.abs()).fold(0.0, f64::max);
            assert!(dot.abs() / scale < 1e-6, "seed {seed}: dot {dot}");
            assert!(fit.rss >= 0.0, "seed {seed}");
            assert!(fit.r_squared() <= 1.0 + 1e-9, "seed {seed}");
        }
    }
}

/// A randomly shaped test series: a noisy sinusoid (stationary), a random
/// walk (non-stationary) or a drifting counter, so both the in-place and
/// the first-differenced Granger branches are exercised.
fn random_series(rng: &mut Rng, n: usize) -> Vec<f64> {
    match rng.next_u64() % 3 {
        0 => {
            let freq = rng.range(0.05, 0.9);
            let amp = rng.range(0.5, 20.0);
            (0..n)
                .map(|i| amp * (i as f64 * freq).sin() + rng.range(-0.5, 0.5))
                .collect()
        }
        1 => {
            let mut acc = rng.range(-5.0, 5.0);
            (0..n)
                .map(|_| {
                    acc += rng.range(-1.0, 1.0);
                    acc
                })
                .collect()
        }
        _ => {
            let mut acc = 0.0;
            let slope = rng.range(0.1, 3.0);
            (0..n)
                .map(|_| {
                    acc += slope + rng.range(0.0, 1.0);
                    acc
                })
                .collect()
        }
    }
}

fn assert_bitwise_equal(a: &GrangerResult, b: &GrangerResult, context: &str) {
    assert_eq!(a.causal, b.causal, "{context}");
    assert_eq!(a.p_value.to_bits(), b.p_value.to_bits(), "{context}");
    assert_eq!(
        a.f_statistic.to_bits(),
        b.f_statistic.to_bits(),
        "{context}"
    );
    assert_eq!(a.best_lag, b.best_lag, "{context}");
    assert_eq!(a.differenced, b.differenced, "{context}");
}

#[test]
fn prepared_engine_is_bitwise_identical_to_naive_granger() {
    for case in 0..CASES {
        let mut rng = Rng::new(case.wrapping_mul(0xA5A5_1234));
        let n = rng.usize_in(40, 220);
        let max_lag = rng.usize_in(1, 5);
        let x = random_series(&mut rng, n);
        let y = random_series(&mut rng, n);
        let config = GrangerConfig::default().with_max_lag(max_lag);

        let px = PreparedGrangerSeries::prepare(x.as_slice());
        let py = PreparedGrangerSeries::prepare(y.as_slice());
        for (naive, cached, dir) in [
            (
                granger_causes(&x, &y, &config),
                granger_causes_prepared(&px, &py, &config),
                "x->y",
            ),
            (
                granger_causes(&y, &x, &config),
                granger_causes_prepared(&py, &px, &config),
                "y->x",
            ),
        ] {
            match (naive, cached) {
                (Ok(a), Ok(b)) => {
                    assert_bitwise_equal(&a, &b, &format!("case {case} {dir} max_lag {max_lag}"))
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "case {case} {dir}"),
                (a, b) => panic!("case {case} {dir}: outcomes diverge: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn restricted_fit_memoization_is_hit_when_one_target_has_many_sources() {
    for case in 0..8u64 {
        let mut rng = Rng::new(case.wrapping_mul(0x517C_C1B7));
        let n = rng.usize_in(120, 260);
        let config = GrangerConfig::default();
        // A smooth stationary target, so every pairing lands on the same
        // (differenced = false, order) memo keys.
        let freq = rng.range(0.1, 0.6);
        let target: Vec<f64> = (0..n)
            .map(|i| 10.0 * (i as f64 * freq).sin() + rng.range(-0.5, 0.5))
            .collect();
        let pt = PreparedGrangerSeries::prepare(target.as_slice());

        let sources = 12;
        for _ in 0..sources {
            let sfreq = rng.range(0.05, 0.9);
            let source: Vec<f64> = (0..n)
                .map(|i| rng.range(0.5, 4.0) * (i as f64 * sfreq).cos() + rng.range(-0.5, 0.5))
                .collect();
            let ps = PreparedGrangerSeries::prepare(source.as_slice());
            let naive = granger_causes(&source, &target, &config).unwrap();
            let cached = granger_causes_prepared(&ps, &pt, &config).unwrap();
            assert_bitwise_equal(&naive, &cached, &format!("case {case}"));
        }
        // The naive path refits the restricted model once per source; the
        // engine computes at most one fit per distinct lag order.
        let computes = pt.restricted_fit_computations();
        assert!(computes >= 1, "case {case}: memo never filled");
        assert!(
            computes <= config.max_lag,
            "case {case}: {computes} restricted fits for {sources} sources"
        );
    }
}

#[test]
fn granger_p_values_are_probabilities() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let seed = rng.next_u64() % 500;
        let n = rng.usize_in(60, 149);
        let x: Vec<f64> = (0..n)
            .map(|i| {
                ((i as f64) * 0.3 + seed as f64).sin()
                    + ((i * 7 + seed as usize) % 13) as f64 * 0.05
            })
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                ((i as f64) * 0.21 + seed as f64 * 0.5).cos()
                    + ((i * 11 + seed as usize) % 7) as f64 * 0.07
            })
            .collect();
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!((0.0..=1.0).contains(&r.p_value), "case {case}");
        assert_eq!(r.causal, r.p_value < 0.05, "case {case}");
    }
}
