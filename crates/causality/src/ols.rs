//! Ordinary least squares regression.
//!
//! Sieve "built two linear models using the ordinary least-square method"
//! (§3.3) — the restricted and unrestricted models of the Granger test. This
//! module fits such models by solving the normal equations
//! `(X^T X) β = X^T y`.
//!
//! The fitting core works on a [`Design`]: one flat column-major buffer
//! holding the full design matrix, built without any per-row allocation and
//! reusable across fits (the Granger order-reduction loop resets the same
//! buffer for every candidate lag). The row-oriented [`fit`] entry point is
//! kept for callers that naturally produce observation rows (the ADF test)
//! and funnels into the same [`fit_design`] numerics.

use crate::linalg::{solve_with, Matrix, SolveScratch};
use crate::{CausalityError, Result};
use sieve_timeseries::stats;
use std::cell::RefCell;

/// The result of an OLS fit.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Estimated coefficients, in the column order of the design matrix
    /// (the intercept is the first coefficient when one was requested).
    pub coefficients: Vec<f64>,
    /// Fitted values `X β`.
    pub fitted: Vec<f64>,
    /// Residuals `y - X β`.
    pub residuals: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Total sum of squares of the centred response.
    pub tss: f64,
    /// Number of observations.
    pub n_observations: usize,
    /// Number of estimated parameters (including the intercept if present).
    pub n_parameters: usize,
}

impl OlsFit {
    /// Coefficient of determination R².
    ///
    /// Returns `1.0` when the response is constant and perfectly fitted,
    /// `0.0` when the response is constant but not fitted.
    pub fn r_squared(&self) -> f64 {
        if self.tss == 0.0 {
            return if self.rss < 1e-12 { 1.0 } else { 0.0 };
        }
        1.0 - self.rss / self.tss
    }

    /// Residual degrees of freedom, `n - k`.
    pub fn degrees_of_freedom(&self) -> usize {
        self.n_observations.saturating_sub(self.n_parameters)
    }

    /// Estimate of the residual variance `RSS / (n - k)`.
    pub fn residual_variance(&self) -> f64 {
        let df = self.degrees_of_freedom();
        if df == 0 {
            return 0.0;
        }
        self.rss / df as f64
    }
}

/// A design matrix stored as one flat column-major buffer.
///
/// Columns are appended with [`Design::push_intercept`] /
/// [`Design::push_column`]; no per-row `Vec` is ever allocated. The buffer
/// survives [`Design::reset`], so a loop that fits many designs of similar
/// size (the Granger order-reduction loop, the restricted/unrestricted pair
/// of one lag order) reuses a single allocation.
#[derive(Debug, Clone, Default)]
pub struct Design {
    n_rows: usize,
    /// Column-major storage: column `c` occupies
    /// `data[c * n_rows .. (c + 1) * n_rows]`.
    data: Vec<f64>,
}

impl Design {
    /// Creates an empty design with no backing allocation yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all columns and sets the observation count for the next fit,
    /// keeping the backing buffer.
    pub fn reset(&mut self, n_rows: usize) {
        self.n_rows = n_rows;
        self.data.clear();
    }

    /// Number of observations (rows).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns appended so far.
    pub fn n_cols(&self) -> usize {
        self.data.len().checked_div(self.n_rows).unwrap_or(0)
    }

    /// Appends a constant column of ones (the intercept).
    pub fn push_intercept(&mut self) {
        let len = self.data.len();
        self.data.resize(len + self.n_rows, 1.0);
    }

    /// Appends a regressor column.
    ///
    /// # Errors
    ///
    /// Returns [`CausalityError::DimensionMismatch`] when `column` does not
    /// have exactly [`Design::n_rows`] entries.
    pub fn push_column(&mut self, column: &[f64]) -> Result<()> {
        if column.len() != self.n_rows {
            return Err(CausalityError::DimensionMismatch {
                context: format!(
                    "column has {} entries, design has {} rows",
                    column.len(),
                    self.n_rows
                ),
            });
        }
        self.data.extend_from_slice(column);
        Ok(())
    }

    /// Appends a column produced element-wise by `f(row_index)`.
    pub fn push_column_with(&mut self, mut f: impl FnMut(usize) -> f64) {
        for t in 0..self.n_rows {
            self.data.push(f(t));
        }
    }

    /// The contiguous storage of column `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of bounds.
    pub fn column(&self, c: usize) -> &[f64] {
        &self.data[c * self.n_rows..(c + 1) * self.n_rows]
    }
}

/// Reusable per-thread workspace of [`fit_design`]: the normal-equations
/// matrix `X^T X`, the right-hand side `X^T y` and the solver's augmented
/// buffer. A Granger sweep fits two models per candidate lag per edge —
/// with the arena, the only allocations left per fit are the
/// fitted/residual/coefficient vectors that escape in the returned
/// [`OlsFit`].
#[derive(Debug, Clone, Default)]
struct FitScratch {
    xtx: Matrix,
    xty: Vec<f64>,
    solve: SolveScratch,
}

thread_local! {
    /// One scratch arena per thread: the parallel Granger stage runs one
    /// fitting loop per executor worker, and a thread-local keeps the arena
    /// out of every call signature (the public `fit_design` contract is
    /// unchanged). Reuse cannot change results — the arena is fully
    /// overwritten per fit, asserted bitwise by tests.
    static FIT_SCRATCH: RefCell<FitScratch> = RefCell::new(FitScratch::default());
}

/// Fits `y ~ design` by ordinary least squares on a flat column-major
/// design matrix. This is the single numeric core behind every OLS fit in
/// the crate — the cached and naive Granger paths, the ADF regressions and
/// [`fit_line`] all share it, so their float operations are identical.
///
/// The normal equations accumulate through the chunked
/// [`sieve_timeseries::stats::dot`] kernel (4-lane blocked summation, the
/// documented epsilon tier relative to the seed's sequential folds), and
/// all intermediate buffers come from a per-thread scratch arena.
///
/// # Errors
///
/// * [`CausalityError::LengthMismatch`] when `y` has a different length
///   than the design has rows.
/// * [`CausalityError::TooFewObservations`] when there are fewer
///   observations than parameters (or none at all).
/// * [`CausalityError::SingularMatrix`] when the design is collinear.
pub fn fit_design(design: &Design, y: &[f64]) -> Result<OlsFit> {
    let n = design.n_rows();
    let k = design.n_cols();
    if n != y.len() {
        return Err(CausalityError::LengthMismatch {
            left: n,
            right: y.len(),
        });
    }
    if n == 0 {
        return Err(CausalityError::TooFewObservations {
            required: 1,
            actual: 0,
        });
    }
    if n < k {
        return Err(CausalityError::TooFewObservations {
            required: k,
            actual: n,
        });
    }

    FIT_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        // Normal equations from column dot products: X^T X and X^T y fall
        // out of pairwise column products via the blocked dot kernel. X^T X
        // is symmetric, so only the upper triangle is computed and mirrored.
        let xtx = &mut scratch.xtx;
        xtx.reshape_zeroed(k, k);
        let xty = &mut scratch.xty;
        xty.clear();
        xty.resize(k, 0.0);
        for (i, xty_slot) in xty.iter_mut().enumerate() {
            let ci = design.column(i);
            for j in i..k {
                let dot = stats::dot(ci, design.column(j));
                xtx.set(i, j, dot);
                if i != j {
                    xtx.set(j, i, dot);
                }
            }
            *xty_slot = stats::dot(ci, y);
        }
        let beta = if k == 0 {
            Vec::new()
        } else {
            solve_with(xtx, xty, &mut scratch.solve)?
        };

        // Fitted values accumulate column contributions in column order —
        // the same association as a row-major `X β` product.
        let mut fitted = vec![0.0; n];
        for (c, b) in beta.iter().enumerate() {
            for (slot, v) in fitted.iter_mut().zip(design.column(c).iter()) {
                *slot += v * b;
            }
        }
        let residuals: Vec<f64> = y.iter().zip(fitted.iter()).map(|(a, b)| a - b).collect();
        let rss = stats::sum_of_squares(&residuals);
        let mean_y = stats::mean(y);
        let tss = stats::centered_sum_of_squares(y, mean_y);

        Ok(OlsFit {
            coefficients: beta,
            fitted,
            residuals,
            rss,
            tss,
            n_observations: n,
            n_parameters: k,
        })
    })
}

/// Fits `y ~ X` by ordinary least squares.
///
/// Each element of `rows` is one observation's regressor values; when
/// `intercept` is true a constant column is prepended. Internally the rows
/// are gathered into a flat [`Design`] and fitted by [`fit_design`].
///
/// # Errors
///
/// * [`CausalityError::LengthMismatch`] when `rows` and `y` differ in length.
/// * [`CausalityError::TooFewObservations`] when there are fewer observations
///   than parameters.
/// * [`CausalityError::DimensionMismatch`] when the rows are ragged.
/// * [`CausalityError::SingularMatrix`] when the design matrix is collinear.
pub fn fit(rows: &[Vec<f64>], y: &[f64], intercept: bool) -> Result<OlsFit> {
    if rows.len() != y.len() {
        return Err(CausalityError::LengthMismatch {
            left: rows.len(),
            right: y.len(),
        });
    }
    let n = rows.len();
    if n == 0 {
        return Err(CausalityError::TooFewObservations {
            required: 1,
            actual: 0,
        });
    }
    let base_cols = rows[0].len();
    let k = base_cols + usize::from(intercept);
    if n < k {
        return Err(CausalityError::TooFewObservations {
            required: k,
            actual: n,
        });
    }
    for (i, r) in rows.iter().enumerate() {
        if r.len() != base_cols {
            return Err(CausalityError::DimensionMismatch {
                context: format!("row {i} has {} columns, expected {base_cols}", r.len()),
            });
        }
    }

    let mut design = Design::new();
    design.reset(n);
    if intercept {
        design.push_intercept();
    }
    (0..base_cols).for_each(|c| design.push_column_with(|t| rows[t][c]));
    fit_design(&design, y)
}

/// Convenience helper: fits a univariate regression `y ~ a + b·x` and returns
/// `(a, b)`.
///
/// # Errors
///
/// Same as [`fit`].
pub fn fit_line(x: &[f64], y: &[f64]) -> Result<(f64, f64)> {
    let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
    let fitted = fit(&rows, y, true)?;
    Ok((fitted.coefficients[0], fitted.coefficients[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let (a, b) = fit_line(&x, &y).unwrap();
        assert!((a - 7.0).abs() < 1e-9);
        assert!((b - 3.0).abs() < 1e-9);
    }

    #[test]
    fn r_squared_is_one_for_perfect_fit_and_low_for_noise() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let y_perfect: Vec<f64> = x.iter().map(|v| 2.0 * v - 1.0).collect();
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let fit_perfect = fit(&rows, &y_perfect, true).unwrap();
        assert!(fit_perfect.r_squared() > 0.999999);

        // Deterministic "noise" unrelated to x.
        let y_noise: Vec<f64> = (0..100)
            .map(|i| ((i * 2654435761_usize) % 97) as f64)
            .collect();
        let fit_noise = fit(&rows, &y_noise, true).unwrap();
        assert!(fit_noise.r_squared() < 0.2);
    }

    #[test]
    fn multivariate_regression_recovers_coefficients() {
        // y = 1 + 2*x1 - 3*x2
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let x1 = (i as f64 * 0.37).sin() * 4.0;
            let x2 = (i as f64 * 0.11).cos() * 2.0 + i as f64 * 0.01;
            rows.push(vec![x1, x2]);
            y.push(1.0 + 2.0 * x1 - 3.0 * x2);
        }
        let f = fit(&rows, &y, true).unwrap();
        assert!((f.coefficients[0] - 1.0).abs() < 1e-7);
        assert!((f.coefficients[1] - 2.0).abs() < 1e-7);
        assert!((f.coefficients[2] + 3.0).abs() < 1e-7);
        assert!(f.rss < 1e-9);
        assert_eq!(f.n_parameters, 3);
        assert_eq!(f.degrees_of_freedom(), 57);
    }

    #[test]
    fn without_intercept_the_constant_column_is_absent() {
        let x: Vec<f64> = (1..30).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v).collect();
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let f = fit(&rows, &y, false).unwrap();
        assert_eq!(f.coefficients.len(), 1);
        assert!((f.coefficients[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(fit(&[], &[], true).is_err());
        assert!(fit(&[vec![1.0]], &[1.0, 2.0], true).is_err());
        // Two observations, three parameters.
        assert!(matches!(
            fit(&[vec![1.0, 2.0], vec![2.0, 3.0]], &[1.0, 2.0], true),
            Err(CausalityError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn collinear_regressors_are_singular() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(
            fit(&rows, &y, true).unwrap_err(),
            CausalityError::SingularMatrix
        );
    }

    #[test]
    fn design_fit_matches_row_fit_bitwise() {
        // The row-oriented entry point gathers into the same flat buffer,
        // so a hand-built column-major design must agree bit for bit.
        let n = 50;
        let x1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
        let x2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).cos() * 2.0).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 0.5 + 1.2 * x1[i] - 0.7 * x2[i] + (i as f64 * 0.9).sin() * 0.1)
            .collect();
        let rows: Vec<Vec<f64>> = x1
            .iter()
            .zip(x2.iter())
            .map(|(&a, &b)| vec![a, b])
            .collect();
        let via_rows = fit(&rows, &y, true).unwrap();

        let mut design = Design::new();
        design.reset(n);
        design.push_intercept();
        design.push_column(&x1).unwrap();
        design.push_column(&x2).unwrap();
        assert_eq!(design.n_rows(), n);
        assert_eq!(design.n_cols(), 3);
        let via_design = fit_design(&design, &y).unwrap();

        assert_eq!(via_rows.n_parameters, via_design.n_parameters);
        for (a, b) in via_rows
            .coefficients
            .iter()
            .zip(via_design.coefficients.iter())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(via_rows.rss.to_bits(), via_design.rss.to_bits());
        assert_eq!(via_rows.tss.to_bits(), via_design.tss.to_bits());
    }

    #[test]
    fn scratch_reuse_never_changes_results() {
        // The thread-local arena is fully overwritten per fit: fitting A,
        // then B, then A again must reproduce A's result bit for bit.
        let n = 60;
        let xa: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).sin()).collect();
        let xb: Vec<f64> = (0..n).map(|i| (i as f64 * 0.71).cos() * 3.0).collect();
        let ya: Vec<f64> = (0..n)
            .map(|i| 2.0 * xa[i] + 0.1 * (i as f64).sin())
            .collect();
        let yb: Vec<f64> = (0..n)
            .map(|i| -0.5 * xb[i] + (i as f64 * 0.05).cos())
            .collect();

        let mut design = Design::new();
        design.reset(n);
        design.push_intercept();
        design.push_column(&xa).unwrap();
        let first = fit_design(&design, &ya).unwrap();

        let mut other = Design::new();
        other.reset(n);
        other.push_intercept();
        other.push_column(&xb).unwrap();
        other.push_column(&xa).unwrap();
        let _ = fit_design(&other, &yb).unwrap();

        let again = fit_design(&design, &ya).unwrap();
        for (a, b) in first.coefficients.iter().zip(again.coefficients.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(first.rss.to_bits(), again.rss.to_bits());
        assert_eq!(first.tss.to_bits(), again.tss.to_bits());
    }

    #[test]
    fn blocked_accumulation_matches_sequential_oracle_within_epsilon() {
        // Epsilon tier: the normal equations accumulate through the 4-lane
        // blocked dot kernel; the seed's strict sequential folds are the
        // oracle.
        let n = 127;
        let x1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin() * 2.0).collect();
        let x2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).cos() + 0.2).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 1.0 + 0.8 * x1[i] - 1.7 * x2[i] + (i as f64 * 0.47).sin() * 0.3)
            .collect();
        let mut design = Design::new();
        design.reset(n);
        design.push_intercept();
        design.push_column(&x1).unwrap();
        design.push_column(&x2).unwrap();
        let blocked = fit_design(&design, &y).unwrap();

        // Sequential normal equations + the crate solver, as the seed did.
        let k = design.n_cols();
        let mut xtx = Matrix::zeros(k, k);
        let mut xty = vec![0.0; k];
        for (i, target) in xty.iter_mut().enumerate() {
            let ci = design.column(i);
            for j in i..k {
                let cj = design.column(j);
                let dot = ci
                    .iter()
                    .zip(cj.iter())
                    .fold(0.0, |acc, (a, b)| acc + a * b);
                xtx.set(i, j, dot);
                xtx.set(j, i, dot);
            }
            *target = ci.iter().zip(y.iter()).fold(0.0, |acc, (a, b)| acc + a * b);
        }
        let beta = crate::linalg::solve(&xtx, &xty).unwrap();
        for (b, o) in blocked.coefficients.iter().zip(beta.iter()) {
            assert!(
                (b - o).abs() <= 1e-9 * 1.0_f64.max(o.abs()),
                "blocked {b} vs sequential {o}"
            );
        }
    }

    #[test]
    fn design_is_reusable_across_resets() {
        let mut design = Design::new();
        design.reset(3);
        design.push_intercept();
        design.push_column(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(design.n_cols(), 2);
        assert_eq!(design.column(1), &[1.0, 2.0, 3.0]);
        design.reset(2);
        assert_eq!(design.n_cols(), 0);
        design.push_column(&[5.0, 6.0]).unwrap();
        assert_eq!(design.column(0), &[5.0, 6.0]);
        // Wrong-length columns are rejected.
        assert!(design.push_column(&[1.0, 2.0, 3.0]).is_err());
        // Empty designs report zero columns.
        assert_eq!(Design::new().n_cols(), 0);
    }

    #[test]
    fn fit_design_rejects_bad_shapes() {
        let mut design = Design::new();
        design.reset(2);
        design.push_intercept();
        assert!(matches!(
            fit_design(&design, &[1.0, 2.0, 3.0]),
            Err(CausalityError::LengthMismatch { .. })
        ));
        design.reset(0);
        assert!(matches!(
            fit_design(&design, &[]),
            Err(CausalityError::TooFewObservations { .. })
        ));
        // Two observations, three parameters.
        design.reset(2);
        design.push_intercept();
        design.push_column(&[1.0, 2.0]).unwrap();
        design.push_column(&[2.0, 5.0]).unwrap();
        assert!(matches!(
            fit_design(&design, &[1.0, 2.0]),
            Err(CausalityError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn residuals_sum_to_zero_with_intercept() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i as f64 * 0.3).sin()]).collect();
        let y: Vec<f64> = (0..40).map(|i| (i as f64 * 0.21).cos() + 0.5).collect();
        let f = fit(&rows, &y, true).unwrap();
        let sum: f64 = f.residuals.iter().sum();
        assert!(sum.abs() < 1e-8);
    }
}
