//! Ordinary least squares regression.
//!
//! Sieve "built two linear models using the ordinary least-square method"
//! (§3.3) — the restricted and unrestricted models of the Granger test. This
//! module fits such models by solving the normal equations
//! `(X^T X) β = X^T y`.

use crate::linalg::{solve, Matrix};
use crate::{CausalityError, Result};

/// The result of an OLS fit.
#[derive(Debug, Clone, PartialEq)]
pub struct OlsFit {
    /// Estimated coefficients, in the column order of the design matrix
    /// (the intercept is the first coefficient when one was requested).
    pub coefficients: Vec<f64>,
    /// Fitted values `X β`.
    pub fitted: Vec<f64>,
    /// Residuals `y - X β`.
    pub residuals: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Total sum of squares of the centred response.
    pub tss: f64,
    /// Number of observations.
    pub n_observations: usize,
    /// Number of estimated parameters (including the intercept if present).
    pub n_parameters: usize,
}

impl OlsFit {
    /// Coefficient of determination R².
    ///
    /// Returns `1.0` when the response is constant and perfectly fitted,
    /// `0.0` when the response is constant but not fitted.
    pub fn r_squared(&self) -> f64 {
        if self.tss == 0.0 {
            return if self.rss < 1e-12 { 1.0 } else { 0.0 };
        }
        1.0 - self.rss / self.tss
    }

    /// Residual degrees of freedom, `n - k`.
    pub fn degrees_of_freedom(&self) -> usize {
        self.n_observations.saturating_sub(self.n_parameters)
    }

    /// Estimate of the residual variance `RSS / (n - k)`.
    pub fn residual_variance(&self) -> f64 {
        let df = self.degrees_of_freedom();
        if df == 0 {
            return 0.0;
        }
        self.rss / df as f64
    }
}

/// Fits `y ~ X` by ordinary least squares.
///
/// Each element of `rows` is one observation's regressor values; when
/// `intercept` is true a constant column is prepended.
///
/// # Errors
///
/// * [`CausalityError::LengthMismatch`] when `rows` and `y` differ in length.
/// * [`CausalityError::TooFewObservations`] when there are fewer observations
///   than parameters.
/// * [`CausalityError::SingularMatrix`] when the design matrix is collinear.
pub fn fit(rows: &[Vec<f64>], y: &[f64], intercept: bool) -> Result<OlsFit> {
    if rows.len() != y.len() {
        return Err(CausalityError::LengthMismatch {
            left: rows.len(),
            right: y.len(),
        });
    }
    let n = rows.len();
    if n == 0 {
        return Err(CausalityError::TooFewObservations {
            required: 1,
            actual: 0,
        });
    }
    let base_cols = rows[0].len();
    let k = base_cols + usize::from(intercept);
    if n < k {
        return Err(CausalityError::TooFewObservations {
            required: k,
            actual: n,
        });
    }

    let design: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            let mut row = Vec::with_capacity(k);
            if intercept {
                row.push(1.0);
            }
            row.extend_from_slice(r);
            row
        })
        .collect();
    let x = Matrix::from_rows(&design)?;
    let xt = x.transpose();
    let xtx = xt.matmul(&x)?;
    let xty = xt.matvec(y)?;
    let beta = solve(&xtx, &xty)?;

    let fitted = x.matvec(&beta)?;
    let residuals: Vec<f64> = y.iter().zip(fitted.iter()).map(|(a, b)| a - b).collect();
    let rss: f64 = residuals.iter().map(|r| r * r).sum();
    let mean_y: f64 = y.iter().sum::<f64>() / n as f64;
    let tss: f64 = y.iter().map(|v| (v - mean_y).powi(2)).sum();

    Ok(OlsFit {
        coefficients: beta,
        fitted,
        residuals,
        rss,
        tss,
        n_observations: n,
        n_parameters: k,
    })
}

/// Convenience helper: fits a univariate regression `y ~ a + b·x` and returns
/// `(a, b)`.
///
/// # Errors
///
/// Same as [`fit`].
pub fn fit_line(x: &[f64], y: &[f64]) -> Result<(f64, f64)> {
    let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
    let fitted = fit(&rows, y, true)?;
    Ok((fitted.coefficients[0], fitted.coefficients[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let (a, b) = fit_line(&x, &y).unwrap();
        assert!((a - 7.0).abs() < 1e-9);
        assert!((b - 3.0).abs() < 1e-9);
    }

    #[test]
    fn r_squared_is_one_for_perfect_fit_and_low_for_noise() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let y_perfect: Vec<f64> = x.iter().map(|v| 2.0 * v - 1.0).collect();
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let fit_perfect = fit(&rows, &y_perfect, true).unwrap();
        assert!(fit_perfect.r_squared() > 0.999999);

        // Deterministic "noise" unrelated to x.
        let y_noise: Vec<f64> = (0..100)
            .map(|i| ((i * 2654435761_usize) % 97) as f64)
            .collect();
        let fit_noise = fit(&rows, &y_noise, true).unwrap();
        assert!(fit_noise.r_squared() < 0.2);
    }

    #[test]
    fn multivariate_regression_recovers_coefficients() {
        // y = 1 + 2*x1 - 3*x2
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let x1 = (i as f64 * 0.37).sin() * 4.0;
            let x2 = (i as f64 * 0.11).cos() * 2.0 + i as f64 * 0.01;
            rows.push(vec![x1, x2]);
            y.push(1.0 + 2.0 * x1 - 3.0 * x2);
        }
        let f = fit(&rows, &y, true).unwrap();
        assert!((f.coefficients[0] - 1.0).abs() < 1e-7);
        assert!((f.coefficients[1] - 2.0).abs() < 1e-7);
        assert!((f.coefficients[2] + 3.0).abs() < 1e-7);
        assert!(f.rss < 1e-9);
        assert_eq!(f.n_parameters, 3);
        assert_eq!(f.degrees_of_freedom(), 57);
    }

    #[test]
    fn without_intercept_the_constant_column_is_absent() {
        let x: Vec<f64> = (1..30).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v).collect();
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let f = fit(&rows, &y, false).unwrap();
        assert_eq!(f.coefficients.len(), 1);
        assert!((f.coefficients[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(fit(&[], &[], true).is_err());
        assert!(fit(&[vec![1.0]], &[1.0, 2.0], true).is_err());
        // Two observations, three parameters.
        assert!(matches!(
            fit(&[vec![1.0, 2.0], vec![2.0, 3.0]], &[1.0, 2.0], true),
            Err(CausalityError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn collinear_regressors_are_singular() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| i as f64).collect();
        assert_eq!(
            fit(&rows, &y, true).unwrap_err(),
            CausalityError::SingularMatrix
        );
    }

    #[test]
    fn residuals_sum_to_zero_with_intercept() {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i as f64 * 0.3).sin()]).collect();
        let y: Vec<f64> = (0..40).map(|i| (i as f64 * 0.21).cos() + 0.5).collect();
        let f = fit(&rows, &y, true).unwrap();
        let sum: f64 = f.residuals.iter().sum();
        assert!(sum.abs() < 1e-8);
    }
}
