use std::fmt;

/// Errors produced by the statistical routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CausalityError {
    /// The operation needs more observations than were provided.
    TooFewObservations {
        /// Observations required.
        required: usize,
        /// Observations available.
        actual: usize,
    },
    /// Two series were expected to have equal length.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// The regression design matrix is singular (collinear regressors or a
    /// constant series).
    SingularMatrix,
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the violation.
        reason: String,
    },
    /// Matrix dimensions do not allow the requested operation.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
}

impl fmt::Display for CausalityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CausalityError::TooFewObservations { required, actual } => {
                write!(f, "too few observations: required {required}, got {actual}")
            }
            CausalityError::LengthMismatch { left, right } => {
                write!(f, "series length mismatch: {left} vs {right}")
            }
            CausalityError::SingularMatrix => write!(f, "design matrix is singular"),
            CausalityError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CausalityError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
        }
    }
}

impl std::error::Error for CausalityError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = vec![
            CausalityError::TooFewObservations {
                required: 10,
                actual: 1,
            },
            CausalityError::LengthMismatch { left: 3, right: 4 },
            CausalityError::SingularMatrix,
            CausalityError::InvalidParameter {
                name: "lag",
                reason: "must be positive".into(),
            },
            CausalityError::DimensionMismatch {
                context: "3x2 * 4x4".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_bounds<E: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CausalityError>();
    }
}
