//! Augmented Dickey-Fuller (ADF) unit-root test.
//!
//! "the F-test might find spurious regressions when non-stationary time
//! series are included. Non-stationary time series (e.g., monotonically
//! increasing counters for CPU and network interfaces) can be found using the
//! Augmented Dickey-Fuller test. For these time series, the first difference
//! is taken and then used in the Granger Causality tests." (§3.3)
//!
//! The test regresses `Δy_t` on `y_{t-1}`, a constant and `p` lagged
//! differences, and compares the t-statistic of the `y_{t-1}` coefficient
//! against MacKinnon's critical values for the constant-only specification.

use crate::ols;
use crate::{CausalityError, Result};
use sieve_timeseries::diff::first_difference;

/// MacKinnon approximate critical values of the ADF t-statistic for the
/// model with a constant (no trend), asymptotic (large-n) case.
pub const CRITICAL_1PCT: f64 = -3.43;
/// 5% critical value (constant, no trend).
pub const CRITICAL_5PCT: f64 = -2.86;
/// 10% critical value (constant, no trend).
pub const CRITICAL_10PCT: f64 = -2.57;

/// Significance levels at which the unit-root null can be assessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignificanceLevel {
    /// 1% level.
    OnePercent,
    /// 5% level (Sieve's default).
    FivePercent,
    /// 10% level.
    TenPercent,
}

impl SignificanceLevel {
    /// The critical t-value for this level.
    pub fn critical_value(self) -> f64 {
        match self {
            SignificanceLevel::OnePercent => CRITICAL_1PCT,
            SignificanceLevel::FivePercent => CRITICAL_5PCT,
            SignificanceLevel::TenPercent => CRITICAL_10PCT,
        }
    }
}

/// Outcome of an ADF test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdfResult {
    /// The ADF t-statistic of the lagged-level coefficient.
    pub statistic: f64,
    /// Number of lagged difference terms included.
    pub lags: usize,
    /// Number of observations used in the regression.
    pub n_observations: usize,
}

impl AdfResult {
    /// Whether the unit-root null hypothesis is rejected (i.e. the series is
    /// considered stationary) at the given significance level.
    pub fn is_stationary(&self, level: SignificanceLevel) -> bool {
        self.statistic < level.critical_value()
    }
}

/// Default number of lagged differences, Schwert's rule of thumb
/// `floor(12 * (n/100)^0.25)` capped to keep enough observations.
pub fn default_lag_order(n: usize) -> usize {
    if n < 10 {
        return 0;
    }
    let schwert = (12.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize;
    schwert.min(n / 3)
}

/// Runs the ADF test with `lags` lagged difference terms and a constant.
///
/// # Errors
///
/// * [`CausalityError::TooFewObservations`] when the series is too short for
///   the requested lag order.
/// * [`CausalityError::SingularMatrix`] when the regression is degenerate
///   (e.g. a constant series).
pub fn adf_test(series: &[f64], lags: usize) -> Result<AdfResult> {
    let n = series.len();
    // Need at least lags + a handful of usable rows and more rows than
    // parameters (constant + level + lags).
    let min_obs = lags + 8;
    if n < min_obs {
        return Err(CausalityError::TooFewObservations {
            required: min_obs,
            actual: n,
        });
    }

    let dy = first_difference(series);
    // Regression rows: for t in (lags+1)..n (index into the original series),
    //   dy[t-1] = alpha + gamma * y[t-1] + sum_j beta_j * dy[t-1-j] + e
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut targets: Vec<f64> = Vec::new();
    for t in (lags + 1)..n {
        let mut row = Vec::with_capacity(1 + lags);
        row.push(series[t - 1]);
        for j in 1..=lags {
            row.push(dy[t - 1 - j]);
        }
        rows.push(row);
        targets.push(dy[t - 1]);
    }

    let fit = ols::fit(&rows, &targets, true)?;
    // The coefficient of y_{t-1} is at index 1 (after the intercept).
    let gamma = fit.coefficients[1];

    // Standard error of gamma: sqrt(residual_variance * [(X'X)^{-1}]_{11}).
    // We obtain the diagonal entry by solving (X'X) e_1 = unit vector.
    let se = standard_error(&rows, &fit, 1)?;
    if se == 0.0 {
        return Err(CausalityError::SingularMatrix);
    }
    Ok(AdfResult {
        statistic: gamma / se,
        lags,
        n_observations: targets.len(),
    })
}

/// Runs the ADF test with an automatically chosen lag order.
///
/// # Errors
///
/// Same as [`adf_test`]; very short series fall back to lag order 0.
pub fn adf_test_auto(series: &[f64]) -> Result<AdfResult> {
    let lags = default_lag_order(series.len());
    // If the series is too short for the Schwert order, retry with fewer lags.
    let mut order = lags;
    loop {
        match adf_test(series, order) {
            Ok(r) => return Ok(r),
            // Not enough data or a collinear lag structure at this order:
            // retry with a smaller one (deterministic signals such as pure
            // sinusoids satisfy exact linear recurrences that make high-order
            // designs singular).
            Err(CausalityError::TooFewObservations { .. })
            | Err(CausalityError::SingularMatrix)
                if order > 0 =>
            {
                order /= 2;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Convenience helper: whether `series` is stationary at the 5% level. A
/// series that is too short or degenerate (constant) is reported as
/// non-stationary, matching Sieve's conservative first-difference fallback.
pub fn is_stationary(series: &[f64]) -> bool {
    match adf_test_auto(series) {
        Ok(r) => r.is_stationary(SignificanceLevel::FivePercent),
        Err(_) => false,
    }
}

/// Computes the standard error of the coefficient at `index` in the design
/// produced from `rows` (with intercept prepended as column 0).
fn standard_error(rows: &[Vec<f64>], fit: &ols::OlsFit, index: usize) -> Result<f64> {
    use crate::linalg::{solve, Matrix};
    let k = fit.n_parameters;
    // Rebuild X'X for the design with intercept.
    let design: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| {
            let mut row = Vec::with_capacity(k);
            row.push(1.0);
            row.extend_from_slice(r);
            row
        })
        .collect();
    let x = Matrix::from_rows(&design)?;
    let xtx = x.transpose().matmul(&x)?;
    // Solve X'X * col = e_index to get the column of the inverse.
    let mut unit = vec![0.0; k];
    unit[index] = 1.0;
    let col = solve(&xtx, &unit)?;
    let var = fit.residual_variance() * col[index];
    Ok(var.max(0.0).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(i: usize, seed: u64) -> f64 {
        // Mix index and seed with different multipliers so nearby seeds do
        // not produce shifted copies of the same stream.
        let mut s =
            (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ seed.wrapping_mul(0xD1B54A32D192ED03);
        s ^= s >> 33;
        s = s.wrapping_mul(0xff51afd7ed558ccd);
        s ^= s >> 29;
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }

    #[test]
    fn stationary_ar1_is_detected() {
        // y_t = 0.3 y_{t-1} + e_t is clearly stationary.
        let mut y = vec![0.0];
        for i in 1..400 {
            let prev = y[i - 1];
            y.push(0.3 * prev + noise(i, 42));
        }
        let r = adf_test(&y, 2).unwrap();
        assert!(
            r.is_stationary(SignificanceLevel::FivePercent),
            "statistic {}",
            r.statistic
        );
    }

    #[test]
    fn random_walk_is_not_stationary() {
        // y_t = y_{t-1} + e_t is a unit-root process.
        let mut y = vec![0.0];
        for i in 1..400 {
            let prev = y[i - 1];
            y.push(prev + noise(i, 7));
        }
        let r = adf_test(&y, 2).unwrap();
        assert!(
            !r.is_stationary(SignificanceLevel::FivePercent),
            "statistic {}",
            r.statistic
        );
    }

    #[test]
    fn monotone_counter_is_not_stationary() {
        // A CPU-seconds style counter: strictly increasing with jitter.
        let mut y = Vec::new();
        let mut acc = 0.0;
        for i in 0..300 {
            acc += 1.0 + 0.3 * noise(i, 11).abs();
            y.push(acc);
        }
        assert!(!is_stationary(&y));
        // Its first difference is stationary.
        let dy = first_difference(&y);
        assert!(is_stationary(&dy));
    }

    #[test]
    fn oscillating_metric_is_stationary() {
        let y: Vec<f64> = (0..300)
            .map(|i| (i as f64 * 0.7).sin() + 0.2 * noise(i, 3))
            .collect();
        assert!(is_stationary(&y));
    }

    #[test]
    fn constant_series_is_reported_non_stationary_without_panicking() {
        let y = vec![5.0; 100];
        // The regression is singular; is_stationary falls back to `false`.
        assert!(!is_stationary(&y));
    }

    #[test]
    fn too_short_series_is_an_error() {
        assert!(matches!(
            adf_test(&[1.0, 2.0, 3.0], 1),
            Err(CausalityError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn default_lag_order_grows_slowly_with_n() {
        assert_eq!(default_lag_order(5), 0);
        assert!(default_lag_order(100) >= 10 && default_lag_order(100) <= 12);
        assert!(default_lag_order(1000) > default_lag_order(100));
        // Never uses more than a third of the data.
        assert!(default_lag_order(30) <= 10);
    }

    #[test]
    fn significance_levels_are_ordered() {
        assert!(
            SignificanceLevel::OnePercent.critical_value()
                < SignificanceLevel::FivePercent.critical_value()
        );
        assert!(
            SignificanceLevel::FivePercent.critical_value()
                < SignificanceLevel::TenPercent.critical_value()
        );
    }

    #[test]
    fn auto_lag_handles_short_series() {
        let y: Vec<f64> = (0..20).map(|i| (i as f64 * 0.9).sin()).collect();
        let r = adf_test_auto(&y).unwrap();
        assert!(r.n_observations > 0);
    }
}
