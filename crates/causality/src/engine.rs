//! The shared Granger-causality engine: per-series prepared state.
//!
//! Sieve's dependency-identification stage (§3.3) tests every representative
//! metric of a caller against every representative of its callees, in both
//! directions. A naive [`crate::granger::granger_causes`] call re-derives
//! three per-*series* quantities for every *pair*:
//!
//! * the ADF stationarity verdict of each input,
//! * the first-differenced buffer (for non-stationary inputs), and
//! * the **restricted** AR fit `y ~ const + y-lags`, which depends only on
//!   the target series and the lag order.
//!
//! With `R` representatives wired to a series through the call graph, each
//! of those is recomputed `O(R)` times. A [`PreparedGrangerSeries`] computes
//! the stationarity verdict and variance once up front (so a batch of
//! preparations can run through a parallel executor), materialises the
//! differenced buffer lazily as an `Arc<[f64]>`, and memoizes restricted
//! fits keyed by `(differenced, lag-order)`.
//!
//! [`granger_causes_prepared`] is **bit-identical** to
//! [`crate::granger::granger_causes`]: both funnel through the same flat
//! column-major [`Design`] fits, the same F-test and the same lag-order
//! reduction loop; the prepared path merely serves the per-series pieces
//! from the cache. The pipeline's cached/naive model-equality tests rely on
//! this.

use crate::adf::is_stationary;
use crate::ftest::{f_test, FTestResult};
use crate::granger::{
    fit_restricted, fit_unrestricted, strongest_lag, validate_inputs, GrangerConfig, GrangerResult,
};
use crate::ols::{Design, OlsFit};
use crate::{CausalityError, Result};
use sieve_timeseries::diff::first_difference;
use sieve_timeseries::stats::variance;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Memoized restricted fits, keyed by `(differenced, lag order)`.
type RestrictedMemo = HashMap<(bool, usize), Result<Arc<OlsFit>>>;

/// Per-series state shared by every Granger test the series participates in.
///
/// The struct is `Sync`: one prepared instance can back many concurrent
/// per-edge tests (the pipeline shares them across executor workers). All
/// cached values are deterministic functions of the series, so whichever
/// thread fills a cache slot first produces the same bits any other thread
/// would have.
#[derive(Debug)]
pub struct PreparedGrangerSeries {
    /// The raw series, shared with the pipeline's prepared buffers.
    values: Arc<[f64]>,
    /// `variance(values)`, computed once at preparation time.
    variance: f64,
    /// The ADF stationarity verdict of the raw series, computed once at
    /// preparation time (eagerly, so batches of preparations parallelise).
    stationary: bool,
    /// Lazily computed first-differenced buffer and its variance.
    diff: OnceLock<(Arc<[f64]>, f64)>,
    /// Memoized restricted AR fits keyed by `(differenced, lag order)`.
    /// Failed fits are memoized too: the order-reduction loop must observe
    /// the same error on every pairing.
    restricted: Mutex<RestrictedMemo>,
    /// Number of restricted fits actually computed (not served from the
    /// memo) — instrumentation for the memoization tests.
    restricted_computes: AtomicUsize,
}

impl PreparedGrangerSeries {
    /// Prepares a series: takes (or shares) the buffer, computes its
    /// variance and runs the ADF stationarity test once.
    pub fn prepare(values: impl Into<Arc<[f64]>>) -> Self {
        let values = values.into();
        let variance = variance(&values);
        let stationary = is_stationary(&values);
        Self {
            values,
            variance,
            stationary,
            diff: OnceLock::new(),
            restricted: Mutex::new(HashMap::new()),
            restricted_computes: AtomicUsize::new(0),
        }
    }

    /// The raw series values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Population variance of the raw series (cached).
    pub fn variance(&self) -> f64 {
        self.variance
    }

    /// The cached ADF verdict: whether the raw series is stationary at the
    /// 5% level (short or degenerate series report `false`, matching
    /// [`crate::adf::is_stationary`]).
    pub fn is_stationary(&self) -> bool {
        self.stationary
    }

    /// The first-differenced series and its variance, computed on first use
    /// and cached for every later test.
    pub fn differenced(&self) -> (&[f64], f64) {
        let (buffer, var) = self.diff.get_or_init(|| {
            let d = first_difference(&self.values);
            let v = variance(&d);
            (d.into(), v)
        });
        (buffer, *var)
    }

    /// How many restricted fits were actually computed (cache misses). A
    /// target paired against `R` sources at one effective lag order reports
    /// 1, not `R`.
    pub fn restricted_fit_computations(&self) -> usize {
        self.restricted_computes.load(Ordering::Relaxed)
    }

    /// The memoized restricted fit of this series as the *target* of a
    /// Granger test: `s_t ~ const + s_{t-1..t-lag}` on the raw
    /// (`differenced == false`) or first-differenced series.
    fn restricted_fit(&self, differenced: bool, lag: usize) -> Result<Arc<OlsFit>> {
        let mut memo = self
            .restricted
            .lock()
            .expect("restricted-fit memo poisoned");
        memo.entry((differenced, lag))
            .or_insert_with(|| {
                self.restricted_computes.fetch_add(1, Ordering::Relaxed);
                let series: &[f64] = if differenced {
                    self.differenced().0
                } else {
                    &self.values
                };
                let mut design = Design::new();
                fit_restricted(&mut design, series, lag).map(Arc::new)
            })
            .clone()
    }
}

/// Tests whether `x` Granger-causes `y` using prepared per-series state.
///
/// Bit-identical to [`crate::granger::granger_causes`] on the same raw
/// series — only the caching policy differs, never the mechanism.
///
/// # Errors
///
/// Same as [`crate::granger::granger_causes`].
pub fn granger_causes_prepared(
    x: &PreparedGrangerSeries,
    y: &PreparedGrangerSeries,
    config: &GrangerConfig,
) -> Result<GrangerResult> {
    validate_inputs(x.len(), y.len(), config)?;

    // Constant series can never carry predictive information.
    if x.variance() < 1e-12 || y.variance() < 1e-12 {
        return Ok(GrangerResult::not_causal(false));
    }

    // Cached ADF verdicts replace the two per-pair ADF runs; the cached
    // differenced buffers (with their variances) replace the per-pair
    // `first_difference` allocations and variance re-checks.
    let differenced =
        config.difference_non_stationary && (!x.is_stationary() || !y.is_stationary());
    let (xs, ys) = if differenced {
        let (dx, vx) = x.differenced();
        let (dy, vy) = y.differenced();
        if vx < 1e-12 || vy < 1e-12 {
            return Ok(GrangerResult::not_causal(true));
        }
        (dx, dy)
    } else {
        (x.values(), y.values())
    };

    // Same order-reduction loop as the direct path; the restricted fit at
    // each candidate order comes from the target's memo.
    let mut scratch = Design::new();
    let mut order = config.max_lag;
    let test = loop {
        match test_at_lag_memoized(xs, ys, order, y, differenced, &mut scratch) {
            Ok(result) => break Some(result),
            Err(CausalityError::SingularMatrix)
            | Err(CausalityError::TooFewObservations { .. })
                if order > 1 =>
            {
                order -= 1;
            }
            Err(CausalityError::SingularMatrix)
            | Err(CausalityError::TooFewObservations { .. }) => break None,
            Err(e) => return Err(e),
        }
    };

    match test {
        Some(result) => {
            let causal = result.p_value < config.significance;
            let best_lag = if causal {
                strongest_lag(xs, ys, order)
            } else {
                0
            };
            Ok(GrangerResult {
                causal,
                p_value: result.p_value,
                f_statistic: result.f_statistic,
                best_lag,
                differenced,
            })
        }
        None => Ok(GrangerResult::not_causal(differenced)),
    }
}

/// Tests both directions on prepared state, `(x_causes_y, y_causes_x)` —
/// the engine-backed counterpart of
/// [`crate::granger::granger_bidirectional`].
///
/// # Errors
///
/// Same as [`granger_causes_prepared`].
pub fn granger_bidirectional_prepared(
    x: &PreparedGrangerSeries,
    y: &PreparedGrangerSeries,
    config: &GrangerConfig,
) -> Result<(GrangerResult, GrangerResult)> {
    Ok((
        granger_causes_prepared(x, y, config)?,
        granger_causes_prepared(y, x, config)?,
    ))
}

/// The restricted/unrestricted comparison at a fixed lag order, with the
/// restricted fit served from the target's memo. Mirrors the direct
/// `test_at_lag` exactly — including the observation check that drives the
/// order-reduction loop.
fn test_at_lag_memoized(
    xs: &[f64],
    ys: &[f64],
    lag: usize,
    target: &PreparedGrangerSeries,
    differenced: bool,
    scratch: &mut Design,
) -> Result<FTestResult> {
    let n = ys.len();
    if n <= lag * 2 + 2 {
        return Err(CausalityError::TooFewObservations {
            required: lag * 2 + 3,
            actual: n,
        });
    }
    let restricted = target.restricted_fit(differenced, lag)?;
    let unrestricted = fit_unrestricted(scratch, xs, ys, lag)?;
    f_test(&restricted, &unrestricted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::granger::granger_causes;

    fn noise(i: usize, seed: u64) -> f64 {
        let mut s =
            (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ seed.wrapping_mul(0xD1B54A32D192ED03);
        s ^= s >> 33;
        s = s.wrapping_mul(0xff51afd7ed558ccd);
        s ^= s >> 29;
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }

    fn driven_pair(n: usize, lag: usize, gain: f64) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.3 * noise(i, 5))
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if i < lag {
                    0.0
                } else {
                    gain * x[i - lag] + 0.2 * noise(i, 17)
                }
            })
            .collect();
        (x, y)
    }

    fn assert_same(a: &GrangerResult, b: &GrangerResult) {
        assert_eq!(a.causal, b.causal);
        assert_eq!(a.p_value.to_bits(), b.p_value.to_bits());
        assert_eq!(a.f_statistic.to_bits(), b.f_statistic.to_bits());
        assert_eq!(a.best_lag, b.best_lag);
        assert_eq!(a.differenced, b.differenced);
    }

    #[test]
    fn prepared_path_matches_direct_path_on_stationary_pair() {
        let (x, y) = driven_pair(300, 1, 1.0);
        let config = GrangerConfig::default();
        let direct = granger_causes(&x, &y, &config).unwrap();
        let px = PreparedGrangerSeries::prepare(x.as_slice());
        let py = PreparedGrangerSeries::prepare(y.as_slice());
        let prepared = granger_causes_prepared(&px, &py, &config).unwrap();
        assert!(prepared.causal);
        assert_same(&direct, &prepared);
        // Stationary pair: the differenced buffer was never needed.
        assert!(px.diff.get().is_none());
        assert!(py.diff.get().is_none());
    }

    #[test]
    fn prepared_path_matches_direct_path_on_counters() {
        // Independent random-walk counters exercise the differenced branch.
        let mut x = vec![0.0];
        let mut y = vec![0.0];
        for i in 1..400 {
            x.push(x[i - 1] + 1.0 + noise(i, 3).abs());
            y.push(y[i - 1] + 2.0 + noise(i, 9).abs());
        }
        let config = GrangerConfig::default();
        let direct = granger_causes(&x, &y, &config).unwrap();
        let px = PreparedGrangerSeries::prepare(x.as_slice());
        let py = PreparedGrangerSeries::prepare(y.as_slice());
        let prepared = granger_causes_prepared(&px, &py, &config).unwrap();
        assert!(prepared.differenced);
        assert_same(&direct, &prepared);
        // The differenced buffer is cached after first use.
        assert!(px.diff.get().is_some());
    }

    #[test]
    fn prepared_path_handles_constants_and_errors_like_the_direct_path() {
        let constant = vec![4.2; 100];
        let varying: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
        let config = GrangerConfig::default();
        let pc = PreparedGrangerSeries::prepare(constant.as_slice());
        let pv = PreparedGrangerSeries::prepare(varying.as_slice());
        let direct = granger_causes(&constant, &varying, &config).unwrap();
        let prepared = granger_causes_prepared(&pc, &pv, &config).unwrap();
        assert_same(&direct, &prepared);
        assert!(!prepared.causal);

        // Length mismatch and config errors surface identically.
        let short = PreparedGrangerSeries::prepare(vec![1.0, 2.0, 3.0]);
        assert!(matches!(
            granger_causes_prepared(&short, &pv, &config),
            Err(CausalityError::LengthMismatch { .. })
        ));
        assert!(matches!(
            granger_causes_prepared(&short, &short, &config),
            Err(CausalityError::TooFewObservations { .. })
        ));
        let bad = GrangerConfig::default().with_max_lag(0);
        assert!(granger_causes_prepared(&pv, &pv, &bad).is_err());
    }

    #[test]
    fn restricted_fit_is_memoized_across_sources() {
        let n = 240;
        let target: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.23).sin() + 0.2 * noise(i, 2))
            .collect();
        let pt = PreparedGrangerSeries::prepare(target.as_slice());
        let config = GrangerConfig::default();
        for seed in 0..8u64 {
            let source: Vec<f64> = (0..n)
                .map(|i| (i as f64 * (0.11 + seed as f64 * 0.03)).cos() + 0.3 * noise(i, seed))
                .collect();
            let ps = PreparedGrangerSeries::prepare(source.as_slice());
            granger_causes_prepared(&ps, &pt, &config).unwrap();
        }
        // Eight sources against one target, all stationary at one lag
        // order: at most `max_lag` distinct restricted fits, not eight.
        let computes = pt.restricted_fit_computations();
        assert!(computes >= 1);
        assert!(
            computes <= config.max_lag,
            "restricted fits computed {computes} times for 8 sources"
        );
    }

    #[test]
    fn bidirectional_prepared_matches_two_direct_calls() {
        let (x, y) = driven_pair(400, 2, 1.2);
        let config = GrangerConfig::default().with_max_lag(3);
        let px = PreparedGrangerSeries::prepare(x.as_slice());
        let py = PreparedGrangerSeries::prepare(y.as_slice());
        let (forward, backward) = granger_bidirectional_prepared(&px, &py, &config).unwrap();
        assert_same(&forward, &granger_causes(&x, &y, &config).unwrap());
        assert_same(&backward, &granger_causes(&y, &x, &config).unwrap());
    }

    #[test]
    fn accessors_expose_the_cached_state() {
        let values: Vec<f64> = (0..60).map(|i| (i as f64 * 0.4).sin()).collect();
        let p = PreparedGrangerSeries::prepare(values.as_slice());
        assert_eq!(p.len(), 60);
        assert!(!p.is_empty());
        assert_eq!(p.values().len(), 60);
        assert_eq!(p.variance().to_bits(), variance(&values).to_bits());
        assert_eq!(p.is_stationary(), is_stationary(&values));
        let (d, dv) = p.differenced();
        assert_eq!(d.len(), 59);
        assert_eq!(dv.to_bits(), variance(&first_difference(&values)).to_bits());
        // Second call serves the same buffer.
        let (d2, _) = p.differenced();
        assert_eq!(d.as_ptr(), d2.as_ptr());
        assert_eq!(p.restricted_fit_computations(), 0);
    }
}
