//! Granger causality testing.
//!
//! "If a metric X is Granger-causing another metric Y, then we can predict Y
//! better by using the history of both X and Y compared to only using the
//! history of Y" (§3.3). The test compares, per candidate lag order `p`,
//!
//! * the **restricted** model `y_t ~ const + y_{t-1} + … + y_{t-p}` with
//! * the **unrestricted** model that additionally includes
//!   `x_{t-1} + … + x_{t-p}`,
//!
//! via an F-test. Non-stationary inputs are first-differenced beforehand
//! (detected with the ADF test), mirroring Sieve's handling of counters.

use crate::adf::is_stationary;
use crate::ftest::{f_test, FTestResult};
use crate::ols;
use crate::{CausalityError, Result};
use sieve_timeseries::diff::first_difference;
use sieve_timeseries::stats::variance;

/// Configuration of a Granger causality test.
#[derive(Debug, Clone, PartialEq)]
pub struct GrangerConfig {
    /// Maximum autoregressive lag order to try (each order from 1 to this
    /// value is tested and the most significant one is reported).
    pub max_lag: usize,
    /// Significance level for rejecting the "does not Granger-cause" null.
    pub significance: f64,
    /// Whether to first-difference series that fail the ADF stationarity
    /// test (Sieve always does).
    pub difference_non_stationary: bool,
    /// Minimum number of observations required to attempt the test.
    pub min_observations: usize,
}

impl Default for GrangerConfig {
    fn default() -> Self {
        Self {
            max_lag: 3,
            significance: 0.05,
            difference_non_stationary: true,
            min_observations: 30,
        }
    }
}

impl GrangerConfig {
    /// Builder-style setter for the maximum lag order.
    pub fn with_max_lag(mut self, max_lag: usize) -> Self {
        self.max_lag = max_lag;
        self
    }

    /// Builder-style setter for the significance level.
    pub fn with_significance(mut self, significance: f64) -> Self {
        self.significance = significance;
        self
    }
}

/// Outcome of a Granger causality test of "X causes Y".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrangerResult {
    /// Whether X Granger-causes Y at the configured significance level.
    pub causal: bool,
    /// p-value of the F-test comparing the restricted and unrestricted
    /// models at the used lag order.
    pub p_value: f64,
    /// The F statistic of that comparison.
    pub f_statistic: f64,
    /// The estimated response delay in samples: the lag (between 1 and the
    /// configured maximum) at which the lagged cross-correlation between X
    /// and Y is strongest. 0 when no test could run.
    pub best_lag: usize,
    /// Whether the inputs were first-differenced before testing.
    pub differenced: bool,
}

impl GrangerResult {
    /// A "no evidence of causality" result.
    fn not_causal(differenced: bool) -> Self {
        Self {
            causal: false,
            p_value: 1.0,
            f_statistic: 0.0,
            best_lag: 0,
            differenced,
        }
    }
}

/// Tests whether `x` Granger-causes `y`.
///
/// # Errors
///
/// * [`CausalityError::LengthMismatch`] when the series differ in length.
/// * [`CausalityError::TooFewObservations`] when fewer than
///   `config.min_observations` samples are available.
/// * [`CausalityError::InvalidParameter`] when `max_lag` is zero or the
///   significance level is outside `(0, 1)`.
pub fn granger_causes(x: &[f64], y: &[f64], config: &GrangerConfig) -> Result<GrangerResult> {
    if x.len() != y.len() {
        return Err(CausalityError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if config.max_lag == 0 {
        return Err(CausalityError::InvalidParameter {
            name: "max_lag",
            reason: "must be at least 1".to_string(),
        });
    }
    if !(config.significance > 0.0 && config.significance < 1.0) {
        return Err(CausalityError::InvalidParameter {
            name: "significance",
            reason: format!("must be in (0, 1), got {}", config.significance),
        });
    }
    if x.len() < config.min_observations {
        return Err(CausalityError::TooFewObservations {
            required: config.min_observations,
            actual: x.len(),
        });
    }

    // Constant series can never carry predictive information.
    if variance(x) < 1e-12 || variance(y) < 1e-12 {
        return Ok(GrangerResult::not_causal(false));
    }

    // Difference when either series is non-stationary (as Sieve does for
    // counters); both are differenced to keep them aligned.
    let (xs, ys, differenced) =
        if config.difference_non_stationary && (!is_stationary(x) || !is_stationary(y)) {
            (first_difference(x), first_difference(y), true)
        } else {
            (x.to_vec(), y.to_vec(), false)
        };

    if variance(&xs) < 1e-12 || variance(&ys) < 1e-12 {
        return Ok(GrangerResult::not_causal(differenced));
    }

    // The autoregressive order is the configured maximum lag. Using the full
    // order for the restricted model matters: with too few own-lags a smooth
    // metric is under-fitted and the other metric becomes significant merely
    // as a proxy for the missing own-lags, which would flip harmless
    // downstream metrics into apparent causes. If the sample is too short
    // (or the design collinear) the order is reduced until the test runs.
    let mut order = config.max_lag;
    let test = loop {
        match test_at_lag(&xs, &ys, order) {
            Ok(result) => break Some(result),
            Err(CausalityError::SingularMatrix)
            | Err(CausalityError::TooFewObservations { .. })
                if order > 1 =>
            {
                order -= 1;
            }
            Err(CausalityError::SingularMatrix)
            | Err(CausalityError::TooFewObservations { .. }) => break None,
            Err(e) => return Err(e),
        }
    };

    match test {
        Some(result) => {
            let causal = result.p_value < config.significance;
            let best_lag = if causal {
                strongest_lag(&xs, &ys, order)
            } else {
                0
            };
            Ok(GrangerResult {
                causal,
                p_value: result.p_value,
                f_statistic: result.f_statistic,
                best_lag,
                differenced,
            })
        }
        None => Ok(GrangerResult::not_causal(differenced)),
    }
}

/// The lag in `1..=max_lag` at which the absolute lagged correlation between
/// `x` and `y` (x leading) is largest.
fn strongest_lag(x: &[f64], y: &[f64], max_lag: usize) -> usize {
    use sieve_timeseries::diff::lag_pairs;
    use sieve_timeseries::stats::pearson;
    let mut best_lag = 1;
    let mut best_corr = f64::NEG_INFINITY;
    for lag in 1..=max_lag.max(1) {
        let (xl, yl) = lag_pairs(x, y, lag);
        if xl.len() < 3 {
            continue;
        }
        let corr = pearson(&xl, &yl).abs();
        if corr > best_corr {
            best_corr = corr;
            best_lag = lag;
        }
    }
    best_lag
}

/// Tests both directions and reports them as a pair `(x_causes_y, y_causes_x)`.
///
/// Sieve filters out *bidirectional* relations as likely spurious (both
/// metrics depending on a hidden third variable, §3.3); callers can use this
/// helper to detect that situation.
///
/// # Errors
///
/// Same as [`granger_causes`].
pub fn granger_bidirectional(
    x: &[f64],
    y: &[f64],
    config: &GrangerConfig,
) -> Result<(GrangerResult, GrangerResult)> {
    Ok((granger_causes(x, y, config)?, granger_causes(y, x, config)?))
}

/// Runs the restricted/unrestricted comparison at a fixed lag order.
fn test_at_lag(x: &[f64], y: &[f64], lag: usize) -> Result<FTestResult> {
    let n = y.len();
    if n <= lag * 2 + 2 {
        return Err(CausalityError::TooFewObservations {
            required: lag * 2 + 3,
            actual: n,
        });
    }
    let mut restricted_rows = Vec::with_capacity(n - lag);
    let mut unrestricted_rows = Vec::with_capacity(n - lag);
    let mut targets = Vec::with_capacity(n - lag);
    for t in lag..n {
        let mut r_row = Vec::with_capacity(lag);
        let mut u_row = Vec::with_capacity(lag * 2);
        for k in 1..=lag {
            r_row.push(y[t - k]);
            u_row.push(y[t - k]);
        }
        for k in 1..=lag {
            u_row.push(x[t - k]);
        }
        restricted_rows.push(r_row);
        unrestricted_rows.push(u_row);
        targets.push(y[t]);
    }
    let restricted = ols::fit(&restricted_rows, &targets, true)?;
    let unrestricted = ols::fit(&unrestricted_rows, &targets, true)?;
    f_test(&restricted, &unrestricted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(i: usize, seed: u64) -> f64 {
        // Mix index and seed with different multipliers so nearby seeds do
        // not produce shifted copies of the same stream.
        let mut s =
            (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ seed.wrapping_mul(0xD1B54A32D192ED03);
        s ^= s >> 33;
        s = s.wrapping_mul(0xff51afd7ed558ccd);
        s ^= s >> 29;
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }

    /// x drives y with the given lag: y_t = gain * x_{t-lag} + noise.
    fn driven_pair(n: usize, lag: usize, gain: f64) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.3 * noise(i, 5))
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if i < lag {
                    0.0
                } else {
                    gain * x[i - lag] + 0.2 * noise(i, 17)
                }
            })
            .collect();
        (x, y)
    }

    #[test]
    fn detects_direct_causality() {
        let (x, y) = driven_pair(300, 1, 1.0);
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!(r.causal, "p = {}", r.p_value);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn detects_causality_at_longer_lag() {
        // Use an unpredictable (white-noise) driver so only models that reach
        // back three steps can explain y.
        let n = 400;
        let x: Vec<f64> = (0..n).map(|i| noise(i, 23)).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if i < 3 {
                    0.0
                } else {
                    1.5 * x[i - 3] + 0.1 * noise(i, 31)
                }
            })
            .collect();
        let cfg = GrangerConfig::default().with_max_lag(4);
        let r = granger_causes(&x, &y, &cfg).unwrap();
        assert!(r.causal, "p = {}", r.p_value);
        assert!(r.best_lag >= 3, "best lag {}", r.best_lag);
    }

    #[test]
    fn reverse_direction_is_weaker_than_forward() {
        let (x, y) = driven_pair(400, 2, 1.2);
        let cfg = GrangerConfig::default().with_max_lag(3);
        let (forward, backward) = granger_bidirectional(&x, &y, &cfg).unwrap();
        assert!(forward.causal);
        assert!(
            forward.p_value <= backward.p_value,
            "forward p {} should be <= backward p {}",
            forward.p_value,
            backward.p_value
        );
    }

    #[test]
    fn independent_series_are_not_causal() {
        let x: Vec<f64> = (0..300).map(|i| noise(i, 1)).collect();
        let y: Vec<f64> = (0..300).map(|i| noise(i, 2)).collect();
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!(!r.causal, "p = {}", r.p_value);
    }

    #[test]
    fn constant_series_is_never_causal() {
        let x = vec![4.2; 100];
        let y: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!(!r.causal);
        assert_eq!(r.p_value, 1.0);
        let r = granger_causes(&y, &x, &GrangerConfig::default()).unwrap();
        assert!(!r.causal);
    }

    #[test]
    fn non_stationary_counters_are_differenced() {
        // Two independent random-walk counters: without differencing this is
        // the classic spurious-regression setup.
        let mut x = vec![0.0];
        let mut y = vec![0.0];
        for i in 1..400 {
            x.push(x[i - 1] + 1.0 + noise(i, 3).abs());
            y.push(y[i - 1] + 2.0 + noise(i, 9).abs());
        }
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!(r.differenced, "counters must be first-differenced");
        assert!(
            !r.causal,
            "independent counters must not appear causal (p={})",
            r.p_value
        );
    }

    #[test]
    fn causality_survives_differencing() {
        // Cumulative counters where the *rate* of y follows the rate of x.
        let n = 400;
        let rate_x: Vec<f64> = (0..n)
            .map(|i| 2.0 + (i as f64 * 0.25).sin() + 0.1 * noise(i, 4))
            .collect();
        let mut x = vec![0.0];
        let mut y = vec![0.0];
        for i in 1..n {
            x.push(x[i - 1] + rate_x[i]);
            y.push(y[i - 1] + 1.5 * rate_x[i - 1] + 0.1 * noise(i, 6));
        }
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!(r.differenced);
        assert!(r.causal, "p = {}", r.p_value);
    }

    #[test]
    fn rejects_invalid_configuration_and_input() {
        let x = vec![1.0; 50];
        let y = vec![2.0; 40];
        assert!(matches!(
            granger_causes(&x, &y, &GrangerConfig::default()),
            Err(CausalityError::LengthMismatch { .. })
        ));
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let cfg = GrangerConfig::default().with_max_lag(0);
        assert!(granger_causes(&x, &x, &cfg).is_err());
        let cfg = GrangerConfig::default().with_significance(1.5);
        assert!(granger_causes(&x, &x, &cfg).is_err());
        let short = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            granger_causes(&short, &short, &GrangerConfig::default()),
            Err(CausalityError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn default_config_matches_paper_choices() {
        let cfg = GrangerConfig::default();
        assert_eq!(cfg.significance, 0.05);
        assert!(cfg.difference_non_stationary);
        assert!(cfg.max_lag >= 1);
    }
}
