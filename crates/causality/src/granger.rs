//! Granger causality testing.
//!
//! "If a metric X is Granger-causing another metric Y, then we can predict Y
//! better by using the history of both X and Y compared to only using the
//! history of Y" (§3.3). The test compares, per candidate lag order `p`,
//!
//! * the **restricted** model `y_t ~ const + y_{t-1} + … + y_{t-p}` with
//! * the **unrestricted** model that additionally includes
//!   `x_{t-1} + … + x_{t-p}`,
//!
//! via an F-test. Non-stationary inputs are first-differenced beforehand
//! (detected with the ADF test), mirroring Sieve's handling of counters.

use crate::adf::is_stationary;
use crate::engine::PreparedGrangerSeries;
use crate::ftest::{f_test, FTestResult};
use crate::ols::{self, Design};
use crate::{CausalityError, Result};
use sieve_timeseries::diff::first_difference;
use sieve_timeseries::stats::variance;
use std::borrow::Cow;

/// Configuration of a Granger causality test.
#[derive(Debug, Clone, PartialEq)]
pub struct GrangerConfig {
    /// Maximum autoregressive lag order to try (each order from 1 to this
    /// value is tested and the most significant one is reported).
    pub max_lag: usize,
    /// Significance level for rejecting the "does not Granger-cause" null.
    pub significance: f64,
    /// Whether to first-difference series that fail the ADF stationarity
    /// test (Sieve always does).
    pub difference_non_stationary: bool,
    /// Minimum number of observations required to attempt the test.
    pub min_observations: usize,
}

impl Default for GrangerConfig {
    fn default() -> Self {
        Self {
            max_lag: 3,
            significance: 0.05,
            difference_non_stationary: true,
            min_observations: 30,
        }
    }
}

impl GrangerConfig {
    /// Builder-style setter for the maximum lag order.
    pub fn with_max_lag(mut self, max_lag: usize) -> Self {
        self.max_lag = max_lag;
        self
    }

    /// Builder-style setter for the significance level.
    pub fn with_significance(mut self, significance: f64) -> Self {
        self.significance = significance;
        self
    }
}

/// Outcome of a Granger causality test of "X causes Y".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrangerResult {
    /// Whether X Granger-causes Y at the configured significance level.
    pub causal: bool,
    /// p-value of the F-test comparing the restricted and unrestricted
    /// models at the used lag order.
    pub p_value: f64,
    /// The F statistic of that comparison.
    pub f_statistic: f64,
    /// The estimated response delay in samples: the lag (between 1 and the
    /// configured maximum) at which the lagged cross-correlation between X
    /// and Y is strongest. 0 when no test could run.
    pub best_lag: usize,
    /// Whether the inputs were first-differenced before testing.
    pub differenced: bool,
}

impl GrangerResult {
    /// A "no evidence of causality" result.
    pub(crate) fn not_causal(differenced: bool) -> Self {
        Self {
            causal: false,
            p_value: 1.0,
            f_statistic: 0.0,
            best_lag: 0,
            differenced,
        }
    }
}

/// Tests whether `x` Granger-causes `y`.
///
/// # Errors
///
/// * [`CausalityError::LengthMismatch`] when the series differ in length.
/// * [`CausalityError::TooFewObservations`] when fewer than
///   `config.min_observations` samples are available.
/// * [`CausalityError::InvalidParameter`] when `max_lag` is zero or the
///   significance level is outside `(0, 1)`.
pub fn granger_causes(x: &[f64], y: &[f64], config: &GrangerConfig) -> Result<GrangerResult> {
    validate_inputs(x.len(), y.len(), config)?;

    // Constant series can never carry predictive information.
    if variance(x) < 1e-12 || variance(y) < 1e-12 {
        return Ok(GrangerResult::not_causal(false));
    }

    // Difference when either series is non-stationary (as Sieve does for
    // counters); both are differenced to keep them aligned. Stationary
    // inputs are tested in place — no copy is taken.
    let differenced = config.difference_non_stationary && (!is_stationary(x) || !is_stationary(y));
    let (xs, ys): (Cow<'_, [f64]>, Cow<'_, [f64]>) = if differenced {
        (first_difference(x).into(), first_difference(y).into())
    } else {
        (x.into(), y.into())
    };

    // Only freshly differenced buffers need a variance re-check: in the
    // stationary case `xs`/`ys` *are* `x`/`y`, which passed above.
    if differenced && (variance(&xs) < 1e-12 || variance(&ys) < 1e-12) {
        return Ok(GrangerResult::not_causal(differenced));
    }

    // The autoregressive order is the configured maximum lag. Using the full
    // order for the restricted model matters: with too few own-lags a smooth
    // metric is under-fitted and the other metric becomes significant merely
    // as a proxy for the missing own-lags, which would flip harmless
    // downstream metrics into apparent causes. If the sample is too short
    // (or the design collinear) the order is reduced until the test runs.
    let mut scratch = Design::new();
    let mut order = config.max_lag;
    let test = loop {
        match test_at_lag(&xs, &ys, order, &mut scratch) {
            Ok(result) => break Some(result),
            Err(CausalityError::SingularMatrix)
            | Err(CausalityError::TooFewObservations { .. })
                if order > 1 =>
            {
                order -= 1;
            }
            Err(CausalityError::SingularMatrix)
            | Err(CausalityError::TooFewObservations { .. }) => break None,
            Err(e) => return Err(e),
        }
    };

    match test {
        Some(result) => {
            let causal = result.p_value < config.significance;
            let best_lag = if causal {
                strongest_lag(&xs, &ys, order)
            } else {
                0
            };
            Ok(GrangerResult {
                causal,
                p_value: result.p_value,
                f_statistic: result.f_statistic,
                best_lag,
                differenced,
            })
        }
        None => Ok(GrangerResult::not_causal(differenced)),
    }
}

/// Shared input validation of [`granger_causes`] and the prepared-state
/// engine path.
pub(crate) fn validate_inputs(x_len: usize, y_len: usize, config: &GrangerConfig) -> Result<()> {
    if x_len != y_len {
        return Err(CausalityError::LengthMismatch {
            left: x_len,
            right: y_len,
        });
    }
    if config.max_lag == 0 {
        return Err(CausalityError::InvalidParameter {
            name: "max_lag",
            reason: "must be at least 1".to_string(),
        });
    }
    if !(config.significance > 0.0 && config.significance < 1.0) {
        return Err(CausalityError::InvalidParameter {
            name: "significance",
            reason: format!("must be in (0, 1), got {}", config.significance),
        });
    }
    if x_len < config.min_observations {
        return Err(CausalityError::TooFewObservations {
            required: config.min_observations,
            actual: x_len,
        });
    }
    Ok(())
}

/// The lag in `1..=max_lag` at which the absolute lagged correlation between
/// `x` and `y` (x leading) is largest.
///
/// The lagged pair set at lag `l` is just the sub-slice pair
/// `(x[..n-l], y[l..])`, so no per-lag buffers are materialized.
pub(crate) fn strongest_lag(x: &[f64], y: &[f64], max_lag: usize) -> usize {
    use sieve_timeseries::stats::pearson;
    let n = x.len().min(y.len());
    let mut best_lag = 1;
    let mut best_corr = f64::NEG_INFINITY;
    for lag in 1..=max_lag.max(1) {
        if lag >= n || n - lag < 3 {
            continue;
        }
        let corr = pearson(&x[..n - lag], &y[lag..n]).abs();
        if corr > best_corr {
            best_corr = corr;
            best_lag = lag;
        }
    }
    best_lag
}

/// Tests both directions and reports them as a pair `(x_causes_y, y_causes_x)`.
///
/// Sieve filters out *bidirectional* relations as likely spurious (both
/// metrics depending on a hidden third variable, §3.3); callers can use this
/// helper to detect that situation.
///
/// Both directions share one [`PreparedGrangerSeries`] per input, so the
/// ADF stationarity tests and the first-differencing run once per series
/// instead of once per direction. The results are bit-identical to two
/// independent [`granger_causes`] calls.
///
/// # Errors
///
/// Same as [`granger_causes`].
pub fn granger_bidirectional(
    x: &[f64],
    y: &[f64],
    config: &GrangerConfig,
) -> Result<(GrangerResult, GrangerResult)> {
    let px = PreparedGrangerSeries::prepare(x);
    let py = PreparedGrangerSeries::prepare(y);
    Ok((
        crate::engine::granger_causes_prepared(&px, &py, config)?,
        crate::engine::granger_causes_prepared(&py, &px, config)?,
    ))
}

/// Fits the restricted autoregressive model `y_t ~ const + y_{t-1..t-p}`
/// into the reusable `design` scratch. The regressor columns are sub-slices
/// of `y` itself — nothing is copied per row.
///
/// The caller must guarantee `y.len() > lag`.
pub(crate) fn fit_restricted(design: &mut Design, y: &[f64], lag: usize) -> Result<ols::OlsFit> {
    let n = y.len();
    design.reset(n - lag);
    design.push_intercept();
    for k in 1..=lag {
        design.push_column(&y[lag - k..n - k])?;
    }
    ols::fit_design(design, &y[lag..])
}

/// Fits the unrestricted model `y_t ~ const + y_{t-1..t-p} + x_{t-1..t-p}`
/// into the reusable `design` scratch.
///
/// The caller must guarantee `x.len() == y.len() > lag`.
pub(crate) fn fit_unrestricted(
    design: &mut Design,
    x: &[f64],
    y: &[f64],
    lag: usize,
) -> Result<ols::OlsFit> {
    let n = y.len();
    design.reset(n - lag);
    design.push_intercept();
    for k in 1..=lag {
        design.push_column(&y[lag - k..n - k])?;
    }
    for k in 1..=lag {
        design.push_column(&x[lag - k..n - k])?;
    }
    ols::fit_design(design, &y[lag..])
}

/// Runs the restricted/unrestricted comparison at a fixed lag order,
/// reusing `scratch` for both design matrices.
fn test_at_lag(x: &[f64], y: &[f64], lag: usize, scratch: &mut Design) -> Result<FTestResult> {
    let n = y.len();
    if n <= lag * 2 + 2 {
        return Err(CausalityError::TooFewObservations {
            required: lag * 2 + 3,
            actual: n,
        });
    }
    let restricted = fit_restricted(scratch, y, lag)?;
    let unrestricted = fit_unrestricted(scratch, x, y, lag)?;
    f_test(&restricted, &unrestricted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(i: usize, seed: u64) -> f64 {
        // Mix index and seed with different multipliers so nearby seeds do
        // not produce shifted copies of the same stream.
        let mut s =
            (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ seed.wrapping_mul(0xD1B54A32D192ED03);
        s ^= s >> 33;
        s = s.wrapping_mul(0xff51afd7ed558ccd);
        s ^= s >> 29;
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }

    /// x drives y with the given lag: y_t = gain * x_{t-lag} + noise.
    fn driven_pair(n: usize, lag: usize, gain: f64) -> (Vec<f64>, Vec<f64>) {
        let x: Vec<f64> = (0..n)
            .map(|i| (i as f64 * 0.37).sin() + 0.3 * noise(i, 5))
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if i < lag {
                    0.0
                } else {
                    gain * x[i - lag] + 0.2 * noise(i, 17)
                }
            })
            .collect();
        (x, y)
    }

    #[test]
    fn detects_direct_causality() {
        let (x, y) = driven_pair(300, 1, 1.0);
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!(r.causal, "p = {}", r.p_value);
        assert!(r.p_value < 0.01);
    }

    #[test]
    fn detects_causality_at_longer_lag() {
        // Use an unpredictable (white-noise) driver so only models that reach
        // back three steps can explain y.
        let n = 400;
        let x: Vec<f64> = (0..n).map(|i| noise(i, 23)).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                if i < 3 {
                    0.0
                } else {
                    1.5 * x[i - 3] + 0.1 * noise(i, 31)
                }
            })
            .collect();
        let cfg = GrangerConfig::default().with_max_lag(4);
        let r = granger_causes(&x, &y, &cfg).unwrap();
        assert!(r.causal, "p = {}", r.p_value);
        assert!(r.best_lag >= 3, "best lag {}", r.best_lag);
    }

    #[test]
    fn reverse_direction_is_weaker_than_forward() {
        let (x, y) = driven_pair(400, 2, 1.2);
        let cfg = GrangerConfig::default().with_max_lag(3);
        let (forward, backward) = granger_bidirectional(&x, &y, &cfg).unwrap();
        assert!(forward.causal);
        assert!(
            forward.p_value <= backward.p_value,
            "forward p {} should be <= backward p {}",
            forward.p_value,
            backward.p_value
        );
    }

    #[test]
    fn independent_series_are_not_causal() {
        let x: Vec<f64> = (0..300).map(|i| noise(i, 1)).collect();
        let y: Vec<f64> = (0..300).map(|i| noise(i, 2)).collect();
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!(!r.causal, "p = {}", r.p_value);
    }

    #[test]
    fn constant_series_is_never_causal() {
        let x = vec![4.2; 100];
        let y: Vec<f64> = (0..100).map(|i| (i as f64 * 0.2).sin()).collect();
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!(!r.causal);
        assert_eq!(r.p_value, 1.0);
        let r = granger_causes(&y, &x, &GrangerConfig::default()).unwrap();
        assert!(!r.causal);
    }

    #[test]
    fn non_stationary_counters_are_differenced() {
        // Two independent random-walk counters: without differencing this is
        // the classic spurious-regression setup.
        let mut x = vec![0.0];
        let mut y = vec![0.0];
        for i in 1..400 {
            x.push(x[i - 1] + 1.0 + noise(i, 3).abs());
            y.push(y[i - 1] + 2.0 + noise(i, 9).abs());
        }
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!(r.differenced, "counters must be first-differenced");
        assert!(
            !r.causal,
            "independent counters must not appear causal (p={})",
            r.p_value
        );
    }

    #[test]
    fn causality_survives_differencing() {
        // Cumulative counters where the *rate* of y follows the rate of x.
        let n = 400;
        let rate_x: Vec<f64> = (0..n)
            .map(|i| 2.0 + (i as f64 * 0.25).sin() + 0.1 * noise(i, 4))
            .collect();
        let mut x = vec![0.0];
        let mut y = vec![0.0];
        for i in 1..n {
            x.push(x[i - 1] + rate_x[i]);
            y.push(y[i - 1] + 1.5 * rate_x[i - 1] + 0.1 * noise(i, 6));
        }
        let r = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
        assert!(r.differenced);
        assert!(r.causal, "p = {}", r.p_value);
    }

    #[test]
    fn rejects_invalid_configuration_and_input() {
        let x = vec![1.0; 50];
        let y = vec![2.0; 40];
        assert!(matches!(
            granger_causes(&x, &y, &GrangerConfig::default()),
            Err(CausalityError::LengthMismatch { .. })
        ));
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let cfg = GrangerConfig::default().with_max_lag(0);
        assert!(granger_causes(&x, &x, &cfg).is_err());
        let cfg = GrangerConfig::default().with_significance(1.5);
        assert!(granger_causes(&x, &x, &cfg).is_err());
        let short = vec![1.0, 2.0, 3.0];
        assert!(matches!(
            granger_causes(&short, &short, &GrangerConfig::default()),
            Err(CausalityError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn default_config_matches_paper_choices() {
        let cfg = GrangerConfig::default();
        assert_eq!(cfg.significance, 0.05);
        assert!(cfg.difference_non_stationary);
        assert!(cfg.max_lag >= 1);
    }
}
