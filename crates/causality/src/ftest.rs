//! The F-test for comparing nested OLS models.
//!
//! Sieve's Granger check compares the restricted model (a metric regressed
//! on its own history) against the unrestricted model (own history plus the
//! other metric's lagged history) "via the F-test. The null hypothesis
//! (i.e., X does not granger-cause Y) is rejected if the p-value is below a
//! critical value" (§3.3).

use crate::dist::f_sf;
use crate::ols::OlsFit;
use crate::{CausalityError, Result};

/// Outcome of an F-test between a restricted and an unrestricted model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FTestResult {
    /// The F statistic.
    pub f_statistic: f64,
    /// The p-value (upper-tail probability under the null hypothesis that
    /// the extra regressors have no explanatory power).
    pub p_value: f64,
    /// Numerator degrees of freedom (number of restrictions).
    pub df_numerator: usize,
    /// Denominator degrees of freedom (residual df of the unrestricted model).
    pub df_denominator: usize,
}

impl FTestResult {
    /// Whether the null hypothesis is rejected at significance level `alpha`.
    pub fn rejects_null(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Compares two nested OLS fits on the *same* observations.
///
/// `restricted` must have fewer parameters than `unrestricted`.
///
/// # Errors
///
/// * [`CausalityError::InvalidParameter`] when the models are not nested
///   (parameter counts not strictly increasing), were fitted on different
///   numbers of observations, or when the unrestricted model has no residual
///   degrees of freedom.
pub fn f_test(restricted: &OlsFit, unrestricted: &OlsFit) -> Result<FTestResult> {
    if restricted.n_observations != unrestricted.n_observations {
        return Err(CausalityError::InvalidParameter {
            name: "n_observations",
            reason: format!(
                "models fitted on different samples: {} vs {}",
                restricted.n_observations, unrestricted.n_observations
            ),
        });
    }
    if unrestricted.n_parameters <= restricted.n_parameters {
        return Err(CausalityError::InvalidParameter {
            name: "n_parameters",
            reason: "unrestricted model must have more parameters than the restricted one"
                .to_string(),
        });
    }
    let df_num = unrestricted.n_parameters - restricted.n_parameters;
    let df_den = unrestricted.degrees_of_freedom();
    if df_den == 0 {
        return Err(CausalityError::InvalidParameter {
            name: "degrees_of_freedom",
            reason: "unrestricted model has no residual degrees of freedom".to_string(),
        });
    }

    let rss_r = restricted.rss;
    let rss_u = unrestricted.rss;
    // A perfect unrestricted fit gives an infinite F statistic; handle the
    // degenerate case explicitly to avoid 0/0.
    let f_statistic = if rss_u <= f64::EPSILON * restricted.tss.max(1.0) {
        if rss_r <= rss_u + f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((rss_r - rss_u).max(0.0) / df_num as f64) / (rss_u / df_den as f64)
    };

    let p_value = if f_statistic.is_infinite() {
        0.0
    } else {
        f_sf(f_statistic, df_num as f64, df_den as f64).clamp(0.0, 1.0)
    };

    Ok(FTestResult {
        f_statistic,
        p_value,
        df_numerator: df_num,
        df_denominator: df_den,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ols;

    /// Deterministic pseudo-noise in [-0.5, 0.5].
    fn noise(i: usize, seed: u64) -> f64 {
        // Mix index and seed with different multipliers so nearby seeds do
        // not produce shifted copies of the same stream.
        let mut s =
            (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ seed.wrapping_mul(0xD1B54A32D192ED03);
        s ^= s >> 33;
        s = s.wrapping_mul(0xff51afd7ed558ccd);
        s ^= s >> 29;
        ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
    }

    #[test]
    fn informative_extra_regressor_is_detected() {
        // y depends on both x1 and x2; the restricted model omits x2.
        let n = 120;
        let x1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let x2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 1.0 + 2.0 * x1[i] + 1.5 * x2[i] + 0.1 * noise(i, 1))
            .collect();
        let restricted_rows: Vec<Vec<f64>> = x1.iter().map(|&v| vec![v]).collect();
        let unrestricted_rows: Vec<Vec<f64>> = x1
            .iter()
            .zip(x2.iter())
            .map(|(&a, &b)| vec![a, b])
            .collect();
        let r = ols::fit(&restricted_rows, &y, true).unwrap();
        let u = ols::fit(&unrestricted_rows, &y, true).unwrap();
        let test = f_test(&r, &u).unwrap();
        assert!(test.f_statistic > 10.0);
        assert!(test.p_value < 0.001);
        assert!(test.rejects_null(0.05));
        assert_eq!(test.df_numerator, 1);
    }

    #[test]
    fn uninformative_extra_regressor_is_not_significant() {
        // y depends only on x1; x2 is independent noise.
        let n = 150;
        let x1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.25).sin()).collect();
        let x2: Vec<f64> = (0..n).map(|i| noise(i, 99)).collect();
        let y: Vec<f64> = (0..n).map(|i| 2.0 * x1[i] + 0.3 * noise(i, 7)).collect();
        let restricted_rows: Vec<Vec<f64>> = x1.iter().map(|&v| vec![v]).collect();
        let unrestricted_rows: Vec<Vec<f64>> = x1
            .iter()
            .zip(x2.iter())
            .map(|(&a, &b)| vec![a, b])
            .collect();
        let r = ols::fit(&restricted_rows, &y, true).unwrap();
        let u = ols::fit(&unrestricted_rows, &y, true).unwrap();
        let test = f_test(&r, &u).unwrap();
        assert!(
            test.p_value > 0.05,
            "p-value {} should not be significant",
            test.p_value
        );
        assert!(!test.rejects_null(0.05));
    }

    #[test]
    fn rejects_non_nested_models() {
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + noise(*v as usize, 3)).collect();
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let a = ols::fit(&rows, &y, true).unwrap();
        // Same number of parameters -> not nested.
        assert!(f_test(&a, &a).is_err());
    }

    #[test]
    fn rejects_models_on_different_samples() {
        let x: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| v * 2.0 + 1.0).collect();
        let rows: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let rows2: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| vec![r[0], r[0] * r[0]])
            .take(20)
            .collect();
        let a = ols::fit(&rows, &y, true).unwrap();
        let b = ols::fit(&rows2, &y[..20], true).unwrap();
        assert!(f_test(&a, &b).is_err());
    }

    #[test]
    fn perfect_fit_gives_infinite_f_and_zero_p() {
        let x1: Vec<f64> = (0..40).map(|i| (i as f64 * 0.3).sin()).collect();
        let x2: Vec<f64> = (0..40).map(|i| (i as f64 * 0.9).cos()).collect();
        // y depends exactly on x1 and x2, with zero residual.
        let y: Vec<f64> = (0..40).map(|i| x1[i] + 4.0 * x2[i]).collect();
        let r = ols::fit(&x1.iter().map(|&v| vec![v]).collect::<Vec<_>>(), &y, true).unwrap();
        let u = ols::fit(
            &x1.iter()
                .zip(x2.iter())
                .map(|(&a, &b)| vec![a, b])
                .collect::<Vec<_>>(),
            &y,
            true,
        )
        .unwrap();
        let t = f_test(&r, &u).unwrap();
        assert!(t.f_statistic.is_infinite());
        assert_eq!(t.p_value, 0.0);
    }
}
