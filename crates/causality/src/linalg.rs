//! Minimal dense linear algebra: just enough to solve least-squares normal
//! equations for the OLS regressions of the Granger and ADF tests.

use crate::{CausalityError, Result};

/// A dense, row-major matrix of `f64` values. `Default` is the empty
/// `0 x 0` matrix (no allocation), which scratch arenas start from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from nested row vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CausalityError::DimensionMismatch`] when rows have different
    /// lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(CausalityError::DimensionMismatch {
                    context: format!("row {i} has {} columns, expected {cols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element setter.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, value: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = value;
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`CausalityError::DimensionMismatch`] when the inner
    /// dimensions differ.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(CausalityError::DimensionMismatch {
                context: format!(
                    "{}x{} * {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    let v = out.get(r, c) + a * other.get(k, c);
                    out.set(r, c, v);
                }
            }
        }
        Ok(out)
    }

    /// Reshapes the matrix in place to `rows x cols`, zeroing every element
    /// but keeping the backing allocation — the OLS scratch arena resets its
    /// normal-equations matrix this way on every fit instead of allocating a
    /// fresh one.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`CausalityError::DimensionMismatch`] when `v.len()` differs
    /// from the number of columns.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(CausalityError::DimensionMismatch {
                context: format!("{}x{} * vec[{}]", self.rows, self.cols, v.len()),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (r, slot) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, value) in v.iter().enumerate() {
                acc += self.get(r, c) * value;
            }
            *slot = acc;
        }
        Ok(out)
    }
}

/// Reusable workspace for [`solve_with`]: one flat buffer holding the
/// `n x (n+1)` augmented matrix of the elimination, reshaped (never
/// reallocated once warm) on every call. A fitting loop that solves
/// thousands of small normal-equation systems — the Granger stage solves
/// two per candidate lag per edge — reuses one allocation instead of
/// building `n` fresh row vectors per solve.
#[derive(Debug, Clone, Default)]
pub struct SolveScratch {
    aug: Vec<f64>,
}

impl SolveScratch {
    /// Creates an empty workspace with no backing allocation yet.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Solves the linear system `A x = b` with Gaussian elimination and partial
/// pivoting. `A` must be square.
///
/// Allocates a fresh workspace per call; loops should prefer [`solve_with`].
///
/// # Errors
///
/// * [`CausalityError::DimensionMismatch`] if `A` is not square or `b` has
///   the wrong length.
/// * [`CausalityError::SingularMatrix`] if the matrix is (numerically)
///   singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    solve_with(a, b, &mut SolveScratch::new())
}

/// [`solve`] against a caller-held workspace. The elimination runs the exact
/// float operations of the seed implementation — only the storage layout of
/// the augmented matrix changed (flat rows instead of per-row `Vec`s) — so
/// results are bitwise identical regardless of scratch reuse.
///
/// # Errors
///
/// Same as [`solve`].
pub fn solve_with(a: &Matrix, b: &[f64], scratch: &mut SolveScratch) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(CausalityError::DimensionMismatch {
            context: format!(
                "solve requires a square matrix, got {}x{}",
                a.rows(),
                a.cols()
            ),
        });
    }
    if b.len() != n {
        return Err(CausalityError::DimensionMismatch {
            context: format!("rhs has {} entries for a {n}x{n} system", b.len()),
        });
    }
    // Augmented matrix, one flat row-major buffer of width n+1.
    let width = n + 1;
    let aug = &mut scratch.aug;
    aug.clear();
    aug.resize(n * width, 0.0);
    for r in 0..n {
        let row = &mut aug[r * width..(r + 1) * width];
        for (c, slot) in row.iter_mut().enumerate().take(n) {
            *slot = a.get(r, c);
        }
        row[n] = b[r];
    }

    for col in 0..n {
        // Partial pivoting.
        let mut pivot = col;
        let mut best = aug[col * width + col].abs();
        for r in col + 1..n {
            let candidate = aug[r * width + col].abs();
            if candidate > best {
                best = candidate;
                pivot = r;
            }
        }
        if best < 1e-12 {
            return Err(CausalityError::SingularMatrix);
        }
        if pivot != col {
            for c in 0..width {
                aug.swap(col * width + c, pivot * width + c);
            }
        }
        // Eliminate below.
        for r in col + 1..n {
            let factor = aug[r * width + col] / aug[col * width + col];
            if factor == 0.0 {
                continue;
            }
            let (head, tail) = aug.split_at_mut(r * width);
            let pivot_row = &head[col * width..col * width + width];
            let row = &mut tail[..width];
            for (slot, pivot_value) in row.iter_mut().zip(pivot_row.iter()).skip(col) {
                *slot -= factor * pivot_value;
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for r in (0..n).rev() {
        let row = &aug[r * width..(r + 1) * width];
        let mut acc = row[n];
        for c in r + 1..n {
            acc -= row[c] * x[c];
        }
        x[r] = acc / row[r];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        let mut m2 = m.clone();
        m2.set(1, 0, 7.0);
        assert_eq!(m2.get(1, 0), 7.0);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn transpose_swaps_dimensions() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 1), 6.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn matmul_rejects_mismatched_dimensions() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_works() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, -1.0]]).unwrap();
        let v = a.matvec(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(v, vec![7.0, 3.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn solve_simple_system() {
        // x + y = 3, x - y = 1 => x = 2, y = 1.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0]]).unwrap();
        let x = solve(&a, &[3.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 2.0], vec![1.0, 1.0]]).unwrap();
        let x = solve(&a, &[4.0, 3.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_detects_singular_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(
            solve(&a, &[1.0, 2.0]).unwrap_err(),
            CausalityError::SingularMatrix
        );
    }

    #[test]
    fn solve_rejects_non_square_or_bad_rhs() {
        let a = Matrix::zeros(2, 3);
        assert!(solve(&a, &[1.0, 2.0]).is_err());
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(solve(&a, &[1.0]).is_err());
    }

    #[test]
    fn solve_with_reused_scratch_is_bitwise_equal_to_fresh_solves() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 5.0, 2.0],
            vec![0.5, 2.0, 6.0],
        ])
        .unwrap();
        let b1 = vec![1.0, 2.0, 3.0];
        let b2 = vec![-1.0, 0.25, 7.0];
        let mut scratch = SolveScratch::new();
        let r1 = solve_with(&a, &b1, &mut scratch).unwrap();
        let r2 = solve_with(&a, &b2, &mut scratch).unwrap();
        for (got, want) in r1.iter().zip(solve(&a, &b1).unwrap().iter()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        for (got, want) in r2.iter().zip(solve(&a, &b2).unwrap().iter()) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        // Scratch also survives a size change (2x2 after 3x3).
        let small = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0]]).unwrap();
        let r = solve_with(&small, &[3.0, 1.0], &mut scratch).unwrap();
        assert!((r[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reshape_zeroed_clears_and_resizes() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        m.reshape_zeroed(3, 3);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m.get(r, c), 0.0);
            }
        }
    }

    #[test]
    fn solve_larger_well_conditioned_system() {
        // Diagonally dominant 4x4 system; verify A x = b.
        let a = Matrix::from_rows(&[
            vec![10.0, 1.0, 0.0, 2.0],
            vec![1.0, 12.0, 3.0, 0.0],
            vec![0.0, 3.0, 9.0, 1.0],
            vec![2.0, 0.0, 1.0, 11.0],
        ])
        .unwrap();
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = solve(&a, &b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (bi, yi) in b.iter().zip(back.iter()) {
            assert!((bi - yi).abs() < 1e-9);
        }
    }
}
