//! Statistical machinery behind Sieve's dependency extraction.
//!
//! Sieve identifies dependencies between the representative metrics of
//! neighbouring components with Granger-causality tests (§3.3 of the paper):
//! two linear models are fitted with ordinary least squares — one predicting
//! a metric `Y` from its own history, one predicting it from its own history
//! *and* the (time-lagged) history of another metric `X` — and compared with
//! an F-test. Non-stationary metrics (e.g. monotonically increasing
//! counters) are detected with the Augmented Dickey-Fuller test and
//! first-differenced before testing, to avoid spurious regressions.
//!
//! Everything is implemented from first principles:
//!
//! * dense linear algebra and least squares ([`linalg`], [`ols`]),
//! * the gamma/beta special functions and the F and Student-t distributions
//!   ([`dist`]),
//! * the F-test for nested models ([`ftest`]),
//! * the Augmented Dickey-Fuller unit-root test ([`adf`]),
//! * the Granger causality test itself ([`granger`]), and
//! * the shared causality engine ([`engine`]): per-series prepared state
//!   (cached ADF verdict, lazily differenced buffer, memoized restricted
//!   fits) that lets a pipeline test one series against many others without
//!   redoing the per-series work — bit-identical to the direct path.
//!
//! # Example
//!
//! ```
//! use sieve_causality::granger::{granger_causes, GrangerConfig};
//!
//! // y follows x with a delay of one step, plus a deterministic wobble.
//! let x: Vec<f64> = (0..200).map(|i| ((i as f64) * 0.35).sin()).collect();
//! let y: Vec<f64> = (0..200)
//!     .map(|i| if i == 0 { 0.0 } else { 0.8 * x[i - 1] + 0.05 * ((i as f64) * 1.3).cos() })
//!     .collect();
//! let result = granger_causes(&x, &y, &GrangerConfig::default()).unwrap();
//! assert!(result.causal, "x should Granger-cause y (p = {})", result.p_value);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adf;
pub mod dist;
pub mod engine;
pub mod ftest;
pub mod granger;
pub mod linalg;
pub mod ols;

mod error;

pub use error::CausalityError;

/// Convenient result alias for causality operations.
pub type Result<T> = std::result::Result<T, CausalityError>;
