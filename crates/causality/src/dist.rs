//! Special functions and probability distributions.
//!
//! The F-test at the heart of the Granger causality check needs the
//! cumulative distribution function of the F distribution, which in turn is
//! a regularized incomplete beta function. The ADF test reports Student-t
//! style statistics. All of it is implemented here: log-gamma (Lanczos
//! approximation), the regularized incomplete beta function (continued
//! fraction), the F and Student-t CDFs, and the standard normal CDF.

/// Natural logarithm of the gamma function (Lanczos approximation, g = 7).
///
/// Accurate to roughly 1e-13 over the positive real axis.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g=7, n=9).
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)` computed with the
/// continued-fraction expansion (Numerical Recipes `betacf`).
///
/// Returns values clamped to `[0, 1]`; `NaN` inputs yield `NaN`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x.is_nan() || a.is_nan() || b.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    // Use the symmetry relation to keep the continued fraction convergent;
    // both branches evaluate the continued fraction directly (no recursion),
    // so boundary inputs cannot loop.
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_continued_fraction(a, b, x) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - ln_front.exp() * beta_continued_fraction(b, a, 1.0 - x) / b).clamp(0.0, 1.0)
    }
}

/// Continued fraction for the incomplete beta function (Lentz's algorithm).
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// CDF of the F distribution with `d1` and `d2` degrees of freedom.
///
/// Returns 0 for non-positive `f`; degrees of freedom must be positive
/// (non-positive values yield `NaN`).
pub fn f_cdf(f: f64, d1: f64, d2: f64) -> f64 {
    if d1 <= 0.0 || d2 <= 0.0 {
        return f64::NAN;
    }
    if f <= 0.0 {
        return 0.0;
    }
    let x = d1 * f / (d1 * f + d2);
    incomplete_beta(d1 / 2.0, d2 / 2.0, x)
}

/// Survival function (upper tail probability) of the F distribution.
pub fn f_sf(f: f64, d1: f64, d2: f64) -> f64 {
    1.0 - f_cdf(f, d1, d2)
}

/// CDF of Student's t distribution with `df` degrees of freedom.
///
/// Non-positive `df` yields `NaN`.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    if df <= 0.0 {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// CDF of the standard normal distribution (via `erf`-style rational
/// approximation with ~1e-7 absolute error).
pub fn normal_cdf(z: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26 applied to erf.
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.3275911 * x.abs());
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn ln_gamma_matches_known_values() {
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-10); // gamma(5) = 4! = 24
        close(ln_gamma(0.5), (std::f64::consts::PI.sqrt()).ln(), 1e-10);
        // ln(Γ(10.5)) = ln(9.5 · 8.5 · … · 0.5 · √π)
        close(ln_gamma(10.5), 13.940_625_219_4, 1e-6);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // Symmetric case I_{0.5}(a, a) = 0.5.
        close(incomplete_beta(4.0, 4.0, 0.5), 0.5, 1e-10);
    }

    #[test]
    fn incomplete_beta_uniform_special_case() {
        // I_x(1, 1) = x.
        for x in [0.1, 0.25, 0.5, 0.9] {
            close(incomplete_beta(1.0, 1.0, x), x, 1e-10);
        }
        // I_x(1, b) = 1 - (1-x)^b.
        close(incomplete_beta(1.0, 3.0, 0.3), 1.0 - 0.7f64.powi(3), 1e-10);
    }

    #[test]
    fn f_cdf_matches_reference_values() {
        // Reference values from standard F tables / scipy.stats.f.cdf.
        close(f_cdf(1.0, 1.0, 1.0), 0.5, 1e-9);
        close(f_cdf(161.4476, 1.0, 1.0), 0.95, 1e-4);
        close(f_cdf(4.964603, 1.0, 10.0), 0.95, 1e-4);
        close(f_cdf(3.098391, 3.0, 20.0), 0.95, 1e-4);
        close(f_cdf(2.533555, 5.0, 30.0), 0.95, 1e-4);
    }

    #[test]
    fn f_sf_is_complement_of_cdf() {
        for f in [0.5, 1.0, 2.5, 10.0] {
            close(f_sf(f, 4.0, 17.0), 1.0 - f_cdf(f, 4.0, 17.0), 1e-12);
        }
        assert_eq!(f_cdf(-1.0, 2.0, 2.0), 0.0);
        assert!(f_cdf(1.0, 0.0, 2.0).is_nan());
    }

    #[test]
    fn t_cdf_matches_reference_values() {
        close(t_cdf(0.0, 10.0), 0.5, 1e-10);
        // Standard t table: P(T <= 1.812) = 0.95 for df = 10.
        close(t_cdf(1.8124611, 10.0), 0.95, 1e-5);
        close(t_cdf(-1.8124611, 10.0), 0.05, 1e-5);
        // Large df approaches the normal distribution.
        close(t_cdf(1.959964, 100000.0), 0.975, 1e-4);
    }

    #[test]
    fn normal_cdf_matches_reference_values() {
        close(normal_cdf(0.0), 0.5, 1e-7);
        close(normal_cdf(1.959964), 0.975, 1e-5);
        close(normal_cdf(-1.959964), 0.025, 1e-5);
        close(normal_cdf(3.0), 0.998650, 1e-5);
    }

    #[test]
    fn cdfs_are_monotone() {
        let mut prev = 0.0;
        for i in 0..100 {
            let f = i as f64 * 0.2;
            let v = f_cdf(f, 3.0, 12.0);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
        let mut prev = 0.0;
        for i in -50..50 {
            let v = t_cdf(i as f64 * 0.2, 7.0);
            assert!(v >= prev - 1e-12);
            prev = v;
        }
    }
}
