//! Randomized property tests for the multi-tenant serving layer: however
//! tenant ingests interleave across sweeps, every published model must be
//! bit-identical to a from-scratch per-tenant `Sieve::analyze` — and
//! identical across sweep parallelism 1/4/8.
//!
//! Deterministic splitmix64 case generation (the container has no registry
//! access for `proptest`): every run checks the identical pseudo-random
//! inputs, so failures are trivially reproducible.

use sieve_core::config::SieveConfig;
use sieve_core::pipeline::Sieve;
use sieve_graph::CallGraph;
use sieve_serve::{MetricPoint, ServeConfig, SieveService};

/// Deterministic splitmix64 generator for test data.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        let out = sieve_exec::hash::splitmix64(self.0);
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        out
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }
}

const TENANTS: [&str; 4] = ["acme", "globex", "initech", "umbrella"];
const COMPONENTS: [&str; 3] = ["web", "api", "db"];
const METRICS: [&str; 3] = ["requests", "latency", "saturation"];

fn analysis_config() -> SieveConfig {
    SieveConfig::default()
        .with_cluster_range(2, 3)
        .with_parallelism(1)
}

fn tenant_graph() -> CallGraph {
    let mut graph = CallGraph::new();
    graph.record_calls("web", "api", 50);
    graph.record_calls("api", "db", 80);
    graph
}

/// One pseudo-random ingest wave for one tenant: a contiguous run of ticks
/// for a random subset of its series, values shaped per (component,
/// metric) so clusters and Granger edges are realistic.
fn wave(rng: &mut Rng, tenant_index: usize, from_tick: u64, ticks: u64) -> Vec<MetricPoint> {
    let mut points = Vec::new();
    for (ci, component) in COMPONENTS.iter().enumerate() {
        for (mi, metric) in METRICS.iter().enumerate() {
            // Roughly one series in five sits a wave out, so deltas touch
            // varying component subsets.
            if rng.unit() < 0.2 {
                continue;
            }
            let phase = tenant_index as f64 * 0.9 + ci as f64 * 0.4 + mi as f64 * 0.2;
            for t in from_tick..from_tick + ticks {
                let x = t as f64 * 0.15 + phase;
                let noise = (rng.unit() - 0.5) * 0.2;
                let value = match mi {
                    0 => 30.0 + 18.0 * x.sin() + noise,
                    1 => 10.0 + 6.0 * (x - 0.5).sin() + noise,
                    _ => 5.0 + 2.0 * (0.5 * x).cos() + noise,
                };
                points.push(MetricPoint::new(*component, *metric, t * 500, value));
            }
        }
    }
    points
}

/// Runs the full interleaved-ingest scenario on a service with the given
/// sweep parallelism and returns the final per-tenant models.
fn run_scenario(sweep_parallelism: usize) -> Vec<sieve_core::model::SieveModel> {
    // Same seed for every parallelism degree: identical ingest streams.
    let mut rng = Rng::new(0x5EEDED);
    let service = SieveService::new(
        ServeConfig::default()
            .with_shard_count(8)
            .with_sweep_parallelism(sweep_parallelism)
            .with_analysis(analysis_config()),
    )
    .unwrap();
    for tenant in TENANTS {
        service.create_tenant(tenant, tenant_graph()).unwrap();
    }

    // Interleave: several sweeps, each preceded by ingest waves for a
    // random subset of tenants, with tenants progressing at different
    // speeds (per-tenant tick cursors).
    let mut cursors = [0u64; TENANTS.len()];
    for _sweep in 0..5 {
        for (i, tenant) in TENANTS.iter().enumerate() {
            if rng.unit() < 0.35 {
                continue; // this tenant sits the sweep out
            }
            let ticks = rng.usize_in(8, 30) as u64;
            let points = wave(&mut rng, i, cursors[i], ticks);
            service.ingest(tenant, &points).unwrap();
            cursors[i] += ticks;
        }
        service.refresh_dirty().unwrap();
    }
    // A final sweep catches any tenant that ingested in the last round.
    service.refresh_dirty().unwrap();

    TENANTS
        .iter()
        .map(|tenant| {
            (*service
                .model(tenant)
                .unwrap()
                .unwrap_or_else(|| panic!("tenant {tenant} never published")))
            .clone()
        })
        .collect()
}

#[test]
fn sharded_sweeps_match_per_tenant_batch_analysis_at_any_parallelism() {
    let serial = run_scenario(1);

    // The service's published models equal a from-scratch batch analysis
    // of each tenant's final store. Re-run the scenario to rebuild the
    // stores (deterministic), then batch-analyse.
    let mut rng = Rng::new(0x5EEDED);
    let reference = SieveService::new(
        ServeConfig::default()
            .with_sweep_parallelism(1)
            .with_analysis(analysis_config()),
    )
    .unwrap();
    for tenant in TENANTS {
        reference.create_tenant(tenant, tenant_graph()).unwrap();
    }
    let mut cursors = [0u64; TENANTS.len()];
    for _sweep in 0..5 {
        for (i, tenant) in TENANTS.iter().enumerate() {
            if rng.unit() < 0.35 {
                continue;
            }
            let ticks = rng.usize_in(8, 30) as u64;
            let points = wave(&mut rng, i, cursors[i], ticks);
            reference.ingest(tenant, &points).unwrap();
            cursors[i] += ticks;
        }
        // No sweeps here: the reference only accumulates data.
    }
    let sieve = Sieve::new(analysis_config());
    for (i, tenant) in TENANTS.iter().enumerate() {
        let store = reference.store(tenant).unwrap();
        let batch = sieve.analyze(tenant, &store, &tenant_graph()).unwrap();
        assert_eq!(
            serial[i], batch,
            "tenant {tenant}: served model must equal per-tenant batch analysis"
        );
    }

    // And sweep parallelism never changes a bit of any tenant's model.
    for parallelism in [4usize, 8] {
        let parallel = run_scenario(parallelism);
        for (i, tenant) in TENANTS.iter().enumerate() {
            assert_eq!(
                serial[i], parallel[i],
                "tenant {tenant}: sweep parallelism {parallelism} changed the model"
            );
        }
    }
}
