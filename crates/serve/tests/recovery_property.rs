//! Randomized crash-recovery property test.
//!
//! Each scenario drives a durable [`SieveService`] through a
//! splitmix64-generated interleaving of tenant-admin and ingest
//! operations, "crashes" it (drops the service and, depending on the
//! scenario, truncates a shard log at a random offset or flips a random
//! bit in it), and then recovers the directory at sweep parallelism 1, 4
//! and 8. The properties checked:
//!
//! * Recovery never panics and never produces a silently wrong model:
//!   every recovered tenant's published model is **bit-identical** to the
//!   one an uncrashed oracle service publishes when fed exactly the
//!   surviving operation prefix.
//! * Loss is frame-atomic: a tenant survives whole ingest batches or
//!   loses them entirely — `points_replayed` always lands on a batch
//!   boundary of the original operation stream.
//! * The sweep parallelism of the recovered service changes nothing: all
//!   three recoveries publish identical models.
//! * Degraded tenants re-converge: after recovery, resumed ingest brings
//!   the recovered service and the oracle to identical models again.

use sieve_core::config::{RetentionPolicy, SieveConfig};
use sieve_graph::CallGraph;
use sieve_serve::{DurabilityConfig, FsyncPolicy, MetricPoint, ServeConfig, SieveService};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];
const PARALLELISMS: [usize; 3] = [1, 4, 8];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn analysis_config() -> SieveConfig {
    SieveConfig::default()
        .with_cluster_range(2, 2)
        .with_parallelism(1)
}

fn serve_config(dir: &Path, snapshot_every: u64, sweep_parallelism: usize) -> ServeConfig {
    ServeConfig::default()
        .with_shard_count(4)
        .with_sweep_parallelism(sweep_parallelism)
        .with_analysis(analysis_config())
        .with_durability(
            DurabilityConfig::new(dir)
                .with_fsync(FsyncPolicy::EveryN(4))
                .with_snapshot_every_events(snapshot_every),
        )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sieve-recovery-prop-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// One randomly generated ingest batch: 4 series, `ticks` samples each,
/// with an occasional deliberately stale (rejected) point thrown in so the
/// accepted-points-only log discipline is part of what the oracle check
/// covers.
fn batch(tenant_bias: f64, next_tick: &mut u64, rng: &mut u64) -> Vec<MetricPoint> {
    let ticks = 6 + splitmix64(rng) % 6;
    let start = *next_tick;
    *next_tick += ticks;
    let mut points = Vec::new();
    for t in start..start + ticks {
        let x = t as f64 * 0.17 + tenant_bias;
        points.push(MetricPoint::new("web", "requests", t * 500, x.sin() * 4.0));
        points.push(MetricPoint::new("web", "latency", t * 500, x.cos() * 9.0));
        points.push(MetricPoint::new("db", "queries", t * 500, (x * 0.5).sin()));
        points.push(MetricPoint::new("db", "io_wait", t * 500, (x * 0.5).cos()));
    }
    if splitmix64(rng) % 4 == 0 && start > 0 {
        // A non-monotone straggler: rejected live, never logged, and
        // rejected identically by the oracle.
        points.push(MetricPoint::new("web", "requests", 0, 42.0));
    }
    points
}

fn graph_v1() -> CallGraph {
    let mut graph = CallGraph::new();
    graph.record_calls("web", "db", 100);
    graph
}

fn graph_v2() -> CallGraph {
    let mut graph = CallGraph::new();
    graph.record_calls("web", "db", 250);
    graph.record_calls("db", "web", 40);
    graph
}

/// The deterministic operation history of one scenario, so the oracle can
/// replay exactly the surviving prefix.
struct History {
    /// Per-tenant accepted point count of each ingest batch, in order.
    accepted: BTreeMap<&'static str, Vec<u64>>,
    /// Per-tenant raw batches, in order (the oracle re-ingests these).
    batches: BTreeMap<&'static str, Vec<Vec<MetricPoint>>>,
    /// Per-tenant tick cursor, for resumed ingest after recovery.
    next_tick: BTreeMap<&'static str, u64>,
}

/// Runs the setup phase (tenant creation + admin events) on any service —
/// the live durable one and every oracle run the same code path.
fn run_setup(service: &SieveService) {
    service.create_tenant("alpha", graph_v1()).unwrap();
    service
        .create_tenant_with_retention("beta", graph_v1(), RetentionPolicy::windowed(100))
        .unwrap();
    service.create_tenant("gamma", graph_v2()).unwrap();
    service.set_call_graph("alpha", graph_v2()).unwrap();
    service
        .set_retention("gamma", RetentionPolicy::windowed(80))
        .unwrap();
}

/// Runs the randomized ingest phase, recording what each tenant accepted.
fn run_ingest(service: &SieveService, seed: u64, rounds: usize) -> History {
    let mut history = History {
        accepted: BTreeMap::new(),
        batches: BTreeMap::new(),
        next_tick: TENANTS.iter().map(|t| (*t, 0u64)).collect(),
    };
    let mut rng = seed;
    for _ in 0..rounds {
        let tenant = TENANTS[(splitmix64(&mut rng) % TENANTS.len() as u64) as usize];
        let bias = tenant.len() as f64 * 0.7;
        let tick = history.next_tick.get_mut(tenant).unwrap();
        let points = batch(bias, tick, &mut rng);
        let accepted = service.ingest(tenant, &points).unwrap();
        history
            .accepted
            .entry(tenant)
            .or_default()
            .push(accepted as u64);
        history.batches.entry(tenant).or_default().push(points);
    }
    history
}

/// Builds the uncrashed oracle: a purely in-memory service fed the setup
/// phase plus each tenant's surviving batch prefix.
fn oracle_for(history: &History, survived: &BTreeMap<&str, usize>) -> SieveService {
    let config = ServeConfig::default()
        .with_shard_count(4)
        .with_sweep_parallelism(1)
        .with_analysis(analysis_config());
    let oracle = SieveService::new(config).unwrap();
    run_setup(&oracle);
    for tenant in TENANTS {
        let keep = survived.get(tenant).copied().unwrap_or(0);
        if let Some(batches) = history.batches.get(tenant) {
            for points in batches.iter().take(keep) {
                oracle.ingest(tenant, points).unwrap();
            }
        }
    }
    oracle.refresh_all().unwrap();
    oracle
}

/// Maps each tenant's replayed point count back to a batch-boundary prefix
/// of its ingest history — panics if the count does not land exactly on a
/// boundary (loss must be frame-atomic).
fn surviving_batches(
    history: &History,
    report: &sieve_serve::RecoveryReport,
) -> BTreeMap<&'static str, usize> {
    let mut survived = BTreeMap::new();
    for tenant in TENANTS {
        let replayed = report
            .tenant(tenant)
            .map(sieve_serve::TenantRecovery::points_replayed)
            .unwrap_or(0);
        let sizes = history.accepted.get(tenant).cloned().unwrap_or_default();
        let mut sum = 0u64;
        let mut count = 0usize;
        for size in &sizes {
            if sum == replayed {
                break;
            }
            sum += size;
            count += 1;
        }
        assert_eq!(
            sum, replayed,
            "{tenant}: {replayed} replayed points do not land on a batch boundary of {sizes:?}"
        );
        survived.insert(tenant, count);
    }
    survived
}

fn models_of(
    service: &SieveService,
) -> BTreeMap<&'static str, Option<sieve_core::model::SieveModel>> {
    TENANTS
        .iter()
        .map(|t| (*t, service.model(t).unwrap().map(|m| (*m).clone())))
        .collect()
}

enum Corruption {
    None,
    TruncateTail,
    BitFlip,
}

/// Corrupts one shard log at a random offset strictly after the setup
/// phase (so tenant creation records always survive and the surviving
/// prefix stays oracle-computable). Returns false if no shard had any
/// post-setup bytes to corrupt.
fn corrupt(dir: &Path, setup_sizes: &[u64], kind: &Corruption, rng: &mut u64) -> bool {
    let candidates: Vec<(usize, u64, u64)> = (0..setup_sizes.len())
        .filter_map(|shard| {
            let path = dir.join(sieve_wal::log_file_name(shard));
            let len = std::fs::metadata(&path).ok()?.len();
            (len > setup_sizes[shard]).then_some((shard, setup_sizes[shard], len))
        })
        .collect();
    let Some(&(shard, setup_len, len)) = candidates
        .get((splitmix64(rng) % candidates.len().max(1) as u64) as usize)
        .or(candidates.first())
    else {
        return false;
    };
    let path = dir.join(sieve_wal::log_file_name(shard));
    let offset = setup_len + 1 + splitmix64(rng) % (len - setup_len - 1).max(1);
    let mut bytes = std::fs::read(&path).unwrap();
    match kind {
        Corruption::None => return true,
        Corruption::TruncateTail => bytes.truncate(offset as usize),
        Corruption::BitFlip => bytes[offset as usize - 1] ^= 1 << (splitmix64(rng) % 8),
    }
    std::fs::write(&path, &bytes).unwrap();
    true
}

fn run_scenario(index: u64, corruption: Corruption, snapshot_every: u64) {
    let tag = format!("s{index}");
    let dir = temp_dir(&tag);
    let seed = 0x5EED_0000 + index;

    let service = SieveService::new(serve_config(&dir, snapshot_every, 1)).unwrap();
    run_setup(&service);
    let setup_sizes: Vec<u64> = (0..4)
        .map(|shard| {
            std::fs::metadata(dir.join(sieve_wal::log_file_name(shard)))
                .map(|m| m.len())
                .unwrap_or(0)
        })
        .collect();
    let mut history = run_ingest(&service, seed, 12);
    service.refresh_all().unwrap();
    let live = models_of(&service);
    drop(service);

    let mut rng = seed ^ 0xC0FF_EE00;
    if !matches!(corruption, Corruption::None)
        && !corrupt(&dir, &setup_sizes, &corruption, &mut rng)
    {
        // Nothing to corrupt (all ingest landed in snapshots) — still a
        // valid clean-recovery scenario.
    }

    // Recover the same crashed directory at every parallelism degree.
    // `recover` re-anchors the directory (fresh snapshot, truncated log),
    // so each degree works on its own copy.
    let mut per_parallelism = Vec::new();
    for (i, &parallelism) in PARALLELISMS.iter().enumerate() {
        let copy = temp_dir(&format!("{tag}-p{i}"));
        copy_dir(&dir, &copy);
        let (recovered, report) =
            SieveService::recover(serve_config(&copy, snapshot_every, parallelism)).unwrap();
        recovered.refresh_all().unwrap();
        per_parallelism.push((recovered, report, copy));
    }

    let (recovered, report, _) = &per_parallelism[0];
    let survived = if matches!(corruption, Corruption::None) {
        assert!(report.is_clean(), "scenario {index}: {report}");
        TENANTS
            .iter()
            .map(|t| (*t, history.batches.get(t).map_or(0, Vec::len)))
            .collect()
    } else {
        surviving_batches(&history, report)
    };

    // Property 1: bit-identical to the uncrashed oracle of the surviving
    // prefix (for clean scenarios that oracle saw everything, so this also
    // proves recovered == live).
    let oracle = oracle_for(&history, &survived);
    let oracle_models = models_of(&oracle);
    let recovered_models = models_of(recovered);
    assert_eq!(
        recovered_models, oracle_models,
        "scenario {index}: recovered models diverge from the oracle"
    );
    if matches!(corruption, Corruption::None) {
        assert_eq!(
            recovered_models, live,
            "scenario {index}: clean recovery changed a model"
        );
    }

    // Property 2: sweep parallelism changes nothing.
    for (other, other_report, _) in &per_parallelism[1..] {
        assert_eq!(models_of(other), recovered_models, "scenario {index}");
        assert_eq!(other_report, report, "scenario {index}: reports diverge");
    }

    // Property 3: the recovered service re-converges once ingest resumes —
    // feed both sides the same fresh batches and compare again.
    let mut resume_rng = seed ^ 0x0DD5_EED5;
    for tenant in TENANTS {
        let bias = tenant.len() as f64 * 0.7;
        let tick = history.next_tick.get_mut(tenant).unwrap();
        let points = batch(bias, tick, &mut resume_rng);
        recovered.ingest(tenant, &points).unwrap();
        oracle.ingest(tenant, &points).unwrap();
    }
    recovered.refresh_all().unwrap();
    oracle.refresh_all().unwrap();
    assert_eq!(
        models_of(recovered),
        models_of(&oracle),
        "scenario {index}: no re-convergence after resumed ingest"
    );

    let _ = std::fs::remove_dir_all(&dir);
    for (_, _, copy) in &per_parallelism {
        let _ = std::fs::remove_dir_all(copy);
    }
}

#[test]
fn clean_crash_recovery_is_bit_identical() {
    run_scenario(1, Corruption::None, 1_000_000);
    run_scenario(2, Corruption::None, 1_000_000);
}

#[test]
fn clean_recovery_through_snapshots_is_bit_identical() {
    run_scenario(3, Corruption::None, 4);
    run_scenario(4, Corruption::None, 2);
}

#[test]
fn truncated_tails_lose_whole_frames_and_recover_the_prefix() {
    run_scenario(5, Corruption::TruncateTail, 1_000_000);
    run_scenario(6, Corruption::TruncateTail, 1_000_000);
}

#[test]
fn bit_flips_are_detected_and_cost_exactly_the_corrupt_suffix() {
    run_scenario(7, Corruption::BitFlip, 1_000_000);
    run_scenario(8, Corruption::BitFlip, 1_000_000);
}
