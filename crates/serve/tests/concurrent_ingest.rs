//! Multi-threaded durable-ingest property test.
//!
//! N writer threads ingest interleaved batches for disjoint tenant
//! partitions of one durable service while a background thread runs
//! `refresh_dirty` sweeps the whole time — the ingest dataplane at its
//! most contended: concurrent stores, cross-thread WAL group commit,
//! snapshot cadence trips racing writers, sweeps draining deltas
//! mid-stream. The properties checked:
//!
//! * Every point lands: each tenant's refreshed model is **bit-identical**
//!   to a single-threaded oracle service fed the same per-tenant batch
//!   sequence (batches of one tenant are issued in order by its one
//!   writer, so the oracle stream is well-defined however threads
//!   interleave across tenants).
//! * Durability survives the interleaving: dropping the service and
//!   recovering the directory reproduces the live models bit-identically,
//!   with a clean recovery report.
//!
//! Deterministic splitmix64 data generation, like the sibling property
//! suites (the container has no registry access for `proptest`).

use sieve_core::config::SieveConfig;
use sieve_graph::CallGraph;
use sieve_serve::{DurabilityConfig, FsyncPolicy, MetricPoint, ServeConfig, SieveService};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 4;
const TENANTS: usize = 8;
const BATCHES_PER_TENANT: u64 = 12;
const TICKS_PER_BATCH: u64 = 8;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn tenant_name(tenant: usize) -> String {
    format!("tenant-{tenant:02}")
}

fn graph() -> CallGraph {
    let mut graph = CallGraph::new();
    graph.record_calls("web", "db", 100);
    graph
}

/// One tenant's batch `round`: four series advancing monotonically, with
/// one deliberately out-of-order point per batch so the rejected-index
/// skip path of the streaming WAL encoder runs under contention too.
fn batch(tenant: usize, round: u64) -> Vec<MetricPoint> {
    let mut seed = (tenant as u64) << 32 | round;
    let mut points = Vec::new();
    for tick in 0..TICKS_PER_BATCH {
        let t = round * TICKS_PER_BATCH + tick;
        let x = splitmix64(&mut seed) as f64 / u64::MAX as f64;
        points.push(MetricPoint::new("web", "requests", t * 500, x.sin() * 4.0));
        points.push(MetricPoint::new("web", "latency", t * 500, x.cos() * 9.0));
        points.push(MetricPoint::new("db", "queries", t * 500, (x * 0.5).sin()));
        points.push(MetricPoint::new("db", "io_wait", t * 500, (x * 0.5).cos()));
    }
    // A stale timestamp the store must reject (and the WAL must skip).
    points.push(MetricPoint::new("web", "requests", round * 250, -1.0));
    points
}

fn config(dir: &Path) -> ServeConfig {
    ServeConfig::default()
        .with_shard_count(4)
        .with_sweep_parallelism(4)
        .with_analysis(
            SieveConfig::default()
                .with_cluster_range(2, 2)
                .with_parallelism(1),
        )
        .with_durability(
            DurabilityConfig::new(dir)
                .with_fsync(FsyncPolicy::EveryN(4))
                .with_snapshot_every_events(16),
        )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sieve-concurrent-ingest-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn concurrent_writers_match_the_single_threaded_oracle_and_recover() {
    let dir = temp_dir("oracle");
    let service = Arc::new(SieveService::new(config(&dir)).unwrap());
    for tenant in 0..TENANTS {
        service.create_tenant(tenant_name(tenant), graph()).unwrap();
    }

    // Writer i owns tenants { t | t % WRITERS == i }: per-tenant batch
    // order is fixed, cross-tenant interleaving is whatever the scheduler
    // does. A background sweeper refreshes concurrently throughout.
    let sweeping = Arc::new(AtomicBool::new(true));
    let sweeper = {
        let service = Arc::clone(&service);
        let sweeping = Arc::clone(&sweeping);
        std::thread::spawn(move || {
            while sweeping.load(Ordering::Relaxed) {
                service.refresh_dirty().unwrap();
                std::thread::yield_now();
            }
        })
    };
    std::thread::scope(|scope| {
        for writer in 0..WRITERS {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                for round in 0..BATCHES_PER_TENANT {
                    for tenant in (writer..TENANTS).step_by(WRITERS) {
                        let points = batch(tenant, round);
                        let accepted = service.ingest(&tenant_name(tenant), &points).unwrap();
                        assert_eq!(accepted, points.len() - 1, "only the stale point drops");
                    }
                }
            });
        }
    });
    sweeping.store(false, Ordering::Relaxed);
    sweeper.join().unwrap();
    service.refresh_dirty().unwrap();

    // Oracle: same batches, one thread, fresh (non-durable) service.
    let mut oracle_config = config(&dir);
    oracle_config.durability = None;
    let oracle = SieveService::new(oracle_config).unwrap();
    for tenant in 0..TENANTS {
        oracle.create_tenant(tenant_name(tenant), graph()).unwrap();
        for round in 0..BATCHES_PER_TENANT {
            oracle
                .ingest(&tenant_name(tenant), &batch(tenant, round))
                .unwrap();
        }
    }
    oracle.refresh_dirty().unwrap();
    for tenant in 0..TENANTS {
        let name = tenant_name(tenant);
        assert_eq!(
            *service.model(&name).unwrap().unwrap(),
            *oracle.model(&name).unwrap().unwrap(),
            "{name}: concurrent ingest must equal the single-threaded oracle"
        );
    }

    // The dataplane counters are observable: every accepted frame was
    // committed, and with 4 writers racing 4 shards at EveryN(4) fsync,
    // commits are far fewer than frames on any multi-core box (equality
    // is allowed — a 1-core CI container serializes the writers).
    let stats = service.stats();
    assert!(
        stats.fsync_calls > 0,
        "EveryN fsync must have synced something"
    );

    // Crash + recover: the recovered service republishes bit-identical
    // models for every tenant.
    let live: Vec<_> = (0..TENANTS)
        .map(|tenant| service.model(&tenant_name(tenant)).unwrap().unwrap())
        .collect();
    drop(sweeping);
    drop(service);
    let (recovered, report) = SieveService::recover(config(&dir)).unwrap();
    assert!(report.is_clean(), "{report}");
    recovered.refresh_dirty().unwrap();
    for (tenant, live_model) in live.iter().enumerate() {
        let name = tenant_name(tenant);
        assert_eq!(
            *recovered.model(&name).unwrap().unwrap(),
            **live_model,
            "{name}: recovery must reproduce the live model bit-identically"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_admin_and_ingest_keep_per_tenant_apply_order() {
    // One tenant, one writer streaming batches, another thread tightening
    // and loosening retention concurrently: whatever the interleaving,
    // recovery must replay to exactly the live store (the per-tenant
    // apply-order lock is what makes the logged order match).
    use sieve_core::config::RetentionPolicy;
    let dir = temp_dir("admin-race");
    let service = Arc::new(SieveService::new(config(&dir)).unwrap());
    service.create_tenant("acme", graph()).unwrap();

    std::thread::scope(|scope| {
        let writer = Arc::clone(&service);
        scope.spawn(move || {
            for round in 0..BATCHES_PER_TENANT {
                writer.ingest("acme", &batch(0, round)).unwrap();
            }
        });
        let admin = Arc::clone(&service);
        scope.spawn(move || {
            for i in 0..6u64 {
                let window = 40 + i * 8;
                admin
                    .set_retention("acme", RetentionPolicy::windowed(window as usize))
                    .unwrap();
                std::thread::yield_now();
            }
        });
    });
    service.refresh_dirty().unwrap();
    let live = service.model("acme").unwrap().unwrap();
    drop(service);

    let (recovered, report) = SieveService::recover(config(&dir)).unwrap();
    assert!(report.is_clean(), "{report}");
    recovered.refresh_dirty().unwrap();
    assert_eq!(
        *recovered.model("acme").unwrap().unwrap(),
        *live,
        "replay must reproduce the admin/ingest interleaving exactly"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
