//! Multi-tenant sharded serving layer for Sieve analysis.
//!
//! The paper's two case studies consume the Sieve model *as a service*:
//! ShareLatex autoscaling polls it for the guiding metric, OpenStack RCA
//! asks it for dependency graphs of two deployments. This crate is the
//! layer that serves many such consumers at once: a
//! [`service::SieveService`] owns N tenants — each an isolated
//! `(MetricStore, AnalysisSession)` pair — behind a sharded registry, and
//! multiplexes their refreshes over the shared deterministic executor.
//!
//! # Architecture
//!
//! * **Sharded registry** (internal): tenant name → shard
//!   via the deterministic [`sieve_exec::hash::shard_index`] routing hash
//!   over a fixed power-of-two shard count, one `RwLock`-protected map per
//!   shard. Shard locks guard only the name→tenant lookup; all per-tenant
//!   state carries finer locks, so ingest on tenant A never contends with
//!   analysis on tenant B.
//! * **Batched ingestion** ([`service::SieveService::ingest`]): appends
//!   [`MetricPoint`]s through the store's append/delta API — every
//!   accepted point advances a content fingerprint and marks its series
//!   touched.
//! * **Dirty sweep** ([`service::SieveService::refresh_dirty`]): drains
//!   every tenant's [`sieve_simulator::store::StoreDelta`] and refreshes
//!   exactly the dirty tenants through one
//!   [`sieve_exec::par_map_chunks`] fan-out in sorted tenant order —
//!   deterministic across sweep parallelism degrees, and bit-identical to
//!   per-tenant batch analysis (the incremental-session guarantee,
//!   asserted by the `serve` bench and property tests).
//! * **Model snapshots** ([`service::SieveService::model`]): each refresh
//!   publishes an `Arc<SieveModel>` swap; readers clone the `Arc` under a
//!   momentary read lock and never block (or get blocked by) writers.
//! * **Aggregated stats** ([`stats::ServiceStats`]): per-tenant
//!   [`sieve_core::session::SessionStats`] summed across the fleet, so
//!   "only dirty work was redone" stays observable at service scale.
//! * **Crash safety** (opt-in via [`config::DurabilityConfig`]): every
//!   accepted ingest batch and tenant-admin event is group-committed to a
//!   per-shard write-ahead log with periodic atomic snapshots, and
//!   [`service::SieveService::recover`] replays snapshot + log tail on
//!   boot through the ordinary store machinery — the recovered service
//!   publishes models bit-identical to the pre-crash live ones, and a
//!   torn or bit-flipped log tail degrades exactly the affected tenants
//!   with a precisely accounted lost suffix
//!   ([`recovery::RecoveryReport`]).
//!
//! # Example
//!
//! ```
//! use sieve_core::config::SieveConfig;
//! use sieve_graph::CallGraph;
//! use sieve_serve::{MetricPoint, ServeConfig, SieveService};
//!
//! let config = ServeConfig::default()
//!     .with_analysis(SieveConfig::default().with_cluster_range(2, 2).with_parallelism(1));
//! let service = SieveService::new(config)?;
//! service.create_tenant("tenant-a", CallGraph::new())?;
//! let points: Vec<MetricPoint> = (0..60)
//!     .map(|t| MetricPoint::new("web", "load", t * 500, (t as f64 * 0.3).sin()))
//!     .collect();
//! service.ingest("tenant-a", &points)?;
//! service.refresh_dirty()?;
//! assert!(service.model("tenant-a")?.is_some());
//! # Ok::<(), sieve_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod recovery;
pub mod service;
pub mod stats;

mod error;
mod registry;
mod tenant;

pub use config::{DurabilityConfig, ServeConfig};
pub use error::ServeError;
pub use recovery::{LostSuffix, RecoveryReport, TenantRecovery};
pub use service::SieveService;
pub use stats::ServiceStats;
pub use tenant::MetricPoint;

// Re-exported so durable-serving callers can pick an fsync policy
// without depending on `sieve-wal` directly.
pub use sieve_wal::FsyncPolicy;

/// Convenient result alias for serving-layer operations.
pub type Result<T> = std::result::Result<T, ServeError>;
