//! The sharded tenant registry.

use crate::tenant::Tenant;
use crate::{Result, ServeError};
use sieve_exec::hash::shard_index;
use sieve_exec::Name;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A fixed-shard-count, hash-routed map from tenant name to tenant state.
///
/// Every tenant name routes to one of `shard_count` (a power of two)
/// shards via the deterministic [`shard_index`] hash, and each shard is an
/// independently locked `HashMap` — so operations on tenants in different
/// shards (an ingest for tenant A, a lookup for tenant B) never touch the
/// same lock. Shard locks are held only for map operations, never while a
/// tenant's store or session is being worked on: the maps hand out
/// `Arc<Tenant>` handles and the per-tenant state carries its own, finer
/// locks.
#[derive(Debug)]
pub(crate) struct ShardedRegistry {
    shards: Box<[Shard]>,
    /// Cached result of [`ShardedRegistry::all_sorted`]. Every sweep and
    /// every `stats()` call needs the full sorted tenant list, but the
    /// list only changes on admin operations — so the sort (and the N
    /// `Arc` clones behind it) runs once per admin change instead of once
    /// per sweep. Invalidated by [`ShardedRegistry::insert`] and, via
    /// [`ShardedRegistry::invalidate_sorted`], by admin mutations that
    /// change what a sweep must observe about a tenant (today: retention
    /// changes).
    sorted: RwLock<Option<Arc<Vec<Arc<Tenant>>>>>,
    /// Bumped on every invalidation (under the `sorted` write lock). A
    /// rebuild records the version before reading the shard maps and
    /// fills the cache only if it is unchanged — so a list built
    /// concurrently with an insert can never be cached as current.
    sorted_version: AtomicU64,
}

/// One independently locked slice of the registry.
type Shard = RwLock<HashMap<Name, Arc<Tenant>>>;

impl ShardedRegistry {
    /// Creates a registry with `shard_count` shards (must be a power of
    /// two, validated by the service configuration before this runs).
    pub(crate) fn new(shard_count: usize) -> Self {
        let shards = (0..shard_count)
            .map(|_| RwLock::new(HashMap::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shards,
            sorted: RwLock::new(None),
            sorted_version: AtomicU64::new(0),
        }
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[shard_index(name, self.shards.len())]
    }

    /// Inserts a new tenant.
    ///
    /// # Errors
    ///
    /// [`ServeError::DuplicateTenant`] when the name is already registered.
    pub(crate) fn insert(&self, tenant: Arc<Tenant>) -> Result<()> {
        let mut shard = self
            .shard(tenant.name.as_str())
            .write()
            .expect("registry shard poisoned");
        if shard.contains_key(&tenant.name) {
            return Err(ServeError::DuplicateTenant {
                tenant: tenant.name.to_string(),
            });
        }
        shard.insert(tenant.name.clone(), tenant);
        drop(shard);
        self.invalidate_sorted();
        Ok(())
    }

    /// Drops the cached sorted tenant snapshot; the next
    /// [`ShardedRegistry::all_sorted`] rebuilds it from the live shards.
    pub(crate) fn invalidate_sorted(&self) {
        let mut cache = self.sorted.write().expect("registry sort cache poisoned");
        self.sorted_version.fetch_add(1, Ordering::Relaxed);
        *cache = None;
    }

    /// Looks a tenant up by name.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when the name is not registered.
    pub(crate) fn get(&self, name: &str) -> Result<Arc<Tenant>> {
        self.shard(name)
            .read()
            .expect("registry shard poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant {
                tenant: name.to_string(),
            })
    }

    /// Number of registered tenants (sum over shards; each shard lock is
    /// taken briefly in turn, so the count is a consistent snapshot only
    /// when no tenant is being created concurrently).
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("registry shard poisoned").len())
            .sum()
    }

    /// All tenants of one shard, sorted by name — the deterministic
    /// content of that shard's durability snapshot (the WAL layer shares
    /// this registry's shard routing, so "one log shard" and "one
    /// registry shard" are the same partition of the tenant space).
    pub(crate) fn all_in_shard(&self, shard: usize) -> Vec<Arc<Tenant>> {
        let mut tenants: Vec<Arc<Tenant>> = self.shards[shard]
            .read()
            .expect("registry shard poisoned")
            .values()
            .cloned()
            .collect();
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        tenants
    }

    /// All tenants, sorted by name. This is the deterministic input order
    /// of the refresh sweep: shard-internal iteration order is arbitrary
    /// (a `HashMap`), so the sweep sorts to make `parallelism = 1` and
    /// `parallelism = N` process identical work lists.
    ///
    /// The snapshot is cached behind an `Arc` and rebuilt only after an
    /// admin change invalidated it, so per-sweep cost is one read lock
    /// and one reference-count bump.
    pub(crate) fn all_sorted(&self) -> Arc<Vec<Arc<Tenant>>> {
        if let Some(cached) = self
            .sorted
            .read()
            .expect("registry sort cache poisoned")
            .as_ref()
        {
            return Arc::clone(cached);
        }
        let version = self.sorted_version.load(Ordering::Relaxed);
        let mut tenants: Vec<Arc<Tenant>> = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            tenants.extend(
                shard
                    .read()
                    .expect("registry shard poisoned")
                    .values()
                    .cloned(),
            );
        }
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        let tenants = Arc::new(tenants);
        let mut cache = self.sorted.write().expect("registry sort cache poisoned");
        // Fill only if no invalidation raced our build: an insert that
        // landed after we read the shard maps bumps the version before we
        // get here, and caching our (stale) list would hide the new
        // tenant until the *next* invalidation. Returning the stale list
        // to our own caller is fine — it is exactly what a call a moment
        // earlier would have seen.
        if cache.is_none() && self.sorted_version.load(Ordering::Relaxed) == version {
            *cache = Some(Arc::clone(&tenants));
        }
        tenants
    }
}
