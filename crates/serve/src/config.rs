//! Serving-layer configuration.

use sieve_core::config::SieveConfig;
use sieve_wal::FsyncPolicy;
use std::path::PathBuf;

/// Default number of registry shards (a power of two, see
/// [`ServeConfig::shard_count`]).
pub const DEFAULT_SHARD_COUNT: usize = 16;

/// Configuration of a [`crate::service::SieveService`].
///
/// Two layers of parallelism exist in the service and they are deliberately
/// separate knobs: `sweep_parallelism` fans the *cross-tenant* refresh
/// sweep out over worker threads (one tenant is one work item), while
/// `analysis.parallelism` is the degree each tenant's own
/// [`sieve_core::session::AnalysisSession`] uses *inside* its refresh.
/// Neither affects results: the sweep runs through the deterministic
/// [`sieve_exec::par_map_chunks`] executor in sorted-tenant order, and the
/// per-tenant session is serial==parallel bit-identical by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of shards of the tenant registry. Must be a power of two:
    /// tenant names route to shards by masking the low bits of the
    /// deterministic [`sieve_exec::hash::hash_str`] routing hash, so a
    /// tenant lands on the same shard in every process and across
    /// restarts. More shards mean less lock contention between tenants
    /// that happen to hash together; 16 is plenty below a few thousand
    /// tenants.
    pub shard_count: usize,
    /// Worker threads of the cross-tenant [`refresh_dirty`] sweep (one
    /// dirty tenant is one work item). Defaults to the hardware degree
    /// ([`sieve_exec::par::hardware_parallelism`], cgroup-quota aware); an
    /// explicit setting is honoured exactly by the executor.
    ///
    /// [`refresh_dirty`]: crate::service::SieveService::refresh_dirty
    pub sweep_parallelism: usize,
    /// The analysis configuration handed to every tenant created without
    /// an explicit one ([`crate::service::SieveService::create_tenant`]).
    /// Note the default `analysis.parallelism` also adapts to the
    /// hardware; services hosting many small tenants usually want
    /// per-tenant parallelism 1 and let the sweep provide the fan-out.
    pub analysis: SieveConfig,
    /// Crash safety. `None` (the default) serves purely from memory;
    /// `Some` threads every ingest and tenant-admin operation through a
    /// per-shard write-ahead log with periodic snapshots, and
    /// [`crate::service::SieveService::recover`] can rebuild the service
    /// from the directory after a crash.
    pub durability: Option<DurabilityConfig>,
}

/// Durability settings of a crash-safe service (see
/// [`ServeConfig::durability`]).
///
/// The service keeps one append-only log and one snapshot file per
/// registry shard under `dir` (shard routing is the same deterministic
/// hash in every process, so a tenant's events land in the same shard
/// file across restarts). Accepted ingest batches and tenant-admin events
/// are framed, checksummed and group-committed to the log; every
/// `snapshot_every_events` logged events the shard's tenants are
/// snapshotted atomically and the log is truncated, which bounds both
/// disk usage and replay work at recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityConfig {
    /// Directory holding the per-shard log and snapshot files. Created on
    /// service construction if absent. One directory belongs to one
    /// service: constructing a *new* service over it wipes previous state
    /// (use [`crate::service::SieveService::recover`] to resume instead).
    pub dir: PathBuf,
    /// When the shard logs fsync after a group commit
    /// ([`FsyncPolicy::Always`] by default — no acknowledged event is
    /// ever lost to a crash).
    pub fsync: FsyncPolicy,
    /// Snapshot cadence: after this many logged events a shard writes a
    /// snapshot and truncates its log. Must be at least 1. Small values
    /// bound recovery replay tightly at the cost of more snapshot I/O.
    pub snapshot_every_events: u64,
}

impl DurabilityConfig {
    /// Durability under `dir` with the safe defaults: fsync on every
    /// commit, snapshot every 1024 events.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::Always,
            snapshot_every_events: 1024,
        }
    }

    /// Builder-style setter for the fsync policy.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Builder-style setter for the snapshot cadence (clamped to at
    /// least 1).
    pub fn with_snapshot_every_events(mut self, every: u64) -> Self {
        self.snapshot_every_events = every.max(1);
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shard_count: DEFAULT_SHARD_COUNT,
            sweep_parallelism: sieve_exec::par::hardware_parallelism(),
            analysis: SieveConfig::default(),
            durability: None,
        }
    }
}

impl ServeConfig {
    /// Builder-style setter for the registry shard count (must be a power
    /// of two; validated by [`ServeConfig::validate`]).
    pub fn with_shard_count(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count;
        self
    }

    /// Builder-style setter for the cross-tenant sweep parallelism
    /// (clamped to at least 1).
    pub fn with_sweep_parallelism(mut self, sweep_parallelism: usize) -> Self {
        self.sweep_parallelism = sweep_parallelism.max(1);
        self
    }

    /// Builder-style setter for the default per-tenant analysis
    /// configuration.
    pub fn with_analysis(mut self, analysis: SieveConfig) -> Self {
        self.analysis = analysis;
        self
    }

    /// Builder-style setter for the default per-tenant store retention
    /// budget — shorthand for replacing `analysis.retention`. Tenants
    /// created after this point get a store that keeps each series' newest
    /// points in a bounded ring window (see
    /// [`sieve_core::config::RetentionPolicy`]); per-tenant overrides go
    /// through [`crate::service::SieveService::create_tenant_with_retention`]
    /// or [`crate::service::SieveService::set_retention`].
    pub fn with_retention(mut self, retention: sieve_core::config::RetentionPolicy) -> Self {
        self.analysis.retention = retention;
        self
    }

    /// Builder-style setter enabling crash-safe serving under the given
    /// durability settings.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ServeError::InvalidConfig`] when the shard count is
    /// zero or not a power of two, when the durability settings are
    /// inconsistent, or when the default analysis configuration is itself
    /// invalid.
    pub fn validate(&self) -> crate::Result<()> {
        if !self.shard_count.is_power_of_two() {
            return Err(crate::ServeError::InvalidConfig {
                reason: format!(
                    "shard_count must be a power of two, got {}",
                    self.shard_count
                ),
            });
        }
        if let Some(durability) = &self.durability {
            if durability.snapshot_every_events == 0 {
                return Err(crate::ServeError::InvalidConfig {
                    reason: "durability.snapshot_every_events must be at least 1".to_string(),
                });
            }
            if durability.dir.as_os_str().is_empty() {
                return Err(crate::ServeError::InvalidConfig {
                    reason: "durability.dir must not be empty".to_string(),
                });
            }
        }
        self.analysis
            .validate()
            .map_err(|e| crate::ServeError::InvalidConfig {
                reason: format!("default analysis config: {e}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_power_of_two() {
        let c = ServeConfig::default();
        assert!(c.shard_count.is_power_of_two());
        assert!(c.sweep_parallelism >= 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_and_validation() {
        let c = ServeConfig::default()
            .with_shard_count(4)
            .with_sweep_parallelism(0);
        assert_eq!(c.shard_count, 4);
        assert_eq!(c.sweep_parallelism, 1);
        assert!(c.validate().is_ok());

        assert!(ServeConfig::default()
            .with_shard_count(0)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_shard_count(12)
            .validate()
            .is_err());
        let bad_analysis =
            ServeConfig::default().with_analysis(SieveConfig::default().with_interval_ms(0));
        assert!(bad_analysis.validate().is_err());
    }

    #[test]
    fn durability_builders_and_validation() {
        let d = DurabilityConfig::new("/tmp/sieve-wal")
            .with_fsync(FsyncPolicy::EveryN(8))
            .with_snapshot_every_events(0);
        assert_eq!(d.fsync, FsyncPolicy::EveryN(8));
        assert_eq!(d.snapshot_every_events, 1, "cadence clamps to 1");
        let c = ServeConfig::default().with_durability(d.clone());
        assert!(c.validate().is_ok());
        assert_eq!(c.durability, Some(d));

        let zero = DurabilityConfig {
            dir: PathBuf::from("/tmp/sieve-wal"),
            fsync: FsyncPolicy::Never,
            snapshot_every_events: 0,
        };
        assert!(ServeConfig::default()
            .with_durability(zero)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_durability(DurabilityConfig::new(""))
            .validate()
            .is_err());
    }

    #[test]
    fn retention_shorthand_sets_the_analysis_policy() {
        use sieve_core::config::RetentionPolicy;
        let c = ServeConfig::default().with_retention(RetentionPolicy::windowed(128));
        assert_eq!(c.analysis.retention, RetentionPolicy::windowed(128));
        assert!(c.validate().is_ok());
        let bad = ServeConfig::default().with_retention(RetentionPolicy {
            raw_capacity: Some(0),
            tier_capacity: 8,
        });
        assert!(bad.validate().is_err());
    }
}
