//! Serving-layer configuration.

use sieve_core::config::SieveConfig;

/// Default number of registry shards (a power of two, see
/// [`ServeConfig::shard_count`]).
pub const DEFAULT_SHARD_COUNT: usize = 16;

/// Configuration of a [`crate::service::SieveService`].
///
/// Two layers of parallelism exist in the service and they are deliberately
/// separate knobs: `sweep_parallelism` fans the *cross-tenant* refresh
/// sweep out over worker threads (one tenant is one work item), while
/// `analysis.parallelism` is the degree each tenant's own
/// [`sieve_core::session::AnalysisSession`] uses *inside* its refresh.
/// Neither affects results: the sweep runs through the deterministic
/// [`sieve_exec::par_map_chunks`] executor in sorted-tenant order, and the
/// per-tenant session is serial==parallel bit-identical by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Number of shards of the tenant registry. Must be a power of two:
    /// tenant names route to shards by masking the low bits of the
    /// deterministic [`sieve_exec::hash::hash_str`] routing hash, so a
    /// tenant lands on the same shard in every process and across
    /// restarts. More shards mean less lock contention between tenants
    /// that happen to hash together; 16 is plenty below a few thousand
    /// tenants.
    pub shard_count: usize,
    /// Worker threads of the cross-tenant [`refresh_dirty`] sweep (one
    /// dirty tenant is one work item). Defaults to the hardware degree
    /// ([`sieve_exec::par::hardware_parallelism`], cgroup-quota aware); an
    /// explicit setting is honoured exactly by the executor.
    ///
    /// [`refresh_dirty`]: crate::service::SieveService::refresh_dirty
    pub sweep_parallelism: usize,
    /// The analysis configuration handed to every tenant created without
    /// an explicit one ([`crate::service::SieveService::create_tenant`]).
    /// Note the default `analysis.parallelism` also adapts to the
    /// hardware; services hosting many small tenants usually want
    /// per-tenant parallelism 1 and let the sweep provide the fan-out.
    pub analysis: SieveConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shard_count: DEFAULT_SHARD_COUNT,
            sweep_parallelism: sieve_exec::par::hardware_parallelism(),
            analysis: SieveConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Builder-style setter for the registry shard count (must be a power
    /// of two; validated by [`ServeConfig::validate`]).
    pub fn with_shard_count(mut self, shard_count: usize) -> Self {
        self.shard_count = shard_count;
        self
    }

    /// Builder-style setter for the cross-tenant sweep parallelism
    /// (clamped to at least 1).
    pub fn with_sweep_parallelism(mut self, sweep_parallelism: usize) -> Self {
        self.sweep_parallelism = sweep_parallelism.max(1);
        self
    }

    /// Builder-style setter for the default per-tenant analysis
    /// configuration.
    pub fn with_analysis(mut self, analysis: SieveConfig) -> Self {
        self.analysis = analysis;
        self
    }

    /// Builder-style setter for the default per-tenant store retention
    /// budget — shorthand for replacing `analysis.retention`. Tenants
    /// created after this point get a store that keeps each series' newest
    /// points in a bounded ring window (see
    /// [`sieve_core::config::RetentionPolicy`]); per-tenant overrides go
    /// through [`crate::service::SieveService::create_tenant_with_retention`]
    /// or [`crate::service::SieveService::set_retention`].
    pub fn with_retention(mut self, retention: sieve_core::config::RetentionPolicy) -> Self {
        self.analysis.retention = retention;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ServeError::InvalidConfig`] when the shard count is
    /// zero or not a power of two, or when the default analysis
    /// configuration is itself invalid.
    pub fn validate(&self) -> crate::Result<()> {
        if !self.shard_count.is_power_of_two() {
            return Err(crate::ServeError::InvalidConfig {
                reason: format!(
                    "shard_count must be a power of two, got {}",
                    self.shard_count
                ),
            });
        }
        self.analysis
            .validate()
            .map_err(|e| crate::ServeError::InvalidConfig {
                reason: format!("default analysis config: {e}"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_power_of_two() {
        let c = ServeConfig::default();
        assert!(c.shard_count.is_power_of_two());
        assert!(c.sweep_parallelism >= 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_and_validation() {
        let c = ServeConfig::default()
            .with_shard_count(4)
            .with_sweep_parallelism(0);
        assert_eq!(c.shard_count, 4);
        assert_eq!(c.sweep_parallelism, 1);
        assert!(c.validate().is_ok());

        assert!(ServeConfig::default()
            .with_shard_count(0)
            .validate()
            .is_err());
        assert!(ServeConfig::default()
            .with_shard_count(12)
            .validate()
            .is_err());
        let bad_analysis =
            ServeConfig::default().with_analysis(SieveConfig::default().with_interval_ms(0));
        assert!(bad_analysis.validate().is_err());
    }

    #[test]
    fn retention_shorthand_sets_the_analysis_policy() {
        use sieve_core::config::RetentionPolicy;
        let c = ServeConfig::default().with_retention(RetentionPolicy::windowed(128));
        assert_eq!(c.analysis.retention, RetentionPolicy::windowed(128));
        assert!(c.validate().is_ok());
        let bad = ServeConfig::default().with_retention(RetentionPolicy {
            raw_capacity: Some(0),
            tier_capacity: 8,
        });
        assert!(bad.validate().is_err());
    }
}
