//! What [`crate::service::SieveService::recover`] found on disk and what
//! it could (and could not) bring back.
//!
//! Recovery is per shard and per tenant: a torn or bit-flipped region in
//! one shard's log costs exactly the events that were in it — the
//! affected tenants are marked [`TenantRecovery::Recovered`] with their
//! precise lost suffix, every other tenant (and every other shard) comes
//! back [`TenantRecovery::Clean`], and the service as a whole always
//! boots. "Never a panic, never a silently wrong model": a tenant either
//! republishes a bit-identical model for its intact prefix or tells you
//! exactly how many events and points it lost.

use std::collections::BTreeMap;

/// The per-tenant outcome of a recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantRecovery {
    /// Every logged event of the tenant was replayed; the next sweep
    /// republishes a model bit-identical to the pre-crash live one.
    Clean {
        /// Points replayed from snapshot-tail log frames (points already
        /// inside the snapshot image are not counted — they were not
        /// replayed).
        points_replayed: u64,
    },
    /// The tenant came back, but a suffix of its history is gone: events
    /// after the first corrupt log frame (or events whose replay did not
    /// reproduce the logged fingerprint watermarks) were discarded. The
    /// tenant serves its intact prefix and re-converges as ingest
    /// resumes.
    Recovered {
        /// Points replayed from the intact log prefix.
        points_replayed: u64,
        /// Exactly what was lost after the intact prefix.
        lost_suffix: LostSuffix,
    },
}

impl TenantRecovery {
    /// Points replayed from the log, whichever variant.
    pub fn points_replayed(&self) -> u64 {
        match self {
            Self::Clean { points_replayed }
            | Self::Recovered {
                points_replayed, ..
            } => *points_replayed,
        }
    }

    /// Whether the tenant lost nothing.
    pub fn is_clean(&self) -> bool {
        matches!(self, Self::Clean { .. })
    }

    /// The lost suffix, if any.
    pub fn lost_suffix(&self) -> Option<&LostSuffix> {
        match self {
            Self::Clean { .. } => None,
            Self::Recovered { lost_suffix, .. } => Some(lost_suffix),
        }
    }
}

/// The accounted loss of one tenant: how many logged events (and the
/// ingest points inside them) could not be replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LostSuffix {
    /// Logged events (ingest batches and admin operations) discarded.
    pub events: u64,
    /// Ingest points inside the discarded events.
    pub points: u64,
}

/// A summary of the corrupt region of one shard's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptionSummary {
    /// Byte offset of the first bad frame.
    pub offset: u64,
    /// What failed first (checksum mismatch, torn header, …).
    pub reason: String,
    /// Bytes of the corrupt region that no surviving frame accounts for.
    pub lost_bytes: u64,
}

/// The recovery outcome of one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecovery {
    /// The shard index.
    pub shard: usize,
    /// `last_seq` of the snapshot the shard was restored from (0 when no
    /// snapshot existed).
    pub snapshot_last_seq: u64,
    /// Whether a snapshot file existed but failed verification. The
    /// shard then recovered from the log alone; tenants whose creation
    /// record lived only in the snapshot are reported but cannot be
    /// re-registered.
    pub snapshot_corrupt: bool,
    /// Highest log sequence number whose effects are in the recovered
    /// state.
    pub recovered_through_seq: u64,
    /// Log frames replayed (frames at or below the snapshot watermark
    /// are skipped, not replayed).
    pub frames_replayed: u64,
    /// The corrupt region of the log, if the log did not end cleanly.
    pub corruption: Option<CorruptionSummary>,
    /// Per-tenant outcomes, keyed by tenant name. A tenant present here
    /// but absent from [`crate::service::SieveService::tenants`] lost its
    /// creation record entirely (corrupt snapshot plus truncated log) and
    /// must be re-created to resume.
    pub tenants: BTreeMap<String, TenantRecovery>,
}

/// The complete outcome of a [`crate::service::SieveService::recover`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// One entry per registry shard, in shard order.
    pub shards: Vec<ShardRecovery>,
}

impl RecoveryReport {
    /// Whether every tenant of every shard recovered cleanly.
    pub fn is_clean(&self) -> bool {
        self.shards.iter().all(|shard| {
            shard.corruption.is_none()
                && !shard.snapshot_corrupt
                && shard.tenants.values().all(TenantRecovery::is_clean)
        })
    }

    /// The outcome of one tenant, if it appears in any shard.
    pub fn tenant(&self, name: &str) -> Option<&TenantRecovery> {
        self.shards.iter().find_map(|shard| shard.tenants.get(name))
    }

    /// Total points replayed from logs across all shards.
    pub fn points_replayed(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|shard| shard.tenants.values())
            .map(TenantRecovery::points_replayed)
            .sum()
    }

    /// Total accounted loss across all shards.
    pub fn lost(&self) -> LostSuffix {
        let mut total = LostSuffix::default();
        for recovery in self.shards.iter().flat_map(|shard| shard.tenants.values()) {
            if let Some(lost) = recovery.lost_suffix() {
                total.events += lost.events;
                total.points += lost.points;
            }
        }
        total
    }

    /// Tenants that did not recover cleanly, sorted by name.
    pub fn degraded_tenants(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .shards
            .iter()
            .flat_map(|shard| shard.tenants.iter())
            .filter(|(_, recovery)| !recovery.is_clean())
            .map(|(name, _)| name.as_str())
            .collect();
        names.sort_unstable();
        names
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tenants: usize = self.shards.iter().map(|s| s.tenants.len()).sum();
        let frames: u64 = self.shards.iter().map(|s| s.frames_replayed).sum();
        let lost = self.lost();
        write!(
            f,
            "recovered {} tenants from {} shards: {} frames, {} points replayed",
            tenants,
            self.shards.len(),
            frames,
            self.points_replayed()
        )?;
        if self.is_clean() {
            write!(f, "; clean")
        } else {
            write!(
                f,
                "; lost {} events ({} points) across {} degraded tenants",
                lost.events,
                lost.points,
                self.degraded_tenants().len()
            )?;
            // A torn or corrupt region nobody resynced past is loss that
            // cannot be pinned on a tenant — surface it in bytes.
            let unattributable: u64 = self
                .shards
                .iter()
                .filter_map(|shard| shard.corruption.as_ref())
                .map(|corruption| corruption.lost_bytes)
                .sum();
            if unattributable > 0 {
                write!(f, ", {unattributable} corrupt bytes discarded")?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RecoveryReport {
        let mut tenants = BTreeMap::new();
        tenants.insert(
            "alpha".to_string(),
            TenantRecovery::Clean {
                points_replayed: 40,
            },
        );
        tenants.insert(
            "beta".to_string(),
            TenantRecovery::Recovered {
                points_replayed: 12,
                lost_suffix: LostSuffix {
                    events: 3,
                    points: 9,
                },
            },
        );
        RecoveryReport {
            shards: vec![ShardRecovery {
                shard: 0,
                snapshot_last_seq: 5,
                snapshot_corrupt: false,
                recovered_through_seq: 17,
                frames_replayed: 12,
                corruption: Some(CorruptionSummary {
                    offset: 4096,
                    reason: "checksum mismatch in frame seq 18".to_string(),
                    lost_bytes: 96,
                }),
                tenants,
            }],
        }
    }

    #[test]
    fn aggregates_and_display() {
        let report = report();
        assert!(!report.is_clean());
        assert_eq!(report.points_replayed(), 52);
        assert_eq!(
            report.lost(),
            LostSuffix {
                events: 3,
                points: 9
            }
        );
        assert_eq!(report.degraded_tenants(), vec!["beta"]);
        assert!(report.tenant("alpha").unwrap().is_clean());
        assert_eq!(report.tenant("beta").unwrap().points_replayed(), 12);
        assert!(report.tenant("ghost").is_none());
        let text = report.to_string();
        assert!(text.contains("lost 3 events (9 points)"), "{text}");

        let clean = RecoveryReport { shards: vec![] };
        assert!(clean.is_clean());
        assert!(clean.to_string().contains("clean"));
    }
}
