//! Per-tenant state: a metric store, an analysis session and the published
//! model snapshot.

use sieve_core::model::SieveModel;
use sieve_core::session::{AnalysisSession, SessionStats};
use sieve_exec::Name;
use sieve_simulator::store::{MetricId, MetricStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// One observation to ingest for a tenant: which series, when, what value.
///
/// Batches of points go through
/// [`crate::service::SieveService::ingest`], which appends them to the
/// tenant's [`MetricStore`] — every accepted point advances the series'
/// content fingerprint and marks it touched, so the next
/// [`refresh_dirty`](crate::service::SieveService::refresh_dirty) sweep
/// knows exactly which tenants and components to recompute.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPoint {
    /// The series the observation belongs to.
    pub id: MetricId,
    /// Observation timestamp in milliseconds. Points that do not advance
    /// the series' time (out-of-order or duplicate timestamps) are dropped
    /// by the store, like monitoring agents drop duplicate reports.
    pub timestamp_ms: u64,
    /// Observed value.
    pub value: f64,
}

impl MetricPoint {
    /// Creates a point (interning the component and metric names).
    pub fn new(
        component: impl Into<Name>,
        metric: impl Into<Name>,
        timestamp_ms: u64,
        value: f64,
    ) -> Self {
        Self {
            id: MetricId::new(component, metric),
            timestamp_ms,
            value,
        }
    }
}

/// What a tenant last published: the model snapshot and the statistics of
/// the refresh that produced it. Swapped atomically (under a short write
/// lock) at the end of a refresh, so readers either see the previous
/// complete model or the new complete model, never a half-updated one.
#[derive(Debug, Default)]
pub(crate) struct Published {
    /// The latest analysis model, `None` until the first refresh.
    pub(crate) model: Option<Arc<SieveModel>>,
    /// Statistics of the refresh that produced `model`.
    pub(crate) stats: SessionStats,
}

/// The complete state of one tenant.
///
/// Concurrency layout: the store is internally synchronised (ingest takes
/// the store's own lock), the session is behind a `Mutex` that only the
/// refresh sweep takes, and the published snapshot is behind a `RwLock`
/// that writers hold just long enough to swap an `Arc` — so ingest for
/// tenant A, a model read for tenant B and a refresh of tenant C never
/// contend on shared state.
#[derive(Debug)]
pub(crate) struct Tenant {
    /// The tenant's name (also its registry key).
    pub(crate) name: Name,
    /// The tenant's metric store. The service owns this store's delta
    /// stream: nothing else may call `drain_delta` on it.
    pub(crate) store: MetricStore,
    /// The tenant's long-lived incremental analysis session.
    pub(crate) session: Mutex<AnalysisSession>,
    /// The last published model + stats, swapped at the end of a refresh.
    pub(crate) published: RwLock<Published>,
    /// Set when something outside the store's delta stream invalidated
    /// the published model — today: a call-graph replacement, which
    /// changes the comparison plan without touching any series. Consumed
    /// (reset) by the next sweep.
    force_refresh: AtomicBool,
}

impl Tenant {
    pub(crate) fn new(name: Name, store: MetricStore, session: AnalysisSession) -> Self {
        Self {
            name,
            store,
            session: Mutex::new(session),
            published: RwLock::new(Published::default()),
            force_refresh: AtomicBool::new(false),
        }
    }

    /// Requests a refresh at the next sweep even if no series changes.
    pub(crate) fn request_refresh(&self) {
        self.force_refresh.store(true, Ordering::Release);
    }

    /// Consumes the pending force-refresh request, if any.
    pub(crate) fn take_refresh_request(&self) -> bool {
        self.force_refresh.swap(false, Ordering::AcqRel)
    }

    /// The tenant's published model snapshot, if any refresh has completed.
    pub(crate) fn model(&self) -> Option<Arc<SieveModel>> {
        self.published
            .read()
            .expect("tenant snapshot lock poisoned")
            .model
            .clone()
    }

    /// Statistics of the tenant's last completed refresh.
    pub(crate) fn last_stats(&self) -> SessionStats {
        self.published
            .read()
            .expect("tenant snapshot lock poisoned")
            .stats
    }

    /// Publishes a freshly refreshed model + stats (one short write lock).
    pub(crate) fn publish(&self, model: Arc<SieveModel>, stats: SessionStats) {
        let mut published = self
            .published
            .write()
            .expect("tenant snapshot lock poisoned");
        published.model = Some(model);
        published.stats = stats;
    }
}
