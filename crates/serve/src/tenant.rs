//! Per-tenant state: a metric store, an analysis session and the published
//! model snapshot.

use sieve_core::model::SieveModel;
use sieve_core::session::{AnalysisSession, SessionStats};
use sieve_exec::Name;
use sieve_simulator::store::{BatchOutcome, MetricId, MetricStore};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Longest refresh-failure backoff, in sweeps. A tenant that keeps
/// failing is still retried at least once every this many sweeps — the
/// cap keeps a transiently broken tenant from being starved forever once
/// its data heals.
pub(crate) const MAX_BACKOFF_SWEEPS: u64 = 32;

/// One observation to ingest for a tenant: which series, when, what value.
///
/// Batches of points go through
/// [`crate::service::SieveService::ingest`], which appends them to the
/// tenant's [`MetricStore`] — every accepted point advances the series'
/// content fingerprint and marks it touched, so the next
/// [`refresh_dirty`](crate::service::SieveService::refresh_dirty) sweep
/// knows exactly which tenants and components to recompute.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricPoint {
    /// The series the observation belongs to.
    pub id: MetricId,
    /// Observation timestamp in milliseconds. Points that do not advance
    /// the series' time (out-of-order or duplicate timestamps) are dropped
    /// by the store, like monitoring agents drop duplicate reports.
    pub timestamp_ms: u64,
    /// Observed value.
    pub value: f64,
}

impl MetricPoint {
    /// Creates a point (interning the component and metric names).
    pub fn new(
        component: impl Into<Name>,
        metric: impl Into<Name>,
        timestamp_ms: u64,
        value: f64,
    ) -> Self {
        Self {
            id: MetricId::new(component, metric),
            timestamp_ms,
            value,
        }
    }
}

/// Reusable per-tenant buffers for the durable ingest hot path: the
/// batch outcome (rejections + watermarks) and the encoded WAL payload.
/// Both keep their capacity across batches, so a steady-state ingest
/// allocates nothing. The `Mutex` around this scratch doubles as the
/// tenant's *apply order* lock: holding it across
/// store-apply + WAL-stage keeps the tenant's log order equal to its
/// apply order, which is what replay verification checks.
#[derive(Debug, Default)]
pub(crate) struct IngestScratch {
    /// Last batch's detailed outcome (vectors recycled).
    pub(crate) outcome: BatchOutcome,
    /// Encoded `WalEvent::IngestBatch` payload (buffer recycled).
    pub(crate) payload: Vec<u8>,
}

/// What a tenant last published: the model snapshot and the statistics of
/// the refresh that produced it. Swapped atomically (under a short write
/// lock) at the end of a refresh, so readers either see the previous
/// complete model or the new complete model, never a half-updated one.
#[derive(Debug, Default)]
pub(crate) struct Published {
    /// The latest analysis model, `None` until the first refresh.
    pub(crate) model: Option<Arc<SieveModel>>,
    /// Statistics of the refresh that produced `model`.
    pub(crate) stats: SessionStats,
}

/// The complete state of one tenant.
///
/// Concurrency layout: the store is internally synchronised (ingest takes
/// the store's own lock), the session is behind a `Mutex` that only the
/// refresh sweep takes, and the published snapshot is behind a `RwLock`
/// that writers hold just long enough to swap an `Arc` — so ingest for
/// tenant A, a model read for tenant B and a refresh of tenant C never
/// contend on shared state.
#[derive(Debug)]
pub(crate) struct Tenant {
    /// The tenant's name (also its registry key).
    pub(crate) name: Name,
    /// The tenant's metric store. The service owns this store's delta
    /// stream: nothing else may call `drain_delta` on it.
    pub(crate) store: MetricStore,
    /// Durable-ingest scratch buffers + the tenant's apply-order lock
    /// (see [`IngestScratch`]). Only the durable ingest and admin paths
    /// take it; non-durable ingest goes straight to the store.
    pub(crate) ingest: Mutex<IngestScratch>,
    /// The tenant's long-lived incremental analysis session.
    pub(crate) session: Mutex<AnalysisSession>,
    /// The last published model + stats, swapped at the end of a refresh.
    pub(crate) published: RwLock<Published>,
    /// Set when something outside the store's delta stream invalidated
    /// the published model — today: a call-graph replacement, which
    /// changes the comparison plan without touching any series. Consumed
    /// (reset) by the next sweep.
    force_refresh: AtomicBool,
    /// Consecutive refresh failures (0 = healthy). Drives the capped
    /// exponential backoff: streak `n` delays the next attempt by
    /// `min(2^(n-1), MAX_BACKOFF_SWEEPS)` sweeps.
    failure_streak: AtomicU32,
    /// Sweep number at which a failed tenant becomes eligible again.
    retry_at_sweep: AtomicU64,
}

impl Tenant {
    pub(crate) fn new(name: Name, store: MetricStore, session: AnalysisSession) -> Self {
        Self {
            name,
            store,
            ingest: Mutex::new(IngestScratch::default()),
            session: Mutex::new(session),
            published: RwLock::new(Published::default()),
            force_refresh: AtomicBool::new(false),
            failure_streak: AtomicU32::new(0),
            retry_at_sweep: AtomicU64::new(0),
        }
    }

    /// Records a successful refresh: the tenant is healthy again and any
    /// backoff window is cancelled.
    pub(crate) fn record_refresh_success(&self) {
        self.failure_streak.store(0, Ordering::Release);
        self.retry_at_sweep.store(0, Ordering::Release);
    }

    /// Records a failed refresh during sweep number `sweep` and schedules
    /// the retry: streak `n` waits `min(2^(n-1), MAX_BACKOFF_SWEEPS)`
    /// sweeps, so a persistently broken tenant costs one attempt per
    /// backoff window instead of one per sweep.
    pub(crate) fn record_refresh_failure(&self, sweep: u64) {
        let streak = self.failure_streak.fetch_add(1, Ordering::AcqRel) + 1;
        let delay = (1u64 << (streak.min(32) - 1).min(63)).min(MAX_BACKOFF_SWEEPS);
        self.retry_at_sweep.store(sweep + delay, Ordering::Release);
    }

    /// Whether the tenant is waiting out a failure backoff at sweep
    /// number `sweep` (healthy tenants are never in backoff).
    pub(crate) fn in_backoff(&self, sweep: u64) -> bool {
        self.failure_streak.load(Ordering::Acquire) > 0
            && sweep < self.retry_at_sweep.load(Ordering::Acquire)
    }

    /// Current consecutive-failure streak (0 = healthy).
    pub(crate) fn failure_streak(&self) -> u32 {
        self.failure_streak.load(Ordering::Acquire)
    }

    /// Requests a refresh at the next sweep even if no series changes.
    pub(crate) fn request_refresh(&self) {
        self.force_refresh.store(true, Ordering::Release);
    }

    /// Consumes the pending force-refresh request, if any.
    pub(crate) fn take_refresh_request(&self) -> bool {
        self.force_refresh.swap(false, Ordering::AcqRel)
    }

    /// The tenant's published model snapshot, if any refresh has completed.
    pub(crate) fn model(&self) -> Option<Arc<SieveModel>> {
        self.published
            .read()
            .expect("tenant snapshot lock poisoned")
            .model
            .clone()
    }

    /// Statistics of the tenant's last completed refresh.
    pub(crate) fn last_stats(&self) -> SessionStats {
        self.published
            .read()
            .expect("tenant snapshot lock poisoned")
            .stats
    }

    /// Publishes a freshly refreshed model + stats (one short write lock).
    pub(crate) fn publish(&self, model: Arc<SieveModel>, stats: SessionStats) {
        let mut published = self
            .published
            .write()
            .expect("tenant snapshot lock poisoned");
        published.model = Some(model);
        published.stats = stats;
    }
}
