//! Error type of the serving layer.

use sieve_core::SieveError;
use sieve_exec::Name;

/// Errors produced by the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// A tenant name was not found in the registry.
    UnknownTenant {
        /// The name that failed to resolve.
        tenant: String,
    },
    /// A tenant with the same name already exists.
    DuplicateTenant {
        /// The name that collided.
        tenant: String,
    },
    /// The service configuration is internally inconsistent.
    InvalidConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A tenant's analysis failed; the error carries which tenant so a
    /// multi-tenant sweep failure is attributable.
    Analysis {
        /// The tenant whose refresh failed.
        tenant: Name,
        /// The underlying pipeline error.
        source: SieveError,
    },
    /// The durability layer failed (log append, commit, snapshot or
    /// recovery I/O). Live in-memory state is unaffected, but the
    /// operation that triggered the write may not be durable.
    Wal {
        /// The underlying write-ahead-log error.
        source: sieve_wal::WalError,
    },
}

impl From<sieve_wal::WalError> for ServeError {
    fn from(source: sieve_wal::WalError) -> Self {
        Self::Wal { source }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownTenant { tenant } => write!(f, "unknown tenant `{tenant}`"),
            Self::DuplicateTenant { tenant } => {
                write!(f, "tenant `{tenant}` already exists")
            }
            Self::InvalidConfig { reason } => {
                write!(f, "invalid service configuration: {reason}")
            }
            Self::Analysis { tenant, source } => {
                write!(f, "analysis of tenant `{tenant}` failed: {source}")
            }
            Self::Wal { source } => {
                write!(f, "durability layer failure: {source}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Analysis { source, .. } => Some(source),
            Self::Wal { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_tenant() {
        let e = ServeError::UnknownTenant {
            tenant: "acme".into(),
        };
        assert!(e.to_string().contains("acme"));
        let e = ServeError::Analysis {
            tenant: Name::from("acme"),
            source: SieveError::NoMetrics {
                scope: "tenant acme".into(),
            },
        };
        assert!(e.to_string().contains("acme"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
