//! Aggregated service statistics.

use sieve_core::session::SessionStats;

/// What one cross-tenant sweep (or the tenants' last refreshes, via
/// [`crate::service::SieveService::stats`]) recomputed, aggregated over
/// tenants.
///
/// The per-tenant fields are plain sums of the underlying
/// [`SessionStats`], so the "only dirty work is redone" observable of the
/// incremental engine survives aggregation: a sweep where one of sixteen
/// tenants was dirty reports that tenant's preparation/clustering/Granger
/// counts and nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Tenants registered in the service at sweep time.
    pub tenants_total: usize,
    /// Tenants whose session was refreshed (dirty tenants, plus tenants
    /// that had never been analysed).
    pub tenants_refreshed: usize,
    /// Highest epoch watermark across all refreshed tenants' deltas.
    pub epoch_high_watermark: u64,
    /// Sum of [`SessionStats::components_total`] over refreshed tenants.
    pub components_total: usize,
    /// Sum of [`SessionStats::components_prepared`] over refreshed tenants.
    pub components_prepared: usize,
    /// Sum of [`SessionStats::components_reclustered`] over refreshed
    /// tenants.
    pub components_reclustered: usize,
    /// Sum of [`SessionStats::comparisons_planned`] over refreshed tenants.
    pub comparisons_planned: usize,
    /// Sum of [`SessionStats::comparisons_tested`] over refreshed tenants.
    pub comparisons_tested: usize,
    /// Raw points currently retained across *all* tenants' stores (not just
    /// refreshed ones) — the live memory footprint of the fleet's ring
    /// windows, in points. Equals total accepted points when every tenant
    /// runs unbounded retention.
    pub points_retained: u64,
    /// Cumulative points evicted from ring windows across all tenants'
    /// stores since service start (each one folded into the 10x/100x
    /// downsample tiers before being dropped).
    pub points_evicted: u64,
    /// Cumulative bytes reclaimed by eviction across all tenants' stores,
    /// under each store's cost model
    /// ([`sieve_simulator::store::MetricStore::evicted_bytes`]).
    pub bytes_evicted: u64,
    /// Cumulative tenant-refresh failures since service start. A failing
    /// tenant keeps its previous snapshot and is retried with capped
    /// exponential backoff (see
    /// [`crate::service::SieveService::refresh_dirty`]); every individual
    /// failure increments this counter.
    pub refresh_failures: u64,
    /// Tenants currently degraded: their last refresh attempt failed and
    /// they are serving a stale (or no) model while waiting out their
    /// backoff window. Returns to zero as soon as the tenants refresh
    /// successfully.
    pub tenants_degraded: usize,
    /// WAL frames that reached the media in *another* thread's leader
    /// write, summed over shard logs since service start — the payoff of
    /// cross-thread group commit (zero on a non-durable service or with
    /// no concurrent writers).
    pub commits_coalesced: u64,
    /// `fsync` calls the shard logs issued since service start.
    pub fsync_calls: u64,
    /// Total nanoseconds ingest threads spent blocked on another
    /// thread's leader write. Divided by `commits_coalesced` this is the
    /// mean price a rider pays for a free fsync.
    pub commit_wait_ns_total: u64,
    /// Worker threads the process-wide executor pool has ever spawned.
    /// Flat across sweeps once the pool is warm — the observable that
    /// refreshes stopped paying per-sweep thread-spawn cost.
    pub pool_workers_spawned: u64,
    /// Chunk tasks the executor pool has run (callers inline their first
    /// chunk, so this counts helper-thread work only).
    pub pool_tasks_executed: u64,
}

impl ServiceStats {
    /// Folds one tenant's refresh statistics into the aggregate (counts the
    /// tenant as refreshed).
    pub fn absorb(&mut self, stats: &SessionStats) {
        self.tenants_refreshed += 1;
        self.epoch_high_watermark = self.epoch_high_watermark.max(stats.epoch);
        self.components_total += stats.components_total;
        self.components_prepared += stats.components_prepared;
        self.components_reclustered += stats.components_reclustered;
        self.comparisons_planned += stats.comparisons_planned;
        self.comparisons_tested += stats.comparisons_tested;
    }

    /// Folds one tenant store's retention counters into the aggregate.
    /// Called for every registered tenant (refreshed or not): retention is
    /// a property of the fleet's stores, not of any particular sweep.
    pub fn absorb_retention(&mut self, store: &sieve_simulator::store::MetricStore) {
        self.points_retained += store.retained_point_count();
        self.points_evicted += store.evicted_point_count();
        self.bytes_evicted += store.evicted_bytes();
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of {} tenants refreshed (epoch {}): prepared {} components, \
             re-clustered {}, re-tested {}/{} comparisons; \
             {} points retained, {} evicted ({} bytes reclaimed); \
             {} degraded, {} refresh failures to date; \
             {} commits coalesced, {} fsyncs, {} ns commit wait; \
             pool: {} workers spawned, {} tasks run",
            self.tenants_refreshed,
            self.tenants_total,
            self.epoch_high_watermark,
            self.components_prepared,
            self.components_reclustered,
            self.comparisons_tested,
            self.comparisons_planned,
            self.points_retained,
            self.points_evicted,
            self.bytes_evicted,
            self.tenants_degraded,
            self.refresh_failures,
            self.commits_coalesced,
            self.fsync_calls,
            self.commit_wait_ns_total,
            self.pool_workers_spawned,
            self.pool_tasks_executed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields_and_maxes_the_epoch() {
        let mut agg = ServiceStats {
            tenants_total: 3,
            ..ServiceStats::default()
        };
        agg.absorb(&SessionStats {
            epoch: 4,
            components_total: 5,
            components_prepared: 2,
            components_reclustered: 1,
            comparisons_planned: 10,
            comparisons_tested: 3,
        });
        agg.absorb(&SessionStats {
            epoch: 2,
            components_total: 4,
            components_prepared: 4,
            components_reclustered: 4,
            comparisons_planned: 6,
            comparisons_tested: 6,
        });
        assert_eq!(agg.tenants_refreshed, 2);
        assert_eq!(agg.epoch_high_watermark, 4);
        assert_eq!(agg.components_total, 9);
        assert_eq!(agg.components_prepared, 6);
        assert_eq!(agg.components_reclustered, 5);
        assert_eq!(agg.comparisons_planned, 16);
        assert_eq!(agg.comparisons_tested, 9);
        let text = agg.to_string();
        assert!(text.contains("2 of 3 tenants"));
    }

    #[test]
    fn absorb_retention_sums_store_counters() {
        use sieve_simulator::store::{MetricId, MetricStore, RetentionPolicy};
        let store = MetricStore::with_retention(RetentionPolicy::windowed(4));
        let id = MetricId::new("web", "cpu");
        for t in 0..10u64 {
            store.record(&id, t * 500, t as f64);
        }
        let mut agg = ServiceStats::default();
        agg.absorb_retention(&store);
        assert_eq!(agg.points_retained, 4);
        assert_eq!(agg.points_evicted, 6);
        assert_eq!(agg.bytes_evicted, 72, "6 points at 12 bytes each");
        assert!(agg.to_string().contains("6 evicted (72 bytes reclaimed)"));
    }
}
