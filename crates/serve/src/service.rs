//! The multi-tenant analysis service.

use crate::config::{DurabilityConfig, ServeConfig};
use crate::recovery::{
    CorruptionSummary, LostSuffix, RecoveryReport, ShardRecovery, TenantRecovery,
};
use crate::registry::ShardedRegistry;
use crate::stats::ServiceStats;
use crate::tenant::{MetricPoint, Tenant};
use crate::{Result, ServeError};
use sieve_core::config::SieveConfig;
use sieve_core::model::SieveModel;
use sieve_core::session::{AnalysisSession, SessionStats};
use sieve_exec::hash::shard_index;
use sieve_exec::{par_map_chunks, Name};
use sieve_graph::CallGraph;
use sieve_simulator::store::{MetricStore, RetentionPolicy};
use sieve_wal::{
    log_file_name, scan_log, snapshot_file_name, GroupCommitLog, ShardSnapshot, TenantSnapshot,
    WalError, WalEvent,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// One shard's durable state: a cross-thread group-commit log, the
/// admin/snapshot coordination lock and the snapshot-cadence counter.
///
/// Concurrency layout: ingest and single-tenant admin mutations hold
/// `admin` for *read* across apply-to-memory + stage-to-log + commit, so
/// many writers proceed in parallel and group-commit through one
/// leader's write. Tenant creation and shard snapshots hold `admin` for
/// *write*: they observe a quiesced shard whose in-memory stores match
/// the staged log exactly. Per-tenant apply order — the shard log's
/// per-tenant frame order must equal the store's apply order, which is
/// what replay verification checks — is protected by the finer
/// `Tenant::ingest` lock, not by this one.
#[derive(Debug)]
struct DurableShard {
    log: GroupCommitLog,
    admin: RwLock<()>,
    events_since_snapshot: AtomicU64,
}

/// The durability side of a service: one logged shard per registry shard
/// (same deterministic routing hash, so "log shard" and "registry shard"
/// are the same partition of the tenant space).
#[derive(Debug)]
struct DurableLog {
    dir: PathBuf,
    snapshot_every_events: u64,
    shards: Vec<DurableShard>,
}

impl DurableLog {
    /// Creates a fresh durable directory for a *new* service: any
    /// previous incarnation's logs and snapshots are wiped (a new service
    /// must not inherit a predecessor's tenants — that's what
    /// [`SieveService::recover`] is for).
    fn create(durability: &DurabilityConfig, shard_count: usize) -> Result<Self> {
        std::fs::create_dir_all(&durability.dir).map_err(WalError::from)?;
        let mut shards = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            remove_if_present(&durability.dir.join(snapshot_file_name(shard)))?;
            let log_path = durability.dir.join(log_file_name(shard));
            remove_if_present(&log_path)?;
            shards.push(DurableShard {
                log: GroupCommitLog::open(&log_path, 1, durability.fsync)?,
                admin: RwLock::new(()),
                events_since_snapshot: AtomicU64::new(0),
            });
        }
        Ok(Self {
            dir: durability.dir.clone(),
            snapshot_every_events: durability.snapshot_every_events,
            shards,
        })
    }
}

/// Removes a file, treating "not found" as success.
fn remove_if_present(path: &Path) -> Result<()> {
    match std::fs::remove_file(path) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(WalError::from(e).into()),
    }
}

/// Truncates a shard log file to `len` bytes in place. The shard's
/// append-mode [`GroupCommitLog`] handle keeps working: `O_APPEND`
/// writes land at the new end of file.
fn truncate_log_file(path: &Path, len: u64) -> Result<()> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map_err(WalError::from)?;
    file.set_len(len).map_err(WalError::from)?;
    file.sync_data().map_err(WalError::from)?;
    Ok(())
}

/// A multi-tenant Sieve analysis service.
///
/// The service owns N tenants, each a `(MetricStore, AnalysisSession)`
/// pair, behind a sharded registry (tenant name → shard via the
/// deterministic [`sieve_exec::hash::shard_index`] routing hash, one
/// `RwLock` per shard) — so ingest for tenant A never contends with a
/// model read for tenant B or an ongoing refresh of tenant C.
///
/// The serving loop is:
///
/// 1. [`SieveService::ingest`] appends batches of points to a tenant's
///    store; every accepted point advances the series' content fingerprint
///    and marks it touched (the PR-4 delta API).
/// 2. [`SieveService::refresh_dirty`] drains every tenant's
///    [`StoreDelta`](sieve_simulator::store::StoreDelta) and runs
///    `session.update` for all dirty tenants
///    through one [`sieve_exec::par_map_chunks`] fan-out, in sorted tenant
///    order — deterministic: a serial sweep and an 8-way sweep publish
///    bit-identical models.
/// 3. [`SieveService::model`] returns the tenant's last published
///    [`Arc<SieveModel>`] snapshot. Publication swaps an `Arc` under a
///    short write lock, so readers never block an ongoing refresh and
///    never observe a half-updated model.
///
/// Every published model is bit-identical to a from-scratch
/// [`sieve_core::pipeline::Sieve::analyze`] of the same tenant's store —
/// the incremental-session guarantee, asserted across sweep parallelism
/// degrees by the `serve` bench and property tests.
#[derive(Debug)]
pub struct SieveService {
    config: ServeConfig,
    registry: ShardedRegistry,
    /// Present iff the configuration enables durability: per-shard logs
    /// plus snapshot state under `config.durability.dir`.
    durable: Option<DurableLog>,
    /// Monotone sweep counter ([`SieveService::refresh_dirty`] and
    /// [`SieveService::refresh_all`] both count); the time base of the
    /// per-tenant failure backoff.
    sweeps: AtomicU64,
    /// Cumulative tenant-refresh failures since service start.
    refresh_failures: AtomicU64,
    /// Test-only fault injection: tenants whose refresh is forced to fail,
    /// so the backoff machinery can be exercised deterministically (the
    /// analysis pipeline itself degrades gracefully on any valid input and
    /// offers no data-driven way to make a refresh error).
    #[cfg(test)]
    refresh_failpoint: std::sync::RwLock<std::collections::HashSet<String>>,
}

impl SieveService {
    /// Creates a service with the given configuration.
    ///
    /// When [`ServeConfig::durability`] is set, the durable directory is
    /// created (if absent) and **wiped of any previous service's logs and
    /// snapshots** — a new service starts empty by definition. To resume
    /// a previous incarnation's tenants from its durable state, use
    /// [`SieveService::recover`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for invalid configurations
    /// (shard count not a power of two, invalid default analysis config),
    /// [`ServeError::Wal`] when the durable directory cannot be prepared.
    pub fn new(config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let registry = ShardedRegistry::new(config.shard_count);
        let durable = match &config.durability {
            Some(durability) => Some(DurableLog::create(durability, config.shard_count)?),
            None => None,
        };
        Ok(Self {
            config,
            registry,
            durable,
            sweeps: AtomicU64::new(0),
            refresh_failures: AtomicU64::new(0),
            #[cfg(test)]
            refresh_failpoint: std::sync::RwLock::default(),
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Registers a new tenant with an empty store, the given call graph
    /// and the service's default analysis configuration. The store is
    /// created under the service's default retention budget
    /// (`config.analysis.retention`), so a bounded service keeps every
    /// tenant's memory flat from the first point.
    ///
    /// # Errors
    ///
    /// * [`ServeError::DuplicateTenant`] when the name is taken.
    /// * [`ServeError::Analysis`] when the analysis configuration is
    ///   rejected by the session.
    pub fn create_tenant(&self, name: impl Into<Name>, call_graph: CallGraph) -> Result<()> {
        let retention = self.config.analysis.retention;
        self.create_tenant_with_retention(name, call_graph, retention)
    }

    /// Like [`SieveService::create_tenant`] with a per-tenant retention
    /// budget overriding the service default — large tenants can run a
    /// tight ring window while small ones keep full history, on the same
    /// service.
    ///
    /// # Errors
    ///
    /// Same as [`SieveService::create_tenant`].
    pub fn create_tenant_with_retention(
        &self,
        name: impl Into<Name>,
        call_graph: CallGraph,
        retention: RetentionPolicy,
    ) -> Result<()> {
        let name = name.into();
        let config = self.config.analysis.clone().with_retention(retention);
        let store = MetricStore::with_retention(retention);
        self.adopt_tenant_with_config(name, store, call_graph, config)
    }

    /// Registers a new tenant over an existing store handle (for example
    /// one recorded by a `sieve_simulator::engine::Simulation`).
    ///
    /// The service takes over the store's single-consumer delta stream:
    /// after adoption, nothing else may call
    /// [`MetricStore::drain_delta`] on this store (or on clones of it) —
    /// points drained elsewhere would be invisible to
    /// [`SieveService::refresh_dirty`]. Pre-existing, never-drained
    /// content is picked up by the first sweep.
    ///
    /// # Errors
    ///
    /// Same as [`SieveService::create_tenant`].
    pub fn adopt_tenant(
        &self,
        name: impl Into<Name>,
        store: MetricStore,
        call_graph: CallGraph,
    ) -> Result<()> {
        let config = self.config.analysis.clone();
        self.adopt_tenant_with_config(name, store, call_graph, config)
    }

    /// Like [`SieveService::adopt_tenant`] with a per-tenant analysis
    /// configuration overriding the service default.
    ///
    /// # Errors
    ///
    /// Same as [`SieveService::create_tenant`].
    pub fn adopt_tenant_with_config(
        &self,
        name: impl Into<Name>,
        store: MetricStore,
        call_graph: CallGraph,
        config: SieveConfig,
    ) -> Result<()> {
        let name = name.into();
        // The durable creation record must reproduce the store being
        // adopted: its retention governs future evictions (and therefore
        // the fingerprint chains replay verifies against), so the logged
        // config carries the store's actual policy even when the session
        // config was built from the service default.
        let mut logged_config = config.clone();
        logged_config.retention = store.retention();
        let logged_graph = call_graph.clone();
        let preloaded = store.series_count() > 0;
        let session = AnalysisSession::new(name.as_str(), store.clone(), call_graph, config)
            .map_err(|source| ServeError::Analysis {
                tenant: name.clone(),
                source,
            })?;
        let Some(durable) = &self.durable else {
            return self
                .registry
                .insert(Arc::new(Tenant::new(name, store, session)));
        };
        let shard = shard_index(name.as_str(), self.config.shard_count);
        let dshard = &durable.shards[shard];
        // Write-held: creation changes the shard's tenant set, which a
        // concurrent snapshot (`all_in_shard`) must see either fully
        // registered *and* staged, or not at all.
        let admin = dshard.admin.write().expect("shard admin lock poisoned");
        self.registry
            .insert(Arc::new(Tenant::new(name.clone(), store, session)))?;
        let seq = dshard.log.stage(&WalEvent::TenantCreated {
            tenant: name,
            config: Box::new(logged_config),
            call_graph: logged_graph,
        });
        dshard.log.commit_through(seq)?;
        if preloaded {
            // The creation event does not carry store content, so an
            // adopted pre-loaded store is only durable once snapshotted.
            self.snapshot_shard_locked(durable, shard)
        } else {
            drop(admin);
            self.note_logged_events(durable, shard, 1)
        }
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.registry.len()
    }

    /// The names of all registered tenants, sorted.
    pub fn tenants(&self) -> Vec<Name> {
        self.registry
            .all_sorted()
            .iter()
            .map(|t| t.name.clone())
            .collect()
    }

    /// Appends a batch of observations to a tenant's store and returns how
    /// many points the store accepted (out-of-order points are dropped,
    /// see [`MetricPoint::timestamp_ms`]).
    ///
    /// This is the hot path: it takes the tenant's shard lock only to look
    /// the tenant up, then appends the whole batch under a single
    /// acquisition of the store's own lock
    /// ([`MetricStore::record_batch`]) — ingest for two tenants never
    /// serialises, whatever the analysis threads do.
    ///
    /// On a durable service, the accepted subset of the batch (rejected
    /// points — non-monotone timestamps, non-finite values — are filtered
    /// out, so the log never contains a point that replays differently
    /// than it applied) is framed together with the per-series
    /// fingerprint watermarks the batch produced, and group-committed to
    /// the tenant's shard log before this call returns. Steady-state, the
    /// whole path allocates nothing: the batch outcome and the encoded
    /// WAL payload live in recycled per-tenant scratch buffers, the event
    /// is streamed straight from the caller's points (skipping rejected
    /// indices) into the frame, and concurrent writers to one shard ride
    /// a single leader's write + fsync instead of issuing their own
    /// ([`sieve_wal::GroupCommitLog`]). A commit failure surfaces as
    /// [`ServeError::Wal`]: the batch *is* applied in memory but not
    /// durable — retrying the ingest is safe (the store rejects the
    /// duplicate timestamps as non-monotone).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered;
    /// [`ServeError::Wal`] when the durable commit fails.
    pub fn ingest(&self, tenant: &str, points: &[MetricPoint]) -> Result<usize> {
        let tenant = self.registry.get(tenant)?;
        let Some(durable) = &self.durable else {
            return Ok(tenant.store.record_batch(
                points
                    .iter()
                    .map(|point| (&point.id, point.timestamp_ms, point.value)),
            ));
        };
        let shard = shard_index(tenant.name.as_str(), self.config.shard_count);
        let dshard = &durable.shards[shard];
        // Read-held across apply + stage + commit: concurrent ingests of
        // the shard proceed in parallel and group-commit together, while
        // a snapshot (write) never observes a batch that is applied to a
        // store but not yet staged to the log.
        let admin = dshard.admin.read().expect("shard admin lock poisoned");
        let (accepted, staged_seq) = {
            // The tenant's apply-order lock: store-apply and WAL-stage
            // happen atomically per tenant, so the log's per-tenant frame
            // order equals the apply order replay verifies against.
            let mut scratch = tenant.ingest.lock().expect("tenant ingest lock poisoned");
            let scratch = &mut *scratch;
            tenant.store.record_batch_detailed_into(
                &mut scratch.outcome,
                points
                    .iter()
                    .map(|point| (&point.id, point.timestamp_ms, point.value)),
            );
            let accepted = scratch.outcome.accepted;
            if accepted == 0 {
                (0, None)
            } else {
                scratch.payload.clear();
                // `rejected` is in ascending batch order: one forward
                // merge skips exactly the rejected indices.
                let mut rejected = scratch
                    .outcome
                    .rejected
                    .iter()
                    .map(|&(index, _)| index)
                    .peekable();
                WalEvent::encode_ingest_batch_into(
                    &mut scratch.payload,
                    &tenant.name,
                    accepted,
                    points.iter().enumerate().filter_map(|(index, point)| {
                        if rejected.peek() == Some(&index) {
                            rejected.next();
                            return None;
                        }
                        Some((&point.id, point.timestamp_ms, point.value))
                    }),
                    &scratch.outcome.watermarks,
                );
                (accepted, Some(dshard.log.stage_encoded(&scratch.payload)))
            }
        };
        if let Some(seq) = staged_seq {
            dshard.log.commit_through(seq)?;
            drop(admin);
            self.note_logged_events(durable, shard, 1)?;
        }
        Ok(accepted)
    }

    /// Replaces a tenant's call graph (topologies grow while an
    /// application streams). Like on the underlying session, this alters
    /// the comparison *plan* of the next refresh but never invalidates a
    /// cached verdict — and it marks the tenant for refresh at the next
    /// sweep even if no series changes, so the published model catches up
    /// with the new topology without waiting for unrelated ingest.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered;
    /// [`ServeError::Wal`] when the durable commit fails.
    pub fn set_call_graph(&self, tenant: &str, call_graph: CallGraph) -> Result<()> {
        let tenant = self.registry.get(tenant)?;
        let Some(durable) = &self.durable else {
            tenant
                .session
                .lock()
                .expect("tenant session poisoned")
                .set_call_graph(call_graph);
            tenant.request_refresh();
            return Ok(());
        };
        let shard = shard_index(tenant.name.as_str(), self.config.shard_count);
        let dshard = &durable.shards[shard];
        let admin = dshard.admin.read().expect("shard admin lock poisoned");
        let seq = {
            // Apply + stage under the tenant's apply-order lock, like
            // ingest: two graph replacements (or a replacement and a
            // batch) for one tenant must hit the log in apply order.
            let _apply_order = tenant.ingest.lock().expect("tenant ingest lock poisoned");
            tenant
                .session
                .lock()
                .expect("tenant session poisoned")
                .set_call_graph(call_graph.clone());
            tenant.request_refresh();
            dshard.log.stage(&WalEvent::CallGraphReplaced {
                tenant: tenant.name.clone(),
                call_graph,
            })
        };
        dshard.log.commit_through(seq)?;
        drop(admin);
        self.note_logged_events(durable, shard, 1)
    }

    /// Replaces a tenant's store retention budget at runtime. Tightening
    /// the budget evicts each series' oldest points immediately (folding
    /// them into the 10x/100x downsample tiers) and marks every trimmed
    /// series touched — eviction-as-dirt — so the next
    /// [`SieveService::refresh_dirty`] sweep treats the tenant like any
    /// other dirty one and republishes a model of the narrowed window.
    /// Loosening never restores evicted points; only the aggregate tiers
    /// remember them.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered;
    /// [`ServeError::Wal`] when the durable commit fails.
    pub fn set_retention(&self, tenant: &str, retention: RetentionPolicy) -> Result<()> {
        let tenant = self.registry.get(tenant)?;
        let Some(durable) = &self.durable else {
            tenant.store.set_retention(retention);
            self.registry.invalidate_sorted();
            return Ok(());
        };
        let shard = shard_index(tenant.name.as_str(), self.config.shard_count);
        let dshard = &durable.shards[shard];
        let admin = dshard.admin.read().expect("shard admin lock poisoned");
        let seq = {
            // Apply + stage under the tenant's apply-order lock: the
            // retention change must hit the log exactly between the
            // ingest batches it applied between, or the replayed
            // eviction (and the fingerprints downstream of it) diverges.
            let _apply_order = tenant.ingest.lock().expect("tenant ingest lock poisoned");
            tenant.store.set_retention(retention);
            dshard.log.stage(&WalEvent::RetentionChanged {
                tenant: tenant.name.clone(),
                retention,
            })
        };
        dshard.log.commit_through(seq)?;
        drop(admin);
        self.registry.invalidate_sorted();
        self.note_logged_events(durable, shard, 1)
    }

    /// A tenant's current store retention budget.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn retention(&self, tenant: &str) -> Result<RetentionPolicy> {
        Ok(self.registry.get(tenant)?.store.retention())
    }

    /// A handle to a tenant's store (for read-side consumers such as
    /// dashboards; remember the delta stream belongs to the service).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn store(&self, tenant: &str) -> Result<MetricStore> {
        Ok(self.registry.get(tenant)?.store.clone())
    }

    /// The tenant's last published model snapshot (`None` until the first
    /// sweep that saw the tenant). The returned `Arc` stays valid and
    /// immutable forever; later refreshes publish new `Arc`s instead of
    /// mutating this one.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn model(&self, tenant: &str) -> Result<Option<Arc<SieveModel>>> {
        Ok(self.registry.get(tenant)?.model())
    }

    /// Statistics of the tenant's last refresh (zeroed until the first
    /// sweep that saw the tenant).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn last_stats(&self, tenant: &str) -> Result<SessionStats> {
        Ok(self.registry.get(tenant)?.last_stats())
    }

    /// Aggregates the last published per-tenant statistics over all
    /// tenants (without refreshing anything). Tenants that have never been
    /// refreshed contribute nothing.
    pub fn stats(&self) -> ServiceStats {
        let tenants = self.registry.all_sorted();
        let mut stats = ServiceStats {
            tenants_total: tenants.len(),
            ..ServiceStats::default()
        };
        for tenant in tenants.iter() {
            stats.absorb_retention(&tenant.store);
            if tenant.model().is_some() {
                stats.absorb(&tenant.last_stats());
            }
        }
        stats.refresh_failures = self.refresh_failures.load(Ordering::Relaxed);
        stats.tenants_degraded = tenants
            .iter()
            .filter(|tenant| tenant.failure_streak() > 0)
            .count();
        self.absorb_dataplane(&mut stats);
        stats
    }

    /// Folds the dataplane counters — per-shard group-commit traffic and
    /// the process-wide executor pool — into `stats`. All monotone
    /// since-start counters (the pool is shared by the whole process, so
    /// its numbers can include other services' work too).
    fn absorb_dataplane(&self, stats: &mut ServiceStats) {
        if let Some(durable) = &self.durable {
            for shard in &durable.shards {
                let log = shard.log.stats();
                stats.commits_coalesced += log.commits_coalesced;
                stats.fsync_calls += log.fsync_calls;
                stats.commit_wait_ns_total += log.commit_wait_ns_total;
            }
        }
        let pool = sieve_exec::pool::pool_stats();
        stats.pool_workers_spawned = pool.workers_spawned;
        stats.pool_tasks_executed = pool.tasks_executed;
    }

    /// Drains every tenant's delta and refreshes all dirty tenants through
    /// one parallel fan-out; returns what the sweep recomputed.
    ///
    /// A tenant is dirty when its drained
    /// [`StoreDelta`](sieve_simulator::store::StoreDelta) is non-empty,
    /// when its session has absorbed dirt that a (failed) earlier sweep
    /// did not refresh, when its call graph was replaced since the last
    /// sweep, or when it has data but never published a model (so adopted
    /// pre-loaded stores are analysed on the first sweep). Tenants with
    /// *empty* stores are never refreshed — they stay unpublished
    /// ([`SieveService::model`] returns `None`) until their first accepted
    /// point, which keeps the published-model guarantee unconditional:
    /// batch analysis of an empty store is an error, not an empty model.
    /// Clean tenants only absorb the epoch watermark — their sessions,
    /// clusterings and Granger verdicts are untouched, which is what makes
    /// a sweep with one dirty tenant of N nearly N times cheaper than
    /// batch-analysing the fleet.
    ///
    /// The dirty tenants are processed in sorted-name order through
    /// [`sieve_exec::par_map_chunks`] with
    /// [`ServeConfig::sweep_parallelism`] workers; each tenant's refresh is
    /// itself deterministic, so sweep parallelism 1 and N publish
    /// bit-identical models (asserted by the `serve` bench and the
    /// property tests).
    ///
    /// # Failure backoff
    ///
    /// A tenant whose refresh fails is retried with capped exponential
    /// backoff: after `n` consecutive failures it is skipped for
    /// `min(2^(n-1), 32)` sweeps (its delta stays in the store, its
    /// absorbed dirt stays pending in the session — nothing is lost, the
    /// work is merely deferred), then retried. One success resets the
    /// backoff. [`ServiceStats::refresh_failures`] counts every failure;
    /// [`ServiceStats::tenants_degraded`] counts tenants currently in a
    /// failed state. [`SieveService::refresh_all`] ignores backoff and
    /// always retries everything.
    ///
    /// # Errors
    ///
    /// [`ServeError::Analysis`] naming the failing tenant — the earliest
    /// one in sorted order, regardless of thread timing. Tenant refreshes
    /// are isolated: every tenant whose own refresh succeeded in the same
    /// sweep has still published its new model (only the returned
    /// aggregate statistics are lost). A failing tenant keeps its previous
    /// snapshot, and its absorbed dirt stays pending in its session, so
    /// a later sweep retries exactly the outstanding work.
    ///
    /// # Example
    ///
    /// ```
    /// use sieve_core::config::SieveConfig;
    /// use sieve_graph::CallGraph;
    /// use sieve_serve::{MetricPoint, ServeConfig, SieveService};
    ///
    /// let config = ServeConfig::default()
    ///     .with_analysis(SieveConfig::default().with_cluster_range(2, 2).with_parallelism(1));
    /// let service = SieveService::new(config)?;
    /// service.create_tenant("acme", CallGraph::new())?;
    ///
    /// // Ingest two series worth of observations for tenant `acme`.
    /// let points: Vec<MetricPoint> = (0..60)
    ///     .flat_map(|t| {
    ///         let time = t as f64;
    ///         [
    ///             MetricPoint::new("web", "requests", t * 500, (time * 0.2).sin()),
    ///             MetricPoint::new("web", "latency", t * 500, (time * 0.2).cos() * 3.0),
    ///         ]
    ///     })
    ///     .collect();
    /// assert_eq!(service.ingest("acme", &points)?, points.len());
    ///
    /// // One sweep refreshes the dirty tenant and publishes its model.
    /// let stats = service.refresh_dirty()?;
    /// assert_eq!(stats.tenants_refreshed, 1);
    /// let model = service.model("acme")?.expect("model published");
    /// assert_eq!(model.total_metric_count(), 2);
    ///
    /// // Nothing changed, so the next sweep refreshes nothing.
    /// assert_eq!(service.refresh_dirty()?.tenants_refreshed, 0);
    /// # Ok::<(), sieve_serve::ServeError>(())
    /// ```
    pub fn refresh_dirty(&self) -> Result<ServiceStats> {
        let sweep = self.sweeps.fetch_add(1, Ordering::Relaxed) + 1;
        let tenants = self.registry.all_sorted();

        // Drain every tenant's delta (cheap: one store lock each), absorb
        // it into the session — so the epoch watermark stays current even
        // for clean tenants — and decide who needs work. The session's own
        // pending-dirt flag is the source of truth: it covers this delta,
        // deltas absorbed by a previously *failed* refresh, and nothing
        // else; a replaced call graph is tracked separately because it
        // changes the comparison plan without dirtying any series.
        let mut work: Vec<Arc<Tenant>> = Vec::new();
        for tenant in tenants.iter() {
            // Tenants waiting out a failure backoff are skipped entirely:
            // their delta stays in the store and their force-refresh flag
            // stays set, so the deferred work is all still there when the
            // backoff window ends.
            if tenant.in_backoff(sweep) {
                continue;
            }
            let delta = tenant.store.drain_delta();
            let replanned = tenant.take_refresh_request();
            let never_published = tenant.model().is_none();
            let pending = {
                let mut session = tenant.session.lock().expect("tenant session poisoned");
                session.apply_delta(&delta);
                session.has_pending_dirty()
            };
            // An empty store has nothing to analyse: the tenant stays
            // unpublished until its first accepted point arrives.
            if tenant.store.series_count() == 0 {
                continue;
            }
            if pending || replanned || never_published {
                work.push(Arc::clone(tenant));
            }
        }
        self.run_sweep(&tenants, &work, sweep)
    }

    /// Marks every component of every tenant dirty and refreshes the whole
    /// fleet — the batch special case of [`SieveService::refresh_dirty`],
    /// used as the reference sweep in benchmarks. Content-keyed session
    /// caches still apply (unchanged prepared content keeps its clustering
    /// and verdicts), so this is *not* equivalent to re-analysing from
    /// scratch in cost — only in result.
    ///
    /// # Errors
    ///
    /// Same as [`SieveService::refresh_dirty`].
    pub fn refresh_all(&self) -> Result<ServiceStats> {
        let sweep = self.sweeps.fetch_add(1, Ordering::Relaxed) + 1;
        let tenants = self.registry.all_sorted();
        let mut work: Vec<Arc<Tenant>> = Vec::new();
        for tenant in tenants.iter() {
            tenant.take_refresh_request();
            let delta = tenant.store.drain_delta();
            {
                let mut session = tenant.session.lock().expect("tenant session poisoned");
                session.apply_delta(&delta);
                session.mark_all_dirty();
            }
            // Same empty-store rule as `refresh_dirty`.
            if tenant.store.series_count() > 0 {
                work.push(Arc::clone(tenant));
            }
        }
        self.run_sweep(&tenants, &work, sweep)
    }

    /// The shared fan-out of both sweeps: refreshes every tenant in `work`
    /// (deltas already absorbed into the sessions) through the executor
    /// and aggregates the statistics. Each work item locks only its own
    /// tenant's session, so workers never contend; the executor returns
    /// results in input (sorted-tenant) order, and the earliest failing
    /// tenant wins error reporting deterministically. Retention counters
    /// are read from *every* registered tenant's store (not just the dirty
    /// ones) — the fleet's memory footprint is a property of the stores,
    /// not of the sweep.
    fn run_sweep(
        &self,
        tenants: &[Arc<Tenant>],
        work: &[Arc<Tenant>],
        sweep: u64,
    ) -> Result<ServiceStats> {
        let mut stats = ServiceStats {
            tenants_total: tenants.len(),
            ..ServiceStats::default()
        };
        for tenant in tenants {
            stats.absorb_retention(&tenant.store);
        }
        // Every tenant is attempted (an early failure must not starve the
        // later tenants of the same sweep), every outcome is recorded for
        // the backoff machinery, and only then is the earliest failure in
        // sorted order — deterministic, whatever the thread timing —
        // reported to the caller.
        let outcomes: Vec<Result<SessionStats>> =
            par_map_chunks(self.config.sweep_parallelism, work, |tenant| {
                #[cfg(test)]
                if self
                    .refresh_failpoint
                    .read()
                    .expect("failpoint lock poisoned")
                    .contains(tenant.name.as_str())
                {
                    return Err(ServeError::Analysis {
                        tenant: tenant.name.clone(),
                        source: sieve_core::SieveError::NoMetrics {
                            scope: "injected refresh failure".to_string(),
                        },
                    });
                }
                let mut session = tenant.session.lock().expect("tenant session poisoned");
                let model = session
                    .refresh_shared()
                    .map_err(|source| ServeError::Analysis {
                        tenant: tenant.name.clone(),
                        source,
                    })?;
                let session_stats = session.last_stats();
                // Publish while still holding the session lock: if two
                // sweeps ever race on one tenant, the lock serialises
                // refresh+publish as a unit, so the newest refresh is
                // always the last publish and a stale model can never win.
                tenant.publish(model, session_stats);
                Ok(session_stats)
            });
        let mut first_error = None;
        for (tenant, outcome) in work.iter().zip(outcomes) {
            match outcome {
                Ok(session_stats) => {
                    tenant.record_refresh_success();
                    stats.absorb(&session_stats);
                }
                Err(error) => {
                    self.refresh_failures.fetch_add(1, Ordering::Relaxed);
                    tenant.record_refresh_failure(sweep);
                    if first_error.is_none() {
                        first_error = Some(error);
                    }
                }
            }
        }
        stats.refresh_failures = self.refresh_failures.load(Ordering::Relaxed);
        stats.tenants_degraded = tenants
            .iter()
            .filter(|tenant| tenant.failure_streak() > 0)
            .count();
        self.absorb_dataplane(&mut stats);
        match first_error {
            Some(error) => Err(error),
            None => Ok(stats),
        }
    }

    /// Bumps the shard's snapshot-cadence counter after `count` committed
    /// events and snapshots the shard when the cadence trips. Must be
    /// called with no shard admin guard held: tripping acquires the
    /// admin lock for *write* to quiesce the shard first.
    fn note_logged_events(&self, durable: &DurableLog, shard: usize, count: u64) -> Result<()> {
        let dshard = &durable.shards[shard];
        let events = dshard
            .events_since_snapshot
            .fetch_add(count, Ordering::AcqRel)
            + count;
        if events >= durable.snapshot_every_events {
            let _admin = dshard.admin.write().expect("shard admin lock poisoned");
            // Several writers can trip the cadence at once; whoever gets
            // the write lock first snapshots (resetting the counter), the
            // rest find the counter already settled and do nothing.
            if dshard.events_since_snapshot.load(Ordering::Acquire) >= durable.snapshot_every_events
            {
                self.snapshot_shard_locked(durable, shard)?;
            }
        }
        Ok(())
    }

    /// Writes an atomic snapshot of every tenant of `shard` (frozen store
    /// image, session config, call graph, covering the log watermark
    /// `last_seq`) and truncates the shard log — replay work after a
    /// crash is bounded by the snapshot cadence, not by service uptime.
    ///
    /// The caller must hold the shard's admin lock for *write*: no
    /// ingest or admin mutation is mid-flight between a store and the
    /// log, so after the quiesce below the snapshot is consistent with
    /// exactly the log prefix it claims to cover.
    fn snapshot_shard_locked(&self, durable: &DurableLog, shard: usize) -> Result<()> {
        let dshard = &durable.shards[shard];
        // Quiesce the log: every staged frame is on media (or reported
        // failed to its writer) before the snapshot claims to cover it.
        dshard.log.commit_all()?;
        let tenants = self.registry.all_in_shard(shard);
        let snapshot = ShardSnapshot {
            shard,
            last_seq: dshard.log.last_seq(),
            tenants: tenants
                .iter()
                .map(|tenant| {
                    let session = tenant.session.lock().expect("tenant session poisoned");
                    TenantSnapshot {
                        tenant: tenant.name.to_string(),
                        config: Box::new(session.config().clone()),
                        call_graph: session.call_graph().clone(),
                        store: tenant.store.freeze(),
                    }
                })
                .collect(),
        };
        snapshot.write_atomic(&durable.dir.join(snapshot_file_name(shard)))?;
        // The snapshot covers every committed frame: drop them. (A crash
        // between the rename above and this truncation is benign — the
        // leftover frames carry sequence numbers at or below the
        // snapshot's `last_seq` and recovery skips them.)
        truncate_log_file(&durable.dir.join(log_file_name(shard)), 0)?;
        dshard.events_since_snapshot.store(0, Ordering::Release);
        Ok(())
    }

    /// Rebuilds a service from the durable directory of a crashed (or
    /// cleanly stopped) predecessor: per shard, the snapshot is restored,
    /// the log tail is scanned and its intact prefix replayed through the
    /// ordinary store machinery, and every tenant comes back with a
    /// session whose next refresh publishes a model **bit-identical** to
    /// what the pre-crash service would have published for the same
    /// surviving events.
    ///
    /// Corruption never poisons recovery: a torn or bit-flipped frame
    /// truncates that shard's replay at the last intact frame, the
    /// affected tenants are reported as
    /// [`TenantRecovery::Recovered`] with their exact lost suffix
    /// (resynchronized later frames are counted, never applied), and a
    /// replayed batch whose fingerprint watermarks do not reproduce the
    /// logged ones degrades just that tenant. A corrupt snapshot falls
    /// back to pure log replay. After recovery the directory is
    /// re-snapshotted and the logs are truncated, so the corrupt tail is
    /// physically gone and a second recovery is clean by construction.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when `config` has no durability
    /// section (or is otherwise invalid), [`ServeError::Wal`] on I/O
    /// failures, [`ServeError::Analysis`] when a recovered tenant's
    /// session cannot be rebuilt.
    pub fn recover(config: ServeConfig) -> Result<(Self, RecoveryReport)> {
        config.validate()?;
        let durability = config
            .durability
            .clone()
            .ok_or_else(|| ServeError::InvalidConfig {
                reason: "recover requires a durability configuration".to_string(),
            })?;
        std::fs::create_dir_all(&durability.dir).map_err(WalError::from)?;
        let registry = ShardedRegistry::new(config.shard_count);
        let mut shards = Vec::with_capacity(config.shard_count);
        let mut shard_logs = Vec::with_capacity(config.shard_count);
        for shard in 0..config.shard_count {
            let snapshot_path = durability.dir.join(snapshot_file_name(shard));
            let (snapshot, snapshot_corrupt) = match ShardSnapshot::read(&snapshot_path) {
                Ok(snapshot) => (snapshot, false),
                Err(WalError::Corrupt { .. }) => (None, true),
                Err(error) => return Err(error.into()),
            };
            let mut snapshot_last_seq = 0;
            let mut replaying: BTreeMap<String, Replaying> = BTreeMap::new();
            if let Some(snapshot) = snapshot {
                snapshot_last_seq = snapshot.last_seq;
                for tenant in snapshot.tenants {
                    replaying.insert(
                        tenant.tenant,
                        Replaying::restored(
                            MetricStore::restore(tenant.store),
                            *tenant.config,
                            tenant.call_graph,
                        ),
                    );
                }
            }

            let log_path = durability.dir.join(log_file_name(shard));
            let bytes = match std::fs::read(&log_path) {
                Ok(bytes) => bytes,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(WalError::from(e).into()),
            };
            let scanned = scan_log(&bytes);
            let mut frames_replayed = 0u64;
            let mut recovered_through = snapshot_last_seq;
            for (seq, event) in &scanned.applied {
                if *seq <= snapshot_last_seq {
                    continue;
                }
                frames_replayed += 1;
                recovered_through = *seq;
                replay_event(&mut replaying, event);
            }
            // Frames the scanner resynchronized after a corrupt region
            // are structurally intact but unsafe to apply (the events
            // before them are gone); they become the per-tenant lost
            // suffix.
            if let Some(corruption) = &scanned.corruption {
                for (seq, event) in &corruption.resynced {
                    if *seq <= snapshot_last_seq {
                        continue;
                    }
                    let tenant = replaying
                        .entry(event.tenant().to_string())
                        .or_insert_with(Replaying::phantom);
                    tenant.degraded = true;
                    tenant.lost.events += 1;
                    tenant.lost.points += event.point_count() as u64;
                }
            }

            // Re-anchor the directory at the recovered state: one fresh
            // snapshot, an empty log, and a writer continuing the
            // sequence — the corrupt tail is physically gone.
            let snapshot = ShardSnapshot {
                shard,
                last_seq: recovered_through,
                tenants: replaying
                    .iter()
                    .filter_map(|(name, tenant)| {
                        Some(TenantSnapshot {
                            tenant: name.clone(),
                            config: Box::new(tenant.config.clone()?),
                            call_graph: tenant.graph.clone()?,
                            store: tenant.store.as_ref()?.freeze(),
                        })
                    })
                    .collect(),
            };
            snapshot.write_atomic(&snapshot_path)?;
            truncate_log_file(&log_path, 0)?;
            shard_logs.push(DurableShard {
                log: GroupCommitLog::open(&log_path, recovered_through + 1, durability.fsync)?,
                admin: RwLock::new(()),
                events_since_snapshot: AtomicU64::new(0),
            });

            let mut report_tenants = BTreeMap::new();
            for (name, tenant) in replaying {
                report_tenants.insert(name.clone(), tenant.outcome());
                let (Some(store), Some(tenant_config), Some(graph)) =
                    (tenant.store, tenant.config, tenant.graph)
                else {
                    // The tenant's creation record is gone (corrupt
                    // snapshot plus truncated log): it is reported but
                    // cannot be re-registered.
                    continue;
                };
                let session =
                    AnalysisSession::rehydrated(name.clone(), store.clone(), graph, tenant_config)
                        .map_err(|source| ServeError::Analysis {
                            tenant: Name::from(name.as_str()),
                            source,
                        })?;
                registry.insert(Arc::new(Tenant::new(
                    Name::from(name.as_str()),
                    store,
                    session,
                )))?;
            }
            shards.push(ShardRecovery {
                shard,
                snapshot_last_seq,
                snapshot_corrupt,
                recovered_through_seq: recovered_through,
                frames_replayed,
                corruption: scanned.corruption.map(|corruption| CorruptionSummary {
                    offset: corruption.offset,
                    reason: corruption.reason,
                    lost_bytes: corruption.lost_bytes,
                }),
                tenants: report_tenants,
            });
        }
        let service = Self {
            config,
            registry,
            durable: Some(DurableLog {
                dir: durability.dir.clone(),
                snapshot_every_events: durability.snapshot_every_events,
                shards: shard_logs,
            }),
            sweeps: AtomicU64::new(0),
            refresh_failures: AtomicU64::new(0),
            #[cfg(test)]
            refresh_failpoint: std::sync::RwLock::default(),
        };
        Ok((service, RecoveryReport { shards }))
    }
}

/// One tenant mid-replay: what recovery knows about it so far.
struct Replaying {
    /// `None` when the tenant is known only by name from orphaned frames
    /// (its creation record was lost).
    store: Option<MetricStore>,
    config: Option<SieveConfig>,
    graph: Option<CallGraph>,
    points_replayed: u64,
    lost: LostSuffix,
    /// Once degraded, no further event of the tenant is applied — every
    /// later one joins the lost suffix (applying events after a gap
    /// would order history differently than the watermarks were computed
    /// against).
    degraded: bool,
}

impl Replaying {
    fn restored(store: MetricStore, config: SieveConfig, graph: CallGraph) -> Self {
        Self {
            store: Some(store),
            config: Some(config),
            graph: Some(graph),
            points_replayed: 0,
            lost: LostSuffix::default(),
            degraded: false,
        }
    }

    fn phantom() -> Self {
        Self {
            store: None,
            config: None,
            graph: None,
            points_replayed: 0,
            lost: LostSuffix::default(),
            degraded: true,
        }
    }

    fn outcome(&self) -> TenantRecovery {
        if self.degraded || self.lost.events > 0 {
            TenantRecovery::Recovered {
                points_replayed: self.points_replayed,
                lost_suffix: self.lost,
            }
        } else {
            TenantRecovery::Clean {
                points_replayed: self.points_replayed,
            }
        }
    }
}

/// Applies one intact log frame to the replaying shard state. Ingest
/// batches are verified *before* being applied: the batch's fingerprint
/// watermarks are recomputed over the current store state
/// ([`MetricStore::preview_watermarks`], side-effect free) and compared
/// with the logged ones — a mismatch means replay would diverge from
/// what the live service applied, so the tenant degrades instead of
/// silently rebuilding a wrong model.
fn replay_event(replaying: &mut BTreeMap<String, Replaying>, event: &WalEvent) {
    match event {
        WalEvent::TenantCreated {
            tenant,
            config,
            call_graph,
        } => {
            match replaying.entry(tenant.to_string()) {
                std::collections::btree_map::Entry::Vacant(entry) => {
                    entry.insert(Replaying::restored(
                        MetricStore::with_retention(config.retention),
                        (**config).clone(),
                        call_graph.clone(),
                    ));
                }
                std::collections::btree_map::Entry::Occupied(mut entry) => {
                    // A duplicate creation record means the log and
                    // snapshot disagree: degrade rather than guess.
                    let tenant = entry.get_mut();
                    tenant.degraded = true;
                    tenant.lost.events += 1;
                }
            }
        }
        WalEvent::CallGraphReplaced { tenant, call_graph } => {
            let tenant = replaying
                .entry(tenant.to_string())
                .or_insert_with(Replaying::phantom);
            if tenant.degraded {
                tenant.lost.events += 1;
            } else {
                tenant.graph = Some(call_graph.clone());
            }
        }
        WalEvent::RetentionChanged { tenant, retention } => {
            let tenant = replaying
                .entry(tenant.to_string())
                .or_insert_with(Replaying::phantom);
            match (&tenant.store, tenant.degraded) {
                (Some(store), false) => store.set_retention(*retention),
                _ => {
                    tenant.degraded = true;
                    tenant.lost.events += 1;
                }
            }
        }
        WalEvent::IngestBatch {
            tenant,
            points,
            watermarks,
        } => {
            let tenant = replaying
                .entry(tenant.to_string())
                .or_insert_with(Replaying::phantom);
            let verified = match (&tenant.store, tenant.degraded) {
                (Some(store), false) => {
                    let preview = store
                        .preview_watermarks(points.iter().map(|(id, ts, value)| (id, *ts, *value)));
                    preview == *watermarks
                }
                _ => false,
            };
            if verified {
                let store = tenant.store.as_ref().expect("verified batch has a store");
                let accepted =
                    store.record_batch(points.iter().map(|(id, ts, value)| (id, *ts, *value)));
                tenant.points_replayed += accepted as u64;
            } else {
                tenant.degraded = true;
                tenant.lost.events += 1;
                tenant.lost.points += points.len() as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_core::pipeline::Sieve;

    fn tiny_config() -> ServeConfig {
        ServeConfig::default()
            .with_shard_count(4)
            .with_sweep_parallelism(2)
            .with_analysis(
                SieveConfig::default()
                    .with_cluster_range(2, 2)
                    .with_parallelism(1),
            )
    }

    fn ingest_wave(service: &SieveService, tenant: &str, ticks: std::ops::Range<u64>, bias: f64) {
        let points: Vec<MetricPoint> = ticks
            .flat_map(|t| {
                let x = t as f64 * 0.17 + bias;
                [
                    MetricPoint::new("web", "requests", t * 500, x.sin() * 4.0),
                    MetricPoint::new("web", "latency", t * 500, x.cos() * 9.0),
                    MetricPoint::new("db", "queries", t * 500, (x * 0.5).sin() * 2.0),
                    MetricPoint::new("db", "io_wait", t * 500, (x * 0.5).cos()),
                ]
            })
            .collect();
        service.ingest(tenant, &points).unwrap();
    }

    fn web_db_graph() -> CallGraph {
        let mut graph = CallGraph::new();
        graph.record_calls("web", "db", 100);
        graph
    }

    #[test]
    fn tenants_are_isolated_and_models_match_batch_analysis() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("alpha", web_db_graph()).unwrap();
        service.create_tenant("beta", web_db_graph()).unwrap();
        assert_eq!(service.tenant_count(), 2);
        assert_eq!(service.tenants(), vec!["alpha", "beta"]);

        ingest_wave(&service, "alpha", 0..80, 0.0);
        ingest_wave(&service, "beta", 0..80, 1.3);
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_total, 2);
        assert_eq!(stats.tenants_refreshed, 2);

        // Each tenant's published model equals a from-scratch batch
        // analysis of its own store — and the two differ from each other
        // (different data, no cross-tenant bleed).
        let sieve = Sieve::new(service.config().analysis.clone());
        let alpha = service.model("alpha").unwrap().unwrap();
        let beta = service.model("beta").unwrap().unwrap();
        let alpha_batch = sieve
            .analyze("alpha", &service.store("alpha").unwrap(), &web_db_graph())
            .unwrap();
        let beta_batch = sieve
            .analyze("beta", &service.store("beta").unwrap(), &web_db_graph())
            .unwrap();
        assert_eq!(*alpha, alpha_batch);
        assert_eq!(*beta, beta_batch);
        assert_ne!(alpha.clusterings, beta.clusterings);
    }

    #[test]
    fn refresh_dirty_touches_only_dirty_tenants() {
        let service = SieveService::new(tiny_config()).unwrap();
        for tenant in ["a", "b", "c"] {
            service.create_tenant(tenant, web_db_graph()).unwrap();
            ingest_wave(&service, tenant, 0..80, 0.0);
        }
        assert_eq!(service.refresh_dirty().unwrap().tenants_refreshed, 3);

        // Only `b` receives new points.
        ingest_wave(&service, "b", 80..90, 0.0);
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 1);
        assert!(stats.components_prepared >= 1);
        assert_eq!(service.last_stats("a").unwrap().epoch, 1);
        assert_eq!(service.last_stats("b").unwrap().epoch, 2);

        // Aggregate stats cover all tenants' last refreshes.
        let agg = service.stats();
        assert_eq!(agg.tenants_total, 3);
        assert_eq!(agg.tenants_refreshed, 3);
        assert_eq!(agg.epoch_high_watermark, 2);
    }

    #[test]
    fn model_snapshots_survive_later_refreshes() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", web_db_graph()).unwrap();
        ingest_wave(&service, "acme", 0..80, 0.0);
        service.refresh_dirty().unwrap();
        let first = service.model("acme").unwrap().unwrap();
        let first_copy = (*first).clone();

        ingest_wave(&service, "acme", 80..120, 0.4);
        service.refresh_dirty().unwrap();
        let second = service.model("acme").unwrap().unwrap();
        assert!(!Arc::ptr_eq(&first, &second), "a refresh swaps the Arc");
        assert_eq!(*first, first_copy, "old snapshots are never mutated");
    }

    #[test]
    fn adopt_tenant_analyses_preloaded_stores_on_the_first_sweep() {
        let service = SieveService::new(tiny_config()).unwrap();
        let store = MetricStore::new();
        for t in 0..80u64 {
            let x = t as f64 * 0.2;
            store.record(
                &sieve_simulator::store::MetricId::new("web", "requests"),
                t * 500,
                x.sin(),
            );
            store.record(
                &sieve_simulator::store::MetricId::new("web", "latency"),
                t * 500,
                x.cos(),
            );
        }
        service
            .adopt_tenant("legacy", store.clone(), CallGraph::new())
            .unwrap();
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 1);
        let model = service.model("legacy").unwrap().unwrap();
        assert_eq!(model.total_metric_count(), 2);
    }

    #[test]
    fn empty_tenants_stay_unpublished_until_data_arrives() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", web_db_graph()).unwrap();
        // No data yet: a sweep publishes nothing (batch analysis of an
        // empty store is an error, so an empty model would break the
        // served==batch guarantee).
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 0);
        assert!(service.model("acme").unwrap().is_none());

        ingest_wave(&service, "acme", 0..80, 0.0);
        assert_eq!(service.refresh_dirty().unwrap().tenants_refreshed, 1);
        assert!(service.model("acme").unwrap().is_some());
    }

    #[test]
    fn replacing_the_call_graph_refreshes_the_tenant_without_new_ingest() {
        let service = SieveService::new(tiny_config()).unwrap();
        // Start with no topology: the first model has no comparison plan.
        service.create_tenant("acme", CallGraph::new()).unwrap();
        ingest_wave(&service, "acme", 0..80, 0.0);
        service.refresh_dirty().unwrap();
        assert_eq!(service.last_stats("acme").unwrap().comparisons_planned, 0);

        // Replace the topology; no series changes, but the next sweep must
        // still re-plan so the published model catches up.
        service.set_call_graph("acme", web_db_graph()).unwrap();
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 1, "replanned tenant is swept");
        assert!(
            service.last_stats("acme").unwrap().comparisons_planned > 0,
            "the new topology produced a comparison plan"
        );
        // And the request is consumed: the next sweep is a no-op again.
        assert_eq!(service.refresh_dirty().unwrap().tenants_refreshed, 0);
    }

    #[test]
    fn unknown_and_duplicate_tenants_error() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", CallGraph::new()).unwrap();
        assert!(matches!(
            service.create_tenant("acme", CallGraph::new()),
            Err(ServeError::DuplicateTenant { .. })
        ));
        assert!(matches!(
            service.ingest("ghost", &[]),
            Err(ServeError::UnknownTenant { .. })
        ));
        assert!(matches!(
            service.model("ghost"),
            Err(ServeError::UnknownTenant { .. })
        ));
        assert!(matches!(
            service.set_call_graph("ghost", CallGraph::new()),
            Err(ServeError::UnknownTenant { .. })
        ));
    }

    #[test]
    fn ingest_reports_accepted_points_only() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", CallGraph::new()).unwrap();
        let accepted = service
            .ingest(
                "acme",
                &[
                    MetricPoint::new("web", "cpu", 1000, 1.0),
                    // Out of order: dropped by the store.
                    MetricPoint::new("web", "cpu", 500, 2.0),
                    MetricPoint::new("web", "cpu", 1500, 3.0),
                ],
            )
            .unwrap();
        assert_eq!(accepted, 2);
    }

    #[test]
    fn sweep_parallelism_does_not_change_published_models() {
        let build = |sweep_parallelism: usize| {
            let service =
                SieveService::new(tiny_config().with_sweep_parallelism(sweep_parallelism)).unwrap();
            for (i, tenant) in ["a", "b", "c", "d", "e"].iter().enumerate() {
                service.create_tenant(*tenant, web_db_graph()).unwrap();
                ingest_wave(&service, tenant, 0..80, i as f64 * 0.7);
            }
            service.refresh_dirty().unwrap();
            // A second, interleaved wave exercises the incremental path.
            for (i, tenant) in ["b", "d"].iter().enumerate() {
                ingest_wave(&service, tenant, 80..100, i as f64 * 0.3);
            }
            service.refresh_dirty().unwrap();
            service
        };
        let serial = build(1);
        let parallel = build(8);
        for tenant in ["a", "b", "c", "d", "e"] {
            let s = serial.model(tenant).unwrap().unwrap();
            let p = parallel.model(tenant).unwrap().unwrap();
            assert_eq!(*s, *p, "tenant {tenant} differs across sweep degrees");
        }
    }

    #[test]
    fn retention_budgets_bound_tenant_stores_and_surface_in_stats() {
        let service =
            SieveService::new(tiny_config().with_retention(RetentionPolicy::windowed(40))).unwrap();
        // `bounded` inherits the service default; `oracle` overrides it.
        service.create_tenant("bounded", web_db_graph()).unwrap();
        service
            .create_tenant_with_retention("oracle", web_db_graph(), RetentionPolicy::unbounded())
            .unwrap();
        ingest_wave(&service, "bounded", 0..80, 0.0);
        ingest_wave(&service, "oracle", 0..80, 0.0);

        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 2);
        // 4 series x 80 points per tenant; the bounded tenant keeps 40 each.
        assert_eq!(stats.points_retained, 4 * 40 + 4 * 80);
        assert_eq!(stats.points_evicted, 4 * 40);
        assert_eq!(stats.bytes_evicted, 4 * 40 * 12);
        assert_eq!(service.stats().points_evicted, 4 * 40);
        assert_eq!(
            service.store("bounded").unwrap().retained_point_count(),
            4 * 40
        );

        // The bounded tenant's published model is the batch analysis of
        // its retained window — served==batch holds under eviction.
        let sieve = Sieve::new(service.config().analysis.clone());
        let model = service.model("bounded").unwrap().unwrap();
        let batch = sieve
            .analyze(
                "bounded",
                &service.store("bounded").unwrap(),
                &web_db_graph(),
            )
            .unwrap();
        assert_eq!(*model, batch);
    }

    #[test]
    fn set_retention_dirties_the_tenant_for_the_next_sweep() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", web_db_graph()).unwrap();
        ingest_wave(&service, "acme", 0..80, 0.0);
        service.refresh_dirty().unwrap();
        let wide = service.model("acme").unwrap().unwrap();

        // Tighten the budget: points are evicted immediately and the
        // tenant is dirty again without any new ingest.
        service
            .set_retention("acme", RetentionPolicy::windowed(40))
            .unwrap();
        assert_eq!(
            service.retention("acme").unwrap(),
            RetentionPolicy::windowed(40)
        );
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 1, "eviction counts as dirt");
        assert_eq!(stats.points_evicted, 4 * 40);
        let narrow = service.model("acme").unwrap().unwrap();
        assert!(!Arc::ptr_eq(&wide, &narrow), "the sweep republished");

        // The republished model is the batch analysis of the narrow window.
        let sieve = Sieve::new(service.config().analysis.clone());
        let batch = sieve
            .analyze("acme", &service.store("acme").unwrap(), &web_db_graph())
            .unwrap();
        assert_eq!(*narrow, batch);

        assert!(matches!(
            service.set_retention("ghost", RetentionPolicy::unbounded()),
            Err(ServeError::UnknownTenant { .. })
        ));
        assert!(matches!(
            service.retention("ghost"),
            Err(ServeError::UnknownTenant { .. })
        ));
    }

    /// A unique temp directory per test (tests run in parallel).
    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sieve-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_config(dir: &std::path::Path) -> ServeConfig {
        tiny_config().with_durability(crate::DurabilityConfig::new(dir))
    }

    #[test]
    fn durable_service_recovers_bit_identical_models() {
        let dir = temp_dir("clean-recovery");
        let service = SieveService::new(durable_config(&dir)).unwrap();
        service.create_tenant("alpha", web_db_graph()).unwrap();
        service
            .create_tenant_with_retention("beta", web_db_graph(), RetentionPolicy::windowed(60))
            .unwrap();
        ingest_wave(&service, "alpha", 0..80, 0.0);
        ingest_wave(&service, "beta", 0..90, 1.3);
        service.refresh_dirty().unwrap();
        // Admin events are durable too.
        service
            .set_retention("beta", RetentionPolicy::windowed(40))
            .unwrap();
        service.set_call_graph("alpha", CallGraph::new()).unwrap();
        ingest_wave(&service, "alpha", 80..100, 0.2);
        service.refresh_dirty().unwrap();
        let live_alpha = service.model("alpha").unwrap().unwrap();
        let live_beta = service.model("beta").unwrap().unwrap();
        drop(service); // "crash": nothing flushed beyond what committed

        let (recovered, report) = SieveService::recover(durable_config(&dir)).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(recovered.tenants(), vec!["alpha", "beta"]);
        assert_eq!(
            recovered.retention("beta").unwrap(),
            RetentionPolicy::windowed(40),
            "replayed admin event"
        );
        // Recovered tenants republish on the first sweep, bit-identical
        // to the pre-crash live models.
        recovered.refresh_dirty().unwrap();
        assert_eq!(*recovered.model("alpha").unwrap().unwrap(), *live_alpha);
        assert_eq!(*recovered.model("beta").unwrap().unwrap(), *live_beta);

        // And the service re-converges: post-recovery ingest behaves like
        // an uncrashed service fed the same stream.
        ingest_wave(&recovered, "beta", 90..110, 1.3);
        recovered.refresh_dirty().unwrap();
        let sieve = Sieve::new(recovered.config().analysis.clone());
        let batch = sieve
            .analyze("beta", &recovered.store("beta").unwrap(), &web_db_graph())
            .unwrap();
        assert_eq!(*recovered.model("beta").unwrap().unwrap(), batch);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_truncates_at_the_torn_tail_and_reports_the_lost_suffix() {
        let dir = temp_dir("torn-tail");
        // A huge snapshot cadence keeps everything in the log so the test
        // can tear it.
        let config = tiny_config().with_durability(
            crate::DurabilityConfig::new(&dir).with_snapshot_every_events(1_000_000),
        );
        let service = SieveService::new(config.clone()).unwrap();
        service.create_tenant("acme", web_db_graph()).unwrap();
        for round in 0..6u64 {
            ingest_wave(&service, "acme", round * 10..(round + 1) * 10, 0.0);
        }
        drop(service);

        // Tear the last 5 bytes off the shard log: the final ingest frame
        // is torn, everything before it is intact.
        let shard = sieve_exec::hash::shard_index("acme", config.shard_count);
        let log_path = dir.join(sieve_wal::log_file_name(shard));
        let bytes = std::fs::read(&log_path).unwrap();
        std::fs::write(&log_path, &bytes[..bytes.len() - 5]).unwrap();

        let (recovered, report) = SieveService::recover(config.clone()).unwrap();
        assert!(!report.is_clean());
        // A torn *final* frame is unreadable, so nobody can say which
        // tenant it belonged to: the loss is accounted at the shard level
        // in bytes, and the tenant is clean for its surviving prefix — no
        // readable event of it was dropped.
        let shard_report = report.shards.iter().find(|s| s.shard == shard).unwrap();
        let corruption = shard_report.corruption.as_ref().unwrap();
        assert!(corruption.lost_bytes > 0, "{corruption:?}");
        match report.tenant("acme").unwrap() {
            TenantRecovery::Clean { points_replayed } => {
                // 5 intact waves of 40 points; the 6th wave's frame is torn.
                assert_eq!(*points_replayed, 5 * 40);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // The recovered model for the intact prefix equals an uncrashed
        // oracle fed only the surviving waves.
        recovered.refresh_dirty().unwrap();
        let oracle = SieveService::new(tiny_config()).unwrap();
        oracle.create_tenant("acme", web_db_graph()).unwrap();
        for round in 0..5u64 {
            ingest_wave(&oracle, "acme", round * 10..(round + 1) * 10, 0.0);
        }
        oracle.refresh_dirty().unwrap();
        assert_eq!(
            *recovered.model("acme").unwrap().unwrap(),
            *oracle.model("acme").unwrap().unwrap(),
            "recovered prefix model must equal the uncrashed oracle"
        );

        // Recovery re-anchored the directory: a second recovery is clean
        // and the loss is not double-reported.
        drop(recovered);
        let (again, second) = SieveService::recover(config).unwrap();
        assert!(second.is_clean(), "{second}");
        again.refresh_dirty().unwrap();
        assert_eq!(
            *again.model("acme").unwrap().unwrap(),
            *oracle.model("acme").unwrap().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_bit_flip_mid_log_degrades_only_the_affected_tenant() {
        let dir = temp_dir("bit-flip");
        let config = tiny_config().with_durability(
            crate::DurabilityConfig::new(&dir).with_snapshot_every_events(1_000_000),
        );
        // Two tenants in different WAL shards: the flip lands in a shard
        // hosting exactly one of them. Beta's history is many small
        // frames, so a mid-file flip kills one frame and the frames after
        // it resync — a per-tenant accountable lost suffix.
        let service = SieveService::new(config.clone()).unwrap();
        service.create_tenant("alpha", web_db_graph()).unwrap();
        service.create_tenant("beta", web_db_graph()).unwrap();
        ingest_wave(&service, "alpha", 0..80, 0.0);
        for round in 0..6u64 {
            ingest_wave(&service, "beta", round * 10..(round + 1) * 10, 1.1);
        }
        drop(service);

        let alpha_shard = sieve_exec::hash::shard_index("alpha", config.shard_count);
        let beta_shard = sieve_exec::hash::shard_index("beta", config.shard_count);
        assert_ne!(alpha_shard, beta_shard, "tenants picked to hash apart");
        let log_path = dir.join(sieve_wal::log_file_name(beta_shard));
        let mut bytes = std::fs::read(&log_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&log_path, &bytes).unwrap();

        let (recovered, report) = SieveService::recover(config).unwrap();
        assert!(report.tenant("alpha").unwrap().is_clean());
        let (survived_waves, lost) = match report.tenant("beta").unwrap() {
            TenantRecovery::Recovered {
                points_replayed,
                lost_suffix,
            } => {
                // Whole 40-point waves survive or are lost — never a
                // partially applied frame.
                assert_eq!(points_replayed % 40, 0);
                (points_replayed / 40, *lost_suffix)
            }
            other => panic!("expected a lost suffix, got {other:?}"),
        };
        assert!(lost.events >= 1, "{lost:?}");
        assert!(survived_waves < 6);
        recovered.refresh_dirty().unwrap();
        // Alpha is untouched by beta's corruption, and beta's model is the
        // one an uncrashed service would publish for the surviving prefix.
        let oracle = SieveService::new(tiny_config()).unwrap();
        oracle.create_tenant("alpha", web_db_graph()).unwrap();
        oracle.create_tenant("beta", web_db_graph()).unwrap();
        ingest_wave(&oracle, "alpha", 0..80, 0.0);
        for round in 0..survived_waves {
            ingest_wave(&oracle, "beta", round * 10..(round + 1) * 10, 1.1);
        }
        oracle.refresh_dirty().unwrap();
        assert_eq!(
            *recovered.model("alpha").unwrap().unwrap(),
            *oracle.model("alpha").unwrap().unwrap()
        );
        assert_eq!(
            *recovered.model("beta").unwrap().unwrap(),
            *oracle.model("beta").unwrap().unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_bound_replay_and_recovery_reads_snapshot_plus_tail() {
        let dir = temp_dir("snapshot-cadence");
        let config = tiny_config()
            .with_durability(crate::DurabilityConfig::new(&dir).with_snapshot_every_events(3));
        let service = SieveService::new(config.clone()).unwrap();
        service.create_tenant("acme", web_db_graph()).unwrap(); // event 1
        for round in 0..5u64 {
            // Events 2..=6: snapshots fire after events 3 and 6, each
            // truncating the log.
            ingest_wave(&service, "acme", round * 10..(round + 1) * 10, 0.0);
        }
        service.refresh_dirty().unwrap();
        let live = service.model("acme").unwrap().unwrap();
        drop(service);

        let (recovered, report) = SieveService::recover(config).unwrap();
        assert!(report.is_clean(), "{report}");
        let shard = sieve_exec::hash::shard_index("acme", 4);
        let shard_report = report.shards.iter().find(|s| s.shard == shard).unwrap();
        assert_eq!(
            shard_report.snapshot_last_seq, 6,
            "recovery restored from the latest snapshot"
        );
        assert_eq!(
            shard_report.frames_replayed, 0,
            "the snapshot covered the whole history, nothing to replay"
        );
        recovered.refresh_dirty().unwrap();
        assert_eq!(*recovered.model("acme").unwrap().unwrap(), *live);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_new_durable_service_wipes_the_previous_incarnation() {
        let dir = temp_dir("wipe");
        let first = SieveService::new(durable_config(&dir)).unwrap();
        first.create_tenant("acme", web_db_graph()).unwrap();
        ingest_wave(&first, "acme", 0..40, 0.0);
        drop(first);

        // `new` starts fresh: the old tenant is gone from disk too.
        let second = SieveService::new(durable_config(&dir)).unwrap();
        assert_eq!(second.tenant_count(), 0);
        drop(second);
        let (recovered, report) = SieveService::recover(durable_config(&dir)).unwrap();
        assert_eq!(recovered.tenant_count(), 0);
        assert!(report.is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_tenants_back_off_exponentially_and_heal() {
        let service = SieveService::new(tiny_config().with_sweep_parallelism(1)).unwrap();
        service.create_tenant("bad", web_db_graph()).unwrap();
        service.create_tenant("good", web_db_graph()).unwrap();
        ingest_wave(&service, "bad", 0..80, 0.0);
        ingest_wave(&service, "good", 0..80, 0.3);
        service
            .refresh_failpoint
            .write()
            .unwrap()
            .insert("bad".to_string());

        // Sweep 1: the bad tenant fails (the error is surfaced), the good
        // tenant still publishes.
        let err = service.refresh_dirty().unwrap_err();
        assert!(matches!(err, ServeError::Analysis { ref tenant, .. } if tenant == "bad"));
        assert!(service.model("good").unwrap().is_some());
        assert!(service.model("bad").unwrap().is_none());
        let stats = service.stats();
        assert_eq!(stats.refresh_failures, 1);
        assert_eq!(stats.tenants_degraded, 1);

        // Sweep 2: streak 1 delays by 1 sweep, so the tenant is retried —
        // and fails again (streak 2, delay 2).
        assert!(service.refresh_dirty().is_err());
        assert_eq!(service.stats().refresh_failures, 2);
        // Sweep 3: inside the backoff window — skipped, so the sweep is
        // clean and cheap.
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 0);
        assert_eq!(stats.tenants_degraded, 1);
        // Sweep 4: window over, retried, fails (streak 3, delay 4).
        assert!(service.refresh_dirty().is_err());
        assert_eq!(service.stats().refresh_failures, 3);

        // Heal the tenant. It is still in backoff for sweeps 5..=7 — the
        // deferred work survives the wait — and succeeds at sweep 8.
        service.refresh_failpoint.write().unwrap().clear();
        for _ in 0..3 {
            assert_eq!(service.refresh_dirty().unwrap().tenants_refreshed, 0);
        }
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 1, "healed tenant republished");
        assert_eq!(stats.tenants_degraded, 0, "backoff reset on success");
        assert_eq!(stats.refresh_failures, 3, "cumulative count remains");
        assert!(service.model("bad").unwrap().is_some());
    }

    #[test]
    fn refresh_all_ignores_backoff() {
        let service = SieveService::new(tiny_config().with_sweep_parallelism(1)).unwrap();
        service.create_tenant("bad", web_db_graph()).unwrap();
        ingest_wave(&service, "bad", 0..80, 0.0);
        service
            .refresh_failpoint
            .write()
            .unwrap()
            .insert("bad".to_string());
        assert!(service.refresh_dirty().is_err()); // streak 1
        assert!(service.refresh_dirty().is_err()); // streak 2 → backoff 2
                                                   // refresh_dirty would skip the tenant now; refresh_all retries it
                                                   // anyway and surfaces the failure.
        assert!(service.refresh_all().is_err());
        assert_eq!(service.stats().refresh_failures, 3);
    }

    #[test]
    fn refresh_all_matches_refresh_dirty_results() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", web_db_graph()).unwrap();
        ingest_wave(&service, "acme", 0..80, 0.0);
        service.refresh_dirty().unwrap();
        let dirty_model = service.model("acme").unwrap().unwrap();

        let stats = service.refresh_all().unwrap();
        assert_eq!(stats.tenants_refreshed, 1);
        let all_model = service.model("acme").unwrap().unwrap();
        assert_eq!(*dirty_model, *all_model);
    }
}
