//! The multi-tenant analysis service.

use crate::config::ServeConfig;
use crate::registry::ShardedRegistry;
use crate::stats::ServiceStats;
use crate::tenant::{MetricPoint, Tenant};
use crate::{Result, ServeError};
use sieve_core::config::SieveConfig;
use sieve_core::model::SieveModel;
use sieve_core::session::{AnalysisSession, SessionStats};
use sieve_exec::{try_par_map_chunks, Name};
use sieve_graph::CallGraph;
use sieve_simulator::store::{MetricStore, RetentionPolicy};
use std::sync::Arc;

/// A multi-tenant Sieve analysis service.
///
/// The service owns N tenants, each a `(MetricStore, AnalysisSession)`
/// pair, behind a sharded registry (tenant name → shard via the
/// deterministic [`sieve_exec::hash::shard_index`] routing hash, one
/// `RwLock` per shard) — so ingest for tenant A never contends with a
/// model read for tenant B or an ongoing refresh of tenant C.
///
/// The serving loop is:
///
/// 1. [`SieveService::ingest`] appends batches of points to a tenant's
///    store; every accepted point advances the series' content fingerprint
///    and marks it touched (the PR-4 delta API).
/// 2. [`SieveService::refresh_dirty`] drains every tenant's
///    [`StoreDelta`](sieve_simulator::store::StoreDelta) and runs
///    `session.update` for all dirty tenants
///    through one [`sieve_exec::par_map_chunks`] fan-out, in sorted tenant
///    order — deterministic: a serial sweep and an 8-way sweep publish
///    bit-identical models.
/// 3. [`SieveService::model`] returns the tenant's last published
///    [`Arc<SieveModel>`] snapshot. Publication swaps an `Arc` under a
///    short write lock, so readers never block an ongoing refresh and
///    never observe a half-updated model.
///
/// Every published model is bit-identical to a from-scratch
/// [`sieve_core::pipeline::Sieve::analyze`] of the same tenant's store —
/// the incremental-session guarantee, asserted across sweep parallelism
/// degrees by the `serve` bench and property tests.
#[derive(Debug)]
pub struct SieveService {
    config: ServeConfig,
    registry: ShardedRegistry,
}

impl SieveService {
    /// Creates a service with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for invalid configurations
    /// (shard count not a power of two, invalid default analysis config).
    pub fn new(config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let registry = ShardedRegistry::new(config.shard_count);
        Ok(Self { config, registry })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Registers a new tenant with an empty store, the given call graph
    /// and the service's default analysis configuration. The store is
    /// created under the service's default retention budget
    /// (`config.analysis.retention`), so a bounded service keeps every
    /// tenant's memory flat from the first point.
    ///
    /// # Errors
    ///
    /// * [`ServeError::DuplicateTenant`] when the name is taken.
    /// * [`ServeError::Analysis`] when the analysis configuration is
    ///   rejected by the session.
    pub fn create_tenant(&self, name: impl Into<Name>, call_graph: CallGraph) -> Result<()> {
        let retention = self.config.analysis.retention;
        self.create_tenant_with_retention(name, call_graph, retention)
    }

    /// Like [`SieveService::create_tenant`] with a per-tenant retention
    /// budget overriding the service default — large tenants can run a
    /// tight ring window while small ones keep full history, on the same
    /// service.
    ///
    /// # Errors
    ///
    /// Same as [`SieveService::create_tenant`].
    pub fn create_tenant_with_retention(
        &self,
        name: impl Into<Name>,
        call_graph: CallGraph,
        retention: RetentionPolicy,
    ) -> Result<()> {
        let name = name.into();
        let config = self.config.analysis.clone().with_retention(retention);
        let store = MetricStore::with_retention(retention);
        self.adopt_tenant_with_config(name, store, call_graph, config)
    }

    /// Registers a new tenant over an existing store handle (for example
    /// one recorded by a `sieve_simulator::engine::Simulation`).
    ///
    /// The service takes over the store's single-consumer delta stream:
    /// after adoption, nothing else may call
    /// [`MetricStore::drain_delta`] on this store (or on clones of it) —
    /// points drained elsewhere would be invisible to
    /// [`SieveService::refresh_dirty`]. Pre-existing, never-drained
    /// content is picked up by the first sweep.
    ///
    /// # Errors
    ///
    /// Same as [`SieveService::create_tenant`].
    pub fn adopt_tenant(
        &self,
        name: impl Into<Name>,
        store: MetricStore,
        call_graph: CallGraph,
    ) -> Result<()> {
        let config = self.config.analysis.clone();
        self.adopt_tenant_with_config(name, store, call_graph, config)
    }

    /// Like [`SieveService::adopt_tenant`] with a per-tenant analysis
    /// configuration overriding the service default.
    ///
    /// # Errors
    ///
    /// Same as [`SieveService::create_tenant`].
    pub fn adopt_tenant_with_config(
        &self,
        name: impl Into<Name>,
        store: MetricStore,
        call_graph: CallGraph,
        config: SieveConfig,
    ) -> Result<()> {
        let name = name.into();
        let session = AnalysisSession::new(name.as_str(), store.clone(), call_graph, config)
            .map_err(|source| ServeError::Analysis {
                tenant: name.clone(),
                source,
            })?;
        self.registry
            .insert(Arc::new(Tenant::new(name, store, session)))
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.registry.len()
    }

    /// The names of all registered tenants, sorted.
    pub fn tenants(&self) -> Vec<Name> {
        self.registry
            .all_sorted()
            .into_iter()
            .map(|t| t.name.clone())
            .collect()
    }

    /// Appends a batch of observations to a tenant's store and returns how
    /// many points the store accepted (out-of-order points are dropped,
    /// see [`MetricPoint::timestamp_ms`]).
    ///
    /// This is the hot path: it takes the tenant's shard lock only to look
    /// the tenant up, then appends the whole batch under a single
    /// acquisition of the store's own lock
    /// ([`MetricStore::record_batch`]) — ingest for two tenants never
    /// serialises, whatever the analysis threads do.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn ingest(&self, tenant: &str, points: &[MetricPoint]) -> Result<usize> {
        let tenant = self.registry.get(tenant)?;
        Ok(tenant.store.record_batch(
            points
                .iter()
                .map(|point| (&point.id, point.timestamp_ms, point.value)),
        ))
    }

    /// Replaces a tenant's call graph (topologies grow while an
    /// application streams). Like on the underlying session, this alters
    /// the comparison *plan* of the next refresh but never invalidates a
    /// cached verdict — and it marks the tenant for refresh at the next
    /// sweep even if no series changes, so the published model catches up
    /// with the new topology without waiting for unrelated ingest.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn set_call_graph(&self, tenant: &str, call_graph: CallGraph) -> Result<()> {
        let tenant = self.registry.get(tenant)?;
        tenant
            .session
            .lock()
            .expect("tenant session poisoned")
            .set_call_graph(call_graph);
        tenant.request_refresh();
        Ok(())
    }

    /// Replaces a tenant's store retention budget at runtime. Tightening
    /// the budget evicts each series' oldest points immediately (folding
    /// them into the 10x/100x downsample tiers) and marks every trimmed
    /// series touched — eviction-as-dirt — so the next
    /// [`SieveService::refresh_dirty`] sweep treats the tenant like any
    /// other dirty one and republishes a model of the narrowed window.
    /// Loosening never restores evicted points; only the aggregate tiers
    /// remember them.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn set_retention(&self, tenant: &str, retention: RetentionPolicy) -> Result<()> {
        self.registry.get(tenant)?.store.set_retention(retention);
        Ok(())
    }

    /// A tenant's current store retention budget.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn retention(&self, tenant: &str) -> Result<RetentionPolicy> {
        Ok(self.registry.get(tenant)?.store.retention())
    }

    /// A handle to a tenant's store (for read-side consumers such as
    /// dashboards; remember the delta stream belongs to the service).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn store(&self, tenant: &str) -> Result<MetricStore> {
        Ok(self.registry.get(tenant)?.store.clone())
    }

    /// The tenant's last published model snapshot (`None` until the first
    /// sweep that saw the tenant). The returned `Arc` stays valid and
    /// immutable forever; later refreshes publish new `Arc`s instead of
    /// mutating this one.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn model(&self, tenant: &str) -> Result<Option<Arc<SieveModel>>> {
        Ok(self.registry.get(tenant)?.model())
    }

    /// Statistics of the tenant's last refresh (zeroed until the first
    /// sweep that saw the tenant).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`] when `tenant` is not registered.
    pub fn last_stats(&self, tenant: &str) -> Result<SessionStats> {
        Ok(self.registry.get(tenant)?.last_stats())
    }

    /// Aggregates the last published per-tenant statistics over all
    /// tenants (without refreshing anything). Tenants that have never been
    /// refreshed contribute nothing.
    pub fn stats(&self) -> ServiceStats {
        let tenants = self.registry.all_sorted();
        let mut stats = ServiceStats {
            tenants_total: tenants.len(),
            ..ServiceStats::default()
        };
        for tenant in &tenants {
            stats.absorb_retention(&tenant.store);
            if tenant.model().is_some() {
                stats.absorb(&tenant.last_stats());
            }
        }
        stats
    }

    /// Drains every tenant's delta and refreshes all dirty tenants through
    /// one parallel fan-out; returns what the sweep recomputed.
    ///
    /// A tenant is dirty when its drained
    /// [`StoreDelta`](sieve_simulator::store::StoreDelta) is non-empty,
    /// when its session has absorbed dirt that a (failed) earlier sweep
    /// did not refresh, when its call graph was replaced since the last
    /// sweep, or when it has data but never published a model (so adopted
    /// pre-loaded stores are analysed on the first sweep). Tenants with
    /// *empty* stores are never refreshed — they stay unpublished
    /// ([`SieveService::model`] returns `None`) until their first accepted
    /// point, which keeps the published-model guarantee unconditional:
    /// batch analysis of an empty store is an error, not an empty model.
    /// Clean tenants only absorb the epoch watermark — their sessions,
    /// clusterings and Granger verdicts are untouched, which is what makes
    /// a sweep with one dirty tenant of N nearly N times cheaper than
    /// batch-analysing the fleet.
    ///
    /// The dirty tenants are processed in sorted-name order through
    /// [`sieve_exec::par_map_chunks`] with
    /// [`ServeConfig::sweep_parallelism`] workers; each tenant's refresh is
    /// itself deterministic, so sweep parallelism 1 and N publish
    /// bit-identical models (asserted by the `serve` bench and the
    /// property tests).
    ///
    /// # Errors
    ///
    /// [`ServeError::Analysis`] naming the failing tenant — the earliest
    /// one in sorted order, regardless of thread timing. Tenant refreshes
    /// are isolated: every tenant whose own refresh succeeded in the same
    /// sweep has still published its new model (only the returned
    /// aggregate statistics are lost). A failing tenant keeps its previous
    /// snapshot, and its absorbed dirt stays pending in its session, so
    /// the next sweep retries exactly the outstanding work.
    ///
    /// # Example
    ///
    /// ```
    /// use sieve_core::config::SieveConfig;
    /// use sieve_graph::CallGraph;
    /// use sieve_serve::{MetricPoint, ServeConfig, SieveService};
    ///
    /// let config = ServeConfig::default()
    ///     .with_analysis(SieveConfig::default().with_cluster_range(2, 2).with_parallelism(1));
    /// let service = SieveService::new(config)?;
    /// service.create_tenant("acme", CallGraph::new())?;
    ///
    /// // Ingest two series worth of observations for tenant `acme`.
    /// let points: Vec<MetricPoint> = (0..60)
    ///     .flat_map(|t| {
    ///         let time = t as f64;
    ///         [
    ///             MetricPoint::new("web", "requests", t * 500, (time * 0.2).sin()),
    ///             MetricPoint::new("web", "latency", t * 500, (time * 0.2).cos() * 3.0),
    ///         ]
    ///     })
    ///     .collect();
    /// assert_eq!(service.ingest("acme", &points)?, points.len());
    ///
    /// // One sweep refreshes the dirty tenant and publishes its model.
    /// let stats = service.refresh_dirty()?;
    /// assert_eq!(stats.tenants_refreshed, 1);
    /// let model = service.model("acme")?.expect("model published");
    /// assert_eq!(model.total_metric_count(), 2);
    ///
    /// // Nothing changed, so the next sweep refreshes nothing.
    /// assert_eq!(service.refresh_dirty()?.tenants_refreshed, 0);
    /// # Ok::<(), sieve_serve::ServeError>(())
    /// ```
    pub fn refresh_dirty(&self) -> Result<ServiceStats> {
        let tenants = self.registry.all_sorted();

        // Drain every tenant's delta (cheap: one store lock each), absorb
        // it into the session — so the epoch watermark stays current even
        // for clean tenants — and decide who needs work. The session's own
        // pending-dirt flag is the source of truth: it covers this delta,
        // deltas absorbed by a previously *failed* refresh, and nothing
        // else; a replaced call graph is tracked separately because it
        // changes the comparison plan without dirtying any series.
        let mut work: Vec<Arc<Tenant>> = Vec::new();
        for tenant in &tenants {
            let delta = tenant.store.drain_delta();
            let replanned = tenant.take_refresh_request();
            let never_published = tenant.model().is_none();
            let pending = {
                let mut session = tenant.session.lock().expect("tenant session poisoned");
                session.apply_delta(&delta);
                session.has_pending_dirty()
            };
            // An empty store has nothing to analyse: the tenant stays
            // unpublished until its first accepted point arrives.
            if tenant.store.series_count() == 0 {
                continue;
            }
            if pending || replanned || never_published {
                work.push(Arc::clone(tenant));
            }
        }
        self.run_sweep(&tenants, &work)
    }

    /// Marks every component of every tenant dirty and refreshes the whole
    /// fleet — the batch special case of [`SieveService::refresh_dirty`],
    /// used as the reference sweep in benchmarks. Content-keyed session
    /// caches still apply (unchanged prepared content keeps its clustering
    /// and verdicts), so this is *not* equivalent to re-analysing from
    /// scratch in cost — only in result.
    ///
    /// # Errors
    ///
    /// Same as [`SieveService::refresh_dirty`].
    pub fn refresh_all(&self) -> Result<ServiceStats> {
        let tenants = self.registry.all_sorted();
        let mut work: Vec<Arc<Tenant>> = Vec::new();
        for tenant in &tenants {
            tenant.take_refresh_request();
            let delta = tenant.store.drain_delta();
            {
                let mut session = tenant.session.lock().expect("tenant session poisoned");
                session.apply_delta(&delta);
                session.mark_all_dirty();
            }
            // Same empty-store rule as `refresh_dirty`.
            if tenant.store.series_count() > 0 {
                work.push(Arc::clone(tenant));
            }
        }
        self.run_sweep(&tenants, &work)
    }

    /// The shared fan-out of both sweeps: refreshes every tenant in `work`
    /// (deltas already absorbed into the sessions) through the executor
    /// and aggregates the statistics. Each work item locks only its own
    /// tenant's session, so workers never contend; the executor returns
    /// results in input (sorted-tenant) order, and the earliest failing
    /// tenant wins error reporting deterministically. Retention counters
    /// are read from *every* registered tenant's store (not just the dirty
    /// ones) — the fleet's memory footprint is a property of the stores,
    /// not of the sweep.
    fn run_sweep(&self, tenants: &[Arc<Tenant>], work: &[Arc<Tenant>]) -> Result<ServiceStats> {
        let mut stats = ServiceStats {
            tenants_total: tenants.len(),
            ..ServiceStats::default()
        };
        for tenant in tenants {
            stats.absorb_retention(&tenant.store);
        }
        let refreshed: Vec<SessionStats> =
            try_par_map_chunks(self.config.sweep_parallelism, work, |tenant| {
                let mut session = tenant.session.lock().expect("tenant session poisoned");
                let model = session
                    .refresh_shared()
                    .map_err(|source| ServeError::Analysis {
                        tenant: tenant.name.clone(),
                        source,
                    })?;
                let session_stats = session.last_stats();
                // Publish while still holding the session lock: if two
                // sweeps ever race on one tenant, the lock serialises
                // refresh+publish as a unit, so the newest refresh is
                // always the last publish and a stale model can never win.
                tenant.publish(model, session_stats);
                Ok(session_stats)
            })?;
        for session_stats in &refreshed {
            stats.absorb(session_stats);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_core::pipeline::Sieve;

    fn tiny_config() -> ServeConfig {
        ServeConfig::default()
            .with_shard_count(4)
            .with_sweep_parallelism(2)
            .with_analysis(
                SieveConfig::default()
                    .with_cluster_range(2, 2)
                    .with_parallelism(1),
            )
    }

    fn ingest_wave(service: &SieveService, tenant: &str, ticks: std::ops::Range<u64>, bias: f64) {
        let points: Vec<MetricPoint> = ticks
            .flat_map(|t| {
                let x = t as f64 * 0.17 + bias;
                [
                    MetricPoint::new("web", "requests", t * 500, x.sin() * 4.0),
                    MetricPoint::new("web", "latency", t * 500, x.cos() * 9.0),
                    MetricPoint::new("db", "queries", t * 500, (x * 0.5).sin() * 2.0),
                    MetricPoint::new("db", "io_wait", t * 500, (x * 0.5).cos()),
                ]
            })
            .collect();
        service.ingest(tenant, &points).unwrap();
    }

    fn web_db_graph() -> CallGraph {
        let mut graph = CallGraph::new();
        graph.record_calls("web", "db", 100);
        graph
    }

    #[test]
    fn tenants_are_isolated_and_models_match_batch_analysis() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("alpha", web_db_graph()).unwrap();
        service.create_tenant("beta", web_db_graph()).unwrap();
        assert_eq!(service.tenant_count(), 2);
        assert_eq!(service.tenants(), vec!["alpha", "beta"]);

        ingest_wave(&service, "alpha", 0..80, 0.0);
        ingest_wave(&service, "beta", 0..80, 1.3);
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_total, 2);
        assert_eq!(stats.tenants_refreshed, 2);

        // Each tenant's published model equals a from-scratch batch
        // analysis of its own store — and the two differ from each other
        // (different data, no cross-tenant bleed).
        let sieve = Sieve::new(service.config().analysis.clone());
        let alpha = service.model("alpha").unwrap().unwrap();
        let beta = service.model("beta").unwrap().unwrap();
        let alpha_batch = sieve
            .analyze("alpha", &service.store("alpha").unwrap(), &web_db_graph())
            .unwrap();
        let beta_batch = sieve
            .analyze("beta", &service.store("beta").unwrap(), &web_db_graph())
            .unwrap();
        assert_eq!(*alpha, alpha_batch);
        assert_eq!(*beta, beta_batch);
        assert_ne!(alpha.clusterings, beta.clusterings);
    }

    #[test]
    fn refresh_dirty_touches_only_dirty_tenants() {
        let service = SieveService::new(tiny_config()).unwrap();
        for tenant in ["a", "b", "c"] {
            service.create_tenant(tenant, web_db_graph()).unwrap();
            ingest_wave(&service, tenant, 0..80, 0.0);
        }
        assert_eq!(service.refresh_dirty().unwrap().tenants_refreshed, 3);

        // Only `b` receives new points.
        ingest_wave(&service, "b", 80..90, 0.0);
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 1);
        assert!(stats.components_prepared >= 1);
        assert_eq!(service.last_stats("a").unwrap().epoch, 1);
        assert_eq!(service.last_stats("b").unwrap().epoch, 2);

        // Aggregate stats cover all tenants' last refreshes.
        let agg = service.stats();
        assert_eq!(agg.tenants_total, 3);
        assert_eq!(agg.tenants_refreshed, 3);
        assert_eq!(agg.epoch_high_watermark, 2);
    }

    #[test]
    fn model_snapshots_survive_later_refreshes() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", web_db_graph()).unwrap();
        ingest_wave(&service, "acme", 0..80, 0.0);
        service.refresh_dirty().unwrap();
        let first = service.model("acme").unwrap().unwrap();
        let first_copy = (*first).clone();

        ingest_wave(&service, "acme", 80..120, 0.4);
        service.refresh_dirty().unwrap();
        let second = service.model("acme").unwrap().unwrap();
        assert!(!Arc::ptr_eq(&first, &second), "a refresh swaps the Arc");
        assert_eq!(*first, first_copy, "old snapshots are never mutated");
    }

    #[test]
    fn adopt_tenant_analyses_preloaded_stores_on_the_first_sweep() {
        let service = SieveService::new(tiny_config()).unwrap();
        let store = MetricStore::new();
        for t in 0..80u64 {
            let x = t as f64 * 0.2;
            store.record(
                &sieve_simulator::store::MetricId::new("web", "requests"),
                t * 500,
                x.sin(),
            );
            store.record(
                &sieve_simulator::store::MetricId::new("web", "latency"),
                t * 500,
                x.cos(),
            );
        }
        service
            .adopt_tenant("legacy", store.clone(), CallGraph::new())
            .unwrap();
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 1);
        let model = service.model("legacy").unwrap().unwrap();
        assert_eq!(model.total_metric_count(), 2);
    }

    #[test]
    fn empty_tenants_stay_unpublished_until_data_arrives() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", web_db_graph()).unwrap();
        // No data yet: a sweep publishes nothing (batch analysis of an
        // empty store is an error, so an empty model would break the
        // served==batch guarantee).
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 0);
        assert!(service.model("acme").unwrap().is_none());

        ingest_wave(&service, "acme", 0..80, 0.0);
        assert_eq!(service.refresh_dirty().unwrap().tenants_refreshed, 1);
        assert!(service.model("acme").unwrap().is_some());
    }

    #[test]
    fn replacing_the_call_graph_refreshes_the_tenant_without_new_ingest() {
        let service = SieveService::new(tiny_config()).unwrap();
        // Start with no topology: the first model has no comparison plan.
        service.create_tenant("acme", CallGraph::new()).unwrap();
        ingest_wave(&service, "acme", 0..80, 0.0);
        service.refresh_dirty().unwrap();
        assert_eq!(service.last_stats("acme").unwrap().comparisons_planned, 0);

        // Replace the topology; no series changes, but the next sweep must
        // still re-plan so the published model catches up.
        service.set_call_graph("acme", web_db_graph()).unwrap();
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 1, "replanned tenant is swept");
        assert!(
            service.last_stats("acme").unwrap().comparisons_planned > 0,
            "the new topology produced a comparison plan"
        );
        // And the request is consumed: the next sweep is a no-op again.
        assert_eq!(service.refresh_dirty().unwrap().tenants_refreshed, 0);
    }

    #[test]
    fn unknown_and_duplicate_tenants_error() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", CallGraph::new()).unwrap();
        assert!(matches!(
            service.create_tenant("acme", CallGraph::new()),
            Err(ServeError::DuplicateTenant { .. })
        ));
        assert!(matches!(
            service.ingest("ghost", &[]),
            Err(ServeError::UnknownTenant { .. })
        ));
        assert!(matches!(
            service.model("ghost"),
            Err(ServeError::UnknownTenant { .. })
        ));
        assert!(matches!(
            service.set_call_graph("ghost", CallGraph::new()),
            Err(ServeError::UnknownTenant { .. })
        ));
    }

    #[test]
    fn ingest_reports_accepted_points_only() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", CallGraph::new()).unwrap();
        let accepted = service
            .ingest(
                "acme",
                &[
                    MetricPoint::new("web", "cpu", 1000, 1.0),
                    // Out of order: dropped by the store.
                    MetricPoint::new("web", "cpu", 500, 2.0),
                    MetricPoint::new("web", "cpu", 1500, 3.0),
                ],
            )
            .unwrap();
        assert_eq!(accepted, 2);
    }

    #[test]
    fn sweep_parallelism_does_not_change_published_models() {
        let build = |sweep_parallelism: usize| {
            let service =
                SieveService::new(tiny_config().with_sweep_parallelism(sweep_parallelism)).unwrap();
            for (i, tenant) in ["a", "b", "c", "d", "e"].iter().enumerate() {
                service.create_tenant(*tenant, web_db_graph()).unwrap();
                ingest_wave(&service, tenant, 0..80, i as f64 * 0.7);
            }
            service.refresh_dirty().unwrap();
            // A second, interleaved wave exercises the incremental path.
            for (i, tenant) in ["b", "d"].iter().enumerate() {
                ingest_wave(&service, tenant, 80..100, i as f64 * 0.3);
            }
            service.refresh_dirty().unwrap();
            service
        };
        let serial = build(1);
        let parallel = build(8);
        for tenant in ["a", "b", "c", "d", "e"] {
            let s = serial.model(tenant).unwrap().unwrap();
            let p = parallel.model(tenant).unwrap().unwrap();
            assert_eq!(*s, *p, "tenant {tenant} differs across sweep degrees");
        }
    }

    #[test]
    fn retention_budgets_bound_tenant_stores_and_surface_in_stats() {
        let service =
            SieveService::new(tiny_config().with_retention(RetentionPolicy::windowed(40))).unwrap();
        // `bounded` inherits the service default; `oracle` overrides it.
        service.create_tenant("bounded", web_db_graph()).unwrap();
        service
            .create_tenant_with_retention("oracle", web_db_graph(), RetentionPolicy::unbounded())
            .unwrap();
        ingest_wave(&service, "bounded", 0..80, 0.0);
        ingest_wave(&service, "oracle", 0..80, 0.0);

        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 2);
        // 4 series x 80 points per tenant; the bounded tenant keeps 40 each.
        assert_eq!(stats.points_retained, 4 * 40 + 4 * 80);
        assert_eq!(stats.points_evicted, 4 * 40);
        assert_eq!(stats.bytes_evicted, 4 * 40 * 12);
        assert_eq!(service.stats().points_evicted, 4 * 40);
        assert_eq!(
            service.store("bounded").unwrap().retained_point_count(),
            4 * 40
        );

        // The bounded tenant's published model is the batch analysis of
        // its retained window — served==batch holds under eviction.
        let sieve = Sieve::new(service.config().analysis.clone());
        let model = service.model("bounded").unwrap().unwrap();
        let batch = sieve
            .analyze(
                "bounded",
                &service.store("bounded").unwrap(),
                &web_db_graph(),
            )
            .unwrap();
        assert_eq!(*model, batch);
    }

    #[test]
    fn set_retention_dirties_the_tenant_for_the_next_sweep() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", web_db_graph()).unwrap();
        ingest_wave(&service, "acme", 0..80, 0.0);
        service.refresh_dirty().unwrap();
        let wide = service.model("acme").unwrap().unwrap();

        // Tighten the budget: points are evicted immediately and the
        // tenant is dirty again without any new ingest.
        service
            .set_retention("acme", RetentionPolicy::windowed(40))
            .unwrap();
        assert_eq!(
            service.retention("acme").unwrap(),
            RetentionPolicy::windowed(40)
        );
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, 1, "eviction counts as dirt");
        assert_eq!(stats.points_evicted, 4 * 40);
        let narrow = service.model("acme").unwrap().unwrap();
        assert!(!Arc::ptr_eq(&wide, &narrow), "the sweep republished");

        // The republished model is the batch analysis of the narrow window.
        let sieve = Sieve::new(service.config().analysis.clone());
        let batch = sieve
            .analyze("acme", &service.store("acme").unwrap(), &web_db_graph())
            .unwrap();
        assert_eq!(*narrow, batch);

        assert!(matches!(
            service.set_retention("ghost", RetentionPolicy::unbounded()),
            Err(ServeError::UnknownTenant { .. })
        ));
        assert!(matches!(
            service.retention("ghost"),
            Err(ServeError::UnknownTenant { .. })
        ));
    }

    #[test]
    fn refresh_all_matches_refresh_dirty_results() {
        let service = SieveService::new(tiny_config()).unwrap();
        service.create_tenant("acme", web_db_graph()).unwrap();
        ingest_wave(&service, "acme", 0..80, 0.0);
        service.refresh_dirty().unwrap();
        let dirty_model = service.model("acme").unwrap().unwrap();

        let stats = service.refresh_all().unwrap();
        assert_eq!(stats.tenants_refreshed, 1);
        let all_model = service.model("acme").unwrap().unwrap();
        assert_eq!(*dirty_model, *all_model);
    }
}
