//! Benchmark of the chaos-scenario engine: seeded generation throughput,
//! the streamed epoch-by-epoch analysis of an adversarial scenario, and
//! the ground-truth scoring harness on top of it.
//!
//! Run with: `cargo bench -p sieve-bench --bench scenarios`
//!
//! `SIEVE_BENCH_SMOKE=1` (used by CI) shrinks the iteration counts while
//! keeping the correctness assertions: the final streamed model must equal
//! the batch oracle bit-for-bit, the injected root cause must rank in the
//! top-3, and every scripted dependency flip must be tracked in time.

use sieve_bench::harness::{smoke_mode, Runner};
use sieve_bench::ledger::Ledger;
use sieve_rca::RcaConfig;
use sieve_scenario::matrix::{DRIFT_WINDOW_EPOCHS, RCA_TOP_K};
use sieve_scenario::{generate, run_batch, run_streamed, score_clusters, score_drift, score_rca};
use std::hint::black_box;

fn main() {
    let mut runner = Runner::new();
    let (gen_iters, stream_iters, score_iters) = if smoke_mode() {
        (2usize, 1usize, 2usize)
    } else {
        (20usize, 5usize, 20usize)
    };

    // The root-cause scenario exercises the whole engine: a diurnal
    // workload, a scripted fault injection and RCA-scorable ground truth.
    let spec = sieve_scenario::matrix::root_cause();
    let seed = 41;

    runner.bench("scenarios/generate", gen_iters, || {
        let data = generate(&spec, seed).unwrap();
        black_box(data.fingerprint())
    });

    let data = generate(&spec, seed).unwrap();
    let config = spec.analysis_config(1);
    println!(
        "scenarios: {} — {} epochs, {} points per generation",
        spec.name,
        data.epochs.len(),
        data.point_count()
    );

    runner.bench("scenarios/streamed-epochs", stream_iters, || {
        let models = run_streamed(&data, &config).unwrap();
        black_box(models.len())
    });

    // Correctness: the streamed run the bench timed equals a from-scratch
    // batch analysis, and the scores meet the regression-suite thresholds.
    let models = run_streamed(&data, &config).unwrap();
    let batch = run_batch(&data, &config).unwrap();
    assert_eq!(
        **models.last().unwrap(),
        batch,
        "final streamed model must equal the batch oracle"
    );
    let rca = score_rca(&models, &data.truth, RcaConfig::default(), RCA_TOP_K).unwrap();
    assert!(
        rca.hit(),
        "injected root cause {} ranked {:?}",
        rca.component,
        rca.rank
    );
    let drift = score_drift(&models, &data.truth);
    assert!(
        drift.all_tracked_within(DRIFT_WINDOW_EPOCHS),
        "drift outcomes {:?}",
        drift.outcomes
    );

    runner.bench("scenarios/score", score_iters, || {
        let rca = score_rca(&models, &data.truth, RcaConfig::default(), RCA_TOP_K);
        let drift = score_drift(&models, &data.truth);
        let clusters = score_clusters(models.last().unwrap(), &data.truth);
        black_box((
            rca.is_some(),
            drift.outcomes.len(),
            clusters.mean_abs_error(),
        ))
    });

    println!(
        "scenarios: root cause {} ranked {:?} (top-{}), streamed==batch passed",
        rca.component, rca.rank, rca.top_k
    );

    let ledger = Ledger::new("scenarios");
    ledger.record_all(
        runner.measurements(),
        "root-cause chaos scenario: generate, streamed 8-epoch analysis, scoring",
    );
    println!("scenarios: ledger appended to {}", ledger.path().display());
}
