//! Micro-benchmarks of the analysis primitives: shape-based distance
//! (direct and via cached spectra), k-Shape clustering (warm vs cold
//! start), silhouette scoring, Granger causality, AMI — and the acceptance
//! comparison of the cached-distance k-sweep against the naive one.
//!
//! Run with: `cargo bench -p sieve-bench --bench analysis`

use sieve_bench::harness::{smoke_mode, Runner};
use sieve_causality::granger::{granger_causes, GrangerConfig};
use sieve_cluster::ami::adjusted_mutual_information;
use sieve_cluster::jaro::pre_cluster_names;
use sieve_cluster::kshape::{KShape, KShapeConfig};
use sieve_cluster::silhouette::silhouette_score_sbd;
use sieve_core::config::SieveConfig;
use sieve_core::reduce::{reduce_component, NamedSeries};
use sieve_timeseries::sbd::shape_based_distance;
use sieve_timeseries::spectrum::{sbd_from_spectra, SeriesSpectrum};
use std::hint::black_box;

/// Deterministic pseudo-noise used to synthesise benchmark series.
fn noise(i: usize, seed: u64) -> f64 {
    let mut s =
        (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ seed.wrapping_mul(0xD1B54A32D192ED03);
    s ^= s >> 33;
    s = s.wrapping_mul(0xff51afd7ed558ccd);
    s ^= s >> 29;
    ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
}

fn series(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            50.0 + 30.0 * ((i as f64) * 0.1 * (1.0 + seed as f64 * 0.1)).sin()
                + 5.0 * noise(i, seed)
        })
        .collect()
}

fn metric_family(count: usize, len: usize) -> (Vec<Vec<f64>>, Vec<String>) {
    let mut data = Vec::new();
    let mut names = Vec::new();
    for m in 0..count {
        let family = m % 3;
        let values: Vec<f64> = (0..len)
            .map(|i| match family {
                0 => 40.0 + 20.0 * ((i as f64) * 0.12).sin() + 2.0 * noise(i, m as u64),
                1 => i as f64 * 0.5 + 3.0 * noise(i, m as u64),
                _ => {
                    if i % 24 < 3 {
                        10.0 + noise(i, m as u64)
                    } else {
                        noise(i, m as u64)
                    }
                }
            })
            .collect();
        data.push(values);
        names.push(format!("family{family}_metric_{m}"));
    }
    (data, names)
}

fn bench_sbd(runner: &mut Runner) {
    for len in [128usize, 512, 2048] {
        let a = series(len, 1);
        let b = series(len, 2);
        runner.bench(&format!("sbd/{len}"), 50, || {
            shape_based_distance(black_box(&a), black_box(&b)).unwrap()
        });
    }
}

fn bench_sbd_spectra(runner: &mut Runner) {
    for len in [128usize, 512, 2048] {
        let a = series(len, 1);
        let b = series(len, 2);
        let sa = SeriesSpectrum::compute(&a).unwrap();
        let sb = SeriesSpectrum::compute(&b).unwrap();
        // Sanity: cached == direct, bit for bit.
        assert_eq!(
            sbd_from_spectra(&sa, &sb).unwrap().distance.to_bits(),
            shape_based_distance(&a, &b).unwrap().distance.to_bits()
        );
        runner.bench(&format!("sbd_spectra/{len}"), 50, || {
            sbd_from_spectra(black_box(&sa), black_box(&sb)).unwrap()
        });
    }
}

/// The acceptance comparison: one component's full k-sweep + silhouette
/// stage (what `reduce_component` spends its time on) with the shared SBD
/// engine versus the naive direct-SBD path. The engine must be at least
/// 1.5x faster while producing an identical clustering.
fn bench_reduce_k_sweep_cached_vs_naive(runner: &mut Runner) {
    let (data, names) = metric_family(30, 240);
    let series: Vec<NamedSeries> = names
        .iter()
        .zip(data)
        .map(|(name, values)| NamedSeries::new(name.as_str(), values))
        .collect();
    // parallelism = 1 so the comparison is purely algorithmic — the cached
    // path must win on FFT reuse alone, not on threads.
    let base = SieveConfig::default()
        .with_cluster_range(2, 6)
        .with_parallelism(1);
    let cached_config = base.clone().with_sbd_cache(true);
    let naive_config = base.with_sbd_cache(false);

    let cached_model = reduce_component("bench", &series, &cached_config).unwrap();
    let naive_model = reduce_component("bench", &series, &naive_config).unwrap();
    assert_eq!(
        cached_model, naive_model,
        "cached and naive reduction must produce identical clusterings"
    );

    let iters = if smoke_mode() { 1 } else { 5 };
    runner.bench("reduce_k_sweep/cached", iters, || {
        reduce_component("bench", black_box(&series), &cached_config).unwrap()
    });
    runner.bench("reduce_k_sweep/naive", iters, || {
        reduce_component("bench", black_box(&series), &naive_config).unwrap()
    });
    let cached = runner.measurement("reduce_k_sweep/cached").unwrap().min();
    let naive = runner.measurement("reduce_k_sweep/naive").unwrap().min();
    let speedup = naive.as_secs_f64() / cached.as_secs_f64().max(1e-12);
    println!(
        "reduce_k_sweep: cached-distance path speedup over naive (best of {iters}): \
         {speedup:.2}x (naive {naive:.3?}, cached {cached:.3?})"
    );
    if !smoke_mode() {
        assert!(
            speedup >= 1.5,
            "cached k-sweep must be at least 1.5x faster than the naive path, got {speedup:.2}x"
        );
    }
}

fn bench_kshape(runner: &mut Runner) {
    let (data, names) = metric_family(30, 240);
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    runner.bench("kshape/cold_start_k5", 10, || {
        KShape::new(KShapeConfig::new(5).with_max_iterations(30))
            .fit(black_box(&data))
            .unwrap()
    });
    runner.bench("kshape/jaro_warm_start_k5", 10, || {
        let init = pre_cluster_names(&name_refs, 5);
        KShape::new(
            KShapeConfig::new(5)
                .with_max_iterations(30)
                .with_initial_assignment(init),
        )
        .fit(black_box(&data))
        .unwrap()
    });
}

fn bench_silhouette(runner: &mut Runner) {
    let (data, _) = metric_family(24, 240);
    let labels: Vec<usize> = (0..data.len()).map(|i| i % 3).collect();
    runner.bench("silhouette_sbd_24x240", 20, || {
        silhouette_score_sbd(black_box(&data), black_box(&labels)).unwrap()
    });
}

fn bench_granger(runner: &mut Runner) {
    for len in [120usize, 300, 600] {
        let x = series(len, 3);
        let y: Vec<f64> = (0..len)
            .map(|i| {
                if i == 0 {
                    0.0
                } else {
                    1.5 * x[i - 1] + noise(i, 9)
                }
            })
            .collect();
        let config = GrangerConfig::default();
        runner.bench(&format!("granger/{len}"), 50, || {
            granger_causes(black_box(&x), black_box(&y), &config).unwrap()
        });
    }
}

fn bench_ami(runner: &mut Runner) {
    let a: Vec<usize> = (0..500).map(|i| i % 7).collect();
    let b: Vec<usize> = (0..500).map(|i| (i / 3) % 7).collect();
    runner.bench("ami_500_labels", 50, || {
        adjusted_mutual_information(black_box(&a), black_box(&b)).unwrap()
    });
}

fn main() {
    let mut runner = Runner::new();
    bench_sbd(&mut runner);
    bench_sbd_spectra(&mut runner);
    bench_reduce_k_sweep_cached_vs_naive(&mut runner);
    bench_kshape(&mut runner);
    bench_silhouette(&mut runner);
    bench_granger(&mut runner);
    bench_ami(&mut runner);
}
