//! Micro-benchmarks of the analysis primitives: the hot kernels
//! (twiddle-cached batched FFT vs the naive per-series oracle,
//! z-normalisation, Pearson, the OLS design fit), shape-based distance
//! (direct and via cached spectra), k-Shape clustering (warm vs cold
//! start), silhouette scoring, Granger causality, AMI — plus two
//! acceptance comparisons: the cached-distance k-sweep against the naive
//! one, and the full `analyze` pipeline with the shared engines on
//! against the engines-off path.
//!
//! Run with: `cargo bench -p sieve-bench --bench analysis`
//!
//! Every measurement is appended to `BENCH_analysis.json` at the repo
//! root (see [`sieve_bench::ledger`]). `SIEVE_BENCH_SMOKE=1` (used by CI)
//! shrinks the workloads and skips the wall-clock assertions while
//! keeping every bitwise-equality assertion.

use sieve_apps::{sharelatex, MetricRichness};
use sieve_bench::harness::{smoke_mode, Runner};
use sieve_bench::ledger::Ledger;
use sieve_bench::noise::noise;
use sieve_causality::granger::{granger_causes, GrangerConfig};
use sieve_causality::ols::{fit_design, Design};
use sieve_cluster::ami::adjusted_mutual_information;
use sieve_cluster::jaro::pre_cluster_names;
use sieve_cluster::kshape::{KShape, KShapeConfig};
use sieve_cluster::silhouette::silhouette_score_sbd;
use sieve_core::columnar::PreparedComponent;
use sieve_core::config::SieveConfig;
use sieve_core::pipeline::{load_application, Sieve};
use sieve_core::reduce::reduce_component;
use sieve_exec::Name;
use sieve_simulator::workload::Workload;
use sieve_timeseries::fft::{fft_batch, fft_in_place_naive, Complex};
use sieve_timeseries::normalize::z_normalize;
use sieve_timeseries::sbd::shape_based_distance;
use sieve_timeseries::spectrum::{sbd_from_spectra, SeriesSpectrum};
use sieve_timeseries::stats;
use std::hint::black_box;

fn series(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            50.0 + 30.0 * ((i as f64) * 0.1 * (1.0 + seed as f64 * 0.1)).sin()
                + 5.0 * noise(i, seed)
        })
        .collect()
}

fn metric_family(count: usize, len: usize) -> (Vec<Vec<f64>>, Vec<String>) {
    let mut data = Vec::new();
    let mut names = Vec::new();
    for m in 0..count {
        let family = m % 3;
        let values: Vec<f64> = (0..len)
            .map(|i| match family {
                0 => 40.0 + 20.0 * ((i as f64) * 0.12).sin() + 2.0 * noise(i, m as u64),
                1 => i as f64 * 0.5 + 3.0 * noise(i, m as u64),
                _ => {
                    if i % 24 < 3 {
                        10.0 + noise(i, m as u64)
                    } else {
                        noise(i, m as u64)
                    }
                }
            })
            .collect();
        data.push(values);
        names.push(format!("family{family}_metric_{m}"));
    }
    (data, names)
}

/// The batched-FFT kernel acceptance comparison: one pass over a packed
/// `64 × 1024` arena with the shared twiddle table versus transforming
/// every series independently through the naive seed oracle. Spectra
/// must match bit for bit, and the batched path must win by ≥ 1.3x on
/// non-smoke hosts (the comparison is serial, so core count is
/// irrelevant).
fn bench_fft_kernels(runner: &mut Runner) {
    let n = 1024usize;
    let count = if smoke_mode() { 8 } else { 64 };
    let signals: Vec<Vec<Complex>> = (0..count)
        .map(|c| {
            (0..n)
                .map(|i| Complex::new(noise(i, c as u64 + 1), 0.0))
                .collect()
        })
        .collect();

    // Bitwise oracle: the batched transform equals the seed FFT per series.
    let mut batch_buf: Vec<Complex> = signals.concat();
    fft_batch(&mut batch_buf, n);
    for (c, signal) in signals.iter().enumerate() {
        let mut single = signal.clone();
        fft_in_place_naive(&mut single);
        for (a, b) in batch_buf[c * n..(c + 1) * n].iter().zip(&single) {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "series {c} re");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "series {c} im");
        }
    }

    let iters = if smoke_mode() { 2 } else { 100 };
    runner.bench(&format!("fft/naive_per_series_{count}x{n}"), iters, || {
        let mut checksum = 0.0;
        for signal in &signals {
            let mut buf = signal.clone();
            fft_in_place_naive(&mut buf);
            checksum += buf[0].re;
        }
        black_box(checksum)
    });
    runner.bench(&format!("fft/batch_{count}x{n}"), iters, || {
        let mut buf = signals.concat();
        fft_batch(&mut buf, n);
        black_box(buf[0].re)
    });
    let naive = runner
        .measurement(&format!("fft/naive_per_series_{count}x{n}"))
        .unwrap()
        .min();
    let batch = runner
        .measurement(&format!("fft/batch_{count}x{n}"))
        .unwrap()
        .min();
    let speedup = naive.as_secs_f64() / batch.as_secs_f64().max(1e-12);
    println!(
        "fft: batched twiddle-cached speedup over naive per-series (best of {iters}): \
         {speedup:.2}x (naive {naive:.3?}, batch {batch:.3?})"
    );
    if smoke_mode() {
        println!("fft: smoke mode — wall-clock assertion skipped");
    } else {
        assert!(
            speedup >= 1.3,
            "batched FFT must be at least 1.3x faster than the naive \
             per-series oracle, got {speedup:.2}x"
        );
    }
}

/// Timings of the scalar hot loops the clustering and causality stages
/// lean on: z-normalisation, Pearson correlation and the OLS design fit.
fn bench_stat_kernels(runner: &mut Runner) {
    let len = 2048usize;
    let x = series(len, 1);
    let y = series(len, 2);
    let iters = if smoke_mode() { 2 } else { 200 };
    runner.bench(&format!("kernels/z_normalize_{len}"), iters, || {
        black_box(z_normalize(black_box(&x)))
    });
    runner.bench(&format!("kernels/pearson_{len}"), iters, || {
        black_box(stats::pearson(black_box(&x), black_box(&y)))
    });

    // A Granger-shaped design: intercept + 3 lags of y + 3 lags of x.
    let lag = 3usize;
    let rows = len - lag;
    let mut design = Design::new();
    design.reset(rows);
    design.push_intercept();
    for l in 1..=lag {
        design
            .push_column(&y[lag - l..len - l])
            .expect("lagged column matches the design");
        design
            .push_column(&x[lag - l..len - l])
            .expect("lagged column matches the design");
    }
    let target = &y[lag..];
    runner.bench(&format!("kernels/fit_design_{rows}x7"), iters, || {
        fit_design(black_box(&design), black_box(target)).unwrap()
    });
}

fn bench_sbd(runner: &mut Runner) {
    for len in [128usize, 512, 2048] {
        let a = series(len, 1);
        let b = series(len, 2);
        runner.bench(&format!("sbd/{len}"), 50, || {
            shape_based_distance(black_box(&a), black_box(&b)).unwrap()
        });
    }
}

fn bench_sbd_spectra(runner: &mut Runner) {
    for len in [128usize, 512, 2048] {
        let a = series(len, 1);
        let b = series(len, 2);
        let sa = SeriesSpectrum::compute(&a).unwrap();
        let sb = SeriesSpectrum::compute(&b).unwrap();
        // Sanity: cached == direct, bit for bit.
        assert_eq!(
            sbd_from_spectra(&sa, &sb).unwrap().distance.to_bits(),
            shape_based_distance(&a, &b).unwrap().distance.to_bits()
        );
        runner.bench(&format!("sbd_spectra/{len}"), 50, || {
            sbd_from_spectra(black_box(&sa), black_box(&sb)).unwrap()
        });
    }
}

/// The acceptance comparison: one component's full k-sweep + silhouette
/// stage (what `reduce_component` spends its time on) with the shared SBD
/// engine versus the naive direct-SBD path. The engine must be at least
/// 1.5x faster while producing an identical clustering.
fn bench_reduce_k_sweep_cached_vs_naive(runner: &mut Runner) {
    let (data, names) = metric_family(30, 240);
    let prepared = PreparedComponent::from_rows(
        names
            .iter()
            .zip(data)
            .map(|(name, values)| (Name::new(name), values)),
    );
    // parallelism = 1 so the comparison is purely algorithmic — the cached
    // path must win on FFT reuse alone, not on threads.
    let base = SieveConfig::default()
        .with_cluster_range(2, 6)
        .with_parallelism(1);
    let cached_config = base.clone().with_sbd_cache(true);
    let naive_config = base.with_sbd_cache(false);

    let cached_model = reduce_component("bench", &prepared, &cached_config).unwrap();
    let naive_model = reduce_component("bench", &prepared, &naive_config).unwrap();
    assert_eq!(
        cached_model, naive_model,
        "cached and naive reduction must produce identical clusterings"
    );

    let iters = if smoke_mode() { 1 } else { 5 };
    runner.bench("reduce_k_sweep/cached", iters, || {
        reduce_component("bench", black_box(&prepared), &cached_config).unwrap()
    });
    runner.bench("reduce_k_sweep/naive", iters, || {
        reduce_component("bench", black_box(&prepared), &naive_config).unwrap()
    });
    let cached = runner.measurement("reduce_k_sweep/cached").unwrap().min();
    let naive = runner.measurement("reduce_k_sweep/naive").unwrap().min();
    let speedup = naive.as_secs_f64() / cached.as_secs_f64().max(1e-12);
    println!(
        "reduce_k_sweep: cached-distance path speedup over naive (best of {iters}): \
         {speedup:.2}x (naive {naive:.3?}, cached {cached:.3?})"
    );
    if !smoke_mode() {
        assert!(
            speedup >= 1.5,
            "cached k-sweep must be at least 1.5x faster than the naive path, got {speedup:.2}x"
        );
    }
}

/// The end-to-end acceptance comparison: the full `analyze` pipeline with
/// the shared SBD and Granger engines on versus both engines off, on the
/// same recorded store at parallelism 1. The models must be bit-identical
/// and the engine path at least 1.2x faster on non-smoke multi-core
/// hosts.
fn bench_full_analyze_cached_vs_naive(runner: &mut Runner) {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let duration = if smoke_mode() { 30_000 } else { 120_000 };
    let (store, call_graph) =
        load_application(&app, &Workload::randomized(70.0, 3), 5, duration, 500).unwrap();
    let base = SieveConfig::default().with_parallelism(1);
    let cached_sieve = Sieve::new(base.clone().with_sbd_cache(true).with_granger_cache(true));
    let naive_sieve = Sieve::new(base.with_sbd_cache(false).with_granger_cache(false));

    let cached_model = cached_sieve
        .analyze("sharelatex", &store, &call_graph)
        .unwrap();
    let naive_model = naive_sieve
        .analyze("sharelatex", &store, &call_graph)
        .unwrap();
    assert_eq!(
        cached_model, naive_model,
        "engines on and off must produce bit-identical models"
    );

    let iters = if smoke_mode() { 1 } else { 3 };
    runner.bench("analyze_full/engines-on", iters, || {
        cached_sieve
            .analyze("sharelatex", black_box(&store), &call_graph)
            .unwrap()
    });
    runner.bench("analyze_full/engines-off", iters, || {
        naive_sieve
            .analyze("sharelatex", black_box(&store), &call_graph)
            .unwrap()
    });
    let cached = runner.measurement("analyze_full/engines-on").unwrap().min();
    let naive = runner
        .measurement("analyze_full/engines-off")
        .unwrap()
        .min();
    let speedup = naive.as_secs_f64() / cached.as_secs_f64().max(1e-12);
    println!(
        "analyze_full: engine-path speedup over engines-off (best of {iters}): \
         {speedup:.2}x (off {naive:.3?}, on {cached:.3?})"
    );
    if smoke_mode() {
        println!("analyze_full: smoke mode — wall-clock assertion skipped");
    } else if sieve_exec::par::hardware_parallelism() > 1 {
        assert!(
            speedup >= 1.2,
            "the full pipeline with engines on must be at least 1.2x faster \
             than with engines off, got {speedup:.2}x"
        );
    } else {
        println!("analyze_full: single-core host — the ≥1.2x assertion runs on multi-core hosts");
    }
}

fn bench_kshape(runner: &mut Runner) {
    let (data, names) = metric_family(30, 240);
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    runner.bench("kshape/cold_start_k5", 10, || {
        KShape::new(KShapeConfig::new(5).with_max_iterations(30))
            .fit(black_box(&data))
            .unwrap()
    });
    runner.bench("kshape/jaro_warm_start_k5", 10, || {
        let init = pre_cluster_names(&name_refs, 5);
        KShape::new(
            KShapeConfig::new(5)
                .with_max_iterations(30)
                .with_initial_assignment(init),
        )
        .fit(black_box(&data))
        .unwrap()
    });
}

fn bench_silhouette(runner: &mut Runner) {
    let (data, _) = metric_family(24, 240);
    let labels: Vec<usize> = (0..data.len()).map(|i| i % 3).collect();
    runner.bench("silhouette_sbd_24x240", 20, || {
        silhouette_score_sbd(black_box(&data), black_box(&labels)).unwrap()
    });
}

fn bench_granger(runner: &mut Runner) {
    for len in [120usize, 300, 600] {
        let x = series(len, 3);
        let y: Vec<f64> = (0..len)
            .map(|i| {
                if i == 0 {
                    0.0
                } else {
                    1.5 * x[i - 1] + noise(i, 9)
                }
            })
            .collect();
        let config = GrangerConfig::default();
        runner.bench(&format!("granger/{len}"), 50, || {
            granger_causes(black_box(&x), black_box(&y), &config).unwrap()
        });
    }
}

fn bench_ami(runner: &mut Runner) {
    let a: Vec<usize> = (0..500).map(|i| i % 7).collect();
    let b: Vec<usize> = (0..500).map(|i| (i / 3) % 7).collect();
    runner.bench("ami_500_labels", 50, || {
        adjusted_mutual_information(black_box(&a), black_box(&b)).unwrap()
    });
}

fn main() {
    let mut runner = Runner::new();
    bench_fft_kernels(&mut runner);
    bench_stat_kernels(&mut runner);
    bench_sbd(&mut runner);
    bench_sbd_spectra(&mut runner);
    bench_reduce_k_sweep_cached_vs_naive(&mut runner);
    bench_full_analyze_cached_vs_naive(&mut runner);
    bench_kshape(&mut runner);
    bench_silhouette(&mut runner);
    bench_granger(&mut runner);
    bench_ami(&mut runner);

    let ledger = Ledger::new("analysis");
    ledger.record_all(
        runner.measurements(),
        "synthetic kernels + sharelatex minimal, parallelism=1 comparisons",
    );
    println!("analysis: ledger appended to {}", ledger.path().display());
}
