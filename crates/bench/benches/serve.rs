//! Benchmark of the multi-tenant serving layer: a sharded
//! [`SieveService`] hosting a fleet of tenants, its dirty-sweep cost when
//! one tenant of sixteen changed, and the cross-tenant equality matrix
//! (served models == per-tenant batch analysis, across sweep parallelism
//! 1/4/8).
//!
//! Run with: `cargo bench -p sieve-bench --bench serve`
//!
//! `SIEVE_BENCH_SMOKE=1` (used by CI) shrinks the fleet and skips the
//! wall-clock assertion while keeping every model-equality assertion. The
//! wall-clock assertion additionally requires a multi-core host (the sweep
//! speedup at parallelism 8 is meaningless on one core).

use sieve_apps::tenants::{tenant_fleet, TenantMix, TenantWorkload};
use sieve_bench::harness::{smoke_mode, Runner};
use sieve_bench::ledger::Ledger;
use sieve_core::config::SieveConfig;
use sieve_core::model::SieveModel;
use sieve_core::pipeline::Sieve;
use sieve_exec::par_map_chunks;
use sieve_serve::{MetricPoint, ServeConfig, SieveService};
use sieve_simulator::engine::{SimConfig, Simulation};
use sieve_simulator::store::MetricStore;
use std::hint::black_box;

const FLEET_SEED: u64 = 0x5EEDBEEF;

/// Per-tenant analysis configuration: serial inside a tenant so the sweep
/// fan-out is the only parallelism under measurement.
fn analysis_config() -> SieveConfig {
    SieveConfig::default()
        .with_cluster_range(2, 3)
        .with_parallelism(1)
}

/// Runs each tenant's simulation to completion and returns the recorded
/// `(store, call_graph)` pairs, index-aligned with the fleet.
fn record_fleet(
    fleet: &[TenantWorkload],
    duration_ms: u64,
) -> Vec<(MetricStore, sieve_graph::CallGraph)> {
    fleet
        .iter()
        .map(|tenant| {
            let config = SimConfig::new(tenant.seed)
                .with_tick_ms(500)
                .with_duration_ms(duration_ms);
            let mut sim =
                Simulation::new(tenant.spec.clone(), tenant.workload.clone(), config).unwrap();
            sim.run_to_completion();
            sim.into_parts()
        })
        .collect()
}

/// Builds a service over freshly recorded copies of the fleet (each
/// service must own its stores' delta streams, so stores are re-recorded
/// per service — simulations are deterministic, so every copy is
/// bit-identical).
fn build_service(
    fleet: &[TenantWorkload],
    recordings: Vec<(MetricStore, sieve_graph::CallGraph)>,
    sweep_parallelism: usize,
) -> SieveService {
    let service = SieveService::new(
        ServeConfig::default()
            .with_shard_count(16)
            .with_sweep_parallelism(sweep_parallelism)
            .with_analysis(analysis_config()),
    )
    .unwrap();
    for (tenant, (store, graph)) in fleet.iter().zip(recordings) {
        service.adopt_tenant(&tenant.name, store, graph).unwrap();
    }
    service
}

/// Appends one synthetic tick to every series of one tenant, so exactly
/// that tenant is dirty in the next sweep.
fn touch_tenant(store: &MetricStore, round: u64) {
    let mut writes = Vec::new();
    for component in store.components() {
        store.for_each_series_of(component.as_str(), |id, series| {
            let last = series.end_ms().unwrap_or(0);
            let value = *series.values().last().unwrap_or(&0.0);
            writes.push(MetricPoint {
                id: id.clone(),
                timestamp_ms: last + 500,
                value: value + (round % 5) as f64,
            });
        });
    }
    for point in writes {
        store.record(&point.id, point.timestamp_ms, point.value);
    }
}

fn main() {
    let mut runner = Runner::new();
    let tenant_count = if smoke_mode() { 4 } else { 16 };
    let duration_ms = if smoke_mode() { 20_000 } else { 60_000 };
    let fleet = tenant_fleet(TenantMix::ManySmall, tenant_count, FLEET_SEED);

    // Cross-tenant equality matrix: for every sweep parallelism degree the
    // service must publish, per tenant, exactly the model a from-scratch
    // per-tenant batch analysis produces — and all degrees must agree with
    // each other bit for bit.
    let sieve = Sieve::new(analysis_config());
    let batch_reference: Vec<SieveModel> = record_fleet(&fleet, duration_ms)
        .into_iter()
        .zip(&fleet)
        .map(|((store, graph), tenant)| sieve.analyze(&tenant.name, &store, &graph).unwrap())
        .collect();
    assert!(
        batch_reference
            .iter()
            .any(|m| m.dependency_graph.edge_count() > 0),
        "the fleet must produce dependency edges"
    );
    for sweep_parallelism in [1usize, 4, 8] {
        let service = build_service(&fleet, record_fleet(&fleet, duration_ms), sweep_parallelism);
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, fleet.len(), "first sweep sees all");
        for (tenant, reference) in fleet.iter().zip(&batch_reference) {
            let served = service.model(&tenant.name).unwrap().unwrap();
            assert_eq!(
                *served, *reference,
                "tenant {} at sweep parallelism {sweep_parallelism} must match \
                 per-tenant batch analysis",
                tenant.name
            );
        }
    }
    println!(
        "serve: {} tenants x sweep parallelism {{1,4,8}}: served==batch equality passed",
        fleet.len()
    );

    // Timed comparison at sweep parallelism 8: one dirty tenant of N
    // (refresh_dirty) vs batch-analysing the whole fleet with the same
    // 8-way fan-out — the cost a model consumer would pay without the
    // serving layer's dirty tracking.
    let recordings = record_fleet(&fleet, duration_ms);
    let graphs: Vec<sieve_graph::CallGraph> =
        recordings.iter().map(|(_, graph)| graph.clone()).collect();
    let service = build_service(&fleet, recordings, 8);
    service.refresh_dirty().unwrap();
    let dirty_tenant = &fleet[fleet.len() / 2];
    let dirty_store = service.store(&dirty_tenant.name).unwrap();

    let iters = if smoke_mode() { 1 } else { 5 };
    let mut round = 0u64;
    runner.bench("serve/one-dirty-tenant-sweep-p8", iters, || {
        round += 1;
        touch_tenant(&dirty_store, round);
        black_box(service.refresh_dirty().unwrap())
    });
    let swept = service.stats();
    assert_eq!(swept.tenants_total, fleet.len());
    assert_eq!(
        service.last_stats(&dirty_tenant.name).unwrap().epoch,
        service.store(&dirty_tenant.name).unwrap().epoch(),
        "the dirty tenant's session is current"
    );

    // Baseline: batch re-analysis of every tenant through the same
    // executor at the same fan-out. The stores are the service's own live
    // handles (clones share data), so the baseline analyses exactly the
    // data the sweep analysed; the call graphs were kept from the same
    // recording the service adopted.
    let tenant_inputs: Vec<(String, MetricStore, sieve_graph::CallGraph)> = fleet
        .iter()
        .zip(graphs)
        .map(|(tenant, graph)| {
            (
                tenant.name.clone(),
                service.store(&tenant.name).unwrap(),
                graph,
            )
        })
        .collect();
    runner.bench("serve/batch-analyze-fleet-p8", iters, || {
        let models = par_map_chunks(8, &tenant_inputs, |(name, store, graph)| {
            sieve.analyze(name, store, graph).unwrap()
        });
        black_box(models.len())
    });

    // The sweep's published models still match batch analysis of the
    // touched stores.
    for (name, store, graph) in &tenant_inputs {
        let served = service.model(name).unwrap().unwrap();
        let batch = sieve.analyze(name, store, graph).unwrap();
        assert_eq!(*served, batch, "tenant {name} drifted after touch rounds");
    }

    let sweep = runner
        .measurement("serve/one-dirty-tenant-sweep-p8")
        .unwrap()
        .min();
    let batch = runner
        .measurement("serve/batch-analyze-fleet-p8")
        .unwrap()
        .min();
    let speedup = batch.as_secs_f64() / sweep.as_secs_f64().max(1e-12);
    println!(
        "serve: 1-dirty-of-{} sweep speedup over fleet batch analysis (best of {iters}): \
         {speedup:.2}x (batch {batch:.3?}, sweep {sweep:.3?})",
        fleet.len()
    );
    if smoke_mode() {
        println!("serve: smoke mode — wall-clock assertion skipped");
    } else if sieve_exec::par::hardware_parallelism() > 1 {
        assert!(
            speedup >= 2.0,
            "a one-dirty-tenant sweep must be at least 2x faster than \
             batch-analysing the fleet, got {speedup:.2}x"
        );
    } else {
        println!(
            "serve: single-core host — wall-clock assertion enforced \
             on multi-core hosts only"
        );
    }

    let ledger = Ledger::new("serve");
    ledger.record_all(
        runner.measurements(),
        "many-small tenant fleet, sweep parallelism=8",
    );
    println!("serve: ledger appended to {}", ledger.path().display());
}
