//! Benchmark of the dependency-identification stage (step 3): the shared
//! causality engine (prepared per-series state, memoized restricted fits)
//! against the naive per-pair Granger path, on the same recorded data and
//! precomputed clusterings — plus the full-model equality assertions for
//! the engine toggle across executor degrees.
//!
//! Run with: `cargo bench -p sieve-bench --bench dependencies`
//!
//! `SIEVE_BENCH_SMOKE=1` (used by CI) shrinks the workload and skips the
//! wall-clock assertion while keeping every model-equality assertion.

use sieve_apps::{sharelatex, MetricRichness};
use sieve_bench::harness::{smoke_mode, Runner};
use sieve_bench::ledger::Ledger;
use sieve_core::config::SieveConfig;
use sieve_core::dependencies::identify_dependencies;
use sieve_core::pipeline::{load_application, Sieve};
use sieve_simulator::workload::Workload;
use std::hint::black_box;

fn main() {
    let mut runner = Runner::new();
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let duration = if smoke_mode() { 30_000 } else { 120_000 };
    let (store, call_graph) =
        load_application(&app, &Workload::randomized(70.0, 3), 5, duration, 500).unwrap();

    // Full-`SieveModel` equality: the engine toggle must not change a bit
    // of the output at any executor degree.
    let mut models = Vec::new();
    for parallelism in [1usize, 4, 8] {
        for use_cache in [true, false] {
            let sieve = Sieve::new(
                SieveConfig::default()
                    .with_parallelism(parallelism)
                    .with_granger_cache(use_cache),
            );
            models.push(sieve.analyze("sharelatex", &store, &call_graph).unwrap());
        }
    }
    for m in &models[1..] {
        assert_eq!(
            &models[0], m,
            "granger cache and parallelism must not change the model"
        );
    }

    // Isolate the stage: the prepared series and the clusterings are
    // computed once outside the timed region, parallelism = 1 so the
    // comparison is purely algorithmic — the engine must win on cached
    // ADF/differencing/restricted-fit reuse alone, not on threads.
    let cached_config = SieveConfig::default()
        .with_parallelism(1)
        .with_granger_cache(true);
    let naive_config = SieveConfig::default()
        .with_parallelism(1)
        .with_granger_cache(false);
    let prepared = Sieve::new(cached_config.clone()).prepare(&store);
    let clusterings = models[0].clusterings.clone();

    let cached_graph =
        identify_dependencies(&prepared, &clusterings, &call_graph, &cached_config).unwrap();
    let naive_graph =
        identify_dependencies(&prepared, &clusterings, &call_graph, &naive_config).unwrap();
    assert_eq!(
        cached_graph, naive_graph,
        "cached and naive dependency stages must produce identical graphs"
    );
    assert!(
        cached_graph.edge_count() > 0,
        "the workload must produce dependency edges"
    );

    let iters = if smoke_mode() { 1 } else { 3 };
    runner.bench("dependencies/cached", iters, || {
        identify_dependencies(
            black_box(&prepared),
            black_box(&clusterings),
            &call_graph,
            &cached_config,
        )
        .unwrap()
    });
    runner.bench("dependencies/naive", iters, || {
        identify_dependencies(
            black_box(&prepared),
            black_box(&clusterings),
            &call_graph,
            &naive_config,
        )
        .unwrap()
    });
    let cached = runner.measurement("dependencies/cached").unwrap().min();
    let naive = runner.measurement("dependencies/naive").unwrap().min();
    let speedup = naive.as_secs_f64() / cached.as_secs_f64().max(1e-12);
    println!(
        "dependencies: causality-engine speedup over naive (best of {iters}): \
         {speedup:.2}x (naive {naive:.3?}, cached {cached:.3?})"
    );
    if smoke_mode() {
        println!("dependencies: smoke mode — wall-clock assertion skipped");
    } else if sieve_exec::par::hardware_parallelism() > 1 {
        assert!(
            speedup >= 1.5,
            "cached dependency stage must be at least 1.5x faster than the naive path, \
             got {speedup:.2}x"
        );
    } else {
        println!(
            "dependencies: single-core host — the ≥1.5x assertion runs on multi-core hosts only"
        );
    }

    let ledger = Ledger::new("dependencies");
    ledger.record_all(
        runner.measurements(),
        "sharelatex minimal, isolated stage, parallelism=1",
    );
    println!(
        "dependencies: ledger appended to {}",
        ledger.path().display()
    );
}
