//! Benchmark of crash recovery: replay throughput of the per-shard
//! write-ahead log, with and without a snapshot bounding the log tail.
//!
//! Run with: `cargo bench -p sieve-bench --bench recovery`
//!
//! `SIEVE_BENCH_SMOKE=1` (used by CI) shrinks the workload while keeping
//! the correctness assertion: every recovered service must publish models
//! bit-identical to the crashed live service's.

use sieve_bench::harness::{smoke_mode, Runner};
use sieve_bench::ledger::Ledger;
use sieve_core::config::SieveConfig;
use sieve_core::model::SieveModel;
use sieve_serve::{DurabilityConfig, FsyncPolicy, MetricPoint, ServeConfig, SieveService};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::path::{Path, PathBuf};

/// Serial per-tenant analysis; the bench measures durability, not the
/// analysis fan-out.
fn analysis_config() -> SieveConfig {
    SieveConfig::default()
        .with_cluster_range(2, 3)
        .with_parallelism(1)
}

fn serve_config(dir: &Path, snapshot_every: u64) -> ServeConfig {
    ServeConfig::default()
        .with_shard_count(16)
        .with_sweep_parallelism(4)
        .with_analysis(analysis_config())
        .with_durability(
            // The bench measures replay, not the disk's sync latency.
            DurabilityConfig::new(dir)
                .with_fsync(FsyncPolicy::Never)
                .with_snapshot_every_events(snapshot_every),
        )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sieve-bench-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

fn tenant_names(count: usize) -> Vec<String> {
    (0..count).map(|i| format!("tenant-{i:02}")).collect()
}

fn wave(tenant_index: usize, ticks: std::ops::Range<u64>) -> Vec<MetricPoint> {
    let bias = tenant_index as f64 * 0.9;
    ticks
        .flat_map(|t| {
            let x = t as f64 * 0.17 + bias;
            [
                MetricPoint::new("web", "requests", t * 500, x.sin() * 4.0),
                MetricPoint::new("web", "latency", t * 500, x.cos() * 9.0),
                MetricPoint::new("db", "queries", t * 500, (x * 0.5).sin() * 2.0),
                MetricPoint::new("db", "io_wait", t * 500, (x * 0.5).cos()),
            ]
        })
        .collect()
}

fn call_graph() -> sieve_graph::CallGraph {
    let mut graph = sieve_graph::CallGraph::new();
    graph.record_calls("web", "db", 100);
    graph
}

/// Builds a durable service, runs the ingest workload against it, captures
/// its live models and "crashes" it. Returns the total accepted points.
fn crash_workload(
    dir: &Path,
    snapshot_every: u64,
    names: &[String],
    waves: u64,
    ticks_per_wave: u64,
) -> (u64, BTreeMap<String, SieveModel>) {
    let service = SieveService::new(serve_config(dir, snapshot_every)).unwrap();
    for name in names {
        service.create_tenant(name.as_str(), call_graph()).unwrap();
    }
    let mut total = 0u64;
    for round in 0..waves {
        for (i, name) in names.iter().enumerate() {
            let points = wave(i, round * ticks_per_wave..(round + 1) * ticks_per_wave);
            total += service.ingest(name, &points).unwrap() as u64;
        }
    }
    service.refresh_all().unwrap();
    let live = names
        .iter()
        .map(|name| {
            let model = service.model(name).unwrap().unwrap();
            (name.clone(), (*model).clone())
        })
        .collect();
    (total, live)
}

/// Prepares one directory copy per bench call (warm-up + measured runs):
/// `SieveService::recover` re-anchors the directory it recovers, so every
/// call needs a pristine crashed copy.
fn prepare_copies(master: &Path, tag: &str, calls: usize) -> Vec<PathBuf> {
    (0..calls)
        .map(|i| {
            let copy = temp_dir(&format!("{tag}-copy{i}"));
            copy_dir(master, &copy);
            copy
        })
        .collect()
}

fn main() {
    let mut runner = Runner::new();
    let (tenant_count, waves, ticks) = if smoke_mode() {
        (3usize, 4u64, 40u64)
    } else {
        (8usize, 10u64, 200u64)
    };
    let iters = if smoke_mode() { 1 } else { 5 };
    let names = tenant_names(tenant_count);

    // Scenario 1: the whole history lives in the log (no snapshot fired) —
    // recovery is pure frame-by-frame replay through the store machinery.
    let log_dir = temp_dir("log-only");
    let (log_points, live) = crash_workload(&log_dir, u64::MAX, &names, waves, ticks);
    let copies = prepare_copies(&log_dir, "log-only", iters + 1);
    let mut call = 0usize;
    runner.bench("recovery/replay-log", iters, || {
        let copy = &copies[call];
        call += 1;
        let (service, report) = SieveService::recover(serve_config(copy, u64::MAX)).unwrap();
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.points_replayed(), log_points);
        black_box(service.tenant_count())
    });

    // Scenario 2: a tight snapshot cadence keeps the log tail short —
    // recovery is dominated by snapshot decoding, not replay.
    let snap_dir = temp_dir("snapshotted");
    let (snap_points, snap_live) = crash_workload(&snap_dir, 8, &names, waves, ticks);
    assert_eq!(snap_points, log_points);
    let snap_copies = prepare_copies(&snap_dir, "snapshotted", iters + 1);
    let mut snap_call = 0usize;
    runner.bench("recovery/snapshot-plus-tail", iters, || {
        let copy = &snap_copies[snap_call];
        snap_call += 1;
        let (service, report) = SieveService::recover(serve_config(copy, 8)).unwrap();
        assert!(report.is_clean(), "{report}");
        black_box(service.tenant_count())
    });

    // Correctness: a recovered service (either path) publishes models
    // bit-identical to the crashed live service's.
    for (dir, cadence, reference) in [(&log_dir, u64::MAX, &live), (&snap_dir, 8, &snap_live)] {
        let verify = temp_dir("verify");
        copy_dir(dir, &verify);
        let (service, report) = SieveService::recover(serve_config(&verify, cadence)).unwrap();
        assert!(report.is_clean(), "{report}");
        service.refresh_dirty().unwrap();
        for name in &names {
            let recovered = service.model(name).unwrap().unwrap();
            assert_eq!(
                *recovered,
                reference[name.as_str()],
                "tenant {name}: recovered model must equal the live one"
            );
        }
        let _ = std::fs::remove_dir_all(&verify);
    }
    assert_eq!(live, snap_live, "snapshot cadence must not change models");
    println!(
        "recovery: {} tenants, {} points: recovered==live equality passed (log-only and snapshotted)",
        names.len(),
        log_points
    );

    let replay = runner.measurement("recovery/replay-log").unwrap().min();
    let throughput = log_points as f64 / replay.as_secs_f64().max(1e-12);
    println!(
        "recovery: replayed {log_points} points in {replay:.3?} ({throughput:.0} points/s, best of {iters})"
    );

    let ledger = Ledger::new("recovery");
    ledger.record_all(
        runner.measurements(),
        "per-shard WAL replay vs snapshot+tail, fsync=never",
    );
    println!("recovery: ledger appended to {}", ledger.path().display());

    for dir in copies.iter().chain(&snap_copies) {
        let _ = std::fs::remove_dir_all(dir);
    }
    let _ = std::fs::remove_dir_all(&log_dir);
    let _ = std::fs::remove_dir_all(&snap_dir);
}
