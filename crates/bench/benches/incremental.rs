//! Benchmark of the epoch-based incremental analysis path: an
//! [`AnalysisSession`] absorbing a one-component delta against a full
//! batch re-analysis of the same store — plus the full-model equality
//! matrix (streamed == batch across parallelism 1/4/8 and the SBD/Granger
//! engine toggles).
//!
//! Run with: `cargo bench -p sieve-bench --bench incremental`
//!
//! `SIEVE_BENCH_SMOKE=1` (used by CI) shrinks the workload and skips the
//! wall-clock assertion while keeping every model-equality assertion.

use sieve_apps::{sharelatex, MetricRichness};
use sieve_bench::harness::{smoke_mode, Runner};
use sieve_bench::ledger::Ledger;
use sieve_core::config::SieveConfig;
use sieve_core::pipeline::{load_application, Sieve};
use sieve_core::session::AnalysisSession;
use sieve_simulator::engine::{SimConfig, Simulation};
use sieve_simulator::store::MetricStore;
use sieve_simulator::workload::Workload;
use std::hint::black_box;

/// Appends one tick of synthetic points to every metric of `component`,
/// so exactly that component is dirty in the next delta.
fn touch_component(store: &MetricStore, component: &str, round: u64) {
    let mut writes = Vec::new();
    store.for_each_series_of(component, |id, series| {
        let last = series.end_ms().unwrap_or(0);
        let value = *series.values().last().unwrap_or(&0.0);
        writes.push((id.clone(), last + 500, value + (round % 7) as f64));
    });
    for (id, t, v) in writes {
        store.record(&id, t, v);
    }
}

/// Streams the deterministic simulation into a session epoch by epoch and
/// returns the final model.
fn stream_model(
    config: &SieveConfig,
    duration_ms: u64,
    epoch_ticks: usize,
) -> sieve_core::model::SieveModel {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let sim_config = SimConfig::new(5)
        .with_tick_ms(500)
        .with_duration_ms(duration_ms);
    let mut sim = Simulation::new(app, Workload::randomized(70.0, 3), sim_config).unwrap();
    let mut session = AnalysisSession::new(
        "sharelatex",
        sim.store().clone(),
        sim.call_graph(),
        config.clone(),
    )
    .unwrap();
    let mut model = None;
    loop {
        let (delta, executed) = sim.step_epoch(epoch_ticks);
        if executed == 0 {
            break;
        }
        session.set_call_graph(sim.call_graph());
        model = Some(session.update_shared(&delta).unwrap());
    }
    (*model.expect("at least one epoch ran")).clone()
}

fn main() {
    let mut runner = Runner::new();
    let equality_duration = if smoke_mode() { 20_000 } else { 60_000 };

    // Full-`SieveModel` equality matrix: streaming must not change a bit
    // of the output at any executor degree, with either engine on or off.
    // The batch reference is analysed per configuration, so this also
    // re-checks the engine-toggle invariance end to end.
    let mut models = Vec::new();
    for parallelism in [1usize, 4, 8] {
        for sbd_cache in [true, false] {
            for granger_cache in [true, false] {
                let config = SieveConfig::default()
                    .with_parallelism(parallelism)
                    .with_sbd_cache(sbd_cache)
                    .with_granger_cache(granger_cache);
                let streamed = stream_model(&config, equality_duration, 40);

                let (store, call_graph) = load_application(
                    &sharelatex::app_spec(MetricRichness::Minimal),
                    &Workload::randomized(70.0, 3),
                    5,
                    equality_duration,
                    500,
                )
                .unwrap();
                let batch = Sieve::new(config)
                    .analyze("sharelatex", &store, &call_graph)
                    .unwrap();
                assert_eq!(
                    streamed, batch,
                    "streamed and batch models must be bit-identical \
                     (parallelism {parallelism}, sbd {sbd_cache}, granger {granger_cache})"
                );
                models.push(streamed);
            }
        }
    }
    assert!(
        models[0].dependency_graph.edge_count() > 0,
        "the workload must produce dependency edges"
    );
    for m in &models[1..] {
        assert_eq!(&models[0], m, "all twelve configurations must agree");
    }
    println!("incremental: 12/12 streamed==batch equality checks passed");

    // Timed comparison: one dirty component out of 15 vs a full batch
    // re-analysis. parallelism = 1 so the win is purely the dirty-tracking
    // reuse, not threads.
    let duration = if smoke_mode() { 30_000 } else { 120_000 };
    let config = SieveConfig::default().with_parallelism(1);
    let (store, call_graph) = load_application(
        &sharelatex::app_spec(MetricRichness::Minimal),
        &Workload::randomized(70.0, 3),
        5,
        duration,
        500,
    )
    .unwrap();
    let components = store.components();
    assert!(
        components.len() >= 6,
        "the speedup scenario needs at least 6 components, got {}",
        components.len()
    );
    let sieve = Sieve::new(config.clone());
    let mut session = AnalysisSession::new(
        "sharelatex",
        store.clone(),
        call_graph.clone(),
        config.clone(),
    )
    .unwrap();
    store.drain_delta();
    let full = session.refresh().unwrap();

    // `web` sits in the middle of the ShareLatex call graph, so its delta
    // re-tests real comparisons, not a leaf's empty set.
    let dirty_component = "web";
    let mut round = 0u64;
    let iters = if smoke_mode() { 1 } else { 5 };
    runner.bench("incremental/one-dirty-update", iters, || {
        round += 1;
        touch_component(&store, dirty_component, round);
        let delta = store.drain_delta();
        black_box(session.update_shared(black_box(&delta)).unwrap())
    });
    let stats = session.last_stats();
    println!(
        "incremental: last update re-prepared {}/{} components, re-clustered {}, \
         re-tested {}/{} comparisons",
        stats.components_prepared,
        stats.components_total,
        stats.components_reclustered,
        stats.comparisons_tested,
        stats.comparisons_planned
    );
    assert_eq!(stats.components_prepared, 1, "exactly one component dirty");

    runner.bench("incremental/batch-reanalysis", iters, || {
        black_box(
            sieve
                .analyze("sharelatex", black_box(&store), &call_graph)
                .unwrap(),
        )
    });

    // The incremental model keeps matching a from-scratch analysis of the
    // store including every appended point.
    let final_model = session.update_shared(&store.drain_delta()).unwrap();
    let batch_model = sieve.analyze("sharelatex", &store, &call_graph).unwrap();
    assert_eq!(*final_model, batch_model, "incremental state never drifts");
    assert_eq!(full.application, "sharelatex");

    let update = runner
        .measurement("incremental/one-dirty-update")
        .unwrap()
        .min();
    let batch = runner
        .measurement("incremental/batch-reanalysis")
        .unwrap()
        .min();
    let speedup = batch.as_secs_f64() / update.as_secs_f64().max(1e-12);
    println!(
        "incremental: one-dirty-of-{} update speedup over batch (best of {iters}): \
         {speedup:.2}x (batch {batch:.3?}, update {update:.3?})",
        components.len()
    );
    if smoke_mode() {
        println!("incremental: smoke mode — wall-clock assertion skipped");
    } else {
        assert!(
            speedup >= 2.0,
            "a one-dirty-component update must be at least 2x faster than a \
             full re-analysis, got {speedup:.2}x"
        );
    }

    let ledger = Ledger::new("incremental");
    ledger.record_all(
        runner.measurements(),
        "sharelatex minimal, one dirty component of 15, parallelism=1",
    );
    println!(
        "incremental: ledger appended to {}",
        ledger.path().display()
    );
}
