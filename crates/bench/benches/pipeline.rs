//! Criterion benchmarks of the end-to-end pipeline stages on the application
//! models: simulation throughput, per-component metric reduction, dependency
//! identification and the RCA comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use sieve_apps::{openstack, sharelatex, MetricRichness};
use sieve_core::config::SieveConfig;
use sieve_core::pipeline::{load_application, Sieve};
use sieve_core::reduce::{prepare_series, reduce_component};
use sieve_rca::{RcaConfig, RcaEngine};
use sieve_simulator::engine::{SimConfig, Simulation};
use sieve_simulator::workload::Workload;
use std::hint::black_box;

fn bench_simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    group.bench_function("sharelatex_minimal_60s", |b| {
        b.iter(|| {
            let config = SimConfig::new(1).with_duration_ms(60_000);
            let mut sim =
                Simulation::new(app.clone(), Workload::randomized(60.0, 2), config).unwrap();
            sim.run_to_completion();
            black_box(sim.store().point_count())
        });
    });
    group.finish();
}

fn bench_reduce_component(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_reduce");
    group.sample_size(10);
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let (store, _) =
        load_application(&app, &Workload::randomized(70.0, 3), 5, 120_000, 500).unwrap();
    let raw: Vec<_> = store
        .metric_ids_of("web")
        .into_iter()
        .filter_map(|id| store.series(&id).map(|s| (id.metric, s)))
        .collect();
    let prepared = prepare_series(&raw, 500);
    let config = SieveConfig::default();
    group.bench_function("reduce_web_component", |b| {
        b.iter(|| reduce_component("web", black_box(&prepared), &config).unwrap());
    });
    group.finish();
}

fn bench_full_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_full");
    group.sample_size(10);
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let (store, call_graph) =
        load_application(&app, &Workload::randomized(70.0, 3), 5, 120_000, 500).unwrap();
    let sieve = Sieve::new(SieveConfig::default().with_parallelism(8));
    group.bench_function("sharelatex_minimal_analysis", |b| {
        b.iter(|| {
            sieve
                .analyze("sharelatex", black_box(&store), black_box(&call_graph))
                .unwrap()
        });
    });
    group.finish();
}

fn bench_rca_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("rca");
    group.sample_size(10);
    let workload = Workload::randomized(60.0, 5);
    let sieve = Sieve::new(SieveConfig::default().with_parallelism(8));
    let correct = sieve
        .analyze_application_for(
            &openstack::app_spec(MetricRichness::Minimal),
            &workload,
            9,
            90_000,
        )
        .unwrap();
    let faulty = sieve
        .analyze_application_for(
            &openstack::faulty_app_spec(MetricRichness::Minimal),
            &workload,
            9,
            90_000,
        )
        .unwrap();
    let engine = RcaEngine::new(RcaConfig::default());
    group.bench_function("compare_openstack_models", |b| {
        b.iter(|| engine.compare(black_box(&correct), black_box(&faulty)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator_throughput,
    bench_reduce_component,
    bench_full_pipeline,
    bench_rca_compare
);
criterion_main!(benches);
