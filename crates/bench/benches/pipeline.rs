//! Benchmarks of the end-to-end pipeline stages on the application models:
//! simulation throughput, per-component metric reduction, dependency
//! identification, the RCA comparison, the serial-vs-parallel comparison of
//! the shared executor on the OpenStack profile — and the cached-vs-naive
//! comparison of the shared SBD distance engine, which must produce a
//! bit-identical model.
//!
//! Run with: `cargo bench -p sieve-bench --bench pipeline`
//!
//! `SIEVE_BENCH_SMOKE=1` (used by CI) shrinks workloads to a tiny config
//! and skips the wall-clock assertions while keeping every model-equality
//! assertion, so the harness cannot silently rot.

use sieve_apps::{openstack, sharelatex, MetricRichness};
use sieve_bench::harness::{smoke_mode, Runner};
use sieve_bench::ledger::Ledger;
use sieve_core::config::SieveConfig;
use sieve_core::pipeline::{load_application, Sieve};
use sieve_core::reduce::{prepare_series, reduce_component};
use sieve_rca::{RcaConfig, RcaEngine};
use sieve_simulator::engine::{SimConfig, Simulation};
use sieve_simulator::workload::Workload;
use std::hint::black_box;

/// Load-phase duration: `full` normally, a tiny span in smoke mode.
fn load_duration(full: u64) -> u64 {
    if smoke_mode() {
        30_000
    } else {
        full
    }
}

/// Measured iterations: `full` normally, a single one in smoke mode.
fn iters(full: usize) -> usize {
    if smoke_mode() {
        1
    } else {
        full
    }
}

fn bench_simulator_throughput(runner: &mut Runner) {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    runner.bench("simulator/sharelatex_minimal_60s", iters(10), || {
        let config = SimConfig::new(1).with_duration_ms(load_duration(60_000));
        let mut sim = Simulation::new(app.clone(), Workload::randomized(60.0, 2), config).unwrap();
        sim.run_to_completion();
        black_box(sim.store().point_count())
    });
}

fn bench_reduce_component(runner: &mut Runner) {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let (store, _) = load_application(
        &app,
        &Workload::randomized(70.0, 3),
        5,
        load_duration(120_000),
        500,
    )
    .unwrap();
    let raw: Vec<_> = store
        .metric_ids_of("web")
        .into_iter()
        .filter_map(|id| store.series(&id).map(|s| (id.metric, s)))
        .collect();
    let prepared = prepare_series(&raw, 500);
    let config = SieveConfig::default();
    runner.bench("pipeline_reduce/reduce_web_component", iters(10), || {
        reduce_component("web", black_box(&prepared), &config).unwrap()
    });
}

fn bench_full_pipeline(runner: &mut Runner) {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let (store, call_graph) = load_application(
        &app,
        &Workload::randomized(70.0, 3),
        5,
        load_duration(120_000),
        500,
    )
    .unwrap();
    let sieve = Sieve::new(SieveConfig::default().with_parallelism(8));
    runner.bench(
        "pipeline_full/sharelatex_minimal_analysis",
        iters(10),
        || {
            sieve
                .analyze("sharelatex", black_box(&store), black_box(&call_graph))
                .unwrap()
        },
    );
}

/// The acceptance benchmark for the shared SBD engine: the same recorded
/// data analysed with the cached distance path and the naive one. The
/// models must be bit-identical; the cached path's win is asserted by the
/// analysis bench's isolated k-sweep comparison, so here the speedup is
/// reported informationally.
fn bench_cached_vs_naive_distance(runner: &mut Runner) {
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let (store, call_graph) = load_application(
        &app,
        &Workload::randomized(70.0, 3),
        5,
        load_duration(120_000),
        500,
    )
    .unwrap();
    let cached_sieve = Sieve::new(
        SieveConfig::default()
            .with_parallelism(1)
            .with_sbd_cache(true),
    );
    let naive_sieve = Sieve::new(
        SieveConfig::default()
            .with_parallelism(1)
            .with_sbd_cache(false),
    );

    let cached_model = cached_sieve
        .analyze("sharelatex", &store, &call_graph)
        .unwrap();
    let naive_model = naive_sieve
        .analyze("sharelatex", &store, &call_graph)
        .unwrap();
    assert_eq!(
        cached_model, naive_model,
        "cached and naive distance paths must produce bit-identical models"
    );
    // And across executor degrees: cached parallel == naive serial.
    let cached_parallel = Sieve::new(
        SieveConfig::default()
            .with_parallelism(8)
            .with_sbd_cache(true),
    )
    .analyze("sharelatex", &store, &call_graph)
    .unwrap();
    assert_eq!(
        cached_parallel, naive_model,
        "cached parallel and naive serial models must be identical"
    );

    runner.bench("pipeline_distance/cached", iters(5), || {
        cached_sieve
            .analyze("sharelatex", black_box(&store), black_box(&call_graph))
            .unwrap()
    });
    runner.bench("pipeline_distance/naive", iters(5), || {
        naive_sieve
            .analyze("sharelatex", black_box(&store), black_box(&call_graph))
            .unwrap()
    });
    let cached = runner
        .measurement("pipeline_distance/cached")
        .unwrap()
        .min();
    let naive = runner.measurement("pipeline_distance/naive").unwrap().min();
    let speedup = naive.as_secs_f64() / cached.as_secs_f64().max(1e-12);
    println!(
        "pipeline_distance: cached-distance speedup over naive (best of {}): \
         {speedup:.2}x (naive {naive:.3?}, cached {cached:.3?})",
        iters(5)
    );
}

/// The acceptance benchmark for the shared executor: the same recorded
/// OpenStack data analysed with `parallelism = 1` and `parallelism = 8`.
/// With the full metric profile both stages (per-component reduction,
/// per-edge Granger testing) have enough independent work for the parallel
/// run to win outright; the models must nevertheless be identical.
fn bench_openstack_parallelism(runner: &mut Runner) {
    // Smoke mode keeps the bench structurally identical but uses the
    // minimal metric profile and a short load so CI finishes quickly.
    let richness = if smoke_mode() {
        MetricRichness::Minimal
    } else {
        MetricRichness::Full
    };
    let app = openstack::app_spec(richness);
    let (store, call_graph) = load_application(
        &app,
        &Workload::randomized(60.0, 5),
        9,
        load_duration(120_000),
        500,
    )
    .unwrap();

    let serial_sieve = Sieve::new(SieveConfig::default().with_parallelism(1));
    let parallel_sieve = Sieve::new(SieveConfig::default().with_parallelism(8));

    runner.bench("pipeline_openstack/parallelism_1", iters(3), || {
        serial_sieve
            .analyze("openstack", black_box(&store), black_box(&call_graph))
            .unwrap()
    });
    runner.bench("pipeline_openstack/parallelism_8", iters(3), || {
        parallel_sieve
            .analyze("openstack", black_box(&store), black_box(&call_graph))
            .unwrap()
    });
    // Compare best-of-N: the minimum is far less sensitive to scheduler
    // noise than the mean, so the strict assertion below does not flake on
    // busy hosts.
    let serial = runner
        .measurement("pipeline_openstack/parallelism_1")
        .unwrap()
        .min();
    let parallel = runner
        .measurement("pipeline_openstack/parallelism_8")
        .unwrap()
        .min();

    let serial_model = serial_sieve
        .analyze("openstack", &store, &call_graph)
        .unwrap();
    let parallel_model = parallel_sieve
        .analyze("openstack", &store, &call_graph)
        .unwrap();
    assert_eq!(
        serial_model, parallel_model,
        "parallelism must not change the model"
    );

    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-12);
    println!(
        "pipeline_openstack: parallelism=8 speedup over parallelism=1 (best of {}): \
         {speedup:.2}x (serial {serial:.3?}, parallel {parallel:.3?})",
        iters(3)
    );
    // A strict wall-clock win is only physically possible when the host has
    // more than one core; on a single-core machine 8 worker threads share
    // one CPU, so only model identity is demanded there. Smoke mode skips
    // the timing assertion entirely — a 30 s load leaves too little work to
    // measure reliably.
    if smoke_mode() {
        println!("pipeline_openstack: smoke mode — wall-clock assertion skipped");
    } else if sieve_exec::par::hardware_parallelism() > 1 {
        assert!(
            parallel < serial,
            "parallelism=8 must be strictly faster than parallelism=1 \
             (serial {serial:?} vs parallel {parallel:?})"
        );
    } else {
        println!(
            "pipeline_openstack: single-core host — strict speedup is asserted \
             on multi-core hosts only"
        );
    }
}

fn bench_rca_compare(runner: &mut Runner) {
    let workload = Workload::randomized(60.0, 5);
    let sieve = Sieve::new(SieveConfig::default().with_parallelism(8));
    let correct = sieve
        .analyze_application_for(
            &openstack::app_spec(MetricRichness::Minimal),
            &workload,
            9,
            load_duration(90_000),
        )
        .unwrap();
    let faulty = sieve
        .analyze_application_for(
            &openstack::faulty_app_spec(MetricRichness::Minimal),
            &workload,
            9,
            load_duration(90_000),
        )
        .unwrap();
    let engine = RcaEngine::new(RcaConfig::default());
    runner.bench("rca/compare_openstack_models", iters(10), || {
        engine.compare(black_box(&correct), black_box(&faulty))
    });
}

fn main() {
    let mut runner = Runner::new();
    bench_simulator_throughput(&mut runner);
    bench_reduce_component(&mut runner);
    bench_full_pipeline(&mut runner);
    bench_cached_vs_naive_distance(&mut runner);
    bench_openstack_parallelism(&mut runner);
    bench_rca_compare(&mut runner);

    let ledger = Ledger::new("pipeline");
    ledger.record_all(
        runner.measurements(),
        "sharelatex minimal + openstack profiles, end-to-end stages",
    );
    println!("pipeline: ledger appended to {}", ledger.path().display());
}
