//! Bounded-memory fleet benchmark: a million-series multi-tenant service
//! under sustained ingest.
//!
//! The tentpole claim of the bounded-memory store is that a serving fleet
//! can ingest forever: every series lives in a fixed ring window (evicted
//! points folded into 10x/100x aggregate tiers), so resident memory stays
//! flat while the dirty-sweep machinery keeps publishing models. This
//! bench drives that end to end:
//!
//! 1. **Equality gate** (always on, even in smoke mode): a windowed store
//!    with ample retention must produce a `SieveModel` bit-identical to
//!    the unbounded oracle at parallelism 1, 4 and 8.
//! 2. **Fill**: ≥ 1M series across the tenant fleet are ingested past
//!    their window capacity, then the first sweep analyses every tenant.
//! 3. **Sustained cycles**: three ingest-everything → full-sweep cycles;
//!    RSS is sampled after each sweep and must stay flat (non-smoke).
//! 4. **Dirty sweeps**: a rotating slice of hot tenants is dirtied and
//!    swept many times; the p99 sweep latency must stay within a small
//!    multiple of the median (non-smoke) — no degradation tail under
//!    steady-state eviction.
//!
//! Every measurement is appended to `BENCH_fleet.json` through the ledger.
//!
//! Run with: `cargo bench -p sieve-bench --bench fleet`
//! (`SIEVE_BENCH_SMOKE=1` shrinks the fleet and keeps only the equality
//! and accounting assertions.)

use sieve_bench::harness::{smoke_mode, Measurement, Runner};
use sieve_bench::ledger::Ledger;
use sieve_core::config::{RetentionPolicy, SieveConfig};
use sieve_core::pipeline::Sieve;
use sieve_exec::hash::splitmix64;
use sieve_exec::mem::current_rss_kb;
use sieve_graph::CallGraph;
use sieve_serve::{MetricPoint, ServeConfig, SieveService};
use sieve_simulator::store::{MetricId, MetricStore};
use std::time::{Duration, Instant};

/// Fleet dimensions, shrunk drastically in smoke mode.
struct Shape {
    tenants: usize,
    components: usize,
    metrics: usize,
    window: usize,
    fill_ticks: u64,
    cycles: usize,
    ticks_per_cycle: u64,
    dirty_sweeps: usize,
    dirty_slice: usize,
    ticks_per_dirty_sweep: u64,
}

impl Shape {
    fn new(smoke: bool) -> Self {
        if smoke {
            Self {
                tenants: 16,
                components: 4,
                metrics: 8,
                window: 16,
                fill_ticks: 24,
                cycles: 3,
                ticks_per_cycle: 4,
                dirty_sweeps: 6,
                dirty_slice: 4,
                ticks_per_dirty_sweep: 2,
            }
        } else {
            Self {
                tenants: 2048,
                components: 16,
                metrics: 32,
                window: 48,
                fill_ticks: 64,
                cycles: 3,
                ticks_per_cycle: 8,
                dirty_sweeps: 32,
                dirty_slice: 8,
                ticks_per_dirty_sweep: 4,
            }
        }
    }

    fn series_per_tenant(&self) -> usize {
        self.components * self.metrics
    }

    fn series_total(&self) -> usize {
        self.tenants * self.series_per_tenant()
    }
}

/// Deterministic white-noise sample for one (series, tick) pair.
fn point_value(series: u64, tick: u64) -> f64 {
    let bits = splitmix64(series.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tick);
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// The per-tenant analysis configuration: single-k clustering, short
/// k-Shape budget, bounded retention — sized so a full fleet sweep is
/// dominated by honest per-series work, not by the cluster-count search.
fn analysis_config(window: usize, parallelism: usize) -> SieveConfig {
    SieveConfig {
        kshape_max_iterations: 15,
        ..SieveConfig::default()
    }
    .with_cluster_range(2, 2)
    .with_parallelism(parallelism)
    .with_retention(RetentionPolicy::windowed(window))
}

/// The always-on equality gate: with retention wide enough that nothing is
/// evicted, the windowed store and the unbounded oracle must yield
/// bit-identical models at every parallelism degree.
fn assert_windowed_matches_oracle() {
    let ids: Vec<MetricId> = (0..2)
        .flat_map(|c| (0..4).map(move |m| MetricId::new(format!("comp{c}"), format!("m{m}"))))
        .collect();
    let oracle = MetricStore::new();
    let windowed = MetricStore::with_retention(RetentionPolicy::windowed(200));
    for tick in 0..120u64 {
        for (i, id) in ids.iter().enumerate() {
            let v = point_value(i as u64, tick);
            oracle.record(id, tick * 500, v);
            windowed.record(id, tick * 500, v);
        }
    }
    let mut graph = CallGraph::new();
    graph.record_calls("comp0", "comp1", 10);
    let reference = Sieve::new(analysis_config(200, 1))
        .analyze("fleet-eq", &oracle, &graph)
        .expect("oracle analysis succeeds");
    for parallelism in [1usize, 4, 8] {
        let model = Sieve::new(analysis_config(200, parallelism))
            .analyze("fleet-eq", &windowed, &graph)
            .expect("windowed analysis succeeds");
        assert_eq!(
            model, reference,
            "windowed(ample) must equal the unbounded oracle at parallelism {parallelism}"
        );
    }
    println!("fleet: 3/3 windowed==oracle equality checks passed");
}

/// Appends `ticks` ticks to every series of the selected tenants (one
/// batched ingest per tenant per tick) and returns the number of points.
fn ingest_ticks(
    service: &SieveService,
    names: &[String],
    ids: &[Vec<MetricId>],
    tenants: &[usize],
    start_tick: u64,
    ticks: u64,
) -> u64 {
    let mut points = 0u64;
    let mut batch: Vec<MetricPoint> = Vec::new();
    for tick in start_tick..start_tick + ticks {
        for &t in tenants {
            batch.clear();
            batch.extend(ids[t].iter().enumerate().map(|(s, id)| MetricPoint {
                id: id.clone(),
                timestamp_ms: tick * 500,
                value: point_value((t * ids[t].len() + s) as u64, tick),
            }));
            let accepted = service.ingest(&names[t], &batch).unwrap();
            assert_eq!(accepted, batch.len(), "monotone stream: nothing dropped");
            points += accepted as u64;
        }
    }
    points
}

fn p99(samples: &[Duration]) -> Duration {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() * 99).div_ceil(100).saturating_sub(1)]
}

fn main() {
    let smoke = smoke_mode();
    let shape = Shape::new(smoke);
    assert!(
        smoke || shape.series_total() >= 1_000_000,
        "the non-smoke fleet must carry at least one million series"
    );

    assert_windowed_matches_oracle();

    let service = SieveService::new(
        ServeConfig::default()
            .with_shard_count(64)
            .with_sweep_parallelism(1)
            .with_analysis(analysis_config(shape.window, 1)),
    )
    .unwrap();
    let names: Vec<String> = (0..shape.tenants).map(|t| format!("t-{t:04}")).collect();
    let ids: Vec<Vec<MetricId>> = (0..shape.tenants)
        .map(|_| {
            (0..shape.components)
                .flat_map(|c| {
                    (0..shape.metrics).map(move |m| MetricId::new(format!("c{c}"), format!("m{m}")))
                })
                .collect()
        })
        .collect();
    for name in &names {
        service
            .create_tenant(name.as_str(), CallGraph::new())
            .unwrap();
    }
    println!(
        "fleet: {} tenants x {} series = {} series, window {} (smoke: {smoke})",
        shape.tenants,
        shape.series_per_tenant(),
        shape.series_total(),
        shape.window
    );

    // Fill past the window so steady state (every ring full, every ingest
    // evicting) is reached before anything is measured.
    let all: Vec<usize> = (0..shape.tenants).collect();
    let mut tick = 0u64;
    let mut ingested = 0u64;
    let fill_start = Instant::now();
    ingested += ingest_ticks(&service, &names, &ids, &all, tick, shape.fill_ticks);
    tick += shape.fill_ticks;
    let fill_elapsed = fill_start.elapsed();
    println!(
        "fleet: fill ingested {ingested} points in {fill_elapsed:.2?} \
         ({:.2}M points/s)",
        ingested as f64 / fill_elapsed.as_secs_f64().max(1e-9) / 1e6
    );

    let first_sweep_start = Instant::now();
    let first = service.refresh_dirty().unwrap();
    let first_sweep = first_sweep_start.elapsed();
    assert_eq!(
        first.tenants_refreshed, shape.tenants,
        "first sweep sees all"
    );
    println!("fleet: first sweep {first_sweep:.2?} | {first}");

    // Sustained cycles: ingest into *every* series, sweep the whole fleet,
    // sample RSS. Ring windows are full, so each cycle's points are pure
    // churn — an unbounded store would grow by the full ingest volume.
    let mut ingest_samples = Vec::new();
    let mut sweep_samples = Vec::new();
    let mut rss_kb = Vec::new();
    for cycle in 0..shape.cycles {
        let start = Instant::now();
        ingested += ingest_ticks(&service, &names, &ids, &all, tick, shape.ticks_per_cycle);
        tick += shape.ticks_per_cycle;
        ingest_samples.push(start.elapsed());

        let start = Instant::now();
        let stats = service.refresh_dirty().unwrap();
        sweep_samples.push(start.elapsed());
        assert_eq!(stats.tenants_refreshed, shape.tenants);
        let rss = current_rss_kb();
        rss_kb.extend(rss);
        println!(
            "fleet: cycle {cycle}: ingest {:.2?}, sweep {:.2?}, rss {:?} kB, \
             retained {} evicted {}",
            ingest_samples[cycle],
            sweep_samples[cycle],
            rss,
            stats.points_retained,
            stats.points_evicted
        );
    }

    // Retention accounting is exact: every ring is full, so the fleet
    // retains window x series points; everything else was evicted.
    let stats = service.stats();
    assert_eq!(
        stats.points_retained,
        (shape.series_total() * shape.window) as u64,
        "every ring window is exactly full"
    );
    assert_eq!(
        stats.points_evicted,
        ingested - stats.points_retained,
        "accepted points are either retained or evicted"
    );
    assert!(stats.bytes_evicted > 0);

    if !smoke && rss_kb.len() >= 3 {
        let (first_rss, last_rss) = (rss_kb[0], *rss_kb.last().unwrap());
        // Flat = no trend: the final cycle may not sit more than 5% (plus
        // a small allocator-jitter allowance) above the first.
        assert!(
            last_rss as f64 <= first_rss as f64 * 1.05 + 65_536.0,
            "RSS must stay flat across sustained full-fleet cycles \
             (first {first_rss} kB, last {last_rss} kB)"
        );
        println!(
            "fleet: RSS flat across {} cycles: {rss_kb:?} kB",
            rss_kb.len()
        );
    } else if smoke {
        println!("fleet: smoke mode — RSS and wall-clock assertions skipped");
    }

    // Dirty sweeps: only a rotating slice of tenants is dirtied, so sweep
    // cost must track the slice, with no eviction-driven latency tail.
    let mut runner = Runner::new();
    let mut sweep_round = 0usize;
    runner.bench("fleet/dirty-sweep", shape.dirty_sweeps, || {
        let slice: Vec<usize> = (0..shape.dirty_slice)
            .map(|i| (sweep_round * shape.dirty_slice + i) % shape.tenants)
            .collect();
        sweep_round += 1;
        ingested += ingest_ticks(
            &service,
            &names,
            &ids,
            &slice,
            tick,
            shape.ticks_per_dirty_sweep,
        );
        tick += shape.ticks_per_dirty_sweep;
        let stats = service.refresh_dirty().unwrap();
        assert_eq!(stats.tenants_refreshed, shape.dirty_slice);
        stats.points_evicted
    });
    let dirty = runner.measurement("fleet/dirty-sweep").unwrap().clone();
    let (median, tail) = (dirty.median(), p99(&dirty.samples));
    println!(
        "fleet: dirty-sweep median {median:.2?}, p99 {tail:.2?} over {} sweeps",
        dirty.samples.len()
    );
    if !smoke {
        assert!(
            tail <= median.saturating_mul(5),
            "p99 dirty-sweep latency must stay within 5x the median \
             (median {median:?}, p99 {tail:?})"
        );
    }

    let ledger = Ledger::new("fleet");
    let config_note = format!(
        "tenants={} series={} window={} fill_ticks={} cycles={}",
        shape.tenants,
        shape.series_total(),
        shape.window,
        shape.fill_ticks,
        shape.cycles
    );
    ledger.record(
        &Measurement {
            name: "fleet/sustained-ingest".to_string(),
            samples: ingest_samples,
        },
        &config_note,
    );
    ledger.record(
        &Measurement {
            name: "fleet/full-sweep".to_string(),
            samples: sweep_samples,
        },
        &config_note,
    );
    ledger.record(&dirty, &config_note);
    println!("fleet: ledger appended to {}", ledger.path().display());
}
