//! Benchmark of the durable ingest dataplane: N concurrent writers per
//! service, cross-thread WAL group commit, background refresh sweeps.
//!
//! Run with: `cargo bench -p sieve-bench --bench ingest`
//!
//! Grids {1, 4, 8} writer threads against fsync policies
//! {always, every8, never}, each with a `refresh_dirty` sweeper running
//! concurrently — the contended steady state of a durable service. A
//! *serialized* baseline (one global mutex around every ingest call,
//! i.e. the pre-group-commit behaviour of one writer's critical section
//! at a time) anchors the speedup claim: on a multi-core box the
//! group-committed dataplane must clear 2x the serialized throughput at
//! 8 writers under `FsyncPolicy::Always`.
//!
//! `SIEVE_BENCH_SMOKE=1` (used by CI) shrinks the workload and skips the
//! wall-clock assertion, but keeps the correctness checks: accepted
//! point counts are exact, and a mid-bench kill must recover models
//! bit-identical to the live service's.

use sieve_bench::harness::{smoke_mode, Runner};
use sieve_bench::ledger::Ledger;
use sieve_core::config::SieveConfig;
use sieve_exec::par::hardware_parallelism;
use sieve_serve::{DurabilityConfig, FsyncPolicy, MetricPoint, ServeConfig, SieveService};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const TENANTS: usize = 8;

fn serve_config(dir: &Path, fsync: FsyncPolicy) -> ServeConfig {
    ServeConfig::default()
        .with_shard_count(4)
        .with_sweep_parallelism(2)
        .with_analysis(
            SieveConfig::default()
                .with_cluster_range(2, 2)
                .with_parallelism(1),
        )
        .with_durability(
            DurabilityConfig::new(dir)
                .with_fsync(fsync)
                // Mid-bench cadence trips exercise snapshot-vs-writer
                // contention on the shard admin locks.
                .with_snapshot_every_events(32),
        )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sieve-bench-ingest-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn tenant_name(tenant: usize) -> String {
    format!("tenant-{tenant:02}")
}

fn call_graph() -> sieve_graph::CallGraph {
    let mut graph = sieve_graph::CallGraph::new();
    graph.record_calls("web", "db", 100);
    graph
}

/// One tenant's batch `round`: four monotone series plus one stale point
/// the store rejects (so the WAL encoder's rejected-index skip is on the
/// measured path).
fn batch(tenant: usize, round: u64, ticks: u64) -> Vec<MetricPoint> {
    let bias = tenant as f64 * 0.9;
    let mut points: Vec<MetricPoint> = (round * ticks..(round + 1) * ticks)
        .flat_map(|t| {
            let x = t as f64 * 0.17 + bias;
            [
                MetricPoint::new("web", "requests", t * 500, x.sin() * 4.0),
                MetricPoint::new("web", "latency", t * 500, x.cos() * 9.0),
                MetricPoint::new("db", "queries", t * 500, (x * 0.5).sin() * 2.0),
                MetricPoint::new("db", "io_wait", t * 500, (x * 0.5).cos()),
            ]
        })
        .collect();
    points.push(MetricPoint::new("web", "requests", round * 250, -1.0));
    points
}

/// Runs the full workload against a fresh durable service: `writers`
/// threads ingesting disjoint tenant partitions (tenant `t` belongs to
/// writer `t % writers`), a sweeper refreshing throughout, and — when
/// `serialize` is set — a global mutex forcing one ingest call at a time
/// (the baseline the group-commit dataplane is measured against).
/// Returns the total accepted point count.
fn run_workload(
    dir: &Path,
    fsync: FsyncPolicy,
    writers: usize,
    rounds: u64,
    ticks: u64,
    serialize: bool,
) -> u64 {
    let service = Arc::new(SieveService::new(serve_config(dir, fsync)).unwrap());
    for tenant in 0..TENANTS {
        service
            .create_tenant(tenant_name(tenant), call_graph())
            .unwrap();
    }
    let sweeping = Arc::new(AtomicBool::new(true));
    let sweeper = {
        let service = Arc::clone(&service);
        let sweeping = Arc::clone(&sweeping);
        std::thread::spawn(move || {
            while sweeping.load(Ordering::Relaxed) {
                service.refresh_dirty().unwrap();
                std::thread::yield_now();
            }
        })
    };
    let gate = Mutex::new(());
    let accepted: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for writer in 0..writers {
            let service = Arc::clone(&service);
            let gate = &gate;
            handles.push(scope.spawn(move || {
                let mut accepted = 0u64;
                for round in 0..rounds {
                    for tenant in (writer..TENANTS).step_by(writers) {
                        let points = batch(tenant, round, ticks);
                        let _serialized = serialize.then(|| gate.lock().unwrap());
                        accepted += service.ingest(&tenant_name(tenant), &points).unwrap() as u64;
                    }
                }
                accepted
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    sweeping.store(false, Ordering::Relaxed);
    sweeper.join().unwrap();
    assert_eq!(
        accepted,
        TENANTS as u64 * rounds * ticks * 4,
        "every monotone point must be accepted, every stale one rejected"
    );
    accepted
}

/// Kills a service halfway through the workload (drop without any
/// orderly shutdown) and asserts recovery republishes every tenant's
/// model bit-identically.
fn kill_and_recover(rounds: u64, ticks: u64) {
    let dir = temp_dir("kill");
    let service = SieveService::new(serve_config(&dir, FsyncPolicy::EveryN(8))).unwrap();
    for tenant in 0..TENANTS {
        service
            .create_tenant(tenant_name(tenant), call_graph())
            .unwrap();
    }
    std::thread::scope(|scope| {
        for writer in 0..4usize {
            let service = &service;
            scope.spawn(move || {
                for round in 0..rounds.div_ceil(2) {
                    for tenant in (writer..TENANTS).step_by(4) {
                        service
                            .ingest(&tenant_name(tenant), &batch(tenant, round, ticks))
                            .unwrap();
                    }
                }
            });
        }
    });
    service.refresh_all().unwrap();
    let live: Vec<_> = (0..TENANTS)
        .map(|tenant| service.model(&tenant_name(tenant)).unwrap().unwrap())
        .collect();
    drop(service); // the kill: nothing beyond committed frames survives

    let (recovered, report) =
        SieveService::recover(serve_config(&dir, FsyncPolicy::EveryN(8))).unwrap();
    assert!(report.is_clean(), "{report}");
    recovered.refresh_dirty().unwrap();
    for (tenant, live_model) in live.iter().enumerate() {
        let name = tenant_name(tenant);
        assert_eq!(
            *recovered.model(&name).unwrap().unwrap(),
            **live_model,
            "{name}: mid-bench kill must recover bit-identically"
        );
    }
    println!("ingest: mid-bench kill recovered {TENANTS} tenants bit-identically");
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let mut runner = Runner::new();
    let (rounds, ticks, iters) = if smoke_mode() {
        (4u64, 10u64, 1usize)
    } else {
        (24u64, 40u64, 3usize)
    };
    let points_per_run = TENANTS as u64 * rounds * ticks * 4;

    let policies = [
        ("always", FsyncPolicy::Always),
        ("every8", FsyncPolicy::EveryN(8)),
        ("never", FsyncPolicy::Never),
    ];
    for (tag, fsync) in policies {
        for writers in [1usize, 4, 8] {
            let dir = temp_dir(&format!("{tag}-w{writers}"));
            runner.bench(&format!("ingest/{tag}/w{writers}"), iters, || {
                run_workload(&dir, fsync, writers, rounds, ticks, false)
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
        // The serialized baseline: 8 writer threads, one global ingest
        // mutex — what the dataplane would do if every durable mutation
        // still serialized on a per-shard log lock end to end.
        let dir = temp_dir(&format!("{tag}-serial"));
        runner.bench(&format!("ingest/{tag}/w8-serialized"), iters, || {
            run_workload(&dir, fsync, 8, rounds, ticks, true)
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    kill_and_recover(rounds, ticks);

    let throughput = |name: &str| -> f64 {
        let best: Duration = runner.measurement(name).unwrap().min();
        points_per_run as f64 / best.as_secs_f64().max(1e-12)
    };
    for (tag, _) in policies {
        println!(
            "ingest/{tag}: w1 {:.0} pts/s | w8 {:.0} pts/s | w8-serialized {:.0} pts/s",
            throughput(&format!("ingest/{tag}/w1")),
            throughput(&format!("ingest/{tag}/w8")),
            throughput(&format!("ingest/{tag}/w8-serialized")),
        );
    }
    if !smoke_mode() && hardware_parallelism() >= 4 {
        let grouped = throughput("ingest/always/w8");
        let serialized = throughput("ingest/always/w8-serialized");
        assert!(
            grouped >= 2.0 * serialized,
            "group-committed ingest must clear 2x the serialized baseline \
             at 8 writers under fsync=always: got {grouped:.0} vs {serialized:.0} pts/s"
        );
        println!(
            "ingest: multi-writer speedup {:.2}x over serialized (threshold 2x)",
            grouped / serialized
        );
    } else {
        println!("ingest: wall-clock assertion skipped (smoke mode or <4 cores)");
    }

    let ledger = Ledger::new("ingest");
    ledger.record_all(
        runner.measurements(),
        "8 tenants, 4 shards, concurrent sweeps; writers x fsync grid vs serialized baseline",
    );
    println!("ingest: ledger appended to {}", ledger.path().display());
}
