//! Figure 8 — final edge differences between the top-ranked OpenStack
//! components at similarity threshold 0.50.
//!
//! The paper's figure shows the new/deleted/lag-changed edges among the top
//! five components of Table 5 and highlights the new edge connecting the
//! Nova API cluster containing `nova_instances_in_state_ERROR` with the
//! Neutron cluster containing `neutron_ports_in_status_DOWN` — the causal
//! trace of the crashed Open vSwitch agent.
//!
//! Run with: `cargo run --release -p sieve-bench --bin fig8_edge_differences`

use sieve_apps::MetricRichness;
use sieve_bench::{openstack_models, print_header};
use sieve_rca::edges::EdgeChangeKind;
use sieve_rca::{RcaConfig, RcaEngine};
use std::collections::BTreeSet;

fn main() {
    print_header("Figure 8: edge differences between the top-ranked components (similarity 0.50)");
    println!("Analysing the correct and faulty OpenStack versions (full model) ...\n");
    let (correct, faulty) = openstack_models(MetricRichness::Full, 0x81);
    let report = RcaEngine::new(RcaConfig::default()).compare(&correct, &faulty);

    // The top-5 components by step-2 novelty ranking.
    let top: BTreeSet<sieve_exec::Name> = report
        .component_rankings
        .iter()
        .take(5)
        .map(|r| r.component.clone())
        .collect();
    println!(
        "Top-5 components by novelty: {}\n",
        top.iter().cloned().collect::<Vec<_>>().join(", ")
    );

    println!(
        "{:<11} {:<22} -> {:<22} {:<34} -> {:<34}",
        "change", "source", "target", "source metric", "target metric"
    );
    let mut shown = 0;
    for diff in report
        .edge_diffs
        .iter()
        .filter(|d| d.change != EdgeChangeKind::Unchanged)
        .filter(|d| {
            top.contains(&d.edge.source_component) || top.contains(&d.edge.target_component)
        })
        .filter(|d| d.is_interesting(&report.config))
    {
        let label = match diff.change {
            EdgeChangeKind::New => "new",
            EdgeChangeKind::Discarded => "discarded",
            EdgeChangeKind::LagChanged => "lag change",
            EdgeChangeKind::Unchanged => "unchanged",
        };
        println!(
            "{:<11} {:<22} -> {:<22} {:<34} -> {:<34}",
            label,
            diff.edge.source_component,
            diff.edge.target_component,
            diff.edge.source_metric,
            diff.edge.target_metric
        );
        shown += 1;
    }
    if shown == 0 {
        println!("(no interesting edges among the top components at this threshold)");
    }

    // Highlight the ground-truth relation.
    let ground_truth = report.edge_diffs.iter().find(|d| {
        d.edge.source_metric == sieve_apps::openstack::ERROR_METRIC
            && d.edge.target_metric == sieve_apps::openstack::ROOT_CAUSE_METRIC
            || d.edge.source_metric == sieve_apps::openstack::ROOT_CAUSE_METRIC
                && d.edge.target_metric == sieve_apps::openstack::ERROR_METRIC
    });
    match ground_truth {
        Some(edge) => println!(
            "\nGround-truth edge found ({}): {}::{} <-> {}::{}",
            match edge.change {
                EdgeChangeKind::New => "new",
                EdgeChangeKind::Discarded => "discarded",
                EdgeChangeKind::LagChanged => "lag change",
                EdgeChangeKind::Unchanged => "unchanged",
            },
            edge.edge.source_component,
            edge.edge.source_metric,
            edge.edge.target_component,
            edge.edge.target_metric
        ),
        None => println!(
            "\nGround-truth edge (instances_ERROR <-> ports_DOWN) not directly present; \
             the metrics are still implicated via the final ranking: nova ERROR = {}, neutron DOWN = {}",
            report.implicates_metric("nova-api", sieve_apps::openstack::ERROR_METRIC),
            report.implicates_metric("neutron-server", sieve_apps::openstack::ROOT_CAUSE_METRIC)
        ),
    }
}
