//! Figure 5 — completion time of 10k HTTP requests against a static-file
//! server under no tracing, sysdig and tcpdump.
//!
//! The paper measures ~0.35 s natively, with tcpdump ~7% slower and sysdig
//! ~22% slower, and argues that sysdig is still the right choice because it
//! attributes traffic to processes (and therefore to components).
//!
//! Run with: `cargo run --release -p sieve-bench --bin fig5_tracing_overhead`

use sieve_bench::{percent_change, print_header};
use sieve_simulator::tracer::{completion_time_s, TracingMode};

fn main() {
    print_header("Figure 5: completion time for 10k HTTP requests under call-graph tracing");
    const REQUESTS: u64 = 10_000;
    const BASE_REQUEST_US: f64 = 35.0; // ~0.35 s for 10k requests natively

    let native = completion_time_s(REQUESTS, BASE_REQUEST_US, TracingMode::Native);
    println!(
        "{:<10} {:>22} {:>14} {:>22}",
        "mode", "completion time [s]", "overhead", "process context?"
    );
    for mode in TracingMode::all() {
        let t = completion_time_s(REQUESTS, BASE_REQUEST_US, mode);
        println!(
            "{:<10} {:>22.3} {:>14} {:>22}",
            mode.to_string(),
            t,
            percent_change(native, t),
            if mode.provides_process_context() {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!(
        "\nPaper: native ~0.35 s, tcpdump ~+7%, sysdig ~+22% (sysdig chosen for its context)."
    );
}
