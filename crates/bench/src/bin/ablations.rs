//! Ablation experiments for the design choices called out in `DESIGN.md`:
//!
//! * Jaro name-similarity warm start vs random initial assignment for
//!   k-Shape (convergence iterations, §3.2's "this adjustment is only for
//!   performance reasons");
//! * silhouette-driven selection of `k` vs a fixed `k`;
//! * the variance pre-filter on/off (how many metrics it removes and what
//!   clustering would have to process without it);
//! * call-graph-restricted pairwise Granger testing vs the naive all-pairs
//!   plan (§3.3's search-space reduction).
//!
//! Run with: `cargo run --release -p sieve-bench --bin ablations`

use sieve_apps::{sharelatex, MetricRichness};
use sieve_bench::{experiment_config, load_sharelatex, print_header};
use sieve_cluster::jaro::pre_cluster_names;
use sieve_cluster::kshape::{KShape, KShapeConfig};
use sieve_cluster::silhouette::silhouette_score_sbd;
use sieve_core::dependencies::{naive_comparison_count, planned_comparison_count};
use sieve_core::pipeline::Sieve;
use sieve_core::reduce::{is_unvarying, prepare_series};

fn main() {
    print_header("Ablations: warm start, k selection, variance filter, call-graph restriction");
    let config = experiment_config();
    let (store, call_graph) = load_sharelatex(MetricRichness::Full, 0xAB1, 17);

    // Prepare the web component's series once.
    let component = "web";
    let raw: Vec<_> = store
        .metric_ids_of(component)
        .into_iter()
        .filter_map(|id| store.series(&id).map(|s| (id.metric, s)))
        .collect();
    let prepared = prepare_series(&raw, config.interval_ms);
    let varying: Vec<usize> = (0..prepared.len())
        .filter(|&i| !is_unvarying(prepared.series(i), config.variance_threshold))
        .collect();
    let data: Vec<&[f64]> = varying.iter().map(|&i| prepared.series(i)).collect();
    let names: Vec<&str> = varying.iter().map(|&i| prepared.name(i).as_str()).collect();

    // 1. Variance filter on/off.
    println!("\n[1] Variance pre-filter (component `{component}`):");
    println!("    metrics exported:          {}", prepared.len());
    println!("    metrics after the filter:  {}", varying.len());
    println!(
        "    removed as unvarying:      {} ({}%)",
        prepared.len() - varying.len(),
        100 * (prepared.len() - varying.len()) / prepared.len().max(1)
    );

    // 2. Jaro warm start vs random initial assignment.
    println!("\n[2] k-Shape initial assignment (k = 5, component `{component}`):");
    let k = 5.min(data.len().saturating_sub(1)).max(1);
    let warm_init = pre_cluster_names(&names, k);
    let warm = KShape::new(KShapeConfig::new(k).with_initial_assignment(warm_init))
        .fit(&data)
        .expect("warm-start clustering succeeds");
    let cold = KShape::new(KShapeConfig::new(k))
        .fit(&data)
        .expect("cold-start clustering succeeds");
    let warm_sil = silhouette_score_sbd(&data, &warm.assignments).unwrap_or(0.0);
    let cold_sil = silhouette_score_sbd(&data, &cold.assignments).unwrap_or(0.0);
    println!(
        "    Jaro warm start:  {} iterations, silhouette {:.3}",
        warm.iterations, warm_sil
    );
    println!(
        "    default start:    {} iterations, silhouette {:.3}",
        cold.iterations, cold_sil
    );

    // 3. Silhouette-driven k vs fixed k.
    println!("\n[3] Cluster-count selection (component `{component}`):");
    let mut best: Option<(usize, f64)> = None;
    for k in config.min_clusters..=config.max_clusters.min(data.len().saturating_sub(1)) {
        let init = pre_cluster_names(&names, k);
        let result = KShape::new(KShapeConfig::new(k).with_initial_assignment(init))
            .fit(&data)
            .expect("clustering succeeds");
        let sil = silhouette_score_sbd(&data, &result.assignments).unwrap_or(0.0);
        println!("    k = {k}: silhouette {sil:.3}");
        if best.map_or(true, |(_, b)| sil > b) {
            best = Some((k, sil));
        }
    }
    if let Some((k, sil)) = best {
        println!("    chosen k = {k} (silhouette {sil:.3})");
    }

    // 4. Call-graph restriction of the pairwise Granger plan.
    println!("\n[4] Pairwise Granger comparison plan (whole application):");
    let model = Sieve::new(config.clone())
        .analyze("sharelatex", &store, &call_graph)
        .expect("analysis succeeds");
    let planned = planned_comparison_count(&call_graph, &model.clusterings);
    let naive = naive_comparison_count(&model.clusterings);
    println!("    call-graph-restricted tests (representatives): {planned}");
    println!("    naive all-pairs tests (all clustered metrics): {naive}");
    println!(
        "    reduction factor: {:.1}x",
        naive as f64 / planned.max(1) as f64
    );
    println!(
        "    (paper argument: the call graph plus representative metrics shrink the search space)"
    );

    // Keep the spec import used (sanity print of the component list).
    println!(
        "\nComponents analysed: {}",
        sharelatex::COMPONENTS.join(", ")
    );
}
