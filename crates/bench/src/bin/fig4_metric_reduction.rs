//! Figure 4 — average number of metrics per ShareLatex component before and
//! after Sieve's reduction.
//!
//! The paper reports 889 unique metrics reduced to 65 representative metrics
//! (averaged over five runs), an order-of-magnitude reduction.
//!
//! Run with: `cargo run --release -p sieve-bench --bin fig4_metric_reduction`

use sieve_apps::MetricRichness;
use sieve_bench::{print_header, sharelatex_clusterings};
use sieve_exec::Name;
use std::collections::BTreeMap;

fn main() {
    print_header("Figure 4: metrics per component before/after Sieve's reduction");
    const RUNS: u64 = 3;
    println!("Averaging over {RUNS} randomized measurement runs (full ShareLatex model) ...\n");

    let mut before: BTreeMap<Name, f64> = BTreeMap::new();
    let mut after: BTreeMap<Name, f64> = BTreeMap::new();
    for run in 0..RUNS {
        let clusterings = sharelatex_clusterings(MetricRichness::Full, 200 + run, 13 + run);
        for (component, clustering) in clusterings {
            *before.entry(component.clone()).or_insert(0.0) +=
                clustering.total_metrics as f64 / RUNS as f64;
            *after.entry(component).or_insert(0.0) +=
                clustering.clusters.len() as f64 / RUNS as f64;
        }
    }

    println!(
        "{:<16} {:>16} {:>16} {:>10}",
        "component", "before clustering", "after clustering", "factor"
    );
    let mut total_before = 0.0;
    let mut total_after = 0.0;
    for (component, b) in &before {
        let a = after.get(component).copied().unwrap_or(0.0);
        total_before += b;
        total_after += a;
        let factor = if a > 0.0 { b / a } else { 0.0 };
        println!("{:<16} {:>16.1} {:>16.1} {:>9.1}x", component, b, a, factor);
    }
    println!(
        "\nTotal: {:.0} metrics -> {:.0} representatives ({:.1}x reduction)",
        total_before,
        total_after,
        if total_after > 0.0 {
            total_before / total_after
        } else {
            0.0
        }
    );
    println!("Paper: 889 metrics -> 65 representatives (~13.7x) for ShareLatex.");
}
