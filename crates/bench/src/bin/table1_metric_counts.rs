//! Table 1 — "Metrics exposed by microservices-based applications".
//!
//! The paper lists the number of metrics exported by several real systems
//! (Netflix, Quantcast, Uber) and by the two applications it evaluates:
//! ShareLatex (889) and OpenStack (17,608 of which 508 are collected in the
//! Table 5 setup). This experiment reports the metric counts of the
//! reproduced application models in both richness modes.
//!
//! Run with: `cargo run --release -p sieve-bench --bin table1_metric_counts`

use sieve_apps::{openstack, sharelatex, MetricRichness};
use sieve_bench::print_header;

fn main() {
    print_header("Table 1: metrics exposed by the modelled applications");
    println!(
        "{:<28} {:>12} {:>12} {:>18}",
        "Application", "Components", "Metrics", "Paper reference"
    );
    for (name, spec, reference) in [
        (
            "ShareLatex (full model)",
            sharelatex::app_spec(MetricRichness::Full),
            "889",
        ),
        (
            "ShareLatex (minimal model)",
            sharelatex::app_spec(MetricRichness::Minimal),
            "-",
        ),
        (
            "OpenStack (full model)",
            openstack::app_spec(MetricRichness::Full),
            "508 collected / 17,608 total",
        ),
        (
            "OpenStack (minimal model)",
            openstack::app_spec(MetricRichness::Minimal),
            "-",
        ),
    ] {
        println!(
            "{:<28} {:>12} {:>12} {:>18}",
            name,
            spec.component_count(),
            spec.total_metric_count(),
            reference
        );
    }
    println!();
    println!("Per-component metric counts (full models):");
    for (label, spec) in [
        ("sharelatex", sharelatex::app_spec(MetricRichness::Full)),
        ("openstack", openstack::app_spec(MetricRichness::Full)),
    ] {
        println!("  {label}:");
        for component in spec.components() {
            println!("    {:<24} {:>4}", component.name, component.metric_count());
        }
    }
}
