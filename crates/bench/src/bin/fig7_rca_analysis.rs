//! Figure 7 — (a) cluster novelty, (b) edge novelty vs similarity threshold,
//! (c) number of components/clusters/metrics surviving edge filtering.
//!
//! The paper's figure shows how the similarity threshold (0.0 / 0.5 / 0.6 /
//! 0.7) shrinks the set of edges and therefore the state a developer has to
//! inspect: e.g. at threshold 0.5 the paper reports 24 interesting edges
//! over 10 components, 16 clusters and 163 metrics.
//!
//! Run with: `cargo run --release -p sieve-bench --bin fig7_rca_analysis`

use sieve_apps::MetricRichness;
use sieve_bench::{openstack_models, print_header};
use sieve_rca::{RcaConfig, RcaEngine};

fn main() {
    print_header(
        "Figure 7: cluster novelty, edge novelty and surviving scope vs similarity threshold",
    );
    println!("Analysing the correct and faulty OpenStack versions (full model) ...\n");
    let (correct, faulty) = openstack_models(MetricRichness::Full, 0x71);

    // (a) cluster novelty at the default configuration.
    let base_report = RcaEngine::new(RcaConfig::default()).compare(&correct, &faulty);
    let c = &base_report.cluster_novelty;
    println!("(a) Cluster novelty:");
    println!("    new only:            {}", c.with_new_only);
    println!("    discarded only:      {}", c.with_discarded_only);
    println!("    new and discarded:   {}", c.with_new_and_discarded);
    println!("    changed membership:  {}", c.changed_membership);
    println!("    total clusters:      {}", c.total);

    // (b) + (c): sweep the similarity threshold.
    println!("\n(b) Edge novelty and (c) surviving scope vs similarity threshold:");
    println!(
        "{:>10} {:>6} {:>10} {:>11} {:>10} | {:>11} {:>9} {:>9}",
        "threshold",
        "new",
        "discarded",
        "lag change",
        "unchanged",
        "components",
        "clusters",
        "metrics"
    );
    for threshold in [0.0, 0.5, 0.6, 0.7] {
        let config = RcaConfig::default().with_similarity_threshold(threshold);
        let report = RcaEngine::new(config).compare(&correct, &faulty);
        let e = &report.edge_novelty;
        let (components, clusters, metrics) = report.surviving_scope;
        println!(
            "{:>10.2} {:>6} {:>10} {:>11} {:>10} | {:>11} {:>9} {:>9}",
            threshold,
            e.new,
            e.discarded,
            e.lag_changed,
            e.unchanged,
            components,
            clusters,
            metrics
        );
    }
    println!("\nPaper (threshold 0.5): 24 interesting edges; 10 components, 16 clusters, 163 metrics survive.");
}
