//! Table 5 — OpenStack components ranked by metric novelty between the
//! correct and faulty versions, plus the final RCA ranking.
//!
//! The paper's Table 5 lists, for the Launchpad #1533942 experiment, the
//! number of new/discarded metrics per component (Nova API, Nova libvirt,
//! Nova scheduler, Neutron server and RabbitMQ at the top of 16 components,
//! 508 metrics in total) and the final ranking after edge filtering with a
//! similarity threshold of 0.50.
//!
//! Run with: `cargo run --release -p sieve-bench --bin table5_rca_ranking`

use sieve_apps::MetricRichness;
use sieve_bench::{openstack_models, print_header};
use sieve_rca::{RcaConfig, RcaEngine};

fn main() {
    print_header("Table 5: OpenStack components ranked by metric novelty (correct vs faulty)");
    println!("Analysing the correct and faulty OpenStack versions (full model) ...\n");
    let (correct, faulty) = openstack_models(MetricRichness::Full, 0x5E);

    println!(
        "Dependency graphs: correct = {} edges, faulty = {} edges (paper: 647 vs 343)",
        correct.dependency_graph.edge_count(),
        faulty.dependency_graph.edge_count()
    );

    let report = RcaEngine::new(RcaConfig::default()).compare(&correct, &faulty);

    println!(
        "\n{:<22} {:>22} {:>8} {:>14}",
        "Component", "Changed (new/disc.)", "Total", "Final ranking"
    );
    let total_changed: usize = report
        .component_rankings
        .iter()
        .map(|r| r.novelty_score)
        .sum();
    let total_metrics: usize = report
        .component_rankings
        .iter()
        .map(|r| r.total_metrics)
        .sum();
    for ranking in &report.component_rankings {
        let final_rank = report
            .rank_of(&ranking.component)
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<22} {:>10} ({}/{})     {:>6} {:>14}",
            ranking.component,
            ranking.novelty_score,
            ranking.new_metrics,
            ranking.discarded_metrics,
            ranking.total_metrics,
            final_rank
        );
    }
    println!(
        "\nTotals: {} changed metrics across {} collected metrics (paper: 113 of 508)",
        total_changed, total_metrics
    );

    println!(
        "\nFinal ranking ({} components survive edge filtering):",
        report.final_ranking.len()
    );
    for cause in &report.final_ranking {
        println!(
            "  #{:<2} {:<22} metrics to inspect: {}",
            cause.rank,
            cause.component,
            cause.metrics.len()
        );
    }
    println!(
        "\nGround truth: nova ERROR metric implicated = {}, neutron DOWN metric implicated = {}",
        report.implicates_metric("nova-api", sieve_apps::openstack::ERROR_METRIC),
        report.implicates_metric("neutron-server", sieve_apps::openstack::ROOT_CAUSE_METRIC)
    );
}
