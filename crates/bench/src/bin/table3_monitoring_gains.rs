//! Table 3 — monitoring-infrastructure overhead before and after Sieve's
//! metric reduction.
//!
//! The paper ingests all collected metrics into InfluxDB, measures CPU time,
//! database size and network traffic, then repeats the exercise with only
//! the representative metrics: CPU −81.2%, DB size −93.8%, network in
//! −79.3%, network out −50.7%.
//!
//! Run with: `cargo run --release -p sieve-bench --bin table3_monitoring_gains`

use sieve_apps::MetricRichness;
use sieve_bench::{experiment_config, load_sharelatex, percent_reduction, print_header};
use sieve_core::pipeline::Sieve;
use sieve_simulator::store::MetricId;

fn main() {
    print_header("Table 3: metric-store overhead before/after Sieve's reduction");
    println!("Loading ShareLatex (full model) and running the reduction ...\n");

    let (store, call_graph) = load_sharelatex(MetricRichness::Full, 0x3A, 9);
    let model = Sieve::new(experiment_config())
        .analyze("sharelatex", &store, &call_graph)
        .expect("analysis succeeds");

    let keep: Vec<MetricId> = model
        .representative_metrics()
        .into_iter()
        .map(|(component, metric)| MetricId::new(component, metric))
        .collect();
    let reduced = store.retain_only(&keep);

    let before = store.resource_usage();
    let after = reduced.resource_usage();

    println!(
        "Metric series: {} -> {} ({}x reduction)",
        store.series_count(),
        reduced.series_count(),
        store.series_count() / reduced.series_count().max(1)
    );
    println!(
        "\n{:<22} {:>14} {:>14} {:>12} {:>14}",
        "Metric", "Before", "After", "Reduction", "Paper"
    );
    let rows = [
        (
            "CPU time [s]",
            before.cpu_time_s,
            after.cpu_time_s,
            "81.2 %",
        ),
        (
            "DB size [KB]",
            before.db_size_kb,
            after.db_size_kb,
            "93.8 %",
        ),
        (
            "Network in [MB]",
            before.network_in_mb,
            after.network_in_mb,
            "79.3 %",
        ),
        (
            "Network out [KB]",
            before.network_out_kb,
            after.network_out_kb,
            "50.7 %",
        ),
    ];
    for (label, b, a, paper) in rows {
        println!(
            "{:<22} {:>14.3} {:>14.3} {:>12} {:>14}",
            label,
            b,
            a,
            percent_reduction(b, a),
            paper
        );
    }
}
