//! Table 4 — autoscaling with the traditional CPU-usage trigger vs the
//! metric selected by Sieve.
//!
//! The paper replays a one-hour WorldCup-98-shaped trace against ShareLatex
//! and compares the two trigger metrics under the same SLA (90% of request
//! latencies below 1000 ms). Reported outcome: Sieve's metric raises the
//! mean CPU usage per component by ~55% (better utilisation), and lowers SLA
//! violations by ~63% and scaling actions by ~34%.
//!
//! Run with: `cargo run --release -p sieve-bench --bin table4_autoscaling`

use sieve_apps::{sharelatex, MetricRichness};
use sieve_autoscale::calibrate::calibrated_rule;
use sieve_autoscale::engine::AutoscaleEngine;
use sieve_autoscale::rules::SlaCondition;
use sieve_bench::{percent_change, print_header};
use sieve_simulator::engine::SimConfig;
use sieve_simulator::store::MetricId;
use sieve_simulator::workload::Workload;

fn main() {
    print_header("Table 4: CPU-usage trigger vs Sieve's metric selection for autoscaling");
    let app = sharelatex::app_spec(MetricRichness::Minimal);
    let sla = SlaCondition::default();
    let peak_rate = 320.0;
    let scalable: Vec<String> = [
        "web",
        "real-time",
        "chat",
        "clsi",
        "contacts",
        "doc-updater",
        "docstore",
        "filestore",
        "spelling",
        "tags",
        "track-changes",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    // Guiding metrics: the paper's Sieve selection vs the traditional CPU
    // trigger on the web tier.
    let sieve_metric = MetricId::new(sharelatex::GUIDING_COMPONENT, sharelatex::GUIDING_METRIC);
    let cpu_metric = MetricId::new("web", "cpu_usage");

    println!("Calibrating thresholds on a 5-minute peak-load sample ...");
    let sieve_rule = calibrated_rule(&app, &sieve_metric, &sla, peak_rate, scalable.clone(), 21)
        .expect("calibration succeeds")
        .with_instance_bounds(1, 12)
        .with_cooldown_ticks(10);
    let cpu_rule = calibrated_rule(&app, &cpu_metric, &sla, peak_rate, scalable, 21)
        .expect("calibration succeeds")
        .with_instance_bounds(1, 12)
        .with_cooldown_ticks(10);
    println!(
        "  Sieve metric ({}): scale out > {:.0}, scale in < {:.0}",
        sieve_metric, sieve_rule.scale_out_threshold, sieve_rule.scale_in_threshold
    );
    println!(
        "  CPU usage ({}): scale out > {:.1}%, scale in < {:.1}%",
        cpu_metric, cpu_rule.scale_out_threshold, cpu_rule.scale_in_threshold
    );

    // One-hour WorldCup-like trace at 500 ms resolution.
    let workload = Workload::worldcup_like(7200, peak_rate, 1998);
    let config = SimConfig::new(0xE1).with_duration_ms(3_600_000);

    println!("\nReplaying the one-hour trace with the CPU-usage trigger ...");
    let cpu = AutoscaleEngine::new(cpu_rule, sla)
        .unwrap()
        .run(&app, &workload, config)
        .expect("run succeeds");
    println!("Replaying the one-hour trace with the Sieve-selected trigger ...");
    let sieve = AutoscaleEngine::new(sieve_rule, sla)
        .unwrap()
        .run(&app, &workload, config)
        .expect("run succeeds");

    println!(
        "\n{:<40} {:>12} {:>12} {:>12} {:>18}",
        "Metric", "CPU usage", "Sieve", "Difference", "Paper difference"
    );
    println!(
        "{:<40} {:>12.2} {:>12.2} {:>12} {:>18}",
        "Mean CPU usage per component [%]",
        cpu.mean_cpu_usage_per_component,
        sieve.mean_cpu_usage_per_component,
        percent_change(
            cpu.mean_cpu_usage_per_component,
            sieve.mean_cpu_usage_per_component
        ),
        "+54.8%"
    );
    println!(
        "{:<40} {:>12} {:>12} {:>12} {:>18}",
        format!("SLA violations (out of {} samples)", cpu.total_samples),
        cpu.sla_violations,
        sieve.sla_violations,
        percent_change(cpu.sla_violations as f64, sieve.sla_violations as f64),
        "-62.8%"
    );
    println!(
        "{:<40} {:>12} {:>12} {:>12} {:>18}",
        "Number of scaling actions",
        cpu.scaling_actions,
        sieve.scaling_actions,
        percent_change(cpu.scaling_actions as f64, sieve.scaling_actions as f64),
        "-34.4%"
    );
    println!(
        "\np90 end-to-end latency: CPU trigger {:.0} ms, Sieve trigger {:.0} ms (SLA: {:.0} ms)",
        cpu.latency_p90_ms, sieve.latency_p90_ms, sla.threshold_ms
    );
}
