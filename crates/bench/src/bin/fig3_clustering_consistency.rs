//! Figure 3 — pairwise Adjusted Mutual Information (AMI) between the cluster
//! assignments of three independent measurements of ShareLatex.
//!
//! The paper loads ShareLatex with randomized workloads three times and
//! compares, per component, the resulting cluster assignments with AMI; the
//! reported average is 0.597, i.e. clearly above a random assignment.
//!
//! Run with: `cargo run --release -p sieve-bench --bin fig3_clustering_consistency`

use sieve_apps::MetricRichness;
use sieve_bench::{print_header, sharelatex_clusterings};
use sieve_cluster::ami::adjusted_mutual_information;
use sieve_core::model::ComponentClustering;
use sieve_exec::Name;
use std::collections::BTreeMap;

/// Computes per-component AMI between two measurement runs, over the metrics
/// clustered in both runs.
fn component_amis(
    a: &BTreeMap<Name, ComponentClustering>,
    b: &BTreeMap<Name, ComponentClustering>,
) -> Vec<(Name, f64)> {
    let mut out = Vec::new();
    for (component, ca) in a {
        let Some(cb) = b.get(component) else { continue };
        let mut labels_a = Vec::new();
        let mut labels_b = Vec::new();
        for metric in ca.clustered_metrics() {
            let Some(pos_a) = ca.clusters.iter().position(|c| c.contains(&metric)) else {
                continue;
            };
            let Some(pos_b) = cb.clusters.iter().position(|c| c.contains(&metric)) else {
                continue;
            };
            labels_a.push(pos_a);
            labels_b.push(pos_b);
        }
        if labels_a.len() >= 3 {
            if let Ok(ami) = adjusted_mutual_information(&labels_a, &labels_b) {
                out.push((component.clone(), ami));
            }
        }
    }
    out
}

fn main() {
    print_header("Figure 3: clustering consistency across 3 randomized measurements (AMI)");
    println!("Running three independent measurements of ShareLatex (full model) ...");
    let runs: Vec<BTreeMap<Name, ComponentClustering>> = (0..3)
        .map(|i| sharelatex_clusterings(MetricRichness::Full, 100 + i, 7 * (i + 1)))
        .collect();

    let pairs = [(0usize, 1usize), (0, 2), (1, 2)];
    let mut all_values = Vec::new();
    for (i, j) in pairs {
        let amis = component_amis(&runs[i], &runs[j]);
        println!("\nAMI({}, {}):", i + 1, j + 1);
        println!("{:<16} {:>8}", "component", "AMI");
        for (component, ami) in &amis {
            println!("{:<16} {:>8.3}", component, ami);
            all_values.push(*ami);
        }
    }
    let mean = if all_values.is_empty() {
        0.0
    } else {
        all_values.iter().sum::<f64>() / all_values.len() as f64
    };
    println!("\nAverage AMI over all components and pairs: {mean:.3}");
    println!("Paper reports an average AMI of 0.597 for this experiment.");
}
