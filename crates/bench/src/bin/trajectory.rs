//! `trajectory` — the performance-ledger trend reader.
//!
//! Every bench binary appends machine-readable runs to `BENCH_<bench>.json`
//! at the repository root (see [`sieve_bench::ledger`]). This tool reads
//! *all* of those ledgers, groups the runs by benchmark name and git
//! revision, and prints the speedup curve of each benchmark across
//! revisions — the project's performance history, reconstructed from the
//! persisted records without re-running anything.
//!
//! It is also the CI regression gate: for every benchmark whose *latest*
//! run is a real measurement (not a `SIEVE_BENCH_SMOKE` run), the latest
//! median is compared against the best prior non-smoke median. A slowdown
//! of more than 20% exits nonzero and names the offending benchmarks.
//! Smoke runs are listed but never participate in the comparison — their
//! numbers measure a shrunken workload and would poison the curve.
//!
//! Usage: `cargo run -p sieve-bench --bin trajectory [ledger-dir]`
//! (the directory defaults to the repository root).

use sieve_bench::ledger::LedgerRecord;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A regression is a latest non-smoke median more than 20% above the best
/// prior non-smoke median of the same benchmark.
const REGRESSION_FACTOR: f64 = 1.20;

/// One revision's aggregate for a benchmark: the best (lowest) non-smoke
/// median observed at that revision, in chronological first-seen order.
#[derive(Debug)]
struct RevPoint {
    rev: String,
    best_median_ns: u64,
}

/// All `BENCH_*.json` files directly inside `dir`, sorted by name.
fn ledger_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        })
        .collect();
    files.sort();
    files
}

/// Parses every ledger line of every file, grouped by (bench, benchmark
/// name) and kept in append order within each group.
fn load_groups(dir: &Path) -> BTreeMap<(String, String), Vec<LedgerRecord>> {
    let mut groups: BTreeMap<(String, String), Vec<LedgerRecord>> = BTreeMap::new();
    for file in ledger_files(dir) {
        let Ok(contents) = std::fs::read_to_string(&file) else {
            eprintln!("trajectory: cannot read {}", file.display());
            continue;
        };
        for line in contents.lines().filter(|l| !l.trim().is_empty()) {
            match LedgerRecord::from_json_line(line) {
                Some(record) => groups
                    .entry((record.bench.clone(), record.name.clone()))
                    .or_default()
                    .push(record),
                None => eprintln!("trajectory: skipping malformed line in {}", file.display()),
            }
        }
    }
    groups
}

/// Folds a group's non-smoke runs into one point per revision (first-seen
/// order, best median per revision).
fn rev_points(runs: &[LedgerRecord]) -> Vec<RevPoint> {
    let mut points: Vec<RevPoint> = Vec::new();
    for run in runs.iter().filter(|r| !r.smoke && r.median_ns > 0) {
        match points.iter_mut().find(|p| p.rev == run.git_rev) {
            Some(point) => point.best_median_ns = point.best_median_ns.min(run.median_ns),
            None => points.push(RevPoint {
                rev: run.git_rev.clone(),
                best_median_ns: run.median_ns,
            }),
        }
    }
    points
}

fn format_ns(ns: u64) -> String {
    format!("{:.3?}", std::time::Duration::from_nanos(ns))
}

/// Prints every benchmark's speedup curve and returns the regressions.
fn evaluate(groups: &BTreeMap<(String, String), Vec<LedgerRecord>>) -> Vec<String> {
    let mut regressions = Vec::new();
    let mut current_bench = String::new();
    for ((bench, name), runs) in groups {
        if *bench != current_bench {
            println!("ledger {bench} (BENCH_{bench}.json)");
            current_bench = bench.clone();
        }
        let smoke_runs = runs.iter().filter(|r| r.smoke).count();
        let points = rev_points(runs);
        println!("  {name} ({} run(s), {smoke_runs} smoke)", runs.len());
        let Some(baseline) = points.first() else {
            println!("    no non-smoke runs — nothing to compare");
            continue;
        };
        for point in &points {
            let speedup = baseline.best_median_ns as f64 / point.best_median_ns as f64;
            println!(
                "    {:<10} median {:>12}   {speedup:>6.2}x vs first",
                point.rev,
                format_ns(point.best_median_ns)
            );
        }
        if points.len() < 2 {
            continue;
        }
        let latest = points.last().expect("len >= 2");
        let best_prior = points[..points.len() - 1]
            .iter()
            .map(|p| p.best_median_ns)
            .min()
            .expect("len >= 2");
        let ratio = latest.best_median_ns as f64 / best_prior as f64;
        if ratio > REGRESSION_FACTOR {
            regressions.push(format!(
                "{bench}/{name}: latest median {} at {} is {:.0}% above the best \
                 prior non-smoke median {}",
                format_ns(latest.best_median_ns),
                latest.rev,
                (ratio - 1.0) * 100.0,
                format_ns(best_prior)
            ));
        }
    }
    regressions
}

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).map_or_else(
        || Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
        PathBuf::from,
    );
    let groups = load_groups(&dir);
    if groups.is_empty() {
        println!(
            "trajectory: no ledger runs under {} — run any bench first",
            dir.display()
        );
        return ExitCode::SUCCESS;
    }
    let regressions = evaluate(&groups);
    if regressions.is_empty() {
        println!("trajectory: no >20% median regressions");
        return ExitCode::SUCCESS;
    }
    for regression in &regressions {
        eprintln!("trajectory: REGRESSION {regression}");
    }
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, rev: &str, median_ns: u64, smoke: bool, unix_s: u64) -> LedgerRecord {
        LedgerRecord {
            bench: "unit".to_string(),
            name: name.to_string(),
            config: "cfg".to_string(),
            iters: 3,
            min_ns: median_ns / 2,
            mean_ns: median_ns,
            median_ns,
            git_rev: rev.to_string(),
            smoke,
            unix_s,
        }
    }

    fn groups_of(records: Vec<LedgerRecord>) -> BTreeMap<(String, String), Vec<LedgerRecord>> {
        let mut groups: BTreeMap<(String, String), Vec<LedgerRecord>> = BTreeMap::new();
        for r in records {
            groups
                .entry((r.bench.clone(), r.name.clone()))
                .or_default()
                .push(r);
        }
        groups
    }

    #[test]
    fn regression_fires_only_beyond_twenty_percent() {
        // 100µs → 115µs: within tolerance.
        let ok = groups_of(vec![
            record("a", "r1", 100_000, false, 1),
            record("a", "r2", 115_000, false, 2),
        ]);
        assert!(evaluate(&ok).is_empty());

        // 100µs → 130µs: 30% above the best prior — a regression.
        let bad = groups_of(vec![
            record("a", "r1", 100_000, false, 1),
            record("a", "r2", 130_000, false, 2),
        ]);
        let regressions = evaluate(&bad);
        assert_eq!(regressions.len(), 1);
        assert!(regressions[0].contains("unit/a"), "{}", regressions[0]);
    }

    #[test]
    fn comparison_is_against_the_best_prior_revision() {
        // The best prior is r1 (80µs), not the immediately preceding r2.
        let groups = groups_of(vec![
            record("a", "r1", 80_000, false, 1),
            record("a", "r2", 95_000, false, 2),
            record("a", "r3", 100_000, false, 3),
        ]);
        let regressions = evaluate(&groups);
        assert_eq!(regressions.len(), 1, "100µs vs best prior 80µs is +25%");
    }

    #[test]
    fn smoke_runs_never_participate() {
        let groups = groups_of(vec![
            record("a", "r1", 100_000, false, 1),
            // A smoke run with a wild number must not trip the gate...
            record("a", "r2", 900_000, true, 2),
            // ...nor can a smoke-only group produce a comparison.
            record("b", "r1", 1, true, 3),
        ]);
        assert!(evaluate(&groups).is_empty());
    }

    #[test]
    fn repeated_revisions_keep_their_best_median() {
        let groups = groups_of(vec![
            record("a", "r1", 100_000, false, 1),
            record("a", "r2", 140_000, false, 2),
            // A second, faster run at r2 rescues the revision.
            record("a", "r2", 105_000, false, 3),
        ]);
        assert!(evaluate(&groups).is_empty());
        let points = rev_points(&groups[&("unit".to_string(), "a".to_string())]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].best_median_ns, 105_000);
    }

    #[test]
    fn ledger_files_are_discovered_and_parsed() {
        let dir = std::env::temp_dir().join(format!("sieve-trajectory-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_unit.json");
        let lines = [
            record("a", "r1", 100_000, false, 1).to_json_line(),
            "not json".to_string(),
            record("a", "r2", 110_000, false, 2).to_json_line(),
        ]
        .join("\n");
        std::fs::write(&path, lines).unwrap();
        std::fs::write(dir.join("NOT_A_LEDGER.txt"), "ignored").unwrap();

        assert_eq!(ledger_files(&dir), vec![path.clone()]);
        let groups = load_groups(&dir);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[&("unit".to_string(), "a".to_string())].len(), 2);
        assert!(
            evaluate(&groups).is_empty(),
            "10% slower is not a regression"
        );

        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(dir.join("NOT_A_LEDGER.txt"));
        let _ = std::fs::remove_dir(&dir);
    }
}
