//! Figure 6 — the ShareLatex dependency graph inferred by Granger causality.
//!
//! The paper's figure shows the relations between the 15 ShareLatex
//! components, with the `http-requests_Project_id_GET_mean` metric of the
//! web component participating in many of them (which is why the autoscaling
//! case study selects it as the guiding metric).
//!
//! Run with: `cargo run --release -p sieve-bench --bin fig6_dependency_graph`

use sieve_apps::MetricRichness;
use sieve_bench::{print_header, sharelatex_model};
use sieve_graph::dot::dependency_graph_to_dot;

fn main() {
    print_header("Figure 6: ShareLatex dependency graph (Granger causality relations)");
    println!("Running the full Sieve analysis of ShareLatex (full model) ...\n");
    let model = sharelatex_model(MetricRichness::Full, 0x66, 11);

    let graph = &model.dependency_graph;
    println!(
        "Dependency graph: {} components, {} metric-level edges\n",
        graph.component_count(),
        graph.edge_count()
    );

    println!("Component-level relations (direction = Granger causality):");
    let mut component_pairs: Vec<(sieve_exec::Name, sieve_exec::Name, usize)> = Vec::new();
    for source in graph.components() {
        for target in graph.components() {
            let edges = graph.edges_between(&source, &target);
            if !edges.is_empty() {
                component_pairs.push((source.clone(), target.clone(), edges.len()));
            }
        }
    }
    for (source, target, count) in &component_pairs {
        println!(
            "  {:<14} -> {:<14} ({} metric pairs)",
            source, target, count
        );
    }

    println!("\nMetrics appearing most often in the relations:");
    for (metric, count) in graph.metric_appearance_counts().into_iter().take(8) {
        println!("  {:<44} {:>3} relations", metric, count);
    }
    if let Some(best) = graph.most_connected_metric() {
        println!("\nGuiding-metric candidate (paper: http-requests_Project_id_GET_mean): {best}");
    }

    println!("\nGraphviz DOT output:\n");
    println!("{}", dependency_graph_to_dot(graph));
}
