//! A persisted, machine-readable performance ledger.
//!
//! Every bench binary appends one JSON object per benchmark run to
//! `BENCH_<bench>.json` at the repository root — one object per line, so
//! the file is both valid JSON-lines and trivially greppable. Records
//! carry the measured numbers (min/mean/median nanoseconds per
//! iteration), the workload note, the git revision and whether the run
//! was a CI smoke run, so regressions can be traced across commits
//! without re-running anything.
//!
//! The container this repo builds in has no access to crates.io, so both
//! the writer and the read-back parser below are dependency-free; the
//! parser understands exactly the flat objects the writer emits and
//! exists so tests (and tools) can round-trip the ledger.

use crate::harness::{smoke_mode, Measurement};
use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// One persisted benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerRecord {
    /// Bench binary the run belongs to (`analysis`, `pipeline`, ...).
    pub bench: String,
    /// Benchmark name within the binary (e.g. `fft/batch-1024`).
    pub name: String,
    /// Free-form workload/configuration note.
    pub config: String,
    /// Measured iterations.
    pub iters: u64,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u64,
    /// Mean iteration, nanoseconds.
    pub mean_ns: u64,
    /// Median iteration, nanoseconds.
    pub median_ns: u64,
    /// `git rev-parse --short HEAD` at run time, or `unknown`.
    pub git_rev: String,
    /// Whether `SIEVE_BENCH_SMOKE` was set (numbers are not comparable).
    pub smoke: bool,
    /// Seconds since the Unix epoch at record time.
    pub unix_s: u64,
}

impl LedgerRecord {
    /// Serializes the record as one flat JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"bench\":{},\"name\":{},\"config\":{},\"iters\":{},\"min_ns\":{},\
             \"mean_ns\":{},\"median_ns\":{},\"git_rev\":{},\"smoke\":{},\"unix_s\":{}}}",
            escape_json(&self.bench),
            escape_json(&self.name),
            escape_json(&self.config),
            self.iters,
            self.min_ns,
            self.mean_ns,
            self.median_ns,
            escape_json(&self.git_rev),
            self.smoke,
            self.unix_s
        )
    }

    /// Parses a record back from one ledger line.
    pub fn from_json_line(line: &str) -> Option<Self> {
        let fields = parse_flat_object(line)?;
        let s = |key: &str| match fields.get(key)? {
            JsonValue::Str(v) => Some(v.clone()),
            _ => None,
        };
        let n = |key: &str| match fields.get(key)? {
            JsonValue::Num(v) if *v >= 0.0 => Some(*v as u64),
            _ => None,
        };
        let b = |key: &str| match fields.get(key)? {
            JsonValue::Bool(v) => Some(*v),
            _ => None,
        };
        Some(Self {
            bench: s("bench")?,
            name: s("name")?,
            config: s("config")?,
            iters: n("iters")?,
            min_ns: n("min_ns")?,
            mean_ns: n("mean_ns")?,
            median_ns: n("median_ns")?,
            git_rev: s("git_rev")?,
            smoke: b("smoke")?,
            unix_s: n("unix_s")?,
        })
    }
}

/// Appends benchmark runs to `BENCH_<bench>.json` at the repository root.
#[derive(Debug)]
pub struct Ledger {
    bench: String,
    path: PathBuf,
    git_rev: String,
    smoke: bool,
}

impl Ledger {
    /// A ledger for the named bench binary, writing to the repo root
    /// (resolved relative to this crate's manifest at compile time).
    pub fn new(bench: &str) -> Self {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        Self::at(bench, &root)
    }

    /// A ledger rooted at an explicit directory (used by tests).
    pub fn at(bench: &str, dir: &Path) -> Self {
        Self {
            bench: bench.to_string(),
            path: dir.join(format!("BENCH_{bench}.json")),
            git_rev: git_rev(),
            smoke: smoke_mode(),
        }
    }

    /// The file the ledger appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Builds a record for `measurement` without writing it.
    pub fn make_record(&self, measurement: &Measurement, config: &str) -> LedgerRecord {
        LedgerRecord {
            bench: self.bench.clone(),
            name: measurement.name.clone(),
            config: config.to_string(),
            iters: measurement.samples.len() as u64,
            min_ns: duration_ns(measurement.min()),
            mean_ns: duration_ns(measurement.mean()),
            median_ns: duration_ns(measurement.median()),
            git_rev: self.git_rev.clone(),
            smoke: self.smoke,
            unix_s: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }

    /// Appends one run to the ledger file. Benches treat the ledger as
    /// best-effort: an unwritable file prints a warning instead of
    /// failing the measurement.
    pub fn record(&self, measurement: &Measurement, config: &str) {
        let record = self.make_record(measurement, config);
        let line = record.to_json_line();
        let appended = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .and_then(|mut file| writeln!(file, "{line}"));
        if let Err(err) = appended {
            eprintln!("ledger: could not append to {}: {err}", self.path.display());
        }
    }

    /// Records every measurement the runner collected, with one shared
    /// configuration note.
    pub fn record_all(&self, measurements: &[Measurement], config: &str) {
        for m in measurements {
            self.record(m, config);
        }
    }
}

/// Nanoseconds of a duration, saturated to `u64` (≈ 584 years).
fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// `git rev-parse --short HEAD` of the repo this crate was built from,
/// or `unknown` when git is unavailable.
fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Escapes a string as a JSON string literal (quotes included).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON scalar — the only value kinds ledger records contain.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string value.
    Str(String),
    /// A numeric value.
    Num(f64),
    /// A boolean value.
    Bool(bool),
}

/// Parses one flat JSON object of scalar values (the shape every ledger
/// line has). Returns `None` on anything malformed or nested.
pub fn parse_flat_object(line: &str) -> Option<BTreeMap<String, JsonValue>> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = BTreeMap::new();
    if chars.next()? != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return chars.next().is_none().then_some(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let value = parse_scalar(&mut chars)?;
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    skip_ws(&mut chars);
    chars.next().is_none().then_some(fields)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let value = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(value)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn parse_scalar(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<JsonValue> {
    match chars.peek()? {
        '"' => parse_string(chars).map(JsonValue::Str),
        't' => {
            for expected in "true".chars() {
                if chars.next()? != expected {
                    return None;
                }
            }
            Some(JsonValue::Bool(true))
        }
        'f' => {
            for expected in "false".chars() {
                if chars.next()? != expected {
                    return None;
                }
            }
            Some(JsonValue::Bool(false))
        }
        _ => {
            let mut literal = String::new();
            while chars
                .peek()
                .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
            {
                literal.push(chars.next()?);
            }
            literal.parse().ok().map(JsonValue::Num)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn measurement() -> Measurement {
        Measurement {
            name: "stage/kernel-1024".to_string(),
            samples: vec![
                Duration::from_nanos(1_500),
                Duration::from_nanos(1_200),
                Duration::from_nanos(1_900),
            ],
        }
    }

    #[test]
    fn ledger_lines_parse_back() {
        let dir = std::env::temp_dir().join(format!("sieve-ledger-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ledger = Ledger::at("unit", &dir);
        let _ = std::fs::remove_file(ledger.path());
        ledger.record(&measurement(), "len=1024 series=64");
        ledger.record(&measurement(), "len=2048 series=8");

        let contents = std::fs::read_to_string(ledger.path()).unwrap();
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let record = LedgerRecord::from_json_line(line).expect("line parses");
            assert_eq!(record.bench, "unit");
            assert_eq!(record.name, "stage/kernel-1024");
            assert_eq!(record.iters, 3);
            assert_eq!(record.min_ns, 1_200);
            assert_eq!(record.median_ns, 1_500);
            assert_eq!(record.mean_ns, 1_533);
            assert!(!record.git_rev.is_empty());
            assert!(record.unix_s > 0);
        }
        let _ = std::fs::remove_file(ledger.path());
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn record_round_trips_through_json_exactly() {
        let record = LedgerRecord {
            bench: "analysis".to_string(),
            name: "fft/batch".to_string(),
            config: "quote \" backslash \\ newline \n tab \t".to_string(),
            iters: 7,
            min_ns: 123,
            mean_ns: 456,
            median_ns: 234,
            git_rev: "abc1234".to_string(),
            smoke: true,
            unix_s: 1_700_000_000,
        };
        let parsed = LedgerRecord::from_json_line(&record.to_json_line()).unwrap();
        assert_eq!(parsed, record);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_flat_object("").is_none());
        assert!(parse_flat_object("{\"a\":1").is_none());
        assert!(parse_flat_object("{\"a\":1} trailing").is_none());
        assert!(parse_flat_object("{\"a\":}").is_none());
        assert!(LedgerRecord::from_json_line("{\"bench\":\"x\"}").is_none());
    }

    #[test]
    fn parser_handles_scalars_and_escapes() {
        let fields =
            parse_flat_object("{ \"s\" : \"a\\u0041\\n\" , \"n\" : -1.5e2 , \"b\" : false }")
                .unwrap();
        assert_eq!(fields["s"], JsonValue::Str("aA\n".to_string()));
        assert_eq!(fields["n"], JsonValue::Num(-150.0));
        assert_eq!(fields["b"], JsonValue::Bool(false));
        assert_eq!(parse_flat_object("{}").unwrap().len(), 0);
    }
}
