//! Deterministic synthetic noise for benchmark inputs.
//!
//! Every bench used to carry its own copy of this splitmix-style mixer;
//! it lives here once so all benchmarks draw from the same reproducible
//! stream. The function is pure: `(i, seed)` always yields the same value
//! on every host, which keeps bitwise cached-vs-naive assertions
//! meaningful across runs.

/// A deterministic pseudo-random value in `[-0.5, 0.5)` for sample `i` of
/// stream `seed`, produced by a splitmix64-style finalizer.
pub fn noise(i: usize, seed: u64) -> f64 {
    let mut s =
        (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15) ^ seed.wrapping_mul(0xD1B54A32D192ED03);
    s ^= s >> 33;
    s = s.wrapping_mul(0xff51afd7ed558ccd);
    s ^= s >> 29;
    ((s >> 11) as f64) / ((1u64 << 53) as f64) - 0.5
}

/// A deterministic synthetic metric series: a slow sine wave plus seeded
/// noise — shaped like the resampled series the pipeline benches cluster.
pub fn series(len: usize, seed: u64) -> Vec<f64> {
    (0..len)
        .map(|i| (i as f64 * 0.05 + seed as f64).sin() + 0.25 * noise(i, seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_is_deterministic_and_bounded() {
        for i in 0..1000 {
            for seed in [0u64, 1, 0xDEADBEEF] {
                let a = noise(i, seed);
                let b = noise(i, seed);
                assert_eq!(a.to_bits(), b.to_bits());
                assert!((-0.5..0.5).contains(&a), "out of range: {a}");
            }
        }
    }

    #[test]
    fn streams_with_different_seeds_differ() {
        let a = series(64, 1);
        let b = series(64, 2);
        assert_eq!(a.len(), 64);
        assert_ne!(a, b);
    }
}
