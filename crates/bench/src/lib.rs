//! Shared helpers for the experiment harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md` for the index); the functions here run the
//! common heavy lifting — loading an application, running the Sieve
//! analysis, producing correct/faulty OpenStack model pairs — and provide
//! small formatting utilities so that each binary prints rows comparable to
//! the paper's.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod ledger;
pub mod noise;

use sieve_apps::{openstack, sharelatex, MetricRichness};
use sieve_core::config::SieveConfig;
use sieve_core::model::{ComponentClustering, SieveModel};
use sieve_core::pipeline::{load_application, Sieve};
use sieve_core::reduce::{prepare_series, reduce_component};
use sieve_exec::Name;
use sieve_graph::CallGraph;
use sieve_simulator::store::MetricStore;
use sieve_simulator::workload::Workload;
use std::collections::BTreeMap;

/// Duration of the offline loading phase used by the experiments (2.5 min).
pub const LOAD_DURATION_MS: u64 = 150_000;

/// The pipeline configuration used by all experiments (paper defaults, with
/// parallel workers).
pub fn experiment_config() -> SieveConfig {
    SieveConfig::default().with_parallelism(8)
}

/// Loads the ShareLatex model under a randomized workload and returns the
/// recorded store and call graph.
pub fn load_sharelatex(
    richness: MetricRichness,
    seed: u64,
    workload_seed: u64,
) -> (MetricStore, CallGraph) {
    let app = sharelatex::app_spec(richness);
    load_application(
        &app,
        &Workload::randomized(90.0, workload_seed),
        seed,
        LOAD_DURATION_MS,
        500,
    )
    .expect("loading the ShareLatex model succeeds")
}

/// Runs the full Sieve analysis of the ShareLatex model.
pub fn sharelatex_model(richness: MetricRichness, seed: u64, workload_seed: u64) -> SieveModel {
    let app = sharelatex::app_spec(richness);
    Sieve::new(experiment_config())
        .analyze_application_for(
            &app,
            &Workload::randomized(90.0, workload_seed),
            seed,
            LOAD_DURATION_MS,
        )
        .expect("ShareLatex analysis succeeds")
}

/// Runs only the metric-reduction part of the pipeline (steps 1–2) — enough
/// for the clustering robustness and reduction experiments, and much cheaper
/// than the full dependency analysis.
pub fn sharelatex_clusterings(
    richness: MetricRichness,
    seed: u64,
    workload_seed: u64,
) -> BTreeMap<Name, ComponentClustering> {
    let (store, _) = load_sharelatex(richness, seed, workload_seed);
    let config = experiment_config();
    let mut out = BTreeMap::new();
    for component in store.components() {
        let mut raw = Vec::new();
        store.for_each_series_of(&component, |id, series| {
            raw.push((id.metric.clone(), series.to_series()));
        });
        let prepared = prepare_series(&raw, config.interval_ms);
        let clustering =
            reduce_component(component.clone(), &prepared, &config).expect("clustering succeeds");
        out.insert(component, clustering);
    }
    out
}

/// Runs the Sieve analysis of the correct and faulty OpenStack versions.
///
/// Like in the paper, the two versions are *independent measurements*: the
/// correct and the faulty deployment are loaded with separately randomized
/// workloads, so incidental run-to-run differences exist alongside the
/// fault-induced ones — the situation the RCA similarity filtering is there
/// to handle.
pub fn openstack_models(richness: MetricRichness, seed: u64) -> (SieveModel, SieveModel) {
    let sieve = Sieve::new(experiment_config());
    let correct = sieve
        .analyze_application_for(
            &openstack::app_spec(richness),
            &Workload::randomized(60.0, 5),
            seed,
            LOAD_DURATION_MS,
        )
        .expect("correct-version analysis succeeds");
    let faulty = sieve
        .analyze_application_for(
            &openstack::faulty_app_spec(richness),
            &Workload::randomized(60.0, 6),
            seed.wrapping_add(1),
            LOAD_DURATION_MS,
        )
        .expect("faulty-version analysis succeeds");
    (correct, faulty)
}

/// Prints a horizontal rule and a centred experiment title.
pub fn print_header(title: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

/// Formats a relative difference in percent (`after` vs `before`).
pub fn percent_change(before: f64, after: f64) -> String {
    if before == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (after - before) / before * 100.0)
}

/// Formats a reduction in percent (`1 - after/before`).
pub fn percent_reduction(before: f64, after: f64) -> String {
    if before == 0.0 {
        return "n/a".to_string();
    }
    format!("{:.1}%", (1.0 - after / before) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent_change(100.0, 150.0), "+50.0%");
        assert_eq!(percent_change(0.0, 1.0), "n/a");
        assert_eq!(percent_reduction(200.0, 20.0), "90.0%");
        assert_eq!(percent_reduction(0.0, 1.0), "n/a");
    }

    #[test]
    fn experiment_config_uses_paper_defaults() {
        let c = experiment_config();
        assert_eq!(c.interval_ms, 500);
        assert_eq!(c.max_clusters, 7);
    }

    #[test]
    fn minimal_clustering_run_produces_all_components() {
        let clusterings = sharelatex_clusterings(MetricRichness::Minimal, 1, 1);
        assert_eq!(clusterings.len(), 15);
        assert!(clusterings.values().all(|c| c.total_metrics > 0));
    }
}
