//! A minimal wall-clock benchmarking harness.
//!
//! The container this repo builds in has no access to crates.io, so the
//! usual `criterion` dev-dependency is replaced by this self-contained
//! harness: each `[[bench]]` target sets `harness = false` and drives
//! [`Runner`] from its own `main`. The output format (name, iterations,
//! min/mean per iteration) is deliberately close to criterion's so the
//! numbers read the same way.

use std::time::{Duration, Instant};

/// Whether the benches run in CI smoke mode (`SIEVE_BENCH_SMOKE=1`): tiny
/// workloads, single iterations, and wall-clock assertions disabled — the
/// point is to prove the harness still runs end to end, not to measure.
/// Correctness assertions (model equality across configurations) stay on.
pub fn smoke_mode() -> bool {
    std::env::var_os("SIEVE_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Result of one benchmark: per-iteration timings.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// One wall-clock duration per measured iteration.
    pub samples: Vec<Duration>,
}

impl Measurement {
    /// Fastest observed iteration.
    pub fn min(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or_default()
    }

    /// Mean iteration time. Computed in integer nanoseconds so a sample
    /// count that does not fit in `u32` can no longer truncate the
    /// divisor (the old `Duration / u32` form silently wrapped).
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::default();
        }
        let total: u128 = self.samples.iter().map(Duration::as_nanos).sum();
        duration_from_ns(total / self.samples.len() as u128)
    }

    /// Median iteration time (for an even sample count, the mean of the
    /// two middle samples).
    pub fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let mid = sorted.len() / 2;
        if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            duration_from_ns((sorted[mid - 1].as_nanos() + sorted[mid].as_nanos()) / 2)
        }
    }
}

/// A `Duration` from nanoseconds, saturating instead of panicking on
/// overflow (`u64::MAX` ns ≈ 584 years — plenty for a benchmark).
fn duration_from_ns(ns: u128) -> Duration {
    Duration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
}

/// Runs and reports a sequence of named benchmarks.
#[derive(Debug, Default)]
pub struct Runner {
    measurements: Vec<Measurement>,
}

impl Runner {
    /// Creates an empty runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` once as warm-up and then `iterations` measured times,
    /// printing a summary line and recording the measurement. Returns the
    /// mean iteration time.
    pub fn bench<R>(
        &mut self,
        name: &str,
        iterations: usize,
        mut f: impl FnMut() -> R,
    ) -> Duration {
        let iterations = iterations.max(1);
        std::hint::black_box(f()); // warm-up, excluded from the stats
        let mut samples = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let start = Instant::now();
            std::hint::black_box(f());
            samples.push(start.elapsed());
        }
        let m = Measurement {
            name: name.to_string(),
            samples,
        };
        println!(
            "{:<44} {:>4} iters   min {:>12.3?}   mean {:>12.3?}",
            m.name,
            m.samples.len(),
            m.min(),
            m.mean()
        );
        let mean = m.mean();
        self.measurements.push(m);
        mean
    }

    /// All recorded measurements.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// The measurement with the given name, if recorded.
    pub fn measurement(&self, name: &str) -> Option<&Measurement> {
        self.measurements.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_requested_iterations() {
        let mut runner = Runner::new();
        let mut calls = 0u32;
        let mean = runner.bench("noop", 5, || {
            calls += 1;
            calls
        });
        // 5 measured + 1 warm-up.
        assert_eq!(calls, 6);
        assert_eq!(runner.measurements().len(), 1);
        assert_eq!(runner.measurement("noop").unwrap().samples.len(), 5);
        assert!(mean >= runner.measurement("noop").unwrap().min());
        assert!(runner.measurement("missing").is_none());
    }

    #[test]
    fn mean_and_median_on_known_samples() {
        let m = Measurement {
            name: "known".to_string(),
            samples: [40, 10, 20, 30]
                .into_iter()
                .map(Duration::from_nanos)
                .collect(),
        };
        assert_eq!(m.min(), Duration::from_nanos(10));
        assert_eq!(m.mean(), Duration::from_nanos(25));
        // Even count: the median averages the two middle samples.
        assert_eq!(m.median(), Duration::from_nanos(25));

        let odd = Measurement {
            name: "odd".to_string(),
            samples: [9, 1, 5].into_iter().map(Duration::from_nanos).collect(),
        };
        assert_eq!(odd.median(), Duration::from_nanos(5));
        assert_eq!(odd.mean(), Duration::from_nanos(5));

        let empty = Measurement {
            name: "empty".to_string(),
            samples: Vec::new(),
        };
        assert_eq!(empty.mean(), Duration::default());
        assert_eq!(empty.median(), Duration::default());
    }
}
