//! A minimal wall-clock benchmarking harness.
//!
//! The container this repo builds in has no access to crates.io, so the
//! usual `criterion` dev-dependency is replaced by this self-contained
//! harness: each `[[bench]]` target sets `harness = false` and drives
//! [`Runner`] from its own `main`. The output format (name, iterations,
//! min/mean per iteration) is deliberately close to criterion's so the
//! numbers read the same way.

use std::time::{Duration, Instant};

/// Whether the benches run in CI smoke mode (`SIEVE_BENCH_SMOKE=1`): tiny
/// workloads, single iterations, and wall-clock assertions disabled — the
/// point is to prove the harness still runs end to end, not to measure.
/// Correctness assertions (model equality across configurations) stay on.
pub fn smoke_mode() -> bool {
    std::env::var_os("SIEVE_BENCH_SMOKE").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Result of one benchmark: per-iteration timings.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name.
    pub name: String,
    /// One wall-clock duration per measured iteration.
    pub samples: Vec<Duration>,
}

impl Measurement {
    /// Fastest observed iteration.
    pub fn min(&self) -> Duration {
        self.samples.iter().min().copied().unwrap_or_default()
    }

    /// Mean iteration time.
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::default();
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// Runs and reports a sequence of named benchmarks.
#[derive(Debug, Default)]
pub struct Runner {
    measurements: Vec<Measurement>,
}

impl Runner {
    /// Creates an empty runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` once as warm-up and then `iterations` measured times,
    /// printing a summary line and recording the measurement. Returns the
    /// mean iteration time.
    pub fn bench<R>(
        &mut self,
        name: &str,
        iterations: usize,
        mut f: impl FnMut() -> R,
    ) -> Duration {
        let iterations = iterations.max(1);
        std::hint::black_box(f()); // warm-up, excluded from the stats
        let mut samples = Vec::with_capacity(iterations);
        for _ in 0..iterations {
            let start = Instant::now();
            std::hint::black_box(f());
            samples.push(start.elapsed());
        }
        let m = Measurement {
            name: name.to_string(),
            samples,
        };
        println!(
            "{:<44} {:>4} iters   min {:>12.3?}   mean {:>12.3?}",
            m.name,
            m.samples.len(),
            m.min(),
            m.mean()
        );
        let mean = m.mean();
        self.measurements.push(m);
        mean
    }

    /// All recorded measurements.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// The measurement with the given name, if recorded.
    pub fn measurement(&self, name: &str) -> Option<&Measurement> {
        self.measurements.iter().find(|m| m.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_requested_iterations() {
        let mut runner = Runner::new();
        let mut calls = 0u32;
        let mean = runner.bench("noop", 5, || {
            calls += 1;
            calls
        });
        // 5 measured + 1 warm-up.
        assert_eq!(calls, 6);
        assert_eq!(runner.measurements().len(), 1);
        assert_eq!(runner.measurement("noop").unwrap().samples.len(), 5);
        assert!(mean >= runner.measurement("noop").unwrap().min());
        assert!(runner.measurement("missing").is_none());
    }
}
