//! Property-based tests for the clustering crate.

use proptest::prelude::*;
use sieve_cluster::ami::{adjusted_mutual_information, normalized_mutual_information};
use sieve_cluster::jaro::{jaro_similarity, pre_cluster_names};
use sieve_cluster::kshape::{KShape, KShapeConfig};
use sieve_cluster::silhouette::{euclidean, silhouette_score_with};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn jaro_similarity_is_bounded_and_symmetric(a in "[a-z_]{0,12}", b in "[a-z_]{0,12}") {
        let s = jaro_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - jaro_similarity(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn jaro_self_similarity_is_one(a in "[a-z_]{1,16}") {
        prop_assert_eq!(jaro_similarity(&a, &a), 1.0);
    }

    #[test]
    fn pre_clustering_covers_all_names(names in prop::collection::vec("[a-z_]{1,10}", 1..30), k in 1usize..8) {
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let assignment = pre_cluster_names(&refs, k);
        prop_assert_eq!(assignment.len(), names.len());
        let limit = k.min(names.len());
        prop_assert!(assignment.iter().all(|&c| c < limit));
    }

    #[test]
    fn ami_of_identical_labelings_is_one(labels in prop::collection::vec(0usize..5, 2..40)) {
        let ami = adjusted_mutual_information(&labels, &labels).unwrap();
        prop_assert!((ami - 1.0).abs() < 1e-6, "ami {}", ami);
    }

    #[test]
    fn ami_is_at_most_one(
        a in prop::collection::vec(0usize..4, 2..40),
        b in prop::collection::vec(0usize..4, 2..40),
    ) {
        let n = a.len().min(b.len());
        let ami = adjusted_mutual_information(&a[..n], &b[..n]).unwrap();
        prop_assert!(ami <= 1.0 + 1e-9);
        let nmi = normalized_mutual_information(&a[..n], &b[..n]).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&nmi));
    }

    #[test]
    fn silhouette_is_bounded(
        data in prop::collection::vec(prop::collection::vec(-50.0f64..50.0, 3), 4..20),
        labels in prop::collection::vec(0usize..3, 4..20),
    ) {
        let n = data.len().min(labels.len());
        let s = silhouette_score_with(&data[..n], &labels[..n], euclidean).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
    }

    #[test]
    fn kshape_assigns_every_series_to_a_valid_cluster(
        seeds in prop::collection::vec(0.1f64..10.0, 4..12),
        k in 1usize..4,
    ) {
        // Build deterministic series from the seed values.
        let series: Vec<Vec<f64>> = seeds
            .iter()
            .map(|&s| (0..24).map(|i| ((i as f64) * s * 0.3).sin() + s).collect())
            .collect();
        let k = k.min(series.len());
        let result = KShape::new(KShapeConfig::new(k)).fit(&series).unwrap();
        prop_assert_eq!(result.assignments.len(), series.len());
        prop_assert!(result.assignments.iter().all(|&a| a < k));
        prop_assert!(result.iterations >= 1);
    }
}
