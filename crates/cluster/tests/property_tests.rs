//! Randomized property tests for the clustering crate.
//!
//! The original suite used `proptest`; the build container has no registry
//! access, so the same properties are exercised with a deterministic
//! splitmix64 case generator — every run checks the identical set of
//! pseudo-random inputs, which also makes failures trivially reproducible.

use sieve_cluster::ami::{adjusted_mutual_information, normalized_mutual_information};
use sieve_cluster::jaro::{jaro_similarity, pre_cluster_names};
use sieve_cluster::kshape::{KShape, KShapeConfig};
use sieve_cluster::silhouette::{euclidean, silhouette_score_with};

/// Deterministic splitmix64 generator for test data.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.unit()
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() as usize) % (hi - lo + 1)
    }

    /// A lowercase identifier like the `[a-z_]{lo,hi}` proptest regex.
    fn ident(&mut self, lo: usize, hi: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz_";
        let len = self.usize_in(lo, hi);
        (0..len)
            .map(|_| ALPHABET[(self.next_u64() as usize) % ALPHABET.len()] as char)
            .collect()
    }

    fn labels(&mut self, upper: usize, lo: usize, hi: usize) -> Vec<usize> {
        let len = self.usize_in(lo, hi);
        (0..len)
            .map(|_| (self.next_u64() as usize) % upper)
            .collect()
    }
}

const CASES: u64 = 64;

#[test]
fn jaro_similarity_is_bounded_and_symmetric() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = rng.ident(0, 12);
        let b = rng.ident(0, 12);
        let s = jaro_similarity(&a, &b);
        assert!((0.0..=1.0).contains(&s), "seed {seed}");
        assert!((s - jaro_similarity(&b, &a)).abs() < 1e-12, "seed {seed}");
    }
}

#[test]
fn jaro_self_similarity_is_one() {
    for seed in 0..CASES {
        let a = Rng::new(seed).ident(1, 16);
        assert_eq!(jaro_similarity(&a, &a), 1.0, "seed {seed}");
    }
}

#[test]
fn pre_clustering_covers_all_names() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let count = rng.usize_in(1, 29);
        let names: Vec<String> = (0..count).map(|_| rng.ident(1, 10)).collect();
        let k = rng.usize_in(1, 7);
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let assignment = pre_cluster_names(&refs, k);
        assert_eq!(assignment.len(), names.len(), "seed {seed}");
        let limit = k.min(names.len());
        assert!(assignment.iter().all(|&c| c < limit), "seed {seed}");
    }
}

#[test]
fn ami_of_identical_labelings_is_one() {
    for seed in 0..CASES {
        let labels = Rng::new(seed).labels(5, 2, 40);
        let ami = adjusted_mutual_information(&labels, &labels).unwrap();
        assert!((ami - 1.0).abs() < 1e-6, "seed {seed}: ami {ami}");
    }
}

#[test]
fn ami_is_at_most_one() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let a = rng.labels(4, 2, 40);
        let b = rng.labels(4, 2, 40);
        let n = a.len().min(b.len());
        let ami = adjusted_mutual_information(&a[..n], &b[..n]).unwrap();
        assert!(ami <= 1.0 + 1e-9, "seed {seed}");
        let nmi = normalized_mutual_information(&a[..n], &b[..n]).unwrap();
        assert!((0.0..=1.0 + 1e-9).contains(&nmi), "seed {seed}");
    }
}

#[test]
fn silhouette_is_bounded() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let rows = rng.usize_in(4, 19);
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..3).map(|_| rng.range(-50.0, 50.0)).collect())
            .collect();
        let labels = rng.labels(3, 4, 19);
        let n = data.len().min(labels.len());
        let s = silhouette_score_with(&data[..n], &labels[..n], euclidean).unwrap();
        assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s), "seed {seed}");
    }
}

#[test]
fn kshape_assigns_every_series_to_a_valid_cluster() {
    for seed in 0..CASES {
        let mut rng = Rng::new(seed);
        let count = rng.usize_in(4, 11);
        let seeds: Vec<f64> = (0..count).map(|_| rng.range(0.1, 10.0)).collect();
        let k = rng.usize_in(1, 3);
        // Build deterministic series from the seed values.
        let series: Vec<Vec<f64>> = seeds
            .iter()
            .map(|&s| (0..24).map(|i| ((i as f64) * s * 0.3).sin() + s).collect())
            .collect();
        let k = k.min(series.len());
        let result = KShape::new(KShapeConfig::new(k)).fit(&series).unwrap();
        assert_eq!(result.assignments.len(), series.len(), "seed {seed}");
        assert!(result.assignments.iter().all(|&a| a < k), "seed {seed}");
        assert!(result.iterations >= 1, "seed {seed}");
    }
}
