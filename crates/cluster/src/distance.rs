//! Precomputed pairwise SBD distance matrices.
//!
//! Sieve's k selection evaluates the silhouette score for every candidate
//! cluster count, and each evaluation needs all O(n²) pairwise shape-based
//! distances of a component's metrics — distances that do not depend on the
//! clustering at all. A [`DistanceMatrix`] computes them once per component
//! (from cached [`SeriesSpectrum`]s, fanned out through
//! [`sieve_exec::par_map_chunks`]) and every k in the sweep reads the same
//! matrix. The entries are bit-identical to what
//! [`sieve_timeseries::sbd::sbd`] returns on the raw series, so a
//! matrix-backed silhouette equals the direct-SBD silhouette exactly.

use crate::{ClusterError, Result};
use sieve_exec::try_par_map_chunks;
use sieve_timeseries::spectrum::{sbd_from_spectra, SeriesSpectrum, SpectrumBatch};

/// A symmetric matrix of pairwise shape-based distances with a zero
/// diagonal.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major `n × n` storage; small per-component metric counts make the
    /// redundant lower triangle cheaper than condensed-index arithmetic in
    /// the silhouette inner loops.
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise distances between the series behind the given
    /// spectra, distributing the rows over up to `workers` threads. The
    /// result is identical for every worker count.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::TimeSeries`] when the spectra have incompatible
    ///   (unequal) series lengths.
    pub fn from_spectra(spectra: &[SeriesSpectrum], workers: usize) -> Result<Self> {
        let n = spectra.len();
        let indices: Vec<usize> = (0..n).collect();
        // Row i computes the strict upper triangle i+1..n; rows come back in
        // input order, so assembly below is deterministic.
        let rows: Vec<Vec<f64>> = try_par_map_chunks(workers, &indices, |&i| {
            ((i + 1)..n)
                .map(|j| Ok(sbd_from_spectra(&spectra[i], &spectra[j])?.distance))
                .collect::<Result<Vec<f64>>>()
        })?;
        let mut data = vec![0.0; n * n];
        for (i, row) in rows.iter().enumerate() {
            for (offset, &d) in row.iter().enumerate() {
                let j = i + 1 + offset;
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        Ok(Self { n, data })
    }

    /// Computes the spectra of `series` and then the full pairwise matrix.
    ///
    /// # Errors
    ///
    /// * [`ClusterError::NoData`] when `series` is empty.
    /// * [`ClusterError::InconsistentLengths`] when the series lengths
    ///   differ (pairwise SBD caching requires a rectangular input, exactly
    ///   like k-Shape).
    /// * [`ClusterError::TimeSeries`] for empty member series.
    pub fn compute<S: AsRef<[f64]>>(series: &[S], workers: usize) -> Result<Self> {
        let spectra = compute_spectra(series, workers)?;
        Self::from_spectra(&spectra, workers)
    }

    /// Number of series the matrix covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers zero series.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between series `i` and `j` (0 on the diagonal).
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "distance index out of range");
        self.data[i * self.n + j]
    }
}

/// Computes the [`SeriesSpectrum`] of every series, validating that the
/// input is rectangular, distributing the FFTs over up to `workers`
/// threads.
///
/// # Errors
///
/// * [`ClusterError::NoData`] when `series` is empty.
/// * [`ClusterError::InconsistentLengths`] when the series lengths differ.
/// * [`ClusterError::TimeSeries`] for empty member series.
pub fn compute_spectra<S: AsRef<[f64]>>(
    series: &[S],
    workers: usize,
) -> Result<Vec<SeriesSpectrum>> {
    if series.is_empty() {
        return Err(ClusterError::NoData);
    }
    let m = series[0].as_ref().len();
    for (i, s) in series.iter().enumerate() {
        if s.as_ref().len() != m {
            return Err(ClusterError::InconsistentLengths {
                expected: m,
                index: i,
                actual: s.as_ref().len(),
            });
        }
    }
    let refs: Vec<&[f64]> = series.iter().map(|s| s.as_ref()).collect();
    // Each worker transforms its contiguous slice of series through one
    // [`SpectrumBatch`] (shared twiddle table, one arena pass). The batch is
    // bit-identical to per-series [`SeriesSpectrum::compute`], so the result
    // does not depend on how the series are grouped across workers.
    let chunk = refs.len().div_ceil(workers.max(1)).max(1);
    let groups: Vec<&[&[f64]]> = refs.chunks(chunk).collect();
    let batches: Vec<Vec<SeriesSpectrum>> = try_par_map_chunks(workers, &groups, |group| {
        SpectrumBatch::compute(group)
            .map(SpectrumBatch::into_spectra)
            .map_err(ClusterError::from)
    })?;
    Ok(batches.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sieve_timeseries::sbd::sbd;

    fn family(count: usize, len: usize) -> Vec<Vec<f64>> {
        (0..count)
            .map(|c| {
                (0..len)
                    .map(|i| ((i as f64) * (0.1 + 0.05 * c as f64)).sin() + c as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn matrix_entries_equal_direct_sbd_bitwise() {
        let series = family(7, 48);
        let matrix = DistanceMatrix::compute(&series, 1).unwrap();
        assert_eq!(matrix.len(), 7);
        for i in 0..7 {
            assert_eq!(matrix.get(i, i), 0.0);
            for j in (i + 1)..7 {
                // The upper triangle matches the direct computation bit for
                // bit; the lower triangle mirrors it (exactly the convention
                // the silhouette scorer has always used — SBD is symmetric
                // as a distance but not bitwise under operand swap).
                let direct = sbd(&series[i], &series[j]).unwrap();
                assert_eq!(
                    matrix.get(i, j).to_bits(),
                    direct.to_bits(),
                    "entry ({i}, {j})"
                );
                assert_eq!(matrix.get(j, i).to_bits(), matrix.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn matrix_is_symmetric_and_worker_count_invariant() {
        let series = family(9, 32);
        let serial = DistanceMatrix::compute(&series, 1).unwrap();
        let parallel = DistanceMatrix::compute(&series, 4).unwrap();
        assert_eq!(serial, parallel);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(serial.get(i, j).to_bits(), serial.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            DistanceMatrix::compute::<Vec<f64>>(&[], 1),
            Err(ClusterError::NoData)
        ));
        let ragged = vec![vec![1.0, 2.0], vec![1.0, 2.0, 3.0]];
        assert!(matches!(
            DistanceMatrix::compute(&ragged, 1),
            Err(ClusterError::InconsistentLengths { .. })
        ));
        let with_empty: Vec<Vec<f64>> = vec![vec![], vec![]];
        assert!(matches!(
            DistanceMatrix::compute(&with_empty, 1),
            Err(ClusterError::TimeSeries(_))
        ));
    }

    #[test]
    fn single_series_yields_a_one_by_one_zero_matrix() {
        let m = DistanceMatrix::compute(&[vec![1.0, 2.0, 3.0]], 1).unwrap();
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        assert_eq!(m.get(0, 0), 0.0);
    }
}
