use std::fmt;

/// Errors produced by clustering operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// No time series were provided.
    NoData,
    /// The requested number of clusters is invalid (zero or larger than the
    /// number of series).
    InvalidClusterCount {
        /// Requested number of clusters.
        requested: usize,
        /// Number of series available.
        available: usize,
    },
    /// The series have inconsistent lengths.
    InconsistentLengths {
        /// Length of the first series.
        expected: usize,
        /// Index of the offending series.
        index: usize,
        /// Length of the offending series.
        actual: usize,
    },
    /// An initial assignment was supplied with the wrong length or cluster
    /// indices out of range.
    InvalidInitialAssignment {
        /// Explanation of the problem.
        reason: String,
    },
    /// Two labelings being compared do not have the same length.
    LabelLengthMismatch {
        /// Length of the first labeling.
        left: usize,
        /// Length of the second labeling.
        right: usize,
    },
    /// An underlying time-series operation failed.
    TimeSeries(sieve_timeseries::TimeSeriesError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoData => write!(f, "no time series provided"),
            ClusterError::InvalidClusterCount {
                requested,
                available,
            } => write!(
                f,
                "invalid cluster count {requested} for {available} series"
            ),
            ClusterError::InconsistentLengths {
                expected,
                index,
                actual,
            } => write!(f, "series {index} has length {actual}, expected {expected}"),
            ClusterError::InvalidInitialAssignment { reason } => {
                write!(f, "invalid initial assignment: {reason}")
            }
            ClusterError::LabelLengthMismatch { left, right } => {
                write!(f, "labelings have different lengths: {left} vs {right}")
            }
            ClusterError::TimeSeries(e) => write!(f, "time-series error: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::TimeSeries(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sieve_timeseries::TimeSeriesError> for ClusterError {
    fn from(e: sieve_timeseries::TimeSeriesError) -> Self {
        ClusterError::TimeSeries(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = vec![
            ClusterError::NoData,
            ClusterError::InvalidClusterCount {
                requested: 5,
                available: 2,
            },
            ClusterError::InconsistentLengths {
                expected: 10,
                index: 3,
                actual: 7,
            },
            ClusterError::InvalidInitialAssignment {
                reason: "too short".into(),
            },
            ClusterError::LabelLengthMismatch { left: 2, right: 3 },
            ClusterError::TimeSeries(sieve_timeseries::TimeSeriesError::Empty),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn timeseries_error_converts() {
        let e: ClusterError = sieve_timeseries::TimeSeriesError::Empty.into();
        assert!(matches!(e, ClusterError::TimeSeries(_)));
    }
}
