//! Jaro string similarity and name-based pre-clustering.
//!
//! Sieve warm-starts k-Shape by pre-clustering metrics "according to their
//! name similarity (e.g., Jaro distance)" because developers tend to use
//! naming conventions (`cpu_usage`, `cpu_usage_percentile`, ...) for related
//! metrics (§3.2). The warm start only affects convergence speed, never the
//! final clustering quality.

/// Jaro similarity between two strings, in `[0, 1]` (1 for identical
/// strings, 0 for no matching characters).
///
/// ```
/// let s = sieve_cluster::jaro::jaro_similarity("cpu_usage", "cpu_usage_percentile");
/// assert!(s > 0.8);
/// assert_eq!(sieve_cluster::jaro::jaro_similarity("abc", "abc"), 1.0);
/// ```
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut a_matched = vec![false; a.len()];
    let mut b_matched = vec![false; b.len()];
    let mut matches = 0usize;

    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == *ca {
                a_matched[i] = true;
                b_matched[j] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions among matched characters.
    let a_match_chars: Vec<char> = a
        .iter()
        .zip(a_matched.iter())
        .filter(|(_, &m)| m)
        .map(|(c, _)| *c)
        .collect();
    let b_match_chars: Vec<char> = b
        .iter()
        .zip(b_matched.iter())
        .filter(|(_, &m)| m)
        .map(|(c, _)| *c)
        .collect();
    let transpositions = a_match_chars
        .iter()
        .zip(b_match_chars.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;

    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro distance: `1 - jaro_similarity`.
pub fn jaro_distance(a: &str, b: &str) -> f64 {
    1.0 - jaro_similarity(a, b)
}

/// Groups metric names into exactly `k` initial clusters by name similarity.
///
/// A greedy leader algorithm first forms groups of names whose Jaro
/// similarity to the group leader exceeds `threshold` (default 0.8 via
/// [`pre_cluster_names`]). The groups are then adjusted to exactly `k`
/// clusters: surplus groups are merged into their most-similar retained
/// group, and missing clusters are created by splitting the largest groups.
///
/// Returns one cluster index in `0..k` per input name. Returns an empty
/// vector when `names` is empty or `k == 0`.
pub fn pre_cluster_names_with_threshold(names: &[&str], k: usize, threshold: f64) -> Vec<usize> {
    if names.is_empty() || k == 0 {
        return Vec::new();
    }
    let k = k.min(names.len());

    // Greedy leader clustering.
    let mut leaders: Vec<usize> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let mut best: Option<(usize, f64)> = None;
        for (g, &leader) in leaders.iter().enumerate() {
            let sim = jaro_similarity(name, names[leader]);
            if sim >= threshold && best.map_or(true, |(_, b)| sim > b) {
                best = Some((g, sim));
            }
        }
        match best {
            Some((g, _)) => groups[g].push(i),
            None => {
                leaders.push(i);
                groups.push(vec![i]);
            }
        }
    }

    // Too many groups: keep the k largest as bases, merge the rest into the
    // most-similar base (by leader similarity).
    if groups.len() > k {
        let mut order: Vec<usize> = (0..groups.len()).collect();
        order.sort_by_key(|&g| std::cmp::Reverse(groups[g].len()));
        let bases: Vec<usize> = order[..k].to_vec();
        let mut merged: Vec<Vec<usize>> = bases.iter().map(|&g| groups[g].clone()).collect();
        for &g in &order[k..] {
            let leader = leaders[g];
            let mut best = 0usize;
            let mut best_sim = f64::NEG_INFINITY;
            for (bi, &b) in bases.iter().enumerate() {
                let sim = jaro_similarity(names[leader], names[leaders[b]]);
                if sim > best_sim {
                    best_sim = sim;
                    best = bi;
                }
            }
            let members = groups[g].clone();
            merged[best].extend(members);
        }
        groups = merged;
    }

    // Too few groups: split the largest group until we have k.
    while groups.len() < k {
        let (largest_idx, _) = groups
            .iter()
            .enumerate()
            .max_by_key(|(_, g)| g.len())
            .expect("at least one group");
        if groups[largest_idx].len() < 2 {
            // Cannot split further; duplicate an empty group (will be fixed
            // by the k-Shape iterations).
            groups.push(Vec::new());
            continue;
        }
        let half = groups[largest_idx].len() / 2;
        let tail = groups[largest_idx].split_off(half);
        groups.push(tail);
    }

    let mut assignment = vec![0usize; names.len()];
    for (cluster, group) in groups.iter().enumerate() {
        for &idx in group {
            assignment[idx] = cluster;
        }
    }
    assignment
}

/// [`pre_cluster_names_with_threshold`] with the default similarity
/// threshold of `0.8`.
pub fn pre_cluster_names(names: &[&str], k: usize) -> Vec<usize> {
    pre_cluster_names_with_threshold(names, k, 0.8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_similarity_one() {
        assert_eq!(jaro_similarity("mongodb_queries", "mongodb_queries"), 1.0);
        assert_eq!(jaro_distance("x", "x"), 0.0);
    }

    #[test]
    fn disjoint_strings_have_similarity_zero() {
        assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn empty_string_cases() {
        assert_eq!(jaro_similarity("", ""), 1.0);
        assert_eq!(jaro_similarity("", "abc"), 0.0);
        assert_eq!(jaro_similarity("abc", ""), 0.0);
    }

    #[test]
    fn known_jaro_values() {
        // Classic textbook examples.
        let s = jaro_similarity("MARTHA", "MARHTA");
        assert!((s - 0.944444).abs() < 1e-4, "got {s}");
        let s = jaro_similarity("DIXON", "DICKSONX");
        assert!((s - 0.766666).abs() < 1e-4, "got {s}");
        let s = jaro_similarity("JELLYFISH", "SMELLYFISH");
        assert!((s - 0.896296).abs() < 1e-4, "got {s}");
    }

    #[test]
    fn similarity_is_symmetric() {
        let pairs = [
            ("cpu_usage", "cpu_usage_total"),
            ("net_rx_bytes", "net_tx_bytes"),
            ("queue_depth", "heap_used"),
        ];
        for (a, b) in pairs {
            assert!((jaro_similarity(a, b) - jaro_similarity(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn related_metric_names_are_more_similar_than_unrelated() {
        let related = jaro_similarity("cpu_usage", "cpu_usage_percentile");
        let unrelated = jaro_similarity("cpu_usage", "http_requests_total");
        assert!(related > unrelated);
    }

    #[test]
    fn pre_cluster_groups_similar_names_together() {
        let names = vec![
            "cpu_usage",
            "cpu_usage_system",
            "cpu_usage_user",
            "net_bytes_recv",
            "net_bytes_sent",
            "http_request_latency_mean",
        ];
        let assignment = pre_cluster_names(&names, 3);
        assert_eq!(assignment.len(), names.len());
        assert!(assignment.iter().all(|&c| c < 3));
        // The three cpu_usage* metrics end up together.
        assert_eq!(assignment[0], assignment[1]);
        assert_eq!(assignment[0], assignment[2]);
        // The two net_bytes* metrics end up together.
        assert_eq!(assignment[3], assignment[4]);
    }

    #[test]
    fn pre_cluster_produces_exactly_k_cluster_indices() {
        let names: Vec<String> = (0..20).map(|i| format!("metric_{i}")).collect();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        for k in 1..=7 {
            let assignment = pre_cluster_names(&refs, k);
            assert!(assignment.iter().all(|&c| c < k));
            // Every index is within range and at least one cluster is used.
            assert!(!assignment.is_empty());
        }
    }

    #[test]
    fn pre_cluster_handles_more_clusters_than_names() {
        let assignment = pre_cluster_names(&["a", "b"], 10);
        assert_eq!(assignment.len(), 2);
        assert!(assignment.iter().all(|&c| c < 2));
    }

    #[test]
    fn pre_cluster_empty_input() {
        assert!(pre_cluster_names(&[], 3).is_empty());
        assert!(pre_cluster_names(&["a"], 0).is_empty());
    }
}
